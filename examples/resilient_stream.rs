//! Self-tuning stream over a degrading network — on real sockets.
//!
//! A long-running stream starts on five clean loopback UDP channels
//! with minimal redundancy (`μ = κ = 1`, maximum rate). Partway in, the
//! network degrades badly: every channel starts dropping 25% of its
//! datagrams. The adaptive controller notices through receiver feedback
//! (control frames riding the same sockets) and walks `μ` up until the
//! loss target holds again — trading rate for reliability exactly along
//! the tradeoff curve the model describes, with no operator in the
//! loop. This is the same controller the simulator exercises; only the
//! driver changed.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p mcss-remicss --release --features udp --example resilient_stream
//! ```

use std::time::{Duration, Instant};

use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::udp::UdpDriver;

const CHANNELS: usize = 5;
const SYMBOL_BYTES: usize = 256;
const TARGET_LOSS: f64 = 0.01;
const LOSS: f64 = 0.25;
const CLEAN_MILLIS: u64 = 1_000;
const DEGRADED_MILLIS: u64 = 3_000;
const TICK: Duration = Duration::from_millis(100);
const SYMBOLS_PER_TICK: usize = 40;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ProtocolConfig::new(1.0, 1.0)?
        .with_symbol_bytes(SYMBOL_BYTES)
        .with_adaptive(TARGET_LOSS);
    let mut driver = UdpDriver::new(config, CHANNELS, 2026)?;

    println!("adaptive stream: {CHANNELS} loopback UDP channels, target loss {TARGET_LOSS}");
    println!(
        "degradation strikes at t = {:.1}s: every channel drops {:.0}% of datagrams\n",
        CLEAN_MILLIS as f64 / 1e3,
        LOSS * 100.0
    );
    println!(
        "{:>8} {:>8} {:>12} {:>14}",
        "t (ms)", "mu", "est. loss", "adjustments"
    );

    let start = Instant::now();
    let total = Duration::from_millis(CLEAN_MILLIS + DEGRADED_MILLIS);
    let mut degraded = false;
    let mut next_print = Duration::from_millis(500);
    let mut sent = 0usize;
    while start.elapsed() < total {
        if !degraded && start.elapsed() >= Duration::from_millis(CLEAN_MILLIS) {
            for ch in 0..CHANNELS {
                driver.set_loss(ch, LOSS);
            }
            degraded = true;
            println!("  -- all channels degraded to {:.0}% loss --", LOSS * 100.0);
        }
        for i in 0..SYMBOLS_PER_TICK {
            let payload = vec![(sent + i) as u8; SYMBOL_BYTES];
            driver.send_symbol(&payload)?;
        }
        sent += SYMBOLS_PER_TICK;
        driver.drive(TICK)?;
        while driver.next_symbol().is_some() {}

        if start.elapsed() >= next_print {
            let ctl = driver.engine().adaptive().expect("adaptation enabled");
            println!(
                "{:>8} {:>8.2} {:>12.4} {:>14}",
                next_print.as_millis(),
                ctl.mu(),
                ctl.estimated_loss().unwrap_or(0.0),
                ctl.adjustments()
            );
            next_print += Duration::from_millis(500);
        }
    }
    // Let the tail of the stream and the last feedback epochs land.
    driver.drive(Duration::from_millis(200))?;
    while driver.next_symbol().is_some() {}

    let report = driver.report(driver.now());
    println!("\nfinal report:");
    println!(
        "  sent {} symbols, delivered (eventually) {:.2}%",
        report.sent_symbols,
        100.0 * (1.0 - report.loss_fraction)
    );
    let final_mu = report.adaptive_final_mu.expect("adaptation enabled");
    println!(
        "  final mu = {final_mu:.2} (started at 1.00, {} adjustments)",
        report.adaptive_adjustments
    );

    // What the model says the controller should have found: with 25%
    // loss per channel and kappa = 1, the loss target needs mu where
    // 0.25^mu <= 0.01, i.e. mu >= log(0.01)/log(0.25) ~ 3.3.
    let needed = TARGET_LOSS.ln() / LOSS.ln();
    println!("  model check: {LOSS}^mu <= {TARGET_LOSS} needs mu >= {needed:.1}");
    assert!(
        final_mu >= needed - 1.0,
        "controller settled too low: {final_mu:.2} vs needed ~{needed:.1}"
    );
    println!("  controller settled consistently with the model's prediction");
    Ok(())
}
