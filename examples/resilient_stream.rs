//! Self-tuning stream over a degrading network.
//!
//! A long-running CBR stream starts on five clean channels with minimal
//! redundancy (`μ ≈ κ = 1`, maximum rate). Two seconds in, the network
//! degrades badly: every channel starts dropping 25% of its frames. The
//! adaptive controller notices through receiver feedback and walks `μ`
//! up until the loss target holds again — trading rate for reliability
//! exactly along the tradeoff curve the model describes, with no
//! operator in the loop.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p mcss --release --example resilient_stream
//! ```

use mcss::netsim::{Endpoint, LinkConfig, SimTime, Simulator};
use mcss::prelude::*;

const TARGET_LOSS: f64 = 0.01;
const DEGRADE_AT: u64 = 2; // seconds
const END_AT: u64 = 10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let channels = setups::identical(50.0);
    let config = ProtocolConfig::new(1.0, 1.0)?.with_adaptive(TARGET_LOSS);
    let offered = 0.2 * testbed::optimal_symbol_rate(&channels, &config)?;
    let window = SimTime::from_secs(END_AT);

    println!("adaptive stream: 5 x 50 Mbit/s channels, target loss {TARGET_LOSS}");
    println!("offering {offered:.0} symbols/s; degradation strikes at t = {DEGRADE_AT}s\n");

    let session = Session::new(
        config.clone(),
        channels.len(),
        Workload::cbr(offered, window),
    )?;
    let net = testbed::network_for(&channels, &config);
    let mut sim = Simulator::new(net, session, 2026);

    println!(
        "{:>6} {:>8} {:>12} {:>14}",
        "t (s)", "mu", "est. loss", "adjustments"
    );
    for sec in 1..=END_AT {
        if sec == DEGRADE_AT {
            for ch in 0..5 {
                for ep in [Endpoint::A, Endpoint::B] {
                    sim.network_mut()
                        .reconfigure(ch, ep, LinkConfig::new(50e6).with_loss(0.25));
                }
            }
            println!("  -- all channels degraded to 25% loss --");
        }
        sim.run_until(SimTime::from_secs(sec));
        let ctl = sim.app().adaptive().expect("adaptation enabled");
        println!(
            "{sec:>6} {:>8.2} {:>12.4} {:>14}",
            ctl.mu(),
            ctl.estimated_loss().unwrap_or(0.0),
            ctl.adjustments()
        );
    }
    sim.run_until(window + SimTime::from_secs(1));

    let report = sim.app().report(window);
    println!("\nfinal report:");
    println!(
        "  sent {} symbols, delivered (eventually) {:.2}%",
        report.sent_symbols,
        100.0 * (1.0 - report.loss_fraction)
    );
    println!(
        "  final mu = {:.2} (started at 1.0)",
        report.adaptive_final_mu.unwrap()
    );
    println!(
        "  mean one-way delay: {:?}",
        report.mean_one_way_delay.map(|d| d.to_string())
    );

    // What the model says the controller should have found: with 25%
    // loss per channel and kappa = 1, the loss target needs mu where
    // 0.25^mu <= 0.01, i.e. mu >= log(0.01)/log(0.25) ~ 3.3.
    let needed = (TARGET_LOSS.ln() / 0.25f64.ln()).ceil();
    println!("  model check: 0.25^mu <= {TARGET_LOSS} needs mu >= {needed}");
    let final_mu = report.adaptive_final_mu.unwrap();
    assert!(
        final_mu >= needed - 0.75,
        "controller settled too low: {final_mu} vs needed ~{needed}"
    );
    println!("  controller settled consistently with the model's prediction");
    Ok(())
}
