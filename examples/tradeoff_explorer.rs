//! Explore the privacy/loss/delay/rate tradeoff surface of a channel set.
//!
//! For a grid of `(κ, μ)` parameters this prints, per point: the optimal
//! multichannel rate (Theorem 4), and the best achievable risk, loss,
//! and delay of schedules that sustain that rate (the §IV-D linear
//! program). It is the numeric version of the mental model behind the
//! paper's Figure 1: every row is a different point on the continuum
//! between "MPTCP-like throughput" and "courier-mode secrecy".
//!
//! Run with:
//!
//! ```sh
//! cargo run -p mcss --release --example tradeoff_explorer [setup]
//! ```
//!
//! where `setup` is one of `identical`, `diverse`, `lossy` (default), or
//! `delayed`.

use mcss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setup = std::env::args().nth(1).unwrap_or_else(|| "lossy".into());
    let channels = match setup.as_str() {
        "identical" => setups::identical(100.0),
        "diverse" => setups::diverse(),
        "lossy" => setups::lossy(),
        "delayed" => setups::delayed(),
        other => {
            eprintln!("unknown setup {other:?}; use identical|diverse|lossy|delayed");
            std::process::exit(2);
        }
    };
    let n = channels.len();
    println!("tradeoff surface for the {setup} setup ({n} channels)");
    println!(
        "full utilization holds up to mu = {:.3} (Theorem 2)\n",
        optimal::full_utilization_mu(&channels)
    );
    println!(
        "{:>5} {:>5} {:>10} {:>12} {:>12} {:>12}",
        "kappa", "mu", "rate", "risk Z(p)", "loss L(p)", "delay D(p)"
    );

    let mut kappa = 1.0;
    while kappa <= n as f64 + 1e-9 {
        let mut mu = kappa;
        while mu <= n as f64 + 1e-9 {
            let rc = optimal::optimal_rate(&channels, mu)?;
            let risk = lp_schedule::optimal_schedule_at_max_rate(
                &channels,
                kappa,
                mu,
                Objective::Privacy,
            )?
            .risk(&channels);
            let loss =
                lp_schedule::optimal_schedule_at_max_rate(&channels, kappa, mu, Objective::Loss)?
                    .loss(&channels);
            let delay =
                lp_schedule::optimal_schedule_at_max_rate(&channels, kappa, mu, Objective::Delay)?
                    .delay(&channels);
            println!("{kappa:>5.2} {mu:>5.2} {rc:>10.2} {risk:>12.5} {loss:>12.3e} {delay:>12.3e}");
            mu += 1.0;
        }
        kappa += 1.0;
    }

    println!("\nreading the table:");
    println!("  - rate falls as mu rises: more shares per symbol eat channel budget;");
    println!("  - risk falls as kappa rises: the adversary needs more taps;");
    println!("  - loss falls as mu - kappa widens: more redundancy per symbol;");
    println!("  - the best row depends on which property your application values.");
    Ok(())
}
