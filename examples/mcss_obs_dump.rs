//! Telemetry introspection: run one second of ReMICSS traffic over the
//! paper's Lossy setup and dump everything the `mcss-obs` layer saw —
//! session protocol metrics (per-channel share counters, one-way delay
//! and inter-share-gap histograms, empirical `(κ, μ)`, reassembly
//! residency, pool hit rates) plus the global span registry (Shamir
//! kernel, event-queue, and scheduler timings) — as pretty JSON and
//! Prometheus text exposition.
//!
//! Run with:
//!
//! ```sh
//! MCSS_TELEMETRY=1 cargo run -p mcss --example mcss-obs-dump
//! ```
//!
//! The snapshot is also written to `METRICS_mcss_obs_dump.json` (in
//! `MCSS_BENCH_DIR` if set, else the current directory). Building the
//! workspace with `--no-default-features` compiles all of this to
//! no-ops: the dump still runs, and every section is empty.

use std::sync::Arc;

use mcss::model::setups;
use mcss::netsim::{SimTime, Simulator};
use mcss::obs;
use mcss::remicss::config::ProtocolConfig;
use mcss::remicss::session::{Session, Workload};
use mcss::remicss::testbed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `MCSS_TELEMETRY=1` is the usual opt-in for binaries; this example
    // exists to show the telemetry, so it opts in programmatically too.
    if !obs::runtime_enabled() {
        obs::force_enable();
        println!("(MCSS_TELEMETRY not set; enabling telemetry programmatically)\n");
    }

    // One second of protocol traffic at half the model-optimal rate over
    // the paper's Lossy setup, κ = 2, μ = 3.
    let channels = setups::lossy();
    let config = Arc::new(ProtocolConfig::new(2.0, 3.0)?);
    let network = testbed::network_for(&channels, &config);
    let rate = 0.5 * testbed::optimal_symbol_rate(&channels, &config)?;
    let horizon = SimTime::from_secs(1);
    let session = Session::new(
        Arc::clone(&config),
        channels.len(),
        Workload::cbr(rate, horizon),
    )?;
    let mut sim = Simulator::new(network, session, 42);
    sim.run_until(SimTime::from_secs(2));
    let report = sim.app().report(horizon);
    println!(
        "ran {} channels for 1 s: {} symbols delivered, loss {:.3}%\n",
        channels.len(),
        report.delivered_symbols,
        100.0 * report.loss_fraction
    );

    // Session metrics (protocol counters + histograms, pool and
    // reassembly counters) merged with the global span registry.
    let mut snapshot = sim.app().metrics_snapshot();
    snapshot.merge(obs::global_snapshot());

    let metrics = sim.app().metrics();
    println!(
        "empirical κ = {:.3}, μ = {:.3} over {} scheduler draws",
        metrics.empirical_kappa(),
        metrics.empirical_mu(),
        metrics.choices()
    );
    println!(
        "shares: {} sent, {} received, {} dropped at send queues",
        metrics.shares_sent_total(),
        metrics.shares_received_total(),
        metrics.shares_dropped_total()
    );

    println!("\n=== JSON ===");
    let json = serde_json::to_string_pretty(&snapshot)?;
    println!("{json}");

    println!("\n=== Prometheus text exposition ===");
    print!("{}", snapshot.to_prometheus());

    let dir = std::env::var("MCSS_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::PathBuf::from(dir).join("METRICS_mcss_obs_dump.json");
    std::fs::write(&path, json + "\n")?;
    println!("\nwrote {}", path.display());
    Ok(())
}
