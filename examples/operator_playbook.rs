//! The operator playbook: everything a deployment actually does, in
//! order — measure, explore, choose, run, verify.
//!
//! 1. **Calibrate**: probe each channel with iperf-style traffic to
//!    measure its rate, loss, and delay (you rarely know them).
//! 2. **Explore**: compute the tradeoff surface over `(κ, μ)` and keep
//!    the Pareto frontier.
//! 3. **Choose**: pick the frontier point that meets a policy — here,
//!    "risk below 2% and loss below 0.5%, then maximize rate".
//! 4. **Run**: drive the protocol with the §IV-D schedule at the chosen
//!    point.
//! 5. **Verify**: compare the measured rate/loss against predictions.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p mcss --release --example operator_playbook
//! ```

use mcss::model::pareto;
use mcss::netsim::{SimTime, Simulator};
use mcss::prelude::*;

const RISK_POLICY: f64 = 0.02;
const LOSS_POLICY: f64 = 5e-3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "unknown" network: the paper's Lossy setup with eavesdropping
    // risk 0.25 per channel (from some external risk assessment).
    let truth = setups::lossy();
    let risks = [0.25; 5];
    let config = ProtocolConfig::new(1.0, 1.0)?;

    // --- 1. Calibrate -------------------------------------------------
    println!("calibrating 5 channels with probe traffic...");
    let measured = testbed::calibrate(
        || testbed::network_for(&truth, &config),
        &risks,
        SimTime::from_secs(1),
        0x0b5e,
    )?;
    for (i, ch) in measured.iter().enumerate() {
        println!("  channel {i}: {ch}");
    }

    // --- 2. Explore ----------------------------------------------------
    let shares = {
        // Work in share-rate units for schedule math.
        let cfg = ProtocolConfig::new(1.0, 1.0)?;
        testbed::share_rate_channels(&measured, &cfg)?
    };
    let surface = pareto::surface(&shares, 0.5, 0.5)?;
    let frontier = pareto::pareto_front(&surface);
    println!(
        "\ntradeoff surface: {} points, Pareto frontier: {} points",
        surface.len(),
        frontier.len()
    );

    // --- 3. Choose -----------------------------------------------------
    let choice = frontier
        .iter()
        .filter(|p| p.risk <= RISK_POLICY && p.loss <= LOSS_POLICY)
        .max_by(|a, b| a.rate.total_cmp(&b.rate))
        .copied()
        .expect("policy satisfiable on this network");
    println!(
        "policy (risk <= {RISK_POLICY}, loss <= {LOSS_POLICY}) selects kappa = {}, mu = {}:",
        choice.kappa, choice.mu
    );
    println!(
        "  predicted rate {:.0} sym/s, risk {:.4}, loss {:.2e}, delay {:.2e}s",
        choice.rate, choice.risk, choice.loss, choice.delay
    );

    // --- 4. Run ----------------------------------------------------------
    let schedule = lp_schedule::optimal_schedule_at_max_rate(
        &shares,
        choice.kappa,
        choice.mu,
        Objective::Loss,
    )?;
    let run_config = ProtocolConfig::new(choice.kappa, choice.mu)?
        .with_scheduler(SchedulerKind::Static(std::sync::Arc::new(schedule)));
    let window = SimTime::from_secs(2);
    let offered = 0.95 * choice.rate;
    let session = Session::new(run_config.clone(), 5, Workload::cbr(offered, window))?;
    let mut sim = Simulator::new(testbed::network_for(&truth, &run_config), session, 99);
    sim.run_until(window + SimTime::from_secs(2));
    let report = sim.app().report(window);

    // --- 5. Verify -------------------------------------------------------
    println!(
        "\nran {} symbols through the real network:",
        report.sent_symbols
    );
    println!(
        "  achieved {:.0} sym/s (offered {offered:.0}), loss {:.2e}",
        report.achieved_symbol_rate, report.loss_fraction
    );
    assert!(
        report.achieved_symbol_rate > 0.9 * offered,
        "rate shortfall"
    );
    assert!(
        report.loss_fraction < 10.0 * LOSS_POLICY.max(1e-4),
        "loss policy violated: {}",
        report.loss_fraction
    );
    println!("  predictions held; policy satisfied end to end");
    Ok(())
}
