//! Monte-Carlo adversary: does the privacy measure predict reality?
//!
//! The model says a schedule `p` leaks a symbol with probability
//! `Z(p) = Σ p(k,M) · z(k,M)` against an adversary who observes each
//! channel `i` independently with probability `zᵢ`. This example *plays*
//! that game: it transmits a million symbols under several schedules,
//! simulates the adversary's taps share by share, counts how many
//! symbols the adversary could actually reconstruct (≥ k shares
//! observed), and compares the empirical rate to `Z(p)`.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p mcss --release --example adversary_game
//! ```

use mcss::prelude::*;
use rand::RngExt as _;
use rand::SeedableRng;

const TRIALS: u32 = 1_000_000;

fn empirical_risk(
    schedule: &ShareSchedule,
    channels: &ChannelSet,
    rng: &mut rand::rngs::StdRng,
) -> f64 {
    let mut compromised = 0u32;
    for _ in 0..TRIALS {
        let entry = schedule.sample(rng);
        let mut observed = 0u32;
        for i in entry.subset().iter() {
            if rng.random_bool(channels.channel(i).risk()) {
                observed += 1;
            }
        }
        if observed >= u32::from(entry.k()) {
            compromised += 1;
        }
    }
    f64::from(compromised) / f64::from(TRIALS)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five channels with varied eavesdropping risk (e.g. from a network
    // risk assessment): the Diverse rates with z = 0.05 .. 0.60.
    let risks = [0.6, 0.3, 0.05, 0.2, 0.4];
    let channels = setups::diverse_with_risk(&risks);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x6a3e);

    println!("adversary taps channels with z = {risks:?}");
    println!("{TRIALS} symbols per schedule\n");
    println!(
        "{:<34} {:>8} {:>8} {:>12} {:>12}",
        "schedule", "kappa", "mu", "model Z(p)", "empirical"
    );

    let mut scenarios: Vec<(String, ShareSchedule)> = vec![
        (
            "max rate (MPTCP-like striping)".into(),
            ShareSchedule::max_rate(&channels),
        ),
        (
            "max privacy p(n, C) = 1".into(),
            ShareSchedule::max_privacy(5),
        ),
        ("min loss p(1, C) = 1".into(), ShareSchedule::min_loss(5)),
    ];
    for (kappa, mu) in [(1.5, 2.5), (2.0, 3.0), (3.0, 4.0), (4.0, 5.0)] {
        let s =
            lp_schedule::optimal_schedule_at_max_rate(&channels, kappa, mu, Objective::Privacy)?;
        scenarios.push((format!("IV-D privacy-opt ({kappa}, {mu})"), s));
    }

    for (name, schedule) in &scenarios {
        let predicted = schedule.risk(&channels);
        let measured = empirical_risk(schedule, &channels, &mut rng);
        println!(
            "{name:<34} {:>8.2} {:>8.2} {predicted:>12.5} {measured:>12.5}",
            schedule.kappa(),
            schedule.mu(),
        );
        let tolerance = 3.0 * (predicted * (1.0 - predicted) / f64::from(TRIALS)).sqrt() + 1e-4;
        assert!(
            (measured - predicted).abs() <= tolerance,
            "model disagreed with the Monte-Carlo adversary: {measured} vs {predicted}"
        );
    }

    println!("\nall empirical rates within Monte-Carlo noise of the model's Z(p).");
    Ok(())
}
