//! Transfer a file over five lossy channels with zero retransmissions.
//!
//! A 1 MiB "file" is cut into symbols, each symbol is split into Shamir
//! shares with `κ = 2, μ = 4` (privacy: an adversary must tap two
//! channels; reliability: two share losses per symbol are tolerated),
//! and the shares travel over the paper's Lossy setup. The receiver
//! reassembles shares into symbols and symbols into the file, then the
//! transfer is verified bit for bit.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p mcss --release --example file_transfer
//! ```

use mcss::netsim::{Application, ChannelId, Context, Endpoint, Frame, SimTime, Simulator};
use mcss::prelude::*;
use mcss::remicss::reassembly::{Accept, ReassemblyTable};
use mcss::remicss::scheduler::{ChannelState, DynamicScheduler, Scheduler};
use mcss::remicss::wire::ShareFrame;
use mcss::shamir::stream::StreamSplitter;

const SYMBOL_BYTES: usize = 1024;
const KAPPA: f64 = 2.0;
const MU: f64 = 4.0;

struct FileSender {
    splitter: StreamSplitter,
    scheduler: DynamicScheduler,
    readiness: SimTime,
    tick: SimTime,
    done_sending: bool,
    symbols_sent: u64,
    share_drops: u64,
    receiver: FileReceiver,
}

struct FileReceiver {
    table: ReassemblyTable,
    symbols: std::collections::BTreeMap<u64, Vec<u8>>,
}

impl FileSender {
    fn send_next(&mut self, ctx: &mut Context<'_>) {
        // Pace the source off channel readiness: one symbol per tick.
        let Some(symbol) = self
            .splitter
            .next_symbol()
            .or_else(|| self.splitter.flush())
        else {
            self.done_sending = true;
            return;
        };
        let backlogs: Vec<SimTime> = (0..ctx.num_channels())
            .map(|i| ctx.backlog(i, Endpoint::A))
            .collect();
        let state = ChannelState::new(&backlogs, self.readiness);
        let choice = self.scheduler.choose(&state, ctx.rng());
        let m = choice.channels.len() as u8;
        let params = Params::new(choice.k, m).expect("scheduler keeps k <= m");
        let shares = split(symbol.data(), params, ctx.rng()).expect("split");
        for (share, &ch) in shares.iter().zip(&choice.channels) {
            let frame = ShareFrame::new(
                symbol.seq(),
                choice.k,
                m,
                share.x(),
                ctx.now().as_nanos(),
                share.data().to_vec(),
            )
            .expect("valid share frame");
            if ctx.send(ch, Endpoint::A, Frame::new(frame.encode()))
                == mcss::netsim::SendOutcome::Dropped
            {
                self.share_drops += 1;
            }
        }
        self.symbols_sent += 1;
    }
}

impl Application for FileSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimTime::ZERO, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        // One symbol per tick, paced at 80% of the Theorem 4 optimal
        // rate — the model tells us what the channels can absorb.
        if self.done_sending {
            return;
        }
        self.send_next(ctx);
        let next = ctx.now() + self.tick;
        ctx.set_timer(next, 0);
    }

    fn on_deliver(
        &mut self,
        ctx: &mut Context<'_>,
        _channel: ChannelId,
        to: Endpoint,
        frame: Frame,
    ) {
        if to != Endpoint::B {
            return;
        }
        let share = ShareFrame::decode(frame.payload()).expect("well-formed frame");
        if let Accept::Completed(payload) = self.receiver.table.accept(&share, ctx.now()) {
            self.receiver.symbols.insert(share.seq(), payload);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Deterministic pseudo-file.
    let file: Vec<u8> = (0..1_048_576u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect();
    println!(
        "transferring {} KiB over the Lossy setup (kappa={KAPPA}, mu={MU})",
        file.len() / 1024
    );

    let channels = setups::lossy();
    let config = ProtocolConfig::new(KAPPA, MU)?.with_symbol_bytes(SYMBOL_BYTES);
    let network = testbed::network_for(&channels, &config);

    let mut splitter = StreamSplitter::new(SYMBOL_BYTES);
    splitter.push(&file);

    // Pace at 80% of what the model says these channels sustain at μ = 4.
    let offered = 0.8 * testbed::optimal_symbol_rate(&channels, &config)?;
    let tick = SimTime::from_secs_f64(1.0 / offered);
    println!("model-informed pacing: {offered:.0} symbols/s");

    let app = FileSender {
        splitter,
        scheduler: DynamicScheduler::new(KAPPA, MU, channels.len())?,
        readiness: config.readiness_threshold(),
        tick,
        done_sending: false,
        symbols_sent: 0,
        share_drops: 0,
        receiver: FileReceiver {
            table: ReassemblyTable::new(SimTime::from_secs(2), 64 << 20),
            symbols: std::collections::BTreeMap::new(),
        },
    };

    let mut sim = Simulator::new(network, app, 2024);
    sim.run_until(SimTime::from_secs(60));

    let app = sim.app();
    let received: usize = app.receiver.symbols.values().map(Vec::len).sum();
    println!(
        "sent {} symbols; receiver reconstructed {} symbols ({} bytes) by t = {}",
        app.symbols_sent,
        app.receiver.symbols.len(),
        received,
        sim.now()
    );
    let stats = app.receiver.table.stats();
    println!(
        "reassembly: {} completed, {} timed out, {} stale shares, {} local drops",
        stats.completed, stats.timeout_evictions, stats.stale, app.share_drops
    );

    // Stitch the file back together and verify integrity.
    let mut rebuilt = Vec::with_capacity(file.len());
    for (expect, (seq, data)) in app.receiver.symbols.iter().enumerate() {
        assert_eq!(*seq, expect as u64, "missing symbol {expect}");
        rebuilt.extend_from_slice(data);
    }
    assert_eq!(rebuilt, file, "file corrupted in transit");
    println!("integrity check passed: transfer is bit-exact, zero retransmissions");

    // What the model says about this configuration:
    let share_channels = testbed::share_rate_channels(&channels, &config)?;
    let sched = mcss::model::micss::theorem5_schedule(channels.len(), KAPPA, MU)?;
    println!(
        "model: symbol loss without reassembly timeouts L(p) = {:.2e}, risk Z(p) = {:.4}",
        sched.loss(&share_channels),
        sched.risk(&share_channels),
    );
    Ok(())
}
