//! Reliable-enough file transfer without retransmission — over real
//! sockets.
//!
//! The paper's protocol is best-effort: no ACKs, no retransmits, just
//! enough share redundancy that symbol loss stays below target. This
//! example moves a 1 MiB file from host A to host B across four
//! loopback UDP channels through the sans-I/O [`UdpDriver`], with 30%
//! injected datagram loss on one channel the whole way. With
//! `(κ = 2, μ = 4)` each symbol needs any 2 of its ~4 shares, so a
//! single bad channel costs nothing: the file arrives bit-exact with
//! zero retransmissions.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p mcss-remicss --release --features udp --example file_transfer
//! ```

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::udp::UdpDriver;

const CHANNELS: usize = 4;
const SYMBOL_BYTES: usize = 1024;
const KAPPA: f64 = 2.0;
const MU: f64 = 4.0;
const LOSSY_CHANNEL: usize = 2;
const LOSS: f64 = 0.30;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Deterministic pseudo-file.
    let file: Vec<u8> = (0..1_048_576u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect();
    let symbols = file.len() / SYMBOL_BYTES;
    println!(
        "transferring {} KiB over {CHANNELS} UDP channels (kappa={KAPPA}, mu={MU}); \
         channel {LOSSY_CHANNEL} drops {:.0}% of its datagrams",
        file.len() / 1024,
        LOSS * 100.0
    );

    let config = ProtocolConfig::new(KAPPA, MU)?.with_symbol_bytes(SYMBOL_BYTES);
    let mut driver = UdpDriver::new(config, CHANNELS, 7)?;
    driver.set_loss(LOSSY_CHANNEL, LOSS);

    let mut received: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for chunk in file.chunks(SYMBOL_BYTES) {
        driver.send_symbol(chunk)?;
        driver.poll()?;
        while let Some((seq, payload)) = driver.next_symbol() {
            received.insert(seq, payload);
        }
    }
    // Let stragglers land: in-flight shares plus the reassembly sweep.
    let deadline = Instant::now() + Duration::from_secs(30);
    while received.len() < symbols && Instant::now() < deadline {
        driver.drive(Duration::from_millis(5))?;
        while let Some((seq, payload)) = driver.next_symbol() {
            received.insert(seq, payload);
        }
    }

    let report = driver.report(driver.now());
    println!(
        "sent {} symbols; receiver reconstructed {} ({} bytes)",
        report.sent_symbols,
        received.len(),
        received.values().map(Vec::len).sum::<usize>()
    );
    println!(
        "reassembly: {} completed, {} timed out, {} stale shares, {} local send drops",
        report.reassembly.completed,
        report.reassembly.timeout_evictions,
        report.reassembly.stale,
        report.send_queue_drops
    );

    // Stitch the file back together and verify integrity.
    let mut rebuilt = Vec::with_capacity(file.len());
    for (expect, (seq, data)) in received.iter().enumerate() {
        assert_eq!(*seq, expect as u64, "missing symbol {expect}");
        rebuilt.extend_from_slice(data);
    }
    assert_eq!(rebuilt, file, "file corrupted in transit");
    println!("integrity check passed: transfer is bit-exact, zero retransmissions");

    // What the model says: a symbol dies only if fewer than κ = 2 of its
    // shares survive. With m ≈ 4 shares on distinct channels and only
    // one channel at p = 0.3, at most one share per symbol is ever at
    // risk — symbol loss probability is exactly zero.
    println!(
        "model check: m - k = {:.0} spare shares per symbol masks any \
         single channel at p = {LOSS}",
        report.mean_m - report.mean_k
    );
    Ok(())
}
