//! Move a file across real UDP sockets with the sans-I/O engine.
//!
//! The exact protocol core the simulator exercises — scheduler, Shamir
//! split, reassembly, metrics — here drives four loopback UDP socket
//! pairs through [`UdpDriver`]. A 1 MiB pseudo-file is chopped into
//! 1024-byte symbols, each split `(κ = 2, μ = 3)` across the channels,
//! reconstructed on the receiving side, and verified bit-exact. The run
//! finishes by printing the engine's telemetry snapshot and writing it
//! to `METRICS_udp_transfer.json` for dashboards or CI artifacts.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p mcss-remicss --release --features udp --example udp_transfer
//! ```
//!
//! (Also builds with `--no-default-features --features udp,telemetry`:
//! the driver never touches the simulator.)

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::udp::UdpDriver;

const CHANNELS: usize = 4;
const SYMBOL_BYTES: usize = 1024;
const KAPPA: f64 = 2.0;
const MU: f64 = 3.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Deterministic pseudo-file.
    let file: Vec<u8> = (0..1_048_576u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect();
    let symbols = file.len() / SYMBOL_BYTES;
    println!(
        "transferring {} KiB over {CHANNELS} loopback UDP channels (kappa={KAPPA}, mu={MU})",
        file.len() / 1024
    );

    let config = ProtocolConfig::new(KAPPA, MU)?.with_symbol_bytes(SYMBOL_BYTES);
    let mut driver = UdpDriver::new(config, CHANNELS, 2024)?;

    let start = Instant::now();
    let mut received: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for chunk in file.chunks(SYMBOL_BYTES) {
        driver.send_symbol(chunk)?;
        // Drain sockets as we go so kernel buffers never overflow.
        driver.poll()?;
        while let Some((seq, payload)) = driver.next_symbol() {
            received.insert(seq, payload);
        }
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while received.len() < symbols && Instant::now() < deadline {
        driver.drive(Duration::from_millis(5))?;
        while let Some((seq, payload)) = driver.next_symbol() {
            received.insert(seq, payload);
        }
    }
    let elapsed = start.elapsed();

    // Stitch the file back together and verify integrity.
    let mut rebuilt = Vec::with_capacity(file.len());
    for (expect, (seq, data)) in received.iter().enumerate() {
        assert_eq!(*seq, expect as u64, "missing symbol {expect}");
        rebuilt.extend_from_slice(data);
    }
    assert_eq!(rebuilt, file, "file corrupted in transit");

    let report = driver.report(driver.now());
    println!(
        "reconstructed {}/{symbols} symbols in {elapsed:.2?} ({:.1} MiB/s)",
        received.len(),
        file.len() as f64 / (1 << 20) as f64 / elapsed.as_secs_f64()
    );
    println!(
        "sent {} symbols (mean k = {:.2}, mean m = {:.2}); \
         reassembly: {} completed, {} timed out, {} wire errors",
        report.sent_symbols,
        report.mean_k,
        report.mean_m,
        report.reassembly.completed,
        report.reassembly.timeout_evictions,
        report.wire_errors
    );
    println!("integrity check passed: transfer is bit-exact over real sockets");

    // Export the engine's telemetry snapshot: Prometheus text to stdout,
    // JSON to disk for CI artifact upload.
    let snapshot = driver.engine().metrics_snapshot();
    println!(
        "\ntelemetry snapshot ({} counters):",
        snapshot.counters.len()
    );
    print!("{}", snapshot.to_prometheus());
    let json = serde_json::to_string_pretty(&snapshot)?;
    std::fs::write("METRICS_udp_transfer.json", &json)?;
    println!("\nwrote METRICS_udp_transfer.json ({} bytes)", json.len());
    Ok(())
}
