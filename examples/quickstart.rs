//! Quickstart: secret sharing, the channel model, and optimal schedules
//! in one tour.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p mcss --example quickstart
//! ```

use mcss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Shamir secret sharing -------------------------------------
    // Split a secret into 5 shares, any 3 of which reconstruct it; an
    // adversary holding 2 learns nothing (information-theoretically).
    let secret = b"meet at the old bridge, midnight";
    let params = Params::new(3, 5)?;
    let mut rng = rand::rng();
    let shares = split(secret, params, &mut rng)?;
    println!(
        "split {} bytes into {} shares (threshold 3)",
        secret.len(),
        shares.len()
    );

    // Lose two shares and reconstruct from the remaining three.
    let recovered = reconstruct(&shares[2..])?;
    assert_eq!(recovered, secret);
    println!(
        "reconstructed from shares 3..5: {:?}",
        String::from_utf8_lossy(&recovered)
    );

    // --- 2. The channel model ------------------------------------------
    // The paper's Lossy testbed setup: five channels at 5..100 Mbit/s
    // with 0.5-3% loss. Each channel also carries an eavesdropping risk.
    let channels = setups::lossy();
    println!("\nchannel set ({} channels):", channels.len());
    for (i, ch) in channels.iter().enumerate() {
        println!("  channel {i}: {ch}");
    }

    // Fully optimized corner values (closed forms of sections IV-B/C):
    let env = optimal::envelope(&channels);
    println!("\noptimality envelope:");
    println!(
        "  best overall risk  Z_C = {:.3e} (kappa = mu = n)",
        env.risk
    );
    println!(
        "  best overall loss  L_C = {:.3e} (kappa = 1, mu = n)",
        env.loss
    );
    println!(
        "  best overall delay D_C = {:.3e} (kappa = 1, mu = n)",
        env.delay
    );
    println!(
        "  best overall rate  R_C = {:.1} shares/unit (kappa = mu = 1)",
        env.rate
    );

    // --- 3. Tradeoffs: optimal rate at a chosen multiplicity -----------
    let mu = 2.5;
    let rc = optimal::optimal_rate(&channels, mu)?;
    println!("\nat mu = {mu}: optimal rate {rc:.2} symbols/unit (Theorem 4)");
    println!(
        "full utilization possible up to mu = {:.3} (Theorem 2)",
        optimal::full_utilization_mu(&channels)
    );

    // --- 4. An optimal schedule that sustains that rate -----------------
    // The section IV-D linear program: minimize risk at (kappa, mu)
    // while transmitting at the optimal rate.
    let kappa = 2.0;
    let schedule =
        lp_schedule::optimal_schedule_at_max_rate(&channels, kappa, mu, Objective::Privacy)?;
    println!("\nprivacy-optimal max-rate schedule at kappa={kappa}, mu={mu}:");
    print!("{schedule}");
    println!(
        "schedule risk Z(p) = {:.4}, loss L(p) = {:.3e}, sustains {:.2} symbols/unit",
        schedule.risk(&channels),
        schedule.loss(&channels),
        schedule.max_symbol_rate(&channels),
    );

    Ok(())
}
