//! Runtime-dispatched vector kernels for the bulk GF(2⁸) slice ops.
//!
//! The [`slice`](crate::slice) functions — one Horner or Lagrange step
//! per coefficient plane — are the single hottest loop in the workspace:
//! every byte a ReMICSS session moves passes through them `k` (split)
//! or `k²` (reconstruct) times. This module is the **dispatch layer**
//! over the per-architecture kernels in `crate::arch`; each backend
//! implements the three slice ops plus a fused multi-plane Horner
//! kernel, byte-identically:
//!
//! * [`Backend::Scalar`] — two log/exp table hops per byte, the
//!   reference implementation.
//! * [`Backend::Table`] — one 256-entry multiplication-table hop per
//!   byte; the table lives in a caller-held [`MulTable`].
//! * [`Backend::Swar`] — portable 8-lane SWAR: eight bytes packed in a
//!   `u64`, multiplied by shift-and-add with a lane-parallel `xtime`.
//!   No per-byte table loads, works on every target.
//! * [`Backend::Simd`] — x86-64 split-nibble `pshufb`
//!   (`arch/x86.rs`): 16 (SSSE3) or 32 (AVX2) field products per
//!   shuffle pair.
//! * [`Backend::Neon`] — the same split-nibble algebra on aarch64
//!   `vqtbl1q_u8` (`arch/neon.rs`), 16 bytes per step.
//! * [`Backend::Avx512`] — 64-byte split-nibble via AVX-512 VBMI
//!   `vpermb` (`arch/x86_avx512.rs`).
//! * [`Backend::Gfni`] — native GF(2⁸) products via `gf2p8mulb`
//!   (`arch/x86_gfni.rs`) at 128/256/512-bit width; no nibble tables
//!   at all.
//!
//! Dispatch is **feature- and length-aware**. [`Backend::detect`] picks
//! the best available backend once per process
//! (`gfni → avx512 → simd` on x86-64, `neon` on aarch64, `table`
//! otherwise); per call, [`Backend::for_len`] routes lengths below the
//! selected backend's [`crossover`](Backend::crossover) to the `table`
//! path, because vector setup only pays for itself on long planes (the
//! `gf256_kernels` bench measures the crossover per backend and emits
//! it in `BENCH_gf256_kernels.json`). `MCSS_GF256_BACKEND`
//! (`scalar` | `table` | `swar` | `simd` | `neon` | `avx512` | `gfni`)
//! forces a specific path for testing and benchmarking — a *forced*
//! backend is used at every length, bypassing the crossover, so CI
//! legs exercise the forced kernels on short planes too. Forcing an
//! unavailable backend falls back to the best available one with a
//! warning on stderr, so a test matrix can set `MCSS_GF256_BACKEND`
//! unconditionally. `MCSS_GF256_CROSSOVER` (e.g. `simd=32,swar=max`)
//! overrides the compiled-in crossover lengths for recalibration.
//!
//! All per-multiplier state lives in the caller-owned [`MulTable`]
//! (288 bytes, plain `Copy` data, stack- or scratch-resident), so the
//! kernels perform **zero heap allocations** — a property the workspace
//! pins with a counting-allocator test.
//!
//! # Examples
//!
//! ```
//! use mcss_gf256::simd::{Backend, MulTable};
//! use mcss_gf256::Gf256;
//!
//! let t = MulTable::new(Gf256::new(0x53));
//! let mut dst = vec![1u8; 64];
//! let src = vec![0xaau8; 64];
//! // dst[i] ← dst[i]·0x53 ⊕ src[i], on the best backend for this host.
//! Backend::active().scale_add_assign(&mut dst, &src, &t);
//! assert_eq!(dst[0], (Gf256::new(1) * Gf256::new(0x53) + Gf256::new(0xaa)).value());
//! ```

use crate::arch::generic::{scalar, swar, table};
use crate::arch::xor_assign;
use crate::{Gf256, EXP, LOG};
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
use crate::arch::{x86 as simd_impl, x86_avx512 as avx512_impl, x86_gfni as gfni_impl};
// On the wrong architecture a directly-constructed vector variant
// (never returned by detection) degrades to the portable SWAR path
// rather than aborting, keeping the enum total without cfg variants.
#[cfg(not(target_arch = "x86_64"))]
use crate::arch::generic::{swar as avx512_impl, swar as gfni_impl, swar as simd_impl};

#[cfg(not(target_arch = "aarch64"))]
use crate::arch::generic::swar as neon_impl;
#[cfg(target_arch = "aarch64")]
use crate::arch::neon as neon_impl;

/// Precomputed multiplication tables for one fixed multiplier `x`.
///
/// Holds the full 256-entry row `b ↦ b·x` (used by the table backend
/// and for ragged tails) and the two 16-entry nibble tables
/// `LO[n] = n·x`, `HI[n] = (n << 4)·x` used by the split-nibble
/// shuffle paths (`b·x = LO[b & 0xf] ⊕ HI[b >> 4]`, by linearity of
/// the field over GF(2)). Building one costs ~256 table lookups;
/// callers working over large planes or several Horner steps with the
/// same `x` should build it once and reuse it (see
/// `mcss_shamir::batch`). The GFNI backend needs none of this state —
/// the multiplier byte itself is broadcast — but takes the same
/// argument so every backend shares one signature (and the row still
/// serves its sub-16-byte tail).
#[derive(Debug, Clone, Copy)]
pub struct MulTable {
    x: Gf256,
    pub(crate) row: [u8; 256],
    pub(crate) lo: [u8; 16],
    pub(crate) hi: [u8; 16],
}

impl MulTable {
    /// Builds the tables for multiplier `x` (any value, including 0
    /// and 1).
    #[must_use]
    pub fn new(x: Gf256) -> MulTable {
        let mut row = [0u8; 256];
        match x.value() {
            0 => {}
            1 => {
                for (b, r) in row.iter_mut().enumerate() {
                    *r = b as u8;
                }
            }
            v => {
                let log_x = LOG[v as usize] as usize;
                for b in 1..256 {
                    row[b] = EXP[LOG[b] as usize + log_x];
                }
            }
        }
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for n in 0..16 {
            lo[n] = row[n];
            hi[n] = row[n << 4];
        }
        MulTable { x, row, lo, hi }
    }

    /// The multiplier the tables were built for.
    #[inline]
    #[must_use]
    pub fn x(&self) -> Gf256 {
        self.x
    }

    /// Table-driven product `b · x`.
    #[inline]
    #[must_use]
    pub fn mul(&self, b: u8) -> u8 {
        self.row[b as usize]
    }
}

/// One implementation of the bulk GF(2⁸) kernels.
///
/// All backends produce byte-identical results for every input length
/// (pinned by differential property tests); they differ only in speed
/// and portability. [`Backend::active`] returns the process-wide
/// selection; [`Backend::for_len`] adds the per-call length routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Two log/exp lookups per byte — the reference path.
    Scalar,
    /// One 256-entry table lookup per byte.
    Table,
    /// Portable 8-bytes-per-`u64` SWAR shift-and-add.
    Swar,
    /// x86-64 split-nibble `pshufb` (AVX2 when available, else SSSE3).
    Simd,
    /// aarch64 split-nibble `vqtbl1q_u8`, 16 bytes per step.
    Neon,
    /// x86-64 AVX-512 VBMI `vpermb` split-nibble, 64 bytes per step.
    Avx512,
    /// x86-64 GFNI `gf2p8mulb` native field products (128/256/512-bit
    /// width, whichever the host offers).
    Gfni,
}

impl Backend {
    /// Every backend, in roughly slowest-first order (portable paths,
    /// then the vector paths by width/generation).
    pub const ALL: [Backend; 7] = [
        Backend::Scalar,
        Backend::Table,
        Backend::Swar,
        Backend::Simd,
        Backend::Neon,
        Backend::Avx512,
        Backend::Gfni,
    ];

    /// The backend's `MCSS_GF256_BACKEND` name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Table => "table",
            Backend::Swar => "swar",
            Backend::Simd => "simd",
            Backend::Neon => "neon",
            Backend::Avx512 => "avx512",
            Backend::Gfni => "gfni",
        }
    }

    /// Parses an `MCSS_GF256_BACKEND` name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Backend> {
        Backend::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Whether this backend can run on the current host.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar | Backend::Table | Backend::Swar => true,
            Backend::Simd => simd_available(),
            Backend::Neon => neon_available(),
            Backend::Avx512 => avx512_available(),
            Backend::Gfni => gfni_available(),
        }
    }

    /// The process-wide active backend: the `MCSS_GF256_BACKEND`
    /// override if set and available, else the fastest available path.
    /// Detected once and cached for the life of the process.
    ///
    /// This is the *bulk* selection; length-aware callers should use
    /// [`Backend::for_len`], which routes short planes to the `table`
    /// path unless the backend was forced.
    #[must_use]
    pub fn active() -> Backend {
        selection().backend
    }

    /// The backend the dispatch layer uses for a plane of `len` bytes:
    /// the active backend, except that lengths below its
    /// [`crossover`](Backend::crossover) route to [`Backend::Table`] —
    /// unless `MCSS_GF256_BACKEND` forced a backend, which is then used
    /// at every length (so forced test legs exercise the forced
    /// kernels on short planes too).
    #[must_use]
    pub fn for_len(len: usize) -> Backend {
        let sel = selection();
        if sel.forced {
            sel.backend
        } else {
            sel.backend.route(len)
        }
    }

    /// Length routing for auto-detected dispatch: `self` when `len` has
    /// reached this backend's [`crossover`](Backend::crossover),
    /// [`Backend::Table`] below it.
    #[must_use]
    pub fn route(self, len: usize) -> Backend {
        if len < self.crossover() {
            Backend::Table
        } else {
            self
        }
    }

    /// The smallest plane length at which this backend is worth
    /// dispatching to instead of the 256-entry `table` path, per the
    /// `gf256_kernels` calibration (`BENCH_gf256_kernels.json`,
    /// `crossover` section). `usize::MAX` means the bench never
    /// measured the backend ahead of `table` at any length — `swar`
    /// lands there on x86 hosts (0.52× scalar at 64 B, still behind
    /// `table` at 256 KiB) — so auto-dispatch never selects it.
    /// Override with `MCSS_GF256_CROSSOVER` (e.g. `simd=32,swar=max`)
    /// after recalibrating on a new host.
    #[must_use]
    pub fn crossover(self) -> usize {
        crossover_table()[self.index()]
    }

    fn index(self) -> usize {
        Backend::ALL
            .iter()
            .position(|b| *b == self)
            .expect("ALL contains every variant")
    }

    /// Compiled-in calibration defaults (see [`Backend::crossover`]).
    /// The vector backends run their own kernels from one vector width
    /// (16 bytes) up — below that their main loop is empty and they
    /// *are* the table path, minus a few setup instructions.
    const fn default_crossover(self) -> usize {
        match self {
            // Reference path: measured below `table` at every length.
            Backend::Scalar => usize::MAX,
            Backend::Table => 0,
            // BENCH_gf256_kernels.json: 0.52× scalar at 64 B and still
            // behind `table` at 256 KiB — never auto-dispatched.
            Backend::Swar => usize::MAX,
            Backend::Simd | Backend::Neon | Backend::Avx512 | Backend::Gfni => 16,
        }
    }

    fn detect() -> Selection {
        let best = [
            Backend::Gfni,
            Backend::Avx512,
            Backend::Simd,
            Backend::Neon,
            Backend::Table,
        ]
        .into_iter()
        .find(|b| b.is_available())
        .expect("table is always available");
        match std::env::var("MCSS_GF256_BACKEND") {
            Ok(name) => match Backend::from_name(&name) {
                Some(b) if b.is_available() => Selection {
                    backend: b,
                    forced: true,
                },
                Some(b) => {
                    eprintln!(
                        "[gf256] MCSS_GF256_BACKEND={} unavailable on this host; using {}",
                        b.name(),
                        best.name()
                    );
                    Selection {
                        backend: best,
                        forced: false,
                    }
                }
                None => {
                    eprintln!(
                        "[gf256] unknown MCSS_GF256_BACKEND={name:?} \
                         (expected scalar|table|swar|simd|neon|avx512|gfni); using {}",
                        best.name()
                    );
                    Selection {
                        backend: best,
                        forced: false,
                    }
                }
            },
            Err(_) => Selection {
                backend: best,
                forced: false,
            },
        }
    }

    /// `dst[i] ← dst[i] · x ⊕ src[i]` — one Horner step.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn scale_add_assign(self, dst: &mut [u8], src: &[u8], t: &MulTable) {
        assert_eq!(dst.len(), src.len(), "plane lengths must match");
        if t.x.is_zero() {
            dst.copy_from_slice(src);
            return;
        }
        if t.x == Gf256::ONE {
            xor_assign(dst, src);
            return;
        }
        match self {
            Backend::Scalar => scalar::scale_add(dst, src, t),
            Backend::Table => table::scale_add(dst, src, t),
            Backend::Swar => swar::scale_add(dst, src, t),
            Backend::Simd => simd_impl::scale_add(dst, src, t),
            Backend::Neon => neon_impl::scale_add(dst, src, t),
            Backend::Avx512 => avx512_impl::scale_add(dst, src, t),
            Backend::Gfni => gfni_impl::scale_add(dst, src, t),
        }
    }

    /// `dst[i] ← dst[i] ⊕ src[i] · x` — one Lagrange accumulation step.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn add_scaled_assign(self, dst: &mut [u8], src: &[u8], t: &MulTable) {
        assert_eq!(dst.len(), src.len(), "plane lengths must match");
        if t.x.is_zero() {
            return;
        }
        if t.x == Gf256::ONE {
            xor_assign(dst, src);
            return;
        }
        match self {
            Backend::Scalar => scalar::add_scaled(dst, src, t),
            Backend::Table => table::add_scaled(dst, src, t),
            Backend::Swar => swar::add_scaled(dst, src, t),
            Backend::Simd => simd_impl::add_scaled(dst, src, t),
            Backend::Neon => neon_impl::add_scaled(dst, src, t),
            Backend::Avx512 => avx512_impl::add_scaled(dst, src, t),
            Backend::Gfni => gfni_impl::add_scaled(dst, src, t),
        }
    }

    /// `dst[i] ← dst[i] · x` for every `i`.
    pub fn scale_assign(self, dst: &mut [u8], t: &MulTable) {
        if t.x.is_zero() {
            dst.fill(0);
            return;
        }
        if t.x == Gf256::ONE {
            return;
        }
        match self {
            Backend::Scalar => scalar::scale(dst, t),
            Backend::Table => table::scale(dst, t),
            Backend::Swar => swar::scale(dst, t),
            Backend::Simd => simd_impl::scale(dst, t),
            Backend::Neon => neon_impl::scale(dst, t),
            Backend::Avx512 => avx512_impl::scale(dst, t),
            Backend::Gfni => gfni_impl::scale(dst, t),
        }
    }

    /// Fused multi-plane Horner evaluation: overwrites `acc` with
    /// `Σᵢ planes[i] · x^(n−1−i)` (planes ordered highest coefficient
    /// first), i.e. the fold `a ← a·x ⊕ planes[i]` starting from zero.
    ///
    /// Equivalent to zeroing `acc` and applying
    /// [`scale_add_assign`](Backend::scale_add_assign) once per plane,
    /// but the accumulator chunk stays in registers across all planes —
    /// one load per plane chunk and one store per `acc` chunk instead
    /// of a round trip through `acc` per plane. `acc`'s prior contents
    /// are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any plane's length differs from `acc`'s.
    pub fn horner_into(self, acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
        for p in planes {
            assert_eq!(acc.len(), p.len(), "plane lengths must match");
        }
        let Some(last) = planes.last() else {
            acc.fill(0);
            return;
        };
        if t.x.is_zero() {
            // a·0 ⊕ p discards everything but the final plane.
            acc.copy_from_slice(last);
            return;
        }
        if t.x == Gf256::ONE {
            acc.copy_from_slice(planes[0]);
            for p in &planes[1..] {
                xor_assign(acc, p);
            }
            return;
        }
        match self {
            Backend::Scalar => scalar::horner(acc, planes, t),
            Backend::Table => table::horner(acc, planes, t),
            Backend::Swar => swar::horner(acc, planes, t),
            Backend::Simd => simd_impl::horner(acc, planes, t),
            Backend::Neon => neon_impl::horner(acc, planes, t),
            Backend::Avx512 => avx512_impl::horner(acc, planes, t),
            Backend::Gfni => gfni_impl::horner(acc, planes, t),
        }
    }
}

/// The cached process-wide backend choice.
#[derive(Debug, Clone, Copy)]
struct Selection {
    backend: Backend,
    /// Whether `MCSS_GF256_BACKEND` forced the choice — a forced
    /// backend bypasses the length crossover.
    forced: bool,
}

fn selection() -> Selection {
    static SELECTION: OnceLock<Selection> = OnceLock::new();
    *SELECTION.get_or_init(Backend::detect)
}

/// The per-backend crossover lengths, compiled-in defaults overlaid
/// with any `MCSS_GF256_CROSSOVER` entries, parsed once.
fn crossover_table() -> &'static [usize; Backend::ALL.len()] {
    static TABLE: OnceLock<[usize; Backend::ALL.len()]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0usize; Backend::ALL.len()];
        for (slot, b) in table.iter_mut().zip(Backend::ALL) {
            *slot = b.default_crossover();
        }
        let Ok(spec) = std::env::var("MCSS_GF256_CROSSOVER") else {
            return table;
        };
        for entry in spec.split(',').filter(|e| !e.is_empty()) {
            let Some((name, value)) = entry.split_once('=') else {
                eprintln!("[gf256] malformed MCSS_GF256_CROSSOVER entry {entry:?} (want name=len)");
                continue;
            };
            let Some(backend) = Backend::from_name(name.trim()) else {
                eprintln!("[gf256] unknown backend in MCSS_GF256_CROSSOVER: {name:?}");
                continue;
            };
            let value = value.trim();
            let len = if value == "max" || value == "never" {
                Some(usize::MAX)
            } else {
                value.parse::<usize>().ok()
            };
            match len {
                Some(len) => table[backend.index()] = len,
                None => eprintln!(
                    "[gf256] bad MCSS_GF256_CROSSOVER length {value:?} (want an integer or `max`)"
                ),
            }
        }
        table
    })
}

fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        crate::arch::x86::level().is_some()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        crate::arch::x86_avx512::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn gfni_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        crate::arch::x86_gfni::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn neon_available() -> bool {
    #[cfg(target_arch = "aarch64")]
    {
        crate::arch::neon::available()
    }
    #[cfg(not(target_arch = "aarch64"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_table_matches_field_multiplication() {
        for x in [0u8, 1, 2, 3, 0x53, 0x8e, 0xff] {
            let t = MulTable::new(Gf256::new(x));
            for b in 0..=255u8 {
                assert_eq!(
                    t.mul(b),
                    (Gf256::new(b) * Gf256::new(x)).value(),
                    "x={x} b={b}"
                );
            }
            // Nibble decomposition: b·x == LO[b&0xf] ⊕ HI[b>>4].
            for b in 0..=255u8 {
                assert_eq!(
                    t.mul(b),
                    t.lo[(b & 0xf) as usize] ^ t.hi[(b >> 4) as usize],
                    "x={x} b={b}"
                );
            }
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("avx9000"), None);
    }

    #[test]
    fn active_backend_is_available() {
        assert!(Backend::active().is_available());
    }

    #[test]
    fn portable_backends_always_available() {
        assert!(Backend::Scalar.is_available());
        assert!(Backend::Table.is_available());
        assert!(Backend::Swar.is_available());
    }

    /// The dispatch pin for the small-length regression: `swar`
    /// measures 0.52× scalar at 64 B (and below `table` at every
    /// measured length), so auto-dispatch must route it — and every
    /// backend's sub-crossover lengths — to `table`.
    #[test]
    fn crossover_routes_small_lengths_to_table() {
        // The regression from BENCH_gf256_kernels.json: swar at 64 B.
        assert_eq!(Backend::Swar.route(64), Backend::Table);
        // ... and swar never measured ahead of table at any length.
        assert_eq!(Backend::Swar.route(1 << 20), Backend::Table);
        assert_eq!(Backend::Scalar.route(1 << 20), Backend::Table);
        // Vector backends: table below one vector width, themselves
        // from the crossover up.
        for b in [Backend::Simd, Backend::Neon, Backend::Avx512, Backend::Gfni] {
            assert_eq!(b.route(0), Backend::Table, "{}", b.name());
            assert_eq!(b.route(15), Backend::Table, "{}", b.name());
            assert_eq!(b.route(16), b, "{}", b.name());
            assert_eq!(b.route(1024), b, "{}", b.name());
        }
        // Table routes to itself everywhere.
        assert_eq!(Backend::Table.route(0), Backend::Table);
        assert_eq!(Backend::Table.route(1 << 20), Backend::Table);
    }

    /// `for_len` honors the crossover when the backend was
    /// auto-detected and bypasses it when forced via the environment —
    /// whichever mode this test process runs in, the contract holds.
    #[test]
    fn for_len_respects_selection_mode() {
        let forced = std::env::var("MCSS_GF256_BACKEND")
            .ok()
            .and_then(|n| Backend::from_name(&n))
            .is_some_and(Backend::is_available);
        let active = Backend::active();
        if forced {
            assert_eq!(Backend::for_len(1), active);
            assert_eq!(Backend::for_len(1 << 20), active);
        } else {
            assert_eq!(Backend::for_len(1), active.route(1));
            assert_eq!(Backend::for_len(1 << 20), active.route(1 << 20));
        }
    }

    #[test]
    fn auto_detection_never_picks_a_sub_table_backend() {
        // The detection preference list only contains backends whose
        // crossover is finite (i.e. the bench measured them ahead of
        // table somewhere); swar and scalar must not appear.
        let forced = std::env::var("MCSS_GF256_BACKEND")
            .ok()
            .and_then(|n| Backend::from_name(&n))
            .is_some_and(Backend::is_available);
        if !forced {
            let active = Backend::active();
            assert_ne!(active, Backend::Swar);
            assert_ne!(active, Backend::Scalar);
        }
    }

    #[test]
    fn backends_agree_on_fixed_vectors() {
        // Cheap smoke check; the exhaustive differential coverage lives
        // in tests/backend_diff.rs.
        let dst0: Vec<u8> = (0..777).map(|i| (i * 31 + 7) as u8).collect();
        let src: Vec<u8> = (0..777).map(|i| (i * 13 + 1) as u8).collect();
        for x in [0u8, 1, 2, 0x53, 0xff] {
            let t = MulTable::new(Gf256::new(x));
            let mut want = dst0.clone();
            Backend::Scalar.scale_add_assign(&mut want, &src, &t);
            for b in Backend::ALL {
                if !b.is_available() {
                    continue;
                }
                let mut got = dst0.clone();
                b.scale_add_assign(&mut got, &src, &t);
                assert_eq!(got, want, "backend {} x={x}", b.name());
            }
        }
    }

    #[test]
    fn horner_matches_unfused_steps() {
        let planes: Vec<Vec<u8>> = (0..4)
            .map(|p| (0..333).map(|i| (i * 7 + p * 11 + 3) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = planes.iter().map(Vec::as_slice).collect();
        for x in [0u8, 1, 2, 0x53] {
            let t = MulTable::new(Gf256::new(x));
            let mut want = vec![0u8; 333];
            for p in &refs {
                let mut stepped = want.clone();
                Backend::Scalar.scale_add_assign(&mut stepped, p, &t);
                want = stepped;
            }
            for b in Backend::ALL {
                if !b.is_available() {
                    continue;
                }
                let mut got = vec![0xeeu8; 333]; // prior contents ignored
                b.horner_into(&mut got, &refs, &t);
                assert_eq!(got, want, "backend {} x={x}", b.name());
            }
        }
    }

    #[test]
    fn horner_empty_planes_zeroes_acc() {
        let t = MulTable::new(Gf256::new(7));
        for b in Backend::ALL {
            if !b.is_available() {
                continue;
            }
            let mut acc = vec![0xffu8; 40];
            b.horner_into(&mut acc, &[], &t);
            assert_eq!(acc, vec![0u8; 40], "backend {}", b.name());
        }
    }
}
