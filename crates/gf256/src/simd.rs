//! Runtime-dispatched vector kernels for the bulk GF(2⁸) slice ops.
//!
//! The [`slice`](crate::slice) functions — one Horner or Lagrange step
//! per coefficient plane — are the single hottest loop in the workspace:
//! every byte a ReMICSS session moves passes through them `k` (split)
//! or `k²` (reconstruct) times. This module provides four byte-identical
//! implementations of the three slice ops plus a fused multi-plane
//! Horner kernel, selected once per process:
//!
//! * [`Backend::Scalar`] — two log/exp table hops per byte, the
//!   reference implementation.
//! * [`Backend::Table`] — one 256-entry multiplication-table hop per
//!   byte; the table lives in a caller-held [`MulTable`].
//! * [`Backend::Swar`] — portable 8-lane SWAR: eight bytes packed in a
//!   `u64`, multiplied by shift-and-add with a lane-parallel `xtime`
//!   (conditional 0x1b reduction via mask arithmetic). No per-byte
//!   table loads, works on every target.
//! * [`Backend::Simd`] — x86_64 split-nibble `pshufb`: the product
//!   `b · x` is `LO[b & 0xf] ⊕ HI[b >> 4]` where `LO`/`HI` are 16-entry
//!   tables for the fixed multiplier `x`, so one `_mm_shuffle_epi8`
//!   (SSSE3, 16 bytes/step) or `_mm256_shuffle_epi8` (AVX2, 32
//!   bytes/step) performs 16/32 field multiplications. Ragged tails
//!   fall back to the 256-entry table row, so any length (and any
//!   alignment — all loads/stores are unaligned) is handled.
//!
//! The active backend is chosen once, on first use, via
//! `is_x86_feature_detected!` and cached; `MCSS_GF256_BACKEND`
//! (`scalar` | `table` | `swar` | `simd`) forces a specific path for
//! testing and benchmarking. Forcing an unavailable backend falls back
//! to the best available one with a warning on stderr, so a test matrix
//! can set `MCSS_GF256_BACKEND=simd` unconditionally.
//!
//! All per-multiplier state lives in the caller-owned [`MulTable`]
//! (288 bytes, plain `Copy` data, stack- or scratch-resident), so the
//! kernels perform **zero heap allocations** — a property the workspace
//! pins with a counting-allocator test.
//!
//! # Examples
//!
//! ```
//! use mcss_gf256::simd::{Backend, MulTable};
//! use mcss_gf256::Gf256;
//!
//! let t = MulTable::new(Gf256::new(0x53));
//! let mut dst = vec![1u8; 64];
//! let src = vec![0xaau8; 64];
//! // dst[i] ← dst[i]·0x53 ⊕ src[i], on the best backend for this host.
//! Backend::active().scale_add_assign(&mut dst, &src, &t);
//! assert_eq!(dst[0], (Gf256::new(1) * Gf256::new(0x53) + Gf256::new(0xaa)).value());
//! ```

use crate::{Gf256, EXP, LOG};
use std::sync::OnceLock;

/// Precomputed multiplication tables for one fixed multiplier `x`.
///
/// Holds the full 256-entry row `b ↦ b·x` (used by the table backend
/// and for ragged tails) and the two 16-entry nibble tables
/// `LO[n] = n·x`, `HI[n] = (n << 4)·x` used by the `pshufb` path
/// (`b·x = LO[b & 0xf] ⊕ HI[b >> 4]`, by linearity of the field over
/// GF(2)). Building one costs ~256 table lookups; callers working over
/// large planes or several Horner steps with the same `x` should build
/// it once and reuse it (see `mcss_shamir::batch`).
#[derive(Debug, Clone, Copy)]
pub struct MulTable {
    x: Gf256,
    row: [u8; 256],
    lo: [u8; 16],
    hi: [u8; 16],
}

impl MulTable {
    /// Builds the tables for multiplier `x` (any value, including 0
    /// and 1).
    #[must_use]
    pub fn new(x: Gf256) -> MulTable {
        let mut row = [0u8; 256];
        match x.value() {
            0 => {}
            1 => {
                for (b, r) in row.iter_mut().enumerate() {
                    *r = b as u8;
                }
            }
            v => {
                let log_x = LOG[v as usize] as usize;
                for b in 1..256 {
                    row[b] = EXP[LOG[b] as usize + log_x];
                }
            }
        }
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for n in 0..16 {
            lo[n] = row[n];
            hi[n] = row[n << 4];
        }
        MulTable { x, row, lo, hi }
    }

    /// The multiplier the tables were built for.
    #[inline]
    #[must_use]
    pub fn x(&self) -> Gf256 {
        self.x
    }

    /// Table-driven product `b · x`.
    #[inline]
    #[must_use]
    pub fn mul(&self, b: u8) -> u8 {
        self.row[b as usize]
    }
}

/// One implementation of the bulk GF(2⁸) kernels.
///
/// All backends produce byte-identical results for every input length
/// (pinned by differential property tests); they differ only in speed
/// and portability. [`Backend::active`] returns the process-wide
/// selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Two log/exp lookups per byte — the reference path.
    Scalar,
    /// One 256-entry table lookup per byte.
    Table,
    /// Portable 8-bytes-per-`u64` SWAR shift-and-add.
    Swar,
    /// x86_64 split-nibble `pshufb` (AVX2 when available, else SSSE3).
    Simd,
}

impl Backend {
    /// Every backend, in `scalar → simd` order (slowest first).
    pub const ALL: [Backend; 4] = [
        Backend::Scalar,
        Backend::Table,
        Backend::Swar,
        Backend::Simd,
    ];

    /// The backend's `MCSS_GF256_BACKEND` name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Table => "table",
            Backend::Swar => "swar",
            Backend::Simd => "simd",
        }
    }

    /// Parses an `MCSS_GF256_BACKEND` name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Backend> {
        Backend::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Whether this backend can run on the current host.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar | Backend::Table | Backend::Swar => true,
            Backend::Simd => simd_level().is_some(),
        }
    }

    /// The process-wide active backend: the `MCSS_GF256_BACKEND`
    /// override if set and available, else the fastest available path.
    /// Detected once and cached for the life of the process.
    #[must_use]
    pub fn active() -> Backend {
        static ACTIVE: OnceLock<Backend> = OnceLock::new();
        *ACTIVE.get_or_init(Backend::detect)
    }

    fn detect() -> Backend {
        let best = if Backend::Simd.is_available() {
            Backend::Simd
        } else {
            Backend::Swar
        };
        match std::env::var("MCSS_GF256_BACKEND") {
            Ok(name) => match Backend::from_name(&name) {
                Some(b) if b.is_available() => b,
                Some(b) => {
                    eprintln!(
                        "[gf256] MCSS_GF256_BACKEND={} unavailable on this host; using {}",
                        b.name(),
                        best.name()
                    );
                    best
                }
                None => {
                    eprintln!(
                        "[gf256] unknown MCSS_GF256_BACKEND={name:?} \
                         (expected scalar|table|swar|simd); using {}",
                        best.name()
                    );
                    best
                }
            },
            Err(_) => best,
        }
    }

    /// `dst[i] ← dst[i] · x ⊕ src[i]` — one Horner step.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn scale_add_assign(self, dst: &mut [u8], src: &[u8], t: &MulTable) {
        assert_eq!(dst.len(), src.len(), "plane lengths must match");
        if t.x.is_zero() {
            dst.copy_from_slice(src);
            return;
        }
        if t.x == Gf256::ONE {
            xor_assign(dst, src);
            return;
        }
        match self {
            Backend::Scalar => scalar::scale_add(dst, src, t),
            Backend::Table => table::scale_add(dst, src, t),
            Backend::Swar => swar::scale_add(dst, src, t),
            Backend::Simd => simd_scale_add(dst, src, t),
        }
    }

    /// `dst[i] ← dst[i] ⊕ src[i] · x` — one Lagrange accumulation step.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn add_scaled_assign(self, dst: &mut [u8], src: &[u8], t: &MulTable) {
        assert_eq!(dst.len(), src.len(), "plane lengths must match");
        if t.x.is_zero() {
            return;
        }
        if t.x == Gf256::ONE {
            xor_assign(dst, src);
            return;
        }
        match self {
            Backend::Scalar => scalar::add_scaled(dst, src, t),
            Backend::Table => table::add_scaled(dst, src, t),
            Backend::Swar => swar::add_scaled(dst, src, t),
            Backend::Simd => simd_add_scaled(dst, src, t),
        }
    }

    /// `dst[i] ← dst[i] · x` for every `i`.
    pub fn scale_assign(self, dst: &mut [u8], t: &MulTable) {
        if t.x.is_zero() {
            dst.fill(0);
            return;
        }
        if t.x == Gf256::ONE {
            return;
        }
        match self {
            Backend::Scalar => scalar::scale(dst, t),
            Backend::Table => table::scale(dst, t),
            Backend::Swar => swar::scale(dst, t),
            Backend::Simd => simd_scale(dst, t),
        }
    }

    /// Fused multi-plane Horner evaluation: overwrites `acc` with
    /// `Σᵢ planes[i] · x^(n−1−i)` (planes ordered highest coefficient
    /// first), i.e. the fold `a ← a·x ⊕ planes[i]` starting from zero.
    ///
    /// Equivalent to zeroing `acc` and applying
    /// [`scale_add_assign`](Backend::scale_add_assign) once per plane,
    /// but the accumulator chunk stays in registers across all planes —
    /// one load per plane chunk and one store per `acc` chunk instead
    /// of a round trip through `acc` per plane. `acc`'s prior contents
    /// are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any plane's length differs from `acc`'s.
    pub fn horner_into(self, acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
        for p in planes {
            assert_eq!(acc.len(), p.len(), "plane lengths must match");
        }
        let Some(last) = planes.last() else {
            acc.fill(0);
            return;
        };
        if t.x.is_zero() {
            // a·0 ⊕ p discards everything but the final plane.
            acc.copy_from_slice(last);
            return;
        }
        if t.x == Gf256::ONE {
            acc.copy_from_slice(planes[0]);
            for p in &planes[1..] {
                xor_assign(acc, p);
            }
            return;
        }
        match self {
            Backend::Scalar => scalar::horner(acc, planes, t),
            Backend::Table => table::horner(acc, planes, t),
            Backend::Swar => swar::horner(acc, planes, t),
            Backend::Simd => simd_horner(acc, planes, t),
        }
    }
}

/// Shared `x = 1` path: plain XOR, which LLVM auto-vectorizes.
#[inline]
fn xor_assign(dst: &mut [u8], src: &[u8]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Reference kernels: two log/exp hops per byte, zero checks inline.
mod scalar {
    use super::MulTable;
    use crate::{EXP, LOG};

    #[inline]
    fn mul(b: u8, log_x: usize) -> u8 {
        if b == 0 {
            0
        } else {
            EXP[LOG[b as usize] as usize + log_x]
        }
    }

    pub fn scale_add(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let log_x = LOG[t.x().value() as usize] as usize;
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = mul(*d, log_x) ^ s;
        }
    }

    pub fn add_scaled(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let log_x = LOG[t.x().value() as usize] as usize;
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= mul(s, log_x);
        }
    }

    pub fn scale(dst: &mut [u8], t: &MulTable) {
        let log_x = LOG[t.x().value() as usize] as usize;
        for d in dst.iter_mut() {
            *d = mul(*d, log_x);
        }
    }

    pub fn horner(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
        let log_x = LOG[t.x().value() as usize] as usize;
        for (i, a) in acc.iter_mut().enumerate() {
            let mut v = 0u8;
            for p in planes {
                v = mul(v, log_x) ^ p[i];
            }
            *a = v;
        }
    }
}

/// One 256-entry table hop per byte, table provided by the caller.
mod table {
    use super::MulTable;

    pub fn scale_add(dst: &mut [u8], src: &[u8], t: &MulTable) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = t.row[*d as usize] ^ s;
        }
    }

    pub fn add_scaled(dst: &mut [u8], src: &[u8], t: &MulTable) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= t.row[s as usize];
        }
    }

    pub fn scale(dst: &mut [u8], t: &MulTable) {
        for d in dst.iter_mut() {
            *d = t.row[*d as usize];
        }
    }

    pub fn horner(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
        for (i, a) in acc.iter_mut().enumerate() {
            let mut v = 0u8;
            for p in planes {
                v = t.row[v as usize] ^ p[i];
            }
            *a = v;
        }
    }
}

/// Portable 8-lane SWAR kernels: eight bytes per `u64`, multiplied by
/// shift-and-add over the bits of `x` with a lane-parallel `xtime`.
mod swar {
    use super::MulTable;

    const HIGH_BITS: u64 = 0x8080_8080_8080_8080;
    const LOW_SEVEN: u64 = 0x7f7f_7f7f_7f7f_7f7f;

    /// Multiplies all eight byte lanes of `v` by the scalar `x`:
    /// `acc ⊕= v` for each set bit of `x`, doubling `v` between bits.
    /// `xtime` doubles every lane at once — shift the low seven bits
    /// left, then XOR 0x1b into exactly the lanes whose top bit was
    /// set (`(hi >> 7) * 0x1b` spreads 0x1b into those lanes without
    /// cross-lane carries, since lanes are 8 bits apart).
    #[inline]
    fn mul_word(mut v: u64, mut x: u8) -> u64 {
        let mut acc = 0u64;
        while x != 0 {
            if x & 1 != 0 {
                acc ^= v;
            }
            let hi = v & HIGH_BITS;
            v = ((v & LOW_SEVEN) << 1) ^ ((hi >> 7) * 0x1b);
            x >>= 1;
        }
        acc
    }

    #[inline]
    fn load(bytes: &[u8]) -> u64 {
        u64::from_ne_bytes(bytes.try_into().expect("8-byte chunk"))
    }

    pub fn scale_add(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let x = t.x().value();
        let main = dst.len() & !7;
        for (dc, sc) in dst[..main]
            .chunks_exact_mut(8)
            .zip(src[..main].chunks_exact(8))
        {
            let v = mul_word(load(dc), x) ^ load(sc);
            dc.copy_from_slice(&v.to_ne_bytes());
        }
        for (d, &s) in dst[main..].iter_mut().zip(&src[main..]) {
            *d = t.row[*d as usize] ^ s;
        }
    }

    pub fn add_scaled(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let x = t.x().value();
        let main = dst.len() & !7;
        for (dc, sc) in dst[..main]
            .chunks_exact_mut(8)
            .zip(src[..main].chunks_exact(8))
        {
            let v = load(dc) ^ mul_word(load(sc), x);
            dc.copy_from_slice(&v.to_ne_bytes());
        }
        for (d, &s) in dst[main..].iter_mut().zip(&src[main..]) {
            *d ^= t.row[s as usize];
        }
    }

    pub fn scale(dst: &mut [u8], t: &MulTable) {
        let x = t.x().value();
        let main = dst.len() & !7;
        for dc in dst[..main].chunks_exact_mut(8) {
            let v = mul_word(load(dc), x);
            dc.copy_from_slice(&v.to_ne_bytes());
        }
        for d in dst[main..].iter_mut() {
            *d = t.row[*d as usize];
        }
    }

    pub fn horner(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
        let x = t.x().value();
        let main = acc.len() & !7;
        let mut off = 0;
        for ac in acc[..main].chunks_exact_mut(8) {
            let mut v = 0u64;
            for p in planes {
                v = mul_word(v, x) ^ load(&p[off..off + 8]);
            }
            ac.copy_from_slice(&v.to_ne_bytes());
            off += 8;
        }
        for (i, a) in acc.iter_mut().enumerate().skip(main) {
            let mut v = 0u8;
            for p in planes {
                v = t.row[v as usize] ^ p[i];
            }
            *a = v;
        }
    }
}

/// The x86 vector width the `Simd` backend runs at on this host.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimdLevel {
    Ssse3,
    Avx2,
}

/// Detects (once) whether the host supports the `pshufb` path, and at
/// which width. `None` means [`Backend::Simd`] is unavailable.
#[cfg(target_arch = "x86_64")]
fn simd_level() -> Option<SimdLevel> {
    static LEVEL: OnceLock<Option<SimdLevel>> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if is_x86_feature_detected!("avx2") {
            Some(SimdLevel::Avx2)
        } else if is_x86_feature_detected!("ssse3") {
            Some(SimdLevel::Ssse3)
        } else {
            None
        }
    })
}

#[cfg(not(target_arch = "x86_64"))]
fn simd_level() -> Option<std::convert::Infallible> {
    None
}

// On non-x86_64 targets Backend::Simd is never available; a direct call
// (only reachable by constructing the variant explicitly) degrades to
// the portable SWAR path rather than aborting.
#[cfg(not(target_arch = "x86_64"))]
use swar::{
    add_scaled as simd_add_scaled, horner as simd_horner, scale as simd_scale,
    scale_add as simd_scale_add,
};

#[cfg(target_arch = "x86_64")]
use x86::{simd_add_scaled, simd_horner, simd_scale, simd_scale_add};

/// Split-nibble `pshufb` kernels. Every load and store is unaligned
/// (`loadu`/`storeu`), so slice alignment never matters; lengths that
/// are not a multiple of the vector width finish on the table row.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{simd_level, table, MulTable, SimdLevel};
    use core::arch::x86_64::{
        __m128i, __m256i, _mm256_and_si256, _mm256_broadcastsi128_si256, _mm256_loadu_si256,
        _mm256_set1_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi64,
        _mm256_storeu_si256, _mm256_xor_si256, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8,
        _mm_setzero_si128, _mm_shuffle_epi8, _mm_srli_epi64, _mm_storeu_si128, _mm_xor_si128,
    };

    /// The nibble tables as 128-bit lanes plus the low-nibble mask.
    ///
    /// # Safety
    ///
    /// Requires SSSE3 (guaranteed by the callers' `target_feature`).
    #[inline]
    unsafe fn tables128(t: &MulTable) -> (__m128i, __m128i, __m128i) {
        let lo = unsafe { _mm_loadu_si128(t.lo.as_ptr().cast()) };
        let hi = unsafe { _mm_loadu_si128(t.hi.as_ptr().cast()) };
        (lo, hi, _mm_set1_epi8(0x0f))
    }

    /// 16 field products at once: `LO[v & 0xf] ⊕ HI[v >> 4]`.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn mul128(v: __m128i, lo: __m128i, hi: __m128i, mask: __m128i) -> __m128i {
        let lo_n = _mm_and_si128(v, mask);
        let hi_n = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
        _mm_xor_si128(_mm_shuffle_epi8(lo, lo_n), _mm_shuffle_epi8(hi, hi_n))
    }

    /// 32 field products at once (both 128-bit lanes use the same
    /// broadcast tables — `vpshufb` shuffles within lanes, which is
    /// exactly what the 16-entry tables need).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul256(v: __m256i, lo: __m256i, hi: __m256i, mask: __m256i) -> __m256i {
        let lo_n = _mm256_and_si256(v, mask);
        let hi_n = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
        _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_n), _mm256_shuffle_epi8(hi, hi_n))
    }

    macro_rules! dispatch {
        ($avx2:ident, $ssse3:ident, $($arg:expr),+) => {
            match simd_level().expect("Simd backend requires SSSE3") {
                // SAFETY: simd_level() verified the feature at runtime.
                SimdLevel::Avx2 => unsafe { $avx2($($arg),+) },
                SimdLevel::Ssse3 => unsafe { $ssse3($($arg),+) },
            }
        };
    }

    pub fn simd_scale_add(dst: &mut [u8], src: &[u8], t: &MulTable) {
        dispatch!(scale_add_avx2, scale_add_ssse3, dst, src, t)
    }

    pub fn simd_add_scaled(dst: &mut [u8], src: &[u8], t: &MulTable) {
        dispatch!(add_scaled_avx2, add_scaled_ssse3, dst, src, t)
    }

    pub fn simd_scale(dst: &mut [u8], t: &MulTable) {
        dispatch!(scale_avx2, scale_ssse3, dst, t)
    }

    pub fn simd_horner(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
        dispatch!(horner_avx2, horner_ssse3, acc, planes, t)
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn scale_add_ssse3(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let (lo, hi, mask) = unsafe { tables128(t) };
        let main = dst.len() & !15;
        let mut i = 0;
        while i < main {
            // SAFETY: i + 16 ≤ main ≤ dst.len() == src.len().
            unsafe {
                let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
                let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
                let v = _mm_xor_si128(mul128(d, lo, hi, mask), s);
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), v);
            }
            i += 16;
        }
        table::scale_add(&mut dst[main..], &src[main..], t);
    }

    #[target_feature(enable = "avx2")]
    unsafe fn scale_add_avx2(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let lo = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast())) };
        let hi = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast())) };
        let mask = _mm256_set1_epi8(0x0f);
        let main = dst.len() & !31;
        let mut i = 0;
        while i < main {
            // SAFETY: i + 32 ≤ main ≤ dst.len() == src.len().
            unsafe {
                let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
                let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
                let v = _mm256_xor_si256(mul256(d, lo, hi, mask), s);
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), v);
            }
            i += 32;
        }
        table::scale_add(&mut dst[main..], &src[main..], t);
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn add_scaled_ssse3(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let (lo, hi, mask) = unsafe { tables128(t) };
        let main = dst.len() & !15;
        let mut i = 0;
        while i < main {
            // SAFETY: i + 16 ≤ main ≤ dst.len() == src.len().
            unsafe {
                let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
                let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
                let v = _mm_xor_si128(d, mul128(s, lo, hi, mask));
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), v);
            }
            i += 16;
        }
        table::add_scaled(&mut dst[main..], &src[main..], t);
    }

    #[target_feature(enable = "avx2")]
    unsafe fn add_scaled_avx2(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let lo = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast())) };
        let hi = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast())) };
        let mask = _mm256_set1_epi8(0x0f);
        let main = dst.len() & !31;
        let mut i = 0;
        while i < main {
            // SAFETY: i + 32 ≤ main ≤ dst.len() == src.len().
            unsafe {
                let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
                let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
                let v = _mm256_xor_si256(d, mul256(s, lo, hi, mask));
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), v);
            }
            i += 32;
        }
        table::add_scaled(&mut dst[main..], &src[main..], t);
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn scale_ssse3(dst: &mut [u8], t: &MulTable) {
        let (lo, hi, mask) = unsafe { tables128(t) };
        let main = dst.len() & !15;
        let mut i = 0;
        while i < main {
            // SAFETY: i + 16 ≤ main ≤ dst.len().
            unsafe {
                let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), mul128(d, lo, hi, mask));
            }
            i += 16;
        }
        table::scale(&mut dst[main..], t);
    }

    #[target_feature(enable = "avx2")]
    unsafe fn scale_avx2(dst: &mut [u8], t: &MulTable) {
        let lo = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast())) };
        let hi = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast())) };
        let mask = _mm256_set1_epi8(0x0f);
        let main = dst.len() & !31;
        let mut i = 0;
        while i < main {
            // SAFETY: i + 32 ≤ main ≤ dst.len().
            unsafe {
                let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), mul256(d, lo, hi, mask));
            }
            i += 32;
        }
        table::scale(&mut dst[main..], t);
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn horner_ssse3(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
        let (lo, hi, mask) = unsafe { tables128(t) };
        let main = acc.len() & !15;
        let mut i = 0;
        while i < main {
            // SAFETY: i + 16 ≤ main ≤ acc.len() == every plane's len.
            unsafe {
                let mut a = _mm_setzero_si128();
                for p in planes {
                    let pv = _mm_loadu_si128(p.as_ptr().add(i).cast());
                    a = _mm_xor_si128(mul128(a, lo, hi, mask), pv);
                }
                _mm_storeu_si128(acc.as_mut_ptr().add(i).cast(), a);
            }
            i += 16;
        }
        horner_tail(acc, planes, t, main);
    }

    #[target_feature(enable = "avx2")]
    unsafe fn horner_avx2(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
        let lo = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast())) };
        let hi = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast())) };
        let mask = _mm256_set1_epi8(0x0f);
        let main = acc.len() & !31;
        let mut i = 0;
        while i < main {
            // SAFETY: i + 32 ≤ main ≤ acc.len() == every plane's len.
            unsafe {
                let mut a = _mm256_setzero_si256();
                for p in planes {
                    let pv = _mm256_loadu_si256(p.as_ptr().add(i).cast());
                    a = _mm256_xor_si256(mul256(a, lo, hi, mask), pv);
                }
                _mm256_storeu_si256(acc.as_mut_ptr().add(i).cast(), a);
            }
            i += 32;
        }
        horner_tail(acc, planes, t, main);
    }

    fn horner_tail(acc: &mut [u8], planes: &[&[u8]], t: &MulTable, from: usize) {
        for (i, a) in acc.iter_mut().enumerate().skip(from) {
            let mut v = 0u8;
            for p in planes {
                v = t.row[v as usize] ^ p[i];
            }
            *a = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_table_matches_field_multiplication() {
        for x in [0u8, 1, 2, 3, 0x53, 0x8e, 0xff] {
            let t = MulTable::new(Gf256::new(x));
            for b in 0..=255u8 {
                assert_eq!(
                    t.mul(b),
                    (Gf256::new(b) * Gf256::new(x)).value(),
                    "x={x} b={b}"
                );
            }
            // Nibble decomposition: b·x == LO[b&0xf] ⊕ HI[b>>4].
            for b in 0..=255u8 {
                assert_eq!(
                    t.mul(b),
                    t.lo[(b & 0xf) as usize] ^ t.hi[(b >> 4) as usize],
                    "x={x} b={b}"
                );
            }
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("avx9000"), None);
    }

    #[test]
    fn active_backend_is_available() {
        assert!(Backend::active().is_available());
    }

    #[test]
    fn portable_backends_always_available() {
        assert!(Backend::Scalar.is_available());
        assert!(Backend::Table.is_available());
        assert!(Backend::Swar.is_available());
    }

    #[test]
    fn backends_agree_on_fixed_vectors() {
        // Cheap smoke check; the exhaustive differential coverage lives
        // in tests/backend_diff.rs.
        let dst0: Vec<u8> = (0..777).map(|i| (i * 31 + 7) as u8).collect();
        let src: Vec<u8> = (0..777).map(|i| (i * 13 + 1) as u8).collect();
        for x in [0u8, 1, 2, 0x53, 0xff] {
            let t = MulTable::new(Gf256::new(x));
            let mut want = dst0.clone();
            Backend::Scalar.scale_add_assign(&mut want, &src, &t);
            for b in Backend::ALL {
                if !b.is_available() {
                    continue;
                }
                let mut got = dst0.clone();
                b.scale_add_assign(&mut got, &src, &t);
                assert_eq!(got, want, "backend {} x={x}", b.name());
            }
        }
    }

    #[test]
    fn horner_matches_unfused_steps() {
        let planes: Vec<Vec<u8>> = (0..4)
            .map(|p| (0..333).map(|i| (i * 7 + p * 11 + 3) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = planes.iter().map(Vec::as_slice).collect();
        for x in [0u8, 1, 2, 0x53] {
            let t = MulTable::new(Gf256::new(x));
            let mut want = vec![0u8; 333];
            for p in &refs {
                let mut stepped = want.clone();
                Backend::Scalar.scale_add_assign(&mut stepped, p, &t);
                want = stepped;
            }
            for b in Backend::ALL {
                if !b.is_available() {
                    continue;
                }
                let mut got = vec![0xeeu8; 333]; // prior contents ignored
                b.horner_into(&mut got, &refs, &t);
                assert_eq!(got, want, "backend {} x={x}", b.name());
            }
        }
    }

    #[test]
    fn horner_empty_planes_zeroes_acc() {
        let t = MulTable::new(Gf256::new(7));
        for b in Backend::ALL {
            if !b.is_available() {
                continue;
            }
            let mut acc = vec![0xffu8; 40];
            b.horner_into(&mut acc, &[], &t);
            assert_eq!(acc, vec![0u8; 40], "backend {}", b.name());
        }
    }
}
