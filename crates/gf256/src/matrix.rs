//! Dense linear algebra over GF(2⁸): Gaussian elimination, rank, and
//! linear-system solving.
//!
//! Used by Blakley's geometric threshold scheme (intersecting
//! hyperplanes) and by tests that reason about share-space dimensions.

use crate::Gf256;

/// A dense matrix over GF(2⁸), row major.
///
/// # Examples
///
/// ```
/// use mcss_gf256::{matrix::Matrix, Gf256};
///
/// let m = Matrix::identity(3);
/// assert_eq!(m.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

impl Matrix {
    /// A zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// The n×n identity.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf256::ONE;
        }
        m
    }

    /// Builds a matrix from rows of equal length.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    #[must_use]
    pub fn from_rows(rows: &[Vec<Gf256>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "rows must have equal length"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The rank of the matrix (dimension of the row space).
    #[must_use]
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.row_reduce()
    }

    /// In-place forward elimination to row echelon form; returns the
    /// rank.
    fn row_reduce(&mut self) -> usize {
        let mut pivot_row = 0;
        for col in 0..self.cols {
            if pivot_row == self.rows {
                break;
            }
            let Some(src) = (pivot_row..self.rows).find(|&r| !self[(r, col)].is_zero()) else {
                continue;
            };
            self.swap_rows(pivot_row, src);
            let inv = self[(pivot_row, col)].inv().expect("pivot is nonzero");
            for c in col..self.cols {
                self[(pivot_row, c)] *= inv;
            }
            for r in 0..self.rows {
                if r != pivot_row && !self[(r, col)].is_zero() {
                    let factor = self[(r, col)];
                    for c in col..self.cols {
                        let sub = factor * self[(pivot_row, c)];
                        self[(r, c)] += sub;
                    }
                }
            }
            pivot_row += 1;
        }
        pivot_row
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let tmp = self[(a, c)];
            self[(a, c)] = self[(b, c)];
            self[(b, c)] = tmp;
        }
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    #[must_use]
    pub fn mul_vec(&self, v: &[Gf256]) -> Vec<Gf256> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum())
            .collect()
    }
}

impl core::ops::Index<(usize, usize)> for Matrix {
    type Output = Gf256;

    fn index(&self, (r, c): (usize, usize)) -> &Gf256 {
        &self.data[r * self.cols + c]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf256 {
        &mut self.data[r * self.cols + c]
    }
}

/// Solves the square linear system `A·x = b` over GF(2⁸).
///
/// Returns `None` if `A` is singular (the system has no unique
/// solution).
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.rows()`.
///
/// # Examples
///
/// ```
/// use mcss_gf256::{matrix::{solve, Matrix}, Gf256};
///
/// // x + y = 3, x = 1  →  y = 2 (over GF(2⁸): 1 ⊕ 2 = 3)
/// let a = Matrix::from_rows(&[
///     vec![Gf256::ONE, Gf256::ONE],
///     vec![Gf256::ONE, Gf256::ZERO],
/// ]);
/// let x = solve(&a, &[Gf256::new(3), Gf256::new(1)]).unwrap();
/// assert_eq!(x, vec![Gf256::new(1), Gf256::new(2)]);
/// ```
#[must_use]
pub fn solve(a: &Matrix, b: &[Gf256]) -> Option<Vec<Gf256>> {
    assert_eq!(a.rows(), a.cols(), "system must be square");
    assert_eq!(b.len(), a.rows(), "dimension mismatch");
    let n = a.rows();
    // Augmented matrix [A | b].
    let mut aug = Matrix::zero(n, n + 1);
    for r in 0..n {
        for c in 0..n {
            aug[(r, c)] = a[(r, c)];
        }
        aug[(r, n)] = b[r];
    }
    aug.row_reduce();
    // A has full rank iff Gauss-Jordan turned the left block into the
    // identity (checking the augmented rank alone would accept
    // inconsistent systems, whose contradiction row inflates the rank).
    for r in 0..n {
        if aug[(r, r)] != Gf256::ONE {
            return None;
        }
    }
    Some((0..n).map(|r| aug[(r, n)]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn g(v: u8) -> Gf256 {
        Gf256::new(v)
    }

    #[test]
    fn identity_properties() {
        let id = Matrix::identity(4);
        assert_eq!(id.rank(), 4);
        let v: Vec<Gf256> = [1, 2, 3, 4].iter().map(|&x| g(x)).collect();
        assert_eq!(id.mul_vec(&v), v);
    }

    #[test]
    fn rank_of_dependent_rows() {
        // Row 2 = row 0 ⊕ row 1.
        let m = Matrix::from_rows(&[
            vec![g(1), g(2), g(3)],
            vec![g(4), g(5), g(6)],
            vec![g(5), g(7), g(5)],
        ]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn zero_matrix_rank() {
        assert_eq!(Matrix::zero(3, 5).rank(), 0);
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[vec![g(2), g(1)], vec![g(1), g(1)]]);
        let x = vec![g(7), g(9)];
        let b = a.mul_vec(&x);
        assert_eq!(solve(&a, &b).unwrap(), x);
    }

    #[test]
    fn singular_system_detected() {
        let a = Matrix::from_rows(&[vec![g(1), g(2)], vec![g(1), g(2)]]);
        assert_eq!(solve(&a, &[g(1), g(2)]), None);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn solve_rejects_rectangular() {
        let a = Matrix::zero(2, 3);
        let _ = solve(&a, &[Gf256::ZERO, Gf256::ZERO]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(&[vec![g(1)], vec![g(1), g(2)]]);
    }

    proptest! {
        #[test]
        fn solve_round_trips_random_systems(
            entries in proptest::collection::vec(any::<u8>(), 16),
            xs in proptest::collection::vec(any::<u8>(), 4),
        ) {
            let rows: Vec<Vec<Gf256>> = entries
                .chunks(4)
                .map(|ch| ch.iter().map(|&v| g(v)).collect())
                .collect();
            let a = Matrix::from_rows(&rows);
            let x: Vec<Gf256> = xs.iter().map(|&v| g(v)).collect();
            let b = a.mul_vec(&x);
            match solve(&a, &b) {
                // Unique solution must be the planted one.
                Some(got) => prop_assert_eq!(got, x),
                // Singular: rank must actually be deficient.
                None => prop_assert!(a.rank() < 4),
            }
        }

        #[test]
        fn rank_bounded_by_dimensions(
            entries in proptest::collection::vec(any::<u8>(), 12),
        ) {
            let rows: Vec<Vec<Gf256>> = entries
                .chunks(4)
                .map(|ch| ch.iter().map(|&v| g(v)).collect())
                .collect();
            let m = Matrix::from_rows(&rows);
            prop_assert!(m.rank() <= m.rows().min(m.cols()));
        }
    }
}
