//! Arithmetic in the finite field GF(2⁸), the substrate for Shamir secret
//! sharing as used by multichannel secret sharing protocols.
//!
//! The field is constructed as GF(2)[x] modulo the AES reduction polynomial
//! x⁸ + x⁴ + x³ + x + 1 (0x11b). Multiplication and inversion are table
//! driven; the log/exp tables are computed at compile time from the
//! generator 0x03, so scalar arithmetic has no runtime initialization and
//! no `unsafe`. The bulk [`slice`] kernels additionally dispatch to
//! runtime-detected vector backends (GFNI `gf2p8mulb`, AVX-512 VBMI
//! `vpermb`, and split-nibble `pshufb` on x86_64; `vqtbl1q_u8` NEON on
//! aarch64; portable SWAR elsewhere) — see [`simd`] for the dispatch
//! layer, the length-aware crossover, and the `MCSS_GF256_BACKEND`
//! override. The per-architecture kernels themselves live in the
//! private `arch` module tree.
//!
//! # Examples
//!
//! ```
//! use mcss_gf256::Gf256;
//!
//! let a = Gf256::new(0x57);
//! let b = Gf256::new(0x83);
//! assert_eq!(a * b, Gf256::new(0xc1)); // the classic AES example
//! assert_eq!((a / b) * b, a);
//! assert_eq!(a + a, Gf256::ZERO); // characteristic 2
//! ```

mod arch;
pub mod matrix;
pub mod poly;
pub mod simd;
pub mod slice;

pub use poly::Poly;

/// Number of elements in the field.
pub const FIELD_SIZE: usize = 256;

/// Multiplicative order of the field (number of nonzero elements).
pub const GROUP_ORDER: usize = 255;

/// The AES reduction polynomial x⁸ + x⁴ + x³ + x + 1, with the x⁸ bit kept.
const REDUCTION_POLY: u16 = 0x11b;

/// Generator of the multiplicative group used to build the log/exp tables.
const GENERATOR: u8 = 0x03;

/// Carry-less multiply of two field elements followed by reduction, used
/// only at compile time to build the tables.
const fn mul_slow(a: u8, b: u8) -> u8 {
    let mut acc: u16 = 0;
    let mut a16 = a as u16;
    let mut b16 = b as u16;
    while b16 != 0 {
        if b16 & 1 != 0 {
            acc ^= a16;
        }
        a16 <<= 1;
        if a16 & 0x100 != 0 {
            a16 ^= REDUCTION_POLY;
        }
        b16 >>= 1;
    }
    acc as u8
}

const fn build_exp() -> [u8; 512] {
    // EXP is doubled so that `EXP[log a + log b]` never needs a modular
    // reduction: log a + log b < 2 * 255.
    let mut exp = [0u8; 512];
    let mut x: u8 = 1;
    let mut i = 0;
    while i < GROUP_ORDER {
        exp[i] = x;
        exp[i + GROUP_ORDER] = x;
        x = mul_slow(x, GENERATOR);
        i += 1;
    }
    // Positions 510 and 511 are never indexed (max index is 508) but must
    // hold something deterministic.
    exp[2 * GROUP_ORDER] = 1;
    exp[2 * GROUP_ORDER + 1] = exp[1];
    exp
}

const fn build_log(exp: &[u8; 512]) -> [u8; 256] {
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < GROUP_ORDER {
        log[exp[i] as usize] = i as u8;
        i += 1;
    }
    // log[0] is undefined mathematically; it is never consulted because all
    // multiplication paths test for zero first.
    log
}

pub(crate) const EXP: [u8; 512] = build_exp();
pub(crate) const LOG: [u8; 256] = build_log(&EXP);

/// An element of GF(2⁸).
///
/// `Gf256` is a transparent wrapper over `u8` implementing field arithmetic
/// through the standard operator traits. Addition and subtraction are both
/// XOR (the field has characteristic 2), multiplication and division are
/// log/exp table lookups.
///
/// # Examples
///
/// ```
/// use mcss_gf256::Gf256;
///
/// let x = Gf256::new(7);
/// assert_eq!(x * x.inv().unwrap(), Gf256::ONE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Gf256(u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The generator 0x03 whose powers enumerate all nonzero elements.
    pub const GENERATOR: Gf256 = Gf256(GENERATOR);

    /// Wraps a byte as a field element.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_gf256::Gf256;
    /// assert_eq!(Gf256::new(0), Gf256::ZERO);
    /// ```
    #[inline]
    #[must_use]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the underlying byte.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_gf256::Gf256;
    /// assert_eq!(Gf256::new(42).value(), 42);
    /// ```
    #[inline]
    #[must_use]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns `true` for the additive identity.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_gf256::Gf256;
    /// assert!(Gf256::ZERO.is_zero());
    /// assert!(!Gf256::ONE.is_zero());
    /// ```
    #[inline]
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplicative inverse, or `None` for zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_gf256::Gf256;
    /// assert_eq!(Gf256::ONE.inv(), Some(Gf256::ONE));
    /// assert_eq!(Gf256::ZERO.inv(), None);
    /// ```
    #[inline]
    #[must_use]
    pub fn inv(self) -> Option<Self> {
        if self.is_zero() {
            None
        } else if self.0 == 1 {
            Some(Gf256::ONE)
        } else {
            Some(Gf256(EXP[GROUP_ORDER - LOG[self.0 as usize] as usize]))
        }
    }

    /// Raises the element to an integer power, with the convention
    /// `x⁰ = 1` for every `x` including zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_gf256::Gf256;
    /// let g = Gf256::GENERATOR;
    /// assert_eq!(g.pow(255), Gf256::ONE); // group order
    /// assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
    /// assert_eq!(Gf256::ZERO.pow(3), Gf256::ZERO);
    /// ```
    #[must_use]
    pub fn pow(self, exp: u32) -> Self {
        if exp == 0 {
            return Gf256::ONE;
        }
        if self.is_zero() {
            return Gf256::ZERO;
        }
        let log = LOG[self.0 as usize] as u64;
        let idx = (log * exp as u64) % GROUP_ORDER as u64;
        Gf256(EXP[idx as usize])
    }

    /// Iterator over every field element, 0 through 255.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_gf256::Gf256;
    /// assert_eq!(Gf256::all().count(), 256);
    /// ```
    pub fn all() -> impl Iterator<Item = Gf256> {
        (0u16..256).map(|v| Gf256(v as u8))
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl core::fmt::Display for Gf256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

impl core::fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl core::fmt::UpperHex for Gf256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::UpperHex::fmt(&self.0, f)
    }
}

impl core::fmt::Binary for Gf256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Binary::fmt(&self.0, f)
    }
}

impl core::fmt::Octal for Gf256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Octal::fmt(&self.0, f)
    }
}

impl core::ops::Add for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // field addition IS xor
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl core::ops::AddAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // field addition IS xor
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl core::ops::Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // char 2: sub == add == xor
    fn sub(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl core::ops::SubAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // char 2: sub == add == xor
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl core::ops::Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        // In characteristic 2 every element is its own additive inverse.
        self
    }
}

impl core::ops::Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let idx = LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize;
        Gf256(EXP[idx])
    }
}

impl core::ops::MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl core::ops::Div for Gf256 {
    type Output = Gf256;

    /// # Panics
    ///
    /// Panics when dividing by zero; use [`Gf256::inv`] to handle the zero
    /// case explicitly.
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division by inverse
    fn div(self, rhs: Gf256) -> Gf256 {
        let inv = rhs.inv().expect("division by zero in GF(256)");
        self * inv
    }
}

impl core::ops::DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        *self = *self / rhs;
    }
}

impl core::iter::Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ZERO, |acc, x| acc + x)
    }
}

impl<'a> core::iter::Sum<&'a Gf256> for Gf256 {
    fn sum<I: Iterator<Item = &'a Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ZERO, |acc, x| acc + *x)
    }
}

impl core::iter::Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ONE, |acc, x| acc * x)
    }
}

impl<'a> core::iter::Product<&'a Gf256> for Gf256 {
    fn product<I: Iterator<Item = &'a Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ONE, |acc, x| acc * *x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes_reference_product() {
        // 0x57 * 0x83 = 0xc1 is the worked example in FIPS-197.
        assert_eq!(Gf256::new(0x57) * Gf256::new(0x83), Gf256::new(0xc1));
    }

    #[test]
    fn aes_reference_product_x13() {
        // 0x57 * 0x13 = 0xfe, also from FIPS-197.
        assert_eq!(Gf256::new(0x57) * Gf256::new(0x13), Gf256::new(0xfe));
    }

    #[test]
    fn addition_is_xor() {
        assert_eq!(Gf256::new(0b1010) + Gf256::new(0b0110), Gf256::new(0b1100));
    }

    #[test]
    fn subtraction_equals_addition() {
        for a in Gf256::all() {
            assert_eq!(a - a, Gf256::ZERO);
            assert_eq!(a + a, Gf256::ZERO);
            assert_eq!(-a, a);
        }
    }

    #[test]
    fn zero_is_additive_identity() {
        for a in Gf256::all() {
            assert_eq!(a + Gf256::ZERO, a);
            assert_eq!(Gf256::ZERO + a, a);
        }
    }

    #[test]
    fn one_is_multiplicative_identity() {
        for a in Gf256::all() {
            assert_eq!(a * Gf256::ONE, a);
            assert_eq!(Gf256::ONE * a, a);
        }
    }

    #[test]
    fn zero_annihilates() {
        for a in Gf256::all() {
            assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
            assert_eq!(Gf256::ZERO * a, Gf256::ZERO);
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in Gf256::all().skip(1) {
            let inv = a.inv().expect("nonzero must invert");
            assert_eq!(a * inv, Gf256::ONE, "a = {a}");
            assert_eq!(a / a, Gf256::ONE);
        }
        assert_eq!(Gf256::ZERO.inv(), None);
    }

    #[test]
    fn multiplication_matches_slow_reference() {
        // Exhaustive 64k cross-check of the table path vs the shift-and-add
        // reference used to build the tables.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(
                    (Gf256::new(a) * Gf256::new(b)).value(),
                    mul_slow(a, b),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = [false; 256];
        let mut x = Gf256::ONE;
        for _ in 0..GROUP_ORDER {
            assert!(!seen[x.value() as usize], "generator order < 255");
            seen[x.value() as usize] = true;
            x *= Gf256::GENERATOR;
        }
        assert_eq!(x, Gf256::ONE);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 5, 87, 255] {
            let a = Gf256::new(a);
            let mut acc = Gf256::ONE;
            for e in 0..600u32 {
                assert_eq!(a.pow(e), acc, "a={a} e={e}");
                acc *= a;
            }
        }
    }

    #[test]
    fn pow_exponent_arithmetic() {
        let g = Gf256::GENERATOR;
        assert_eq!(g.pow(256), g.pow(1));
        assert_eq!(g.pow(510), Gf256::ONE);
    }

    #[test]
    fn sum_and_product_fold() {
        let xs = [Gf256::new(1), Gf256::new(2), Gf256::new(3)];
        assert_eq!(xs.iter().sum::<Gf256>(), Gf256::new(1 ^ 2 ^ 3));
        assert_eq!(
            xs.iter().product::<Gf256>(),
            Gf256::new(1) * Gf256::new(2) * Gf256::new(3)
        );
    }

    #[test]
    fn display_formats() {
        let x = Gf256::new(0xab);
        assert_eq!(format!("{x}"), "0xab");
        assert_eq!(format!("{x:x}"), "ab");
        assert_eq!(format!("{x:X}"), "AB");
        assert_eq!(format!("{x:08b}"), "10101011");
    }

    #[test]
    fn conversions_round_trip() {
        for b in 0..=255u8 {
            assert_eq!(u8::from(Gf256::from(b)), b);
        }
    }
}
