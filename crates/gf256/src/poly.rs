//! Polynomials over GF(2⁸): evaluation and Lagrange interpolation.
//!
//! Shamir secret sharing hides a secret in the constant coefficient of a
//! random degree-(k−1) polynomial and publishes evaluations at nonzero
//! points. Reconstruction interpolates the constant term back from any k
//! of those points. This module provides both primitives, plus general
//! interpolation at arbitrary abscissae for tests and diagnostics.

use crate::Gf256;

/// A dense polynomial over GF(2⁸), stored low-order coefficient first.
///
/// The zero polynomial is represented by an empty coefficient vector; all
/// constructors trim trailing zero coefficients so that
/// `degree` = `coeffs.len() - 1` holds for nonzero polynomials.
///
/// # Examples
///
/// ```
/// use mcss_gf256::{Gf256, Poly};
///
/// // p(x) = 5 + 2x
/// let p = Poly::new(vec![Gf256::new(5), Gf256::new(2)]);
/// assert_eq!(p.eval(Gf256::ZERO), Gf256::new(5));
/// assert_eq!(p.degree(), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    coeffs: Vec<Gf256>,
}

impl Poly {
    /// Creates a polynomial from low-order-first coefficients, trimming
    /// trailing zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_gf256::{Gf256, Poly};
    /// let p = Poly::new(vec![Gf256::ONE, Gf256::ZERO]);
    /// assert_eq!(p.degree(), Some(0));
    /// ```
    #[must_use]
    pub fn new(mut coeffs: Vec<Gf256>) -> Self {
        while coeffs.last().is_some_and(|c| c.is_zero()) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// The zero polynomial.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_gf256::{Gf256, Poly};
    /// assert!(Poly::zero().is_zero());
    /// ```
    #[must_use]
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// A constant polynomial.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_gf256::{Gf256, Poly};
    /// let p = Poly::constant(Gf256::new(9));
    /// assert_eq!(p.eval(Gf256::new(200)), Gf256::new(9));
    /// ```
    #[must_use]
    pub fn constant(c: Gf256) -> Self {
        Poly::new(vec![c])
    }

    /// Draws a polynomial of exactly the requested degree bound with the
    /// given constant term: `secret + c₁x + … + c_{degree}x^{degree}` where
    /// `c₁…` are uniform random field elements.
    ///
    /// This is the Shamir splitting polynomial; `degree` is `k − 1`.
    /// The leading coefficients may be zero — requiring a nonzero leading
    /// coefficient would bias the distribution and weaken secrecy.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_gf256::{Gf256, Poly};
    /// let mut rng = rand::rng();
    /// let p = Poly::random_with_constant(Gf256::new(42), 3, &mut rng);
    /// assert_eq!(p.eval(Gf256::ZERO), Gf256::new(42));
    /// ```
    #[must_use]
    pub fn random_with_constant<R: rand::Rng + ?Sized>(
        secret: Gf256,
        degree: usize,
        rng: &mut R,
    ) -> Self {
        use rand::RngExt as _;
        let mut coeffs = Vec::with_capacity(degree + 1);
        coeffs.push(secret);
        for _ in 0..degree {
            coeffs.push(Gf256::new(rng.random()));
        }
        Poly::new(coeffs)
    }

    /// Returns `true` for the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree of the polynomial, or `None` for the zero polynomial.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_gf256::{Gf256, Poly};
    /// assert_eq!(Poly::zero().degree(), None);
    /// assert_eq!(Poly::constant(Gf256::ONE).degree(), Some(0));
    /// ```
    #[must_use]
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Coefficients, low order first (empty for the zero polynomial).
    #[must_use]
    pub fn coeffs(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_gf256::{Gf256, Poly};
    /// // p(x) = 1 + x + x²  ⇒  p(2) = 1 ⊕ 2 ⊕ 4 = 7
    /// let p = Poly::new(vec![Gf256::ONE, Gf256::ONE, Gf256::ONE]);
    /// assert_eq!(p.eval(Gf256::new(2)), Gf256::new(7));
    /// ```
    #[must_use]
    pub fn eval(&self, x: Gf256) -> Gf256 {
        let mut acc = Gf256::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }
}

impl core::ops::Add for &Poly {
    type Output = Poly;

    fn add(self, rhs: &Poly) -> Poly {
        let (long, short) = if self.coeffs.len() >= rhs.coeffs.len() {
            (&self.coeffs, &rhs.coeffs)
        } else {
            (&rhs.coeffs, &self.coeffs)
        };
        let mut out = long.clone();
        for (o, &c) in out.iter_mut().zip(short) {
            *o += c;
        }
        Poly::new(out)
    }
}

impl core::ops::Add for Poly {
    type Output = Poly;

    fn add(self, rhs: Poly) -> Poly {
        &self + &rhs
    }
}

impl core::ops::Mul for &Poly {
    type Output = Poly;

    fn mul(self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Gf256::ZERO; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::new(out)
    }
}

impl core::ops::Mul for Poly {
    type Output = Poly;

    fn mul(self, rhs: Poly) -> Poly {
        &self * &rhs
    }
}

/// Interpolates the value at `x = 0` of the unique polynomial of degree
/// `< points.len()` passing through the given `(x, y)` points.
///
/// This is the hot path of Shamir reconstruction, specialized to the
/// constant term so it runs in O(k²) multiplications with no allocation.
///
/// # Errors
///
/// Returns [`InterpolationError::DuplicateX`] if two points share an
/// abscissa and [`InterpolationError::Empty`] when `points` is empty.
/// An `x` of zero is rejected as [`InterpolationError::ZeroX`]: a share at
/// x = 0 would *be* the secret and is never produced by splitting.
///
/// # Examples
///
/// ```
/// use mcss_gf256::{Gf256, poly};
///
/// // p(x) = 7 + 3x through x = 1, 2
/// let pts = [
///     (Gf256::new(1), Gf256::new(7 ^ 3)),
///     (Gf256::new(2), Gf256::new(7 ^ 6)),
/// ];
/// assert_eq!(poly::interpolate_at_zero(&pts).unwrap(), Gf256::new(7));
/// ```
pub fn interpolate_at_zero(points: &[(Gf256, Gf256)]) -> Result<Gf256, InterpolationError> {
    if points.is_empty() {
        return Err(InterpolationError::Empty);
    }
    for (idx, &(xi, _)) in points.iter().enumerate() {
        if xi.is_zero() {
            return Err(InterpolationError::ZeroX);
        }
        if points[..idx].iter().any(|&(xj, _)| xj == xi) {
            return Err(InterpolationError::DuplicateX { x: xi.value() });
        }
    }
    let mut acc = Gf256::ZERO;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        // Lagrange basis at 0: Π_{j≠i} x_j / (x_j − x_i); subtraction is
        // XOR so x_j − x_i = x_j + x_i.
        let mut num = Gf256::ONE;
        let mut den = Gf256::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i != j {
                num *= xj;
                den *= xj + xi;
            }
        }
        // den is nonzero: abscissae are pairwise distinct.
        acc += yi * num / den;
    }
    Ok(acc)
}

/// Interpolates the full polynomial through the given points.
///
/// Used by tests and diagnostics; reconstruction should prefer
/// [`interpolate_at_zero`].
///
/// # Errors
///
/// Same conditions as [`interpolate_at_zero`], except `x = 0` points are
/// allowed here.
///
/// # Examples
///
/// ```
/// use mcss_gf256::{Gf256, Poly, poly};
///
/// let p = Poly::new(vec![Gf256::new(3), Gf256::new(1), Gf256::new(8)]);
/// let pts: Vec<_> = [1u8, 2, 3]
///     .iter()
///     .map(|&x| (Gf256::new(x), p.eval(Gf256::new(x))))
///     .collect();
/// assert_eq!(poly::interpolate(&pts).unwrap(), p);
/// ```
pub fn interpolate(points: &[(Gf256, Gf256)]) -> Result<Poly, InterpolationError> {
    if points.is_empty() {
        return Err(InterpolationError::Empty);
    }
    for (idx, &(xi, _)) in points.iter().enumerate() {
        if points[..idx].iter().any(|&(xj, _)| xj == xi) {
            return Err(InterpolationError::DuplicateX { x: xi.value() });
        }
    }
    let n = points.len();
    let mut result = vec![Gf256::ZERO; n];
    // Basis polynomial accumulator, reused across terms.
    let mut basis: Vec<Gf256> = Vec::with_capacity(n);
    for (i, &(xi, yi)) in points.iter().enumerate() {
        basis.clear();
        basis.push(Gf256::ONE);
        let mut den = Gf256::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            // Multiply basis by (x − x_j) = (x + x_j).
            basis.push(Gf256::ZERO);
            for t in (0..basis.len() - 1).rev() {
                let low = basis[t];
                basis[t + 1] += low;
                basis[t] = low * xj;
            }
            den *= xi + xj;
        }
        let scale = yi / den;
        for (t, &b) in basis.iter().enumerate() {
            result[t] += b * scale;
        }
    }
    Ok(Poly::new(result))
}

/// Error from polynomial interpolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterpolationError {
    /// No points were supplied.
    Empty,
    /// Two points share the same abscissa.
    DuplicateX {
        /// The repeated x coordinate.
        x: u8,
    },
    /// A point with x = 0 was supplied where shares must be nonzero.
    ZeroX,
}

impl core::fmt::Display for InterpolationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InterpolationError::Empty => write!(f, "no interpolation points supplied"),
            InterpolationError::DuplicateX { x } => {
                write!(f, "duplicate interpolation abscissa {x:#04x}")
            }
            InterpolationError::ZeroX => {
                write!(f, "share abscissa of zero is not permitted")
            }
        }
    }
}

impl std::error::Error for InterpolationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn poly_from_bytes(bytes: &[u8]) -> Poly {
        Poly::new(bytes.iter().map(|&b| Gf256::new(b)).collect())
    }

    #[test]
    fn zero_polynomial_basics() {
        let z = Poly::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(z.eval(Gf256::new(17)), Gf256::ZERO);
        assert_eq!(Poly::new(vec![Gf256::ZERO; 4]), z);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Poly::new(vec![Gf256::new(1), Gf256::new(2), Gf256::ZERO]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs().len(), 2);
    }

    #[test]
    fn constant_eval_everywhere() {
        let p = Poly::constant(Gf256::new(0x5a));
        for x in Gf256::all() {
            assert_eq!(p.eval(x), Gf256::new(0x5a));
        }
    }

    #[test]
    fn eval_known_values() {
        // p(x) = 3 + x + 2x² over GF(256): p(1) = 3^1^2 = 0, p(0) = 3.
        let p = poly_from_bytes(&[3, 1, 2]);
        assert_eq!(p.eval(Gf256::ZERO), Gf256::new(3));
        assert_eq!(p.eval(Gf256::ONE), Gf256::new(0));
    }

    #[test]
    fn random_with_constant_fixes_secret() {
        let mut rng = rand::rng();
        for degree in 0..8 {
            let p = Poly::random_with_constant(Gf256::new(0xee), degree, &mut rng);
            assert_eq!(p.eval(Gf256::ZERO), Gf256::new(0xee));
            assert!(p.degree().unwrap_or(0) <= degree);
        }
    }

    #[test]
    fn interpolate_at_zero_rejects_bad_input() {
        assert_eq!(interpolate_at_zero(&[]), Err(InterpolationError::Empty));
        let dup = [
            (Gf256::new(1), Gf256::new(5)),
            (Gf256::new(1), Gf256::new(6)),
        ];
        assert_eq!(
            interpolate_at_zero(&dup),
            Err(InterpolationError::DuplicateX { x: 1 })
        );
        let zero = [(Gf256::ZERO, Gf256::new(5))];
        assert_eq!(interpolate_at_zero(&zero), Err(InterpolationError::ZeroX));
    }

    #[test]
    fn interpolate_rejects_duplicates_but_allows_zero_x() {
        let pts = [(Gf256::ZERO, Gf256::new(9)), (Gf256::new(1), Gf256::new(9))];
        let p = interpolate(&pts).unwrap();
        assert_eq!(p, Poly::constant(Gf256::new(9)));
    }

    #[test]
    fn single_point_interpolation_is_constant() {
        let pts = [(Gf256::new(7), Gf256::new(0x33))];
        assert_eq!(interpolate_at_zero(&pts).unwrap(), Gf256::new(0x33));
        assert_eq!(interpolate(&pts).unwrap(), Poly::constant(Gf256::new(0x33)));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            InterpolationError::Empty,
            InterpolationError::DuplicateX { x: 3 },
            InterpolationError::ZeroX,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    proptest! {
        #[test]
        fn polynomial_ring_axioms(
            a in proptest::collection::vec(any::<u8>(), 0..6),
            b in proptest::collection::vec(any::<u8>(), 0..6),
            c in proptest::collection::vec(any::<u8>(), 0..6),
            x in any::<u8>(),
        ) {
            let (a, b, c) = (poly_from_bytes(&a), poly_from_bytes(&b), poly_from_bytes(&c));
            let x = Gf256::new(x);
            // Evaluation is a ring homomorphism.
            prop_assert_eq!((&a + &b).eval(x), a.eval(x) + b.eval(x));
            prop_assert_eq!((&a * &b).eval(x), a.eval(x) * b.eval(x));
            // Commutativity and associativity.
            prop_assert_eq!(&a + &b, &b + &a);
            prop_assert_eq!(&a * &b, &b * &a);
            prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
            // Distributivity.
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
            // Characteristic 2: p + p = 0.
            prop_assert!((&a + &a).is_zero());
            // Identities.
            prop_assert_eq!(&a + &Poly::zero(), a.clone());
            prop_assert_eq!(&a * &Poly::constant(Gf256::ONE), a.clone());
            prop_assert!((&a * &Poly::zero()).is_zero());
        }

        #[test]
        fn interpolation_is_linear(
            ys1 in proptest::collection::vec(any::<u8>(), 1..7),
            ys2 in proptest::collection::vec(any::<u8>(), 1..7),
        ) {
            // interpolate(p1 pts) + interpolate(p2 pts) passes through the
            // pointwise sums — interpolation is linear in the ordinates.
            let n = ys1.len().min(ys2.len());
            let mk = |ys: &[u8]| -> Vec<(Gf256, Gf256)> {
                ys.iter()
                    .take(n)
                    .enumerate()
                    .map(|(i, &y)| (Gf256::new(i as u8 + 1), Gf256::new(y)))
                    .collect()
            };
            let p1 = interpolate(&mk(&ys1)).unwrap();
            let p2 = interpolate(&mk(&ys2)).unwrap();
            let sum_pts: Vec<(Gf256, Gf256)> = mk(&ys1)
                .iter()
                .zip(mk(&ys2))
                .map(|(&(x, y1), (_, y2))| (x, y1 + y2))
                .collect();
            let psum = interpolate(&sum_pts).unwrap();
            prop_assert_eq!(&p1 + &p2, psum);
        }

        #[test]
        fn interpolation_recovers_polynomial(
            coeffs in proptest::collection::vec(any::<u8>(), 1..8),
            extra in 0usize..5,
        ) {
            let p = poly_from_bytes(&coeffs);
            let npts = coeffs.len() + extra;
            prop_assume!(npts <= 255);
            let pts: Vec<_> = (1..=npts as u8)
                .map(|x| (Gf256::new(x), p.eval(Gf256::new(x))))
                .collect();
            let q = interpolate(&pts).unwrap();
            prop_assert_eq!(&q, &p);
            prop_assert_eq!(
                interpolate_at_zero(&pts).unwrap(),
                p.eval(Gf256::ZERO)
            );
        }

        #[test]
        fn interpolation_at_zero_agrees_with_full(
            ys in proptest::collection::vec(any::<u8>(), 1..10),
        ) {
            let pts: Vec<_> = ys
                .iter()
                .enumerate()
                .map(|(i, &y)| (Gf256::new(i as u8 + 1), Gf256::new(y)))
                .collect();
            let full = interpolate(&pts).unwrap().eval(Gf256::ZERO);
            let direct = interpolate_at_zero(&pts).unwrap();
            prop_assert_eq!(full, direct);
        }

        #[test]
        fn horner_matches_naive_eval(
            coeffs in proptest::collection::vec(any::<u8>(), 0..10),
            x in any::<u8>(),
        ) {
            let p = poly_from_bytes(&coeffs);
            let x = Gf256::new(x);
            let naive = coeffs
                .iter()
                .enumerate()
                .map(|(i, &c)| Gf256::new(c) * x.pow(i as u32))
                .sum::<Gf256>();
            prop_assert_eq!(p.eval(x), naive);
        }
    }
}
