//! Per-architecture kernel implementations behind the [`Backend`]
//! dispatch layer in [`crate::simd`].
//!
//! Each submodule implements the same four-kernel contract —
//! `scale_add`, `add_scaled`, `scale`, and the fused multi-plane
//! `horner` — over caller-owned byte slices and a caller-built
//! [`MulTable`](crate::simd::MulTable):
//!
//! * [`generic`] — the portable implementations every target gets:
//!   `scalar` (log/exp reference), `table` (256-entry row), and `swar`
//!   (8-lane `u64` shift-and-add).
//! * [`x86`] — SSSE3/AVX2 split-nibble `pshufb` (16/32 bytes per step).
//! * [`x86_avx512`] — AVX-512 VBMI `vpermb` split-nibble (64 bytes per
//!   step, SSSE3 mid-tail).
//! * [`x86_gfni`] — GFNI `gf2p8mulb` native GF(2⁸) products at 128-,
//!   256-, or 512-bit width, whichever the host offers.
//! * [`neon`] — aarch64 `vqtbl1q_u8` split-nibble (16 bytes per step).
//!
//! Every kernel is total over all lengths and alignments: vector main
//! loops use unaligned loads/stores and finish ragged tails on the
//! 256-entry table row, so byte-identity across backends holds for
//! length 0 upward (pinned by `tests/backend_diff.rs`). Modules for
//! other architectures still compile everywhere; on the wrong target
//! their entry points degrade to the portable SWAR path so the
//! [`Backend`](crate::simd::Backend) enum stays total without
//! `cfg`-dependent variants.

pub(crate) mod generic;
pub(crate) mod neon;
pub(crate) mod x86;
pub(crate) mod x86_avx512;
pub(crate) mod x86_gfni;

/// Shared `x = 1` path: `dst ^= src` at the widest vector width the
/// host offers. The baseline build only auto-vectorizes the byte loop
/// to 16-byte SSE2, so on AVX hosts a runtime-dispatched wide loop is
/// 2–4× faster — which matters to the XOR codec, whose whole encode is
/// this operation.
#[inline]
pub(crate) fn xor_assign(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    match xor_x86::width() {
        xor_x86::Width::V512 => {
            // SAFETY: width() verified AVX-512F at runtime.
            unsafe { xor_x86::xor_assign_512(dst, src) }
        }
        xor_x86::Width::V256 => {
            // SAFETY: width() verified AVX2 at runtime.
            unsafe { xor_x86::xor_assign_256(dst, src) }
        }
        xor_x86::Width::Scalar => xor_assign_scalar(dst, src),
    }
    #[cfg(not(target_arch = "x86_64"))]
    xor_assign_scalar(dst, src)
}

/// Three-operand fused XOR: `dst[i] = a[i] ^ b[i]`. The slices must not
/// alias (enforced by `&mut` for `dst`; `a`/`b` may alias each other).
/// One pass instead of copy-then-`xor_assign` — the XOR codec's split
/// hot loop.
#[inline]
pub(crate) fn xor_into(dst: &mut [u8], a: &[u8], b: &[u8]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    match xor_x86::width() {
        xor_x86::Width::V512 => {
            // SAFETY: width() verified AVX-512F at runtime.
            unsafe { xor_x86::xor_into_512(dst, a, b) }
        }
        xor_x86::Width::V256 => {
            // SAFETY: width() verified AVX2 at runtime.
            unsafe { xor_x86::xor_into_256(dst, a, b) }
        }
        xor_x86::Width::Scalar => xor_into_scalar(dst, a, b),
    }
    #[cfg(not(target_arch = "x86_64"))]
    xor_into_scalar(dst, a, b)
}

/// Portable fallback (and non-x86 main path, where the plain loop
/// auto-vectorizes to the target's native width, e.g. NEON).
#[inline]
fn xor_assign_scalar(dst: &mut [u8], src: &[u8]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

#[inline]
fn xor_into_scalar(dst: &mut [u8], a: &[u8], b: &[u8]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x ^ y;
    }
}

/// Runtime-dispatched wide XOR loops for x86-64, following the same
/// probe-once pattern as the multiply kernels. Pure XOR is bit-exact at
/// every width, so unlike the multiply backends there is no forced-leg
/// or byte-identity concern here.
#[cfg(target_arch = "x86_64")]
mod xor_x86 {
    use core::arch::x86_64::{
        __m256i, __m512i, _mm256_loadu_si256, _mm256_storeu_si256, _mm256_xor_si256,
        _mm512_loadu_si512, _mm512_storeu_si512, _mm512_xor_si512,
    };
    use std::sync::OnceLock;

    #[derive(Clone, Copy, Debug)]
    pub(super) enum Width {
        V512,
        V256,
        Scalar,
    }

    /// Widest XOR the host supports, probed once.
    pub(super) fn width() -> Width {
        static WIDTH: OnceLock<Width> = OnceLock::new();
        *WIDTH.get_or_init(|| {
            if is_x86_feature_detected!("avx512f") {
                Width::V512
            } else if is_x86_feature_detected!("avx2") {
                Width::V256
            } else {
                Width::Scalar
            }
        })
    }

    /// Sub-vector tail shared by every width: `u64` chunks, then bytes.
    #[inline]
    fn tail_into(dst: &mut [u8], a: &[u8], b: &[u8], mut i: usize) {
        let n = dst.len();
        while i + 8 <= n {
            let x = u64::from_ne_bytes(a[i..i + 8].try_into().expect("8 bytes"));
            let y = u64::from_ne_bytes(b[i..i + 8].try_into().expect("8 bytes"));
            dst[i..i + 8].copy_from_slice(&(x ^ y).to_ne_bytes());
            i += 8;
        }
        while i < n {
            dst[i] = a[i] ^ b[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn xor_into_512(dst: &mut [u8], a: &[u8], b: &[u8]) {
        let n = dst.len();
        let mut i = 0;
        while i + 64 <= n {
            // SAFETY: i + 64 <= n and all slices have length n.
            unsafe {
                let x: __m512i = _mm512_loadu_si512(a.as_ptr().add(i).cast());
                let y: __m512i = _mm512_loadu_si512(b.as_ptr().add(i).cast());
                _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), _mm512_xor_si512(x, y));
            }
            i += 64;
        }
        tail_into(dst, a, b, i);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_into_256(dst: &mut [u8], a: &[u8], b: &[u8]) {
        let n = dst.len();
        let mut i = 0;
        while i + 32 <= n {
            // SAFETY: i + 32 <= n and all slices have length n.
            unsafe {
                let x: __m256i = _mm256_loadu_si256(a.as_ptr().add(i).cast());
                let y: __m256i = _mm256_loadu_si256(b.as_ptr().add(i).cast());
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(x, y));
            }
            i += 32;
        }
        tail_into(dst, a, b, i);
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn xor_assign_512(dst: &mut [u8], src: &[u8]) {
        let n = dst.len();
        let mut i = 0;
        while i + 64 <= n {
            // SAFETY: i + 64 <= n and both slices have length n.
            unsafe {
                let d: __m512i = _mm512_loadu_si512(dst.as_ptr().add(i).cast());
                let s: __m512i = _mm512_loadu_si512(src.as_ptr().add(i).cast());
                _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), _mm512_xor_si512(d, s));
            }
            i += 64;
        }
        tail_assign(dst, src, i);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_assign_256(dst: &mut [u8], src: &[u8]) {
        let n = dst.len();
        let mut i = 0;
        while i + 32 <= n {
            // SAFETY: i + 32 <= n and both slices have length n.
            unsafe {
                let d: __m256i = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
                let s: __m256i = _mm256_loadu_si256(src.as_ptr().add(i).cast());
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, s));
            }
            i += 32;
        }
        tail_assign(dst, src, i);
    }

    #[inline]
    fn tail_assign(dst: &mut [u8], src: &[u8], mut i: usize) {
        let n = dst.len();
        while i + 8 <= n {
            let d = u64::from_ne_bytes(dst[i..i + 8].try_into().expect("8 bytes"));
            let s = u64::from_ne_bytes(src[i..i + 8].try_into().expect("8 bytes"));
            dst[i..i + 8].copy_from_slice(&(d ^ s).to_ne_bytes());
            i += 8;
        }
        while i < n {
            dst[i] ^= src[i];
            i += 1;
        }
    }
}

#[cfg(test)]
mod xor_tests {
    use super::{xor_assign, xor_into};

    #[test]
    fn xor_matches_reference_at_every_ragged_length() {
        for n in 0..300usize {
            let a: Vec<u8> = (0..n).map(|i| (i * 7 + 3) as u8).collect();
            let b: Vec<u8> = (0..n).map(|i| (i * 13 + 5) as u8).collect();
            let want: Vec<u8> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
            let mut dst = vec![0xEEu8; n];
            xor_into(&mut dst, &a, &b);
            assert_eq!(dst, want, "xor_into at n={n}");
            let mut acc = a.clone();
            xor_assign(&mut acc, &b);
            assert_eq!(acc, want, "xor_assign at n={n}");
        }
    }
}
