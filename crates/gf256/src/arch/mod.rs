//! Per-architecture kernel implementations behind the [`Backend`]
//! dispatch layer in [`crate::simd`].
//!
//! Each submodule implements the same four-kernel contract —
//! `scale_add`, `add_scaled`, `scale`, and the fused multi-plane
//! `horner` — over caller-owned byte slices and a caller-built
//! [`MulTable`](crate::simd::MulTable):
//!
//! * [`generic`] — the portable implementations every target gets:
//!   `scalar` (log/exp reference), `table` (256-entry row), and `swar`
//!   (8-lane `u64` shift-and-add).
//! * [`x86`] — SSSE3/AVX2 split-nibble `pshufb` (16/32 bytes per step).
//! * [`x86_avx512`] — AVX-512 VBMI `vpermb` split-nibble (64 bytes per
//!   step, SSSE3 mid-tail).
//! * [`x86_gfni`] — GFNI `gf2p8mulb` native GF(2⁸) products at 128-,
//!   256-, or 512-bit width, whichever the host offers.
//! * [`neon`] — aarch64 `vqtbl1q_u8` split-nibble (16 bytes per step).
//!
//! Every kernel is total over all lengths and alignments: vector main
//! loops use unaligned loads/stores and finish ragged tails on the
//! 256-entry table row, so byte-identity across backends holds for
//! length 0 upward (pinned by `tests/backend_diff.rs`). Modules for
//! other architectures still compile everywhere; on the wrong target
//! their entry points degrade to the portable SWAR path so the
//! [`Backend`](crate::simd::Backend) enum stays total without
//! `cfg`-dependent variants.

pub(crate) mod generic;
pub(crate) mod neon;
pub(crate) mod x86;
pub(crate) mod x86_avx512;
pub(crate) mod x86_gfni;

/// Shared `x = 1` path: plain XOR, which LLVM auto-vectorizes.
#[inline]
pub(crate) fn xor_assign(dst: &mut [u8], src: &[u8]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}
