//! AVX-512 VBMI 64-byte split-nibble kernels.
//!
//! Same algebra as the [`x86`](crate::arch::x86) `pshufb` path —
//! `b·x = LO[b & 0xf] ⊕ HI[b >> 4]` — but a `vpermb`
//! (`_mm512_permutexvar_epi8`) step translates 64 bytes at once. The
//! 16-entry nibble tables are broadcast to all four 128-bit lanes with
//! `vbroadcasti32x4`; nibble indices are < 16, so every lane of the
//! broadcast sees the same table regardless of which copy `vpermb`
//! reads. Lengths past the last 64-byte chunk finish on the SSSE3
//! 16-byte mid-tail (always present on an AVX-512 host) and then the
//! 256-entry table row.

#![cfg(target_arch = "x86_64")]

use crate::arch::x86;
use crate::simd::MulTable;
use core::arch::x86_64::{
    __m512i, _mm512_and_si512, _mm512_broadcast_i32x4, _mm512_loadu_si512, _mm512_permutexvar_epi8,
    _mm512_set1_epi8, _mm512_setzero_si512, _mm512_srli_epi64, _mm512_storeu_si512,
    _mm512_xor_si512, _mm_loadu_si128,
};
use std::sync::OnceLock;

/// Whether the host supports the `vpermb` path (AVX-512BW + VBMI),
/// cached after the first probe.
pub(crate) fn available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        is_x86_feature_detected!("avx512bw") && is_x86_feature_detected!("avx512vbmi")
    })
}

/// The broadcast nibble tables and low-nibble mask as 512-bit vectors.
///
/// # Safety
///
/// Requires AVX-512F (guaranteed by the callers' `target_feature`).
#[inline]
unsafe fn tables512(t: &MulTable) -> (__m512i, __m512i, __m512i) {
    let lo = unsafe { _mm512_broadcast_i32x4(_mm_loadu_si128(t.lo.as_ptr().cast())) };
    let hi = unsafe { _mm512_broadcast_i32x4(_mm_loadu_si128(t.hi.as_ptr().cast())) };
    (lo, hi, _mm512_set1_epi8(0x0f))
}

/// 64 field products at once: `LO[v & 0xf] ⊕ HI[v >> 4]` via `vpermb`.
#[inline]
#[target_feature(enable = "avx512f,avx512bw,avx512vbmi")]
unsafe fn mul512(v: __m512i, lo: __m512i, hi: __m512i, mask: __m512i) -> __m512i {
    let lo_n = _mm512_and_si512(v, mask);
    let hi_n = _mm512_and_si512(_mm512_srli_epi64::<4>(v), mask);
    _mm512_xor_si512(
        _mm512_permutexvar_epi8(lo_n, lo),
        _mm512_permutexvar_epi8(hi_n, hi),
    )
}

pub(crate) fn scale_add(dst: &mut [u8], src: &[u8], t: &MulTable) {
    debug_assert!(available());
    // SAFETY: available() verified AVX-512BW/VBMI at runtime.
    unsafe { scale_add_512(dst, src, t) }
}

pub(crate) fn add_scaled(dst: &mut [u8], src: &[u8], t: &MulTable) {
    debug_assert!(available());
    // SAFETY: available() verified AVX-512BW/VBMI at runtime.
    unsafe { add_scaled_512(dst, src, t) }
}

pub(crate) fn scale(dst: &mut [u8], t: &MulTable) {
    debug_assert!(available());
    // SAFETY: available() verified AVX-512BW/VBMI at runtime.
    unsafe { scale_512(dst, t) }
}

pub(crate) fn horner(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
    debug_assert!(available());
    // SAFETY: available() verified AVX-512BW/VBMI at runtime.
    unsafe { horner_512(acc, planes, t) }
}

#[target_feature(enable = "avx512f,avx512bw,avx512vbmi")]
unsafe fn scale_add_512(dst: &mut [u8], src: &[u8], t: &MulTable) {
    let (lo, hi, mask) = unsafe { tables512(t) };
    let main = dst.len() & !63;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 64 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = _mm512_loadu_si512(dst.as_ptr().add(i).cast());
            let s = _mm512_loadu_si512(src.as_ptr().add(i).cast());
            let v = _mm512_xor_si512(mul512(d, lo, hi, mask), s);
            _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), v);
        }
        i += 64;
    }
    // SAFETY: AVX-512 implies SSSE3.
    unsafe { x86::scale_add_tail128(dst, src, t, main) }
}

#[target_feature(enable = "avx512f,avx512bw,avx512vbmi")]
unsafe fn add_scaled_512(dst: &mut [u8], src: &[u8], t: &MulTable) {
    let (lo, hi, mask) = unsafe { tables512(t) };
    let main = dst.len() & !63;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 64 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = _mm512_loadu_si512(dst.as_ptr().add(i).cast());
            let s = _mm512_loadu_si512(src.as_ptr().add(i).cast());
            let v = _mm512_xor_si512(d, mul512(s, lo, hi, mask));
            _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), v);
        }
        i += 64;
    }
    // SAFETY: AVX-512 implies SSSE3.
    unsafe { x86::add_scaled_tail128(dst, src, t, main) }
}

#[target_feature(enable = "avx512f,avx512bw,avx512vbmi")]
unsafe fn scale_512(dst: &mut [u8], t: &MulTable) {
    let (lo, hi, mask) = unsafe { tables512(t) };
    let main = dst.len() & !63;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 64 ≤ main ≤ dst.len().
        unsafe {
            let d = _mm512_loadu_si512(dst.as_ptr().add(i).cast());
            _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), mul512(d, lo, hi, mask));
        }
        i += 64;
    }
    // SAFETY: AVX-512 implies SSSE3.
    unsafe { x86::scale_tail128(dst, t, main) }
}

#[target_feature(enable = "avx512f,avx512bw,avx512vbmi")]
unsafe fn horner_512(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
    let (lo, hi, mask) = unsafe { tables512(t) };
    let main = acc.len() & !63;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 64 ≤ main ≤ acc.len() == every plane's len.
        unsafe {
            let mut a = _mm512_setzero_si512();
            for p in planes {
                let pv = _mm512_loadu_si512(p.as_ptr().add(i).cast());
                a = _mm512_xor_si512(mul512(a, lo, hi, mask), pv);
            }
            _mm512_storeu_si512(acc.as_mut_ptr().add(i).cast(), a);
        }
        i += 64;
    }
    // SAFETY: AVX-512 implies SSSE3.
    unsafe { x86::horner_tail128(acc, planes, t, main) }
}
