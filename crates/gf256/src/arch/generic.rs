//! Portable kernel implementations: the scalar log/exp reference, the
//! 256-entry table row, and the 8-lane SWAR path. These run on every
//! target and serve as the tail path for every vector backend.

/// Reference kernels: two log/exp hops per byte, zero checks inline.
pub(crate) mod scalar {
    use crate::simd::MulTable;
    use crate::{EXP, LOG};

    #[inline]
    fn mul(b: u8, log_x: usize) -> u8 {
        if b == 0 {
            0
        } else {
            EXP[LOG[b as usize] as usize + log_x]
        }
    }

    pub fn scale_add(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let log_x = LOG[t.x().value() as usize] as usize;
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = mul(*d, log_x) ^ s;
        }
    }

    pub fn add_scaled(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let log_x = LOG[t.x().value() as usize] as usize;
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= mul(s, log_x);
        }
    }

    pub fn scale(dst: &mut [u8], t: &MulTable) {
        let log_x = LOG[t.x().value() as usize] as usize;
        for d in dst.iter_mut() {
            *d = mul(*d, log_x);
        }
    }

    pub fn horner(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
        let log_x = LOG[t.x().value() as usize] as usize;
        for (i, a) in acc.iter_mut().enumerate() {
            let mut v = 0u8;
            for p in planes {
                v = mul(v, log_x) ^ p[i];
            }
            *a = v;
        }
    }
}

/// One 256-entry table hop per byte, table provided by the caller.
pub(crate) mod table {
    use crate::simd::MulTable;

    pub fn scale_add(dst: &mut [u8], src: &[u8], t: &MulTable) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = t.row[*d as usize] ^ s;
        }
    }

    pub fn add_scaled(dst: &mut [u8], src: &[u8], t: &MulTable) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= t.row[s as usize];
        }
    }

    pub fn scale(dst: &mut [u8], t: &MulTable) {
        for d in dst.iter_mut() {
            *d = t.row[*d as usize];
        }
    }

    pub fn horner(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
        for (i, a) in acc.iter_mut().enumerate() {
            let mut v = 0u8;
            for p in planes {
                v = t.row[v as usize] ^ p[i];
            }
            *a = v;
        }
    }

    /// Table-row tail shared by every vector backend: finishes
    /// `acc[from..]` of a fused Horner pass byte-by-byte.
    pub fn horner_tail(acc: &mut [u8], planes: &[&[u8]], t: &MulTable, from: usize) {
        for (i, a) in acc.iter_mut().enumerate().skip(from) {
            let mut v = 0u8;
            for p in planes {
                v = t.row[v as usize] ^ p[i];
            }
            *a = v;
        }
    }
}

/// Portable 8-lane SWAR kernels: eight bytes per `u64`, multiplied by
/// shift-and-add over the bits of `x` with a lane-parallel `xtime`.
pub(crate) mod swar {
    use crate::simd::MulTable;

    const HIGH_BITS: u64 = 0x8080_8080_8080_8080;
    const LOW_SEVEN: u64 = 0x7f7f_7f7f_7f7f_7f7f;

    /// Multiplies all eight byte lanes of `v` by the scalar `x`:
    /// `acc ⊕= v` for each set bit of `x`, doubling `v` between bits.
    /// `xtime` doubles every lane at once — shift the low seven bits
    /// left, then XOR 0x1b into exactly the lanes whose top bit was
    /// set (`(hi >> 7) * 0x1b` spreads 0x1b into those lanes without
    /// cross-lane carries, since lanes are 8 bits apart).
    #[inline]
    fn mul_word(mut v: u64, mut x: u8) -> u64 {
        let mut acc = 0u64;
        while x != 0 {
            if x & 1 != 0 {
                acc ^= v;
            }
            let hi = v & HIGH_BITS;
            v = ((v & LOW_SEVEN) << 1) ^ ((hi >> 7) * 0x1b);
            x >>= 1;
        }
        acc
    }

    #[inline]
    fn load(bytes: &[u8]) -> u64 {
        u64::from_ne_bytes(bytes.try_into().expect("8-byte chunk"))
    }

    pub fn scale_add(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let x = t.x().value();
        let main = dst.len() & !7;
        for (dc, sc) in dst[..main]
            .chunks_exact_mut(8)
            .zip(src[..main].chunks_exact(8))
        {
            let v = mul_word(load(dc), x) ^ load(sc);
            dc.copy_from_slice(&v.to_ne_bytes());
        }
        for (d, &s) in dst[main..].iter_mut().zip(&src[main..]) {
            *d = t.row[*d as usize] ^ s;
        }
    }

    pub fn add_scaled(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let x = t.x().value();
        let main = dst.len() & !7;
        for (dc, sc) in dst[..main]
            .chunks_exact_mut(8)
            .zip(src[..main].chunks_exact(8))
        {
            let v = load(dc) ^ mul_word(load(sc), x);
            dc.copy_from_slice(&v.to_ne_bytes());
        }
        for (d, &s) in dst[main..].iter_mut().zip(&src[main..]) {
            *d ^= t.row[s as usize];
        }
    }

    pub fn scale(dst: &mut [u8], t: &MulTable) {
        let x = t.x().value();
        let main = dst.len() & !7;
        for dc in dst[..main].chunks_exact_mut(8) {
            let v = mul_word(load(dc), x);
            dc.copy_from_slice(&v.to_ne_bytes());
        }
        for d in dst[main..].iter_mut() {
            *d = t.row[*d as usize];
        }
    }

    pub fn horner(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
        let x = t.x().value();
        let main = acc.len() & !7;
        let mut off = 0;
        for ac in acc[..main].chunks_exact_mut(8) {
            let mut v = 0u64;
            for p in planes {
                v = mul_word(v, x) ^ load(&p[off..off + 8]);
            }
            ac.copy_from_slice(&v.to_ne_bytes());
            off += 8;
        }
        super::table::horner_tail(acc, planes, t, main);
    }
}
