//! aarch64 NEON split-nibble kernels: the `pshufb` algebra on
//! `vqtbl1q_u8`.
//!
//! Identical decomposition to the [`x86`](crate::arch::x86) path —
//! `b·x = LO[b & 0xf] ⊕ HI[b >> 4]` with the 16-entry nibble tables
//! from the caller's [`MulTable`] — expressed with the AArch64 table
//! lookup: `vqtbl1q_u8(table, idx)` selects 16 bytes from a 16-byte
//! table, exactly the shuffle the nibble tables need (indices are
//! masked below 16, so the out-of-range-yields-zero semantics of
//! `TBL` never fire). 16 bytes per step; ragged tails finish on the
//! 256-entry table row, so all lengths and alignments are handled.

#![cfg(target_arch = "aarch64")]

use crate::arch::generic::table;
use crate::simd::MulTable;
use core::arch::aarch64::{
    uint8x16_t, vandq_u8, vdupq_n_u8, veorq_u8, vld1q_u8, vqtbl1q_u8, vshrq_n_u8, vst1q_u8,
};
use std::sync::OnceLock;

/// Whether the host supports the NEON path, cached after the first
/// probe. (Linux aarch64 targets bake NEON into the baseline, but the
/// probe keeps the contract explicit and covers exotic targets.)
pub(crate) fn available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| std::arch::is_aarch64_feature_detected!("neon"))
}

/// The nibble tables as 128-bit vectors plus the low-nibble mask.
///
/// # Safety
///
/// Requires NEON (guaranteed by the callers' `target_feature`).
#[inline]
unsafe fn tables(t: &MulTable) -> (uint8x16_t, uint8x16_t, uint8x16_t) {
    let lo = unsafe { vld1q_u8(t.lo.as_ptr()) };
    let hi = unsafe { vld1q_u8(t.hi.as_ptr()) };
    (lo, hi, unsafe { vdupq_n_u8(0x0f) })
}

/// 16 field products at once: `LO[v & 0xf] ⊕ HI[v >> 4]`.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn mul16(v: uint8x16_t, lo: uint8x16_t, hi: uint8x16_t, mask: uint8x16_t) -> uint8x16_t {
    let lo_n = vandq_u8(v, mask);
    let hi_n = vshrq_n_u8::<4>(v);
    veorq_u8(vqtbl1q_u8(lo, lo_n), vqtbl1q_u8(hi, hi_n))
}

pub(crate) fn scale_add(dst: &mut [u8], src: &[u8], t: &MulTable) {
    debug_assert!(available());
    // SAFETY: available() verified NEON at runtime.
    unsafe { scale_add_neon(dst, src, t) }
}

pub(crate) fn add_scaled(dst: &mut [u8], src: &[u8], t: &MulTable) {
    debug_assert!(available());
    // SAFETY: available() verified NEON at runtime.
    unsafe { add_scaled_neon(dst, src, t) }
}

pub(crate) fn scale(dst: &mut [u8], t: &MulTable) {
    debug_assert!(available());
    // SAFETY: available() verified NEON at runtime.
    unsafe { scale_neon(dst, t) }
}

pub(crate) fn horner(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
    debug_assert!(available());
    // SAFETY: available() verified NEON at runtime.
    unsafe { horner_neon(acc, planes, t) }
}

#[target_feature(enable = "neon")]
unsafe fn scale_add_neon(dst: &mut [u8], src: &[u8], t: &MulTable) {
    let (lo, hi, mask) = unsafe { tables(t) };
    let main = dst.len() & !15;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 16 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = vld1q_u8(dst.as_ptr().add(i));
            let s = vld1q_u8(src.as_ptr().add(i));
            let v = veorq_u8(mul16(d, lo, hi, mask), s);
            vst1q_u8(dst.as_mut_ptr().add(i), v);
        }
        i += 16;
    }
    table::scale_add(&mut dst[main..], &src[main..], t);
}

#[target_feature(enable = "neon")]
unsafe fn add_scaled_neon(dst: &mut [u8], src: &[u8], t: &MulTable) {
    let (lo, hi, mask) = unsafe { tables(t) };
    let main = dst.len() & !15;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 16 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = vld1q_u8(dst.as_ptr().add(i));
            let s = vld1q_u8(src.as_ptr().add(i));
            let v = veorq_u8(d, mul16(s, lo, hi, mask));
            vst1q_u8(dst.as_mut_ptr().add(i), v);
        }
        i += 16;
    }
    table::add_scaled(&mut dst[main..], &src[main..], t);
}

#[target_feature(enable = "neon")]
unsafe fn scale_neon(dst: &mut [u8], t: &MulTable) {
    let (lo, hi, mask) = unsafe { tables(t) };
    let main = dst.len() & !15;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 16 ≤ main ≤ dst.len().
        unsafe {
            let d = vld1q_u8(dst.as_ptr().add(i));
            vst1q_u8(dst.as_mut_ptr().add(i), mul16(d, lo, hi, mask));
        }
        i += 16;
    }
    table::scale(&mut dst[main..], t);
}

#[target_feature(enable = "neon")]
unsafe fn horner_neon(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
    let (lo, hi, mask) = unsafe { tables(t) };
    let main = acc.len() & !15;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 16 ≤ main ≤ acc.len() == every plane's len.
        unsafe {
            let mut a = vdupq_n_u8(0);
            for p in planes {
                let pv = vld1q_u8(p.as_ptr().add(i));
                a = veorq_u8(mul16(a, lo, hi, mask), pv);
            }
            vst1q_u8(acc.as_mut_ptr().add(i), a);
        }
        i += 16;
    }
    table::horner_tail(acc, planes, t, main);
}
