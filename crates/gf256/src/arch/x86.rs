//! x86-64 split-nibble `pshufb` kernels (SSSE3 and AVX2 widths).
//!
//! The product by a fixed multiplier `x` factors through the nibbles:
//! `b·x = LO[b & 0xf] ⊕ HI[b >> 4]` where `LO`/`HI` are the 16-entry
//! tables held in the caller's [`MulTable`]. One `_mm_shuffle_epi8`
//! (SSSE3, 16 bytes/step) or `_mm256_shuffle_epi8` (AVX2, 32
//! bytes/step) therefore performs 16/32 field multiplications. Ragged
//! tails fall back to the 256-entry table row, so any length (and any
//! alignment — all loads/stores are unaligned) is handled.

#![cfg(target_arch = "x86_64")]

use crate::arch::generic::table;
use crate::simd::MulTable;
use core::arch::x86_64::{
    __m128i, __m256i, _mm256_and_si256, _mm256_broadcastsi128_si256, _mm256_loadu_si256,
    _mm256_set1_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi64,
    _mm256_storeu_si256, _mm256_xor_si256, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8,
    _mm_setzero_si128, _mm_shuffle_epi8, _mm_srli_epi64, _mm_storeu_si128, _mm_xor_si128,
};
use std::sync::OnceLock;

/// The x86 vector width the `simd` backend runs at on this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SimdLevel {
    Ssse3,
    Avx2,
}

/// Detects (once) whether the host supports the `pshufb` path, and at
/// which width. `None` means `Backend::Simd` is unavailable.
pub(crate) fn level() -> Option<SimdLevel> {
    static LEVEL: OnceLock<Option<SimdLevel>> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if is_x86_feature_detected!("avx2") {
            Some(SimdLevel::Avx2)
        } else if is_x86_feature_detected!("ssse3") {
            Some(SimdLevel::Ssse3)
        } else {
            None
        }
    })
}

/// The nibble tables as 128-bit lanes plus the low-nibble mask.
///
/// # Safety
///
/// Requires SSSE3 (guaranteed by the callers' `target_feature`).
#[inline]
pub(crate) unsafe fn tables128(t: &MulTable) -> (__m128i, __m128i, __m128i) {
    let lo = unsafe { _mm_loadu_si128(t.lo.as_ptr().cast()) };
    let hi = unsafe { _mm_loadu_si128(t.hi.as_ptr().cast()) };
    (lo, hi, _mm_set1_epi8(0x0f))
}

/// 16 field products at once: `LO[v & 0xf] ⊕ HI[v >> 4]`.
#[inline]
#[target_feature(enable = "ssse3")]
pub(crate) unsafe fn mul128(v: __m128i, lo: __m128i, hi: __m128i, mask: __m128i) -> __m128i {
    let lo_n = _mm_and_si128(v, mask);
    let hi_n = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    _mm_xor_si128(_mm_shuffle_epi8(lo, lo_n), _mm_shuffle_epi8(hi, hi_n))
}

/// 32 field products at once (both 128-bit lanes use the same
/// broadcast tables — `vpshufb` shuffles within lanes, which is
/// exactly what the 16-entry tables need).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mul256(v: __m256i, lo: __m256i, hi: __m256i, mask: __m256i) -> __m256i {
    let lo_n = _mm256_and_si256(v, mask);
    let hi_n = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
    _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_n), _mm256_shuffle_epi8(hi, hi_n))
}

macro_rules! dispatch {
    ($avx2:ident, $ssse3:ident, $($arg:expr),+) => {
        match level().expect("Simd backend requires SSSE3") {
            // SAFETY: level() verified the feature at runtime.
            SimdLevel::Avx2 => unsafe { $avx2($($arg),+) },
            SimdLevel::Ssse3 => unsafe { $ssse3($($arg),+) },
        }
    };
}

pub(crate) fn scale_add(dst: &mut [u8], src: &[u8], t: &MulTable) {
    dispatch!(scale_add_avx2, scale_add_ssse3, dst, src, t)
}

pub(crate) fn add_scaled(dst: &mut [u8], src: &[u8], t: &MulTable) {
    dispatch!(add_scaled_avx2, add_scaled_ssse3, dst, src, t)
}

pub(crate) fn scale(dst: &mut [u8], t: &MulTable) {
    dispatch!(scale_avx2, scale_ssse3, dst, t)
}

pub(crate) fn horner(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
    dispatch!(horner_avx2, horner_ssse3, acc, planes, t)
}

/// SSSE3 16-byte mid-tail shared with the wider x86 backends: runs
/// `dst[i..] ← dst·x ⊕ src` over whole 16-byte chunks starting at `i`,
/// returning the new offset; the last `< 16` bytes stay for the table
/// row.
///
/// # Safety
///
/// Requires SSSE3; `dst.len() == src.len()`.
#[target_feature(enable = "ssse3")]
pub(crate) unsafe fn scale_add_tail128(dst: &mut [u8], src: &[u8], t: &MulTable, mut i: usize) {
    let (lo, hi, mask) = unsafe { tables128(t) };
    let main = dst.len() & !15;
    while i < main {
        // SAFETY: i + 16 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let v = _mm_xor_si128(mul128(d, lo, hi, mask), s);
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), v);
        }
        i += 16;
    }
    table::scale_add(&mut dst[main..], &src[main..], t);
}

/// SSSE3 16-byte mid-tail of `add_scaled` from offset `i` (see
/// [`scale_add_tail128`]).
///
/// # Safety
///
/// Requires SSSE3; `dst.len() == src.len()`.
#[target_feature(enable = "ssse3")]
pub(crate) unsafe fn add_scaled_tail128(dst: &mut [u8], src: &[u8], t: &MulTable, mut i: usize) {
    let (lo, hi, mask) = unsafe { tables128(t) };
    let main = dst.len() & !15;
    while i < main {
        // SAFETY: i + 16 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let v = _mm_xor_si128(d, mul128(s, lo, hi, mask));
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), v);
        }
        i += 16;
    }
    table::add_scaled(&mut dst[main..], &src[main..], t);
}

/// SSSE3 16-byte mid-tail of `scale` from offset `i` (see
/// [`scale_add_tail128`]).
///
/// # Safety
///
/// Requires SSSE3.
#[target_feature(enable = "ssse3")]
pub(crate) unsafe fn scale_tail128(dst: &mut [u8], t: &MulTable, mut i: usize) {
    let (lo, hi, mask) = unsafe { tables128(t) };
    let main = dst.len() & !15;
    while i < main {
        // SAFETY: i + 16 ≤ main ≤ dst.len().
        unsafe {
            let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), mul128(d, lo, hi, mask));
        }
        i += 16;
    }
    table::scale(&mut dst[main..], t);
}

/// SSSE3 16-byte mid-tail of the fused Horner from offset `i` (see
/// [`scale_add_tail128`]).
///
/// # Safety
///
/// Requires SSSE3; every plane's length equals `acc.len()`.
#[target_feature(enable = "ssse3")]
pub(crate) unsafe fn horner_tail128(acc: &mut [u8], planes: &[&[u8]], t: &MulTable, mut i: usize) {
    let (lo, hi, mask) = unsafe { tables128(t) };
    let main = acc.len() & !15;
    while i < main {
        // SAFETY: i + 16 ≤ main ≤ acc.len() == every plane's len.
        unsafe {
            let mut a = _mm_setzero_si128();
            for p in planes {
                let pv = _mm_loadu_si128(p.as_ptr().add(i).cast());
                a = _mm_xor_si128(mul128(a, lo, hi, mask), pv);
            }
            _mm_storeu_si128(acc.as_mut_ptr().add(i).cast(), a);
        }
        i += 16;
    }
    table::horner_tail(acc, planes, t, main);
}

#[target_feature(enable = "ssse3")]
unsafe fn scale_add_ssse3(dst: &mut [u8], src: &[u8], t: &MulTable) {
    unsafe { scale_add_tail128(dst, src, t, 0) }
}

#[target_feature(enable = "avx2")]
unsafe fn scale_add_avx2(dst: &mut [u8], src: &[u8], t: &MulTable) {
    let lo = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast())) };
    let hi = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast())) };
    let mask = _mm256_set1_epi8(0x0f);
    let main = dst.len() & !31;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 32 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let v = _mm256_xor_si256(mul256(d, lo, hi, mask), s);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), v);
        }
        i += 32;
    }
    table::scale_add(&mut dst[main..], &src[main..], t);
}

#[target_feature(enable = "ssse3")]
unsafe fn add_scaled_ssse3(dst: &mut [u8], src: &[u8], t: &MulTable) {
    unsafe { add_scaled_tail128(dst, src, t, 0) }
}

#[target_feature(enable = "avx2")]
unsafe fn add_scaled_avx2(dst: &mut [u8], src: &[u8], t: &MulTable) {
    let lo = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast())) };
    let hi = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast())) };
    let mask = _mm256_set1_epi8(0x0f);
    let main = dst.len() & !31;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 32 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let v = _mm256_xor_si256(d, mul256(s, lo, hi, mask));
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), v);
        }
        i += 32;
    }
    table::add_scaled(&mut dst[main..], &src[main..], t);
}

#[target_feature(enable = "ssse3")]
unsafe fn scale_ssse3(dst: &mut [u8], t: &MulTable) {
    unsafe { scale_tail128(dst, t, 0) }
}

#[target_feature(enable = "avx2")]
unsafe fn scale_avx2(dst: &mut [u8], t: &MulTable) {
    let lo = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast())) };
    let hi = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast())) };
    let mask = _mm256_set1_epi8(0x0f);
    let main = dst.len() & !31;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 32 ≤ main ≤ dst.len().
        unsafe {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), mul256(d, lo, hi, mask));
        }
        i += 32;
    }
    table::scale(&mut dst[main..], t);
}

#[target_feature(enable = "ssse3")]
unsafe fn horner_ssse3(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
    unsafe { horner_tail128(acc, planes, t, 0) }
}

#[target_feature(enable = "avx2")]
unsafe fn horner_avx2(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
    let lo = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast())) };
    let hi = unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast())) };
    let mask = _mm256_set1_epi8(0x0f);
    let main = acc.len() & !31;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 32 ≤ main ≤ acc.len() == every plane's len.
        unsafe {
            let mut a = _mm256_setzero_si256();
            for p in planes {
                let pv = _mm256_loadu_si256(p.as_ptr().add(i).cast());
                a = _mm256_xor_si256(mul256(a, lo, hi, mask), pv);
            }
            _mm256_storeu_si256(acc.as_mut_ptr().add(i).cast(), a);
        }
        i += 32;
    }
    table::horner_tail(acc, planes, t, main);
}
