//! GFNI kernels: `gf2p8mulb` computes GF(2⁸) products **natively**.
//!
//! The Galois Field New Instructions define multiplication in exactly
//! this crate's field — GF(2)[x] mod x⁸ + x⁴ + x³ + x + 1 (0x11B, the
//! AES/Rijndael polynomial) — so one `_mm_gf2p8mul_epi8` against a
//! broadcast multiplier replaces the whole split-nibble dance: no
//! nibble tables, no shuffles, one instruction per 16/32/64 bytes
//! depending on width. (The companion `gf2p8affineqb` applies an
//! arbitrary 8×8 GF(2) bit-matrix — any *fixed*-multiplier product is
//! such a linear map — but since the field polynomial matches, the
//! direct multiply needs no per-multiplier matrix at all; see
//! DESIGN.md "Field kernels" for the derivation.)
//!
//! Width is chosen once per process: 512-bit with AVX-512BW, 256-bit
//! with AVX2, else the 128-bit SSE form every GFNI host supports.
//! Wider kernels step down through the 128-bit GFNI loop before
//! finishing the last `< 16` bytes on the table row, so all lengths
//! and alignments are handled.

#![cfg(target_arch = "x86_64")]

use crate::arch::generic::table;
use crate::simd::MulTable;
use core::arch::x86_64::{
    __m128i, _mm256_gf2p8mul_epi8, _mm256_loadu_si256, _mm256_set1_epi8, _mm256_setzero_si256,
    _mm256_storeu_si256, _mm256_xor_si256, _mm512_gf2p8mul_epi8, _mm512_loadu_si512,
    _mm512_set1_epi8, _mm512_setzero_si512, _mm512_storeu_si512, _mm512_xor_si512,
    _mm_gf2p8mul_epi8, _mm_loadu_si128, _mm_set1_epi8, _mm_setzero_si128, _mm_storeu_si128,
    _mm_xor_si128,
};
use std::sync::OnceLock;

/// The vector width the GFNI backend runs at on this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GfniLevel {
    /// SSE encoding, 16 bytes per `gf2p8mulb`.
    G128,
    /// VEX encoding (AVX2 host), 32 bytes.
    G256,
    /// EVEX encoding (AVX-512BW host), 64 bytes.
    G512,
}

/// Detects (once) whether the host has GFNI, and at which width.
/// `None` means `Backend::Gfni` is unavailable.
fn level() -> Option<GfniLevel> {
    static LEVEL: OnceLock<Option<GfniLevel>> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if !is_x86_feature_detected!("gfni") {
            None
        } else if is_x86_feature_detected!("avx512bw") {
            Some(GfniLevel::G512)
        } else if is_x86_feature_detected!("avx2") {
            Some(GfniLevel::G256)
        } else {
            Some(GfniLevel::G128)
        }
    })
}

/// Whether the host supports any GFNI width, cached.
pub(crate) fn available() -> bool {
    level().is_some()
}

macro_rules! dispatch {
    ($f512:ident, $f256:ident, $f128:ident, $($arg:expr),+) => {
        match level().expect("Gfni backend requires GFNI") {
            // SAFETY: level() verified the features at runtime.
            GfniLevel::G512 => unsafe { $f512($($arg),+) },
            GfniLevel::G256 => unsafe { $f256($($arg),+) },
            GfniLevel::G128 => unsafe { $f128($($arg),+, 0) },
        }
    };
}

pub(crate) fn scale_add(dst: &mut [u8], src: &[u8], t: &MulTable) {
    dispatch!(
        scale_add_512,
        scale_add_256,
        scale_add_from_128,
        dst,
        src,
        t
    )
}

pub(crate) fn add_scaled(dst: &mut [u8], src: &[u8], t: &MulTable) {
    dispatch!(
        add_scaled_512,
        add_scaled_256,
        add_scaled_from_128,
        dst,
        src,
        t
    )
}

pub(crate) fn scale(dst: &mut [u8], t: &MulTable) {
    dispatch!(scale_512, scale_256, scale_from_128, dst, t)
}

pub(crate) fn horner(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
    dispatch!(horner_512, horner_256, horner_from_128, acc, planes, t)
}

/// The multiplier broadcast to all 16 lanes of a 128-bit vector.
#[inline]
fn x128(t: &MulTable) -> __m128i {
    // SAFETY: _mm_set1_epi8 is sse2, baseline on x86_64.
    unsafe { _mm_set1_epi8(t.x().value() as i8) }
}

// --- 128-bit (SSE encoding) kernels, from a starting offset so the
// --- wider widths reuse them as their mid-tail. ---------------------

#[target_feature(enable = "gfni")]
unsafe fn scale_add_from_128(dst: &mut [u8], src: &[u8], t: &MulTable, mut i: usize) {
    let x = x128(t);
    let main = dst.len() & !15;
    while i < main {
        // SAFETY: i + 16 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let v = _mm_xor_si128(_mm_gf2p8mul_epi8(d, x), s);
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), v);
        }
        i += 16;
    }
    table::scale_add(&mut dst[main..], &src[main..], t);
}

#[target_feature(enable = "gfni")]
unsafe fn add_scaled_from_128(dst: &mut [u8], src: &[u8], t: &MulTable, mut i: usize) {
    let x = x128(t);
    let main = dst.len() & !15;
    while i < main {
        // SAFETY: i + 16 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let v = _mm_xor_si128(d, _mm_gf2p8mul_epi8(s, x));
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), v);
        }
        i += 16;
    }
    table::add_scaled(&mut dst[main..], &src[main..], t);
}

#[target_feature(enable = "gfni")]
unsafe fn scale_from_128(dst: &mut [u8], t: &MulTable, mut i: usize) {
    let x = x128(t);
    let main = dst.len() & !15;
    while i < main {
        // SAFETY: i + 16 ≤ main ≤ dst.len().
        unsafe {
            let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_gf2p8mul_epi8(d, x));
        }
        i += 16;
    }
    table::scale(&mut dst[main..], t);
}

#[target_feature(enable = "gfni")]
unsafe fn horner_from_128(acc: &mut [u8], planes: &[&[u8]], t: &MulTable, mut i: usize) {
    let x = x128(t);
    let main = acc.len() & !15;
    while i < main {
        // SAFETY: i + 16 ≤ main ≤ acc.len() == every plane's len.
        unsafe {
            let mut a = _mm_setzero_si128();
            for p in planes {
                let pv = _mm_loadu_si128(p.as_ptr().add(i).cast());
                a = _mm_xor_si128(_mm_gf2p8mul_epi8(a, x), pv);
            }
            _mm_storeu_si128(acc.as_mut_ptr().add(i).cast(), a);
        }
        i += 16;
    }
    table::horner_tail(acc, planes, t, main);
}

// --- 256-bit (VEX encoding) kernels. --------------------------------

#[target_feature(enable = "gfni,avx2")]
unsafe fn scale_add_256(dst: &mut [u8], src: &[u8], t: &MulTable) {
    let x = _mm256_set1_epi8(t.x().value() as i8);
    let main = dst.len() & !31;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 32 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let v = _mm256_xor_si256(_mm256_gf2p8mul_epi8(d, x), s);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), v);
        }
        i += 32;
    }
    // SAFETY: GFNI is active (the 128-bit form needs nothing wider).
    unsafe { scale_add_from_128(dst, src, t, main) }
}

#[target_feature(enable = "gfni,avx2")]
unsafe fn add_scaled_256(dst: &mut [u8], src: &[u8], t: &MulTable) {
    let x = _mm256_set1_epi8(t.x().value() as i8);
    let main = dst.len() & !31;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 32 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let v = _mm256_xor_si256(d, _mm256_gf2p8mul_epi8(s, x));
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), v);
        }
        i += 32;
    }
    // SAFETY: GFNI is active.
    unsafe { add_scaled_from_128(dst, src, t, main) }
}

#[target_feature(enable = "gfni,avx2")]
unsafe fn scale_256(dst: &mut [u8], t: &MulTable) {
    let x = _mm256_set1_epi8(t.x().value() as i8);
    let main = dst.len() & !31;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 32 ≤ main ≤ dst.len().
        unsafe {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_gf2p8mul_epi8(d, x));
        }
        i += 32;
    }
    // SAFETY: GFNI is active.
    unsafe { scale_from_128(dst, t, main) }
}

#[target_feature(enable = "gfni,avx2")]
unsafe fn horner_256(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
    let x = _mm256_set1_epi8(t.x().value() as i8);
    let main = acc.len() & !31;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 32 ≤ main ≤ acc.len() == every plane's len.
        unsafe {
            let mut a = _mm256_setzero_si256();
            for p in planes {
                let pv = _mm256_loadu_si256(p.as_ptr().add(i).cast());
                a = _mm256_xor_si256(_mm256_gf2p8mul_epi8(a, x), pv);
            }
            _mm256_storeu_si256(acc.as_mut_ptr().add(i).cast(), a);
        }
        i += 32;
    }
    // SAFETY: GFNI is active.
    unsafe { horner_from_128(acc, planes, t, main) }
}

// --- 512-bit (EVEX encoding) kernels. -------------------------------

#[target_feature(enable = "gfni,avx512f,avx512bw")]
unsafe fn scale_add_512(dst: &mut [u8], src: &[u8], t: &MulTable) {
    let x = _mm512_set1_epi8(t.x().value() as i8);
    let main = dst.len() & !63;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 64 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = _mm512_loadu_si512(dst.as_ptr().add(i).cast());
            let s = _mm512_loadu_si512(src.as_ptr().add(i).cast());
            let v = _mm512_xor_si512(_mm512_gf2p8mul_epi8(d, x), s);
            _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), v);
        }
        i += 64;
    }
    // SAFETY: GFNI is active.
    unsafe { scale_add_from_128(dst, src, t, main) }
}

#[target_feature(enable = "gfni,avx512f,avx512bw")]
unsafe fn add_scaled_512(dst: &mut [u8], src: &[u8], t: &MulTable) {
    let x = _mm512_set1_epi8(t.x().value() as i8);
    let main = dst.len() & !63;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 64 ≤ main ≤ dst.len() == src.len().
        unsafe {
            let d = _mm512_loadu_si512(dst.as_ptr().add(i).cast());
            let s = _mm512_loadu_si512(src.as_ptr().add(i).cast());
            let v = _mm512_xor_si512(d, _mm512_gf2p8mul_epi8(s, x));
            _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), v);
        }
        i += 64;
    }
    // SAFETY: GFNI is active.
    unsafe { add_scaled_from_128(dst, src, t, main) }
}

#[target_feature(enable = "gfni,avx512f,avx512bw")]
unsafe fn scale_512(dst: &mut [u8], t: &MulTable) {
    let x = _mm512_set1_epi8(t.x().value() as i8);
    let main = dst.len() & !63;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 64 ≤ main ≤ dst.len().
        unsafe {
            let d = _mm512_loadu_si512(dst.as_ptr().add(i).cast());
            _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), _mm512_gf2p8mul_epi8(d, x));
        }
        i += 64;
    }
    // SAFETY: GFNI is active.
    unsafe { scale_from_128(dst, t, main) }
}

#[target_feature(enable = "gfni,avx512f,avx512bw")]
unsafe fn horner_512(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
    let x = _mm512_set1_epi8(t.x().value() as i8);
    let main = acc.len() & !63;
    let mut i = 0;
    while i < main {
        // SAFETY: i + 64 ≤ main ≤ acc.len() == every plane's len.
        unsafe {
            let mut a = _mm512_setzero_si512();
            for p in planes {
                let pv = _mm512_loadu_si512(p.as_ptr().add(i).cast());
                a = _mm512_xor_si512(_mm512_gf2p8mul_epi8(a, x), pv);
            }
            _mm512_storeu_si512(acc.as_mut_ptr().add(i).cast(), a);
        }
        i += 64;
    }
    // SAFETY: GFNI is active.
    unsafe { horner_from_128(acc, planes, t, main) }
}
