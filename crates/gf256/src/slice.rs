//! Bulk field operations on byte slices.
//!
//! Shamir sharing of packet-sized secrets evaluates one polynomial per
//! byte. Doing that byte-by-byte walks the log/exp tables with a data
//! dependency per step; the slice forms here process whole coefficient
//! *planes* at once (all bytes' i-th coefficients together).
//! [`mcss_shamir`](https://docs.rs/mcss-shamir) evaluates shares with
//! one [`scale_add_assign`] per coefficient plane (Horner over planes),
//! or all planes at once through the fused [`horner_into`].
//!
//! Slices below [`DISPATCH_THRESHOLD`] run a scalar log/exp loop with no
//! setup cost; everything longer builds a [`MulTable`] for the
//! multiplier and dispatches through [`Backend::for_len`] — the
//! runtime-detected vector path (GFNI / AVX-512 VBMI / `pshufb` on
//! x86_64, NEON on aarch64; see [`crate::simd`]), with lengths below the
//! backend's measured crossover routed to the `table` path. Callers that
//! reuse one multiplier across several calls should build the
//! [`MulTable`] themselves and use the `_with` variants, which skip the
//! per-call table construction but keep the length-aware routing.

use crate::arch;
use crate::simd::{Backend, MulTable};
use crate::{Gf256, EXP, GROUP_ORDER, LOG};

/// Slice length from which the kernels build a [`MulTable`] and dispatch
/// to the active [`Backend`] instead of doing two scalar table hops per
/// byte. The table build costs ~256 lookups and the vector kernels save
/// several ops per byte, so it pays for itself within ~100 bytes;
/// protocol symbol planes (1250 B default) and batched (concatenated-
/// plane) callers sit well above this.
const DISPATCH_THRESHOLD: usize = 128;

/// `dst[i] ← dst[i] · x  ⊕  src[i]` for every `i` — one Horner step over
/// a coefficient plane.
///
/// With `x = 0` this reduces to copying `src` into `dst`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use mcss_gf256::{slice, Gf256};
///
/// let mut acc = [0x02, 0x03];
/// slice::scale_add_assign(&mut acc, &[0x01, 0x00], Gf256::new(2));
/// assert_eq!(acc, [0x04 ^ 0x01, 0x06]);
/// ```
pub fn scale_add_assign(dst: &mut [u8], src: &[u8], x: Gf256) {
    assert_eq!(dst.len(), src.len(), "plane lengths must match");
    if x.is_zero() {
        dst.copy_from_slice(src);
        return;
    }
    if x == Gf256::ONE {
        arch::xor_assign(dst, src);
        return;
    }
    if dst.len() < DISPATCH_THRESHOLD {
        let log_x = LOG[x.value() as usize] as usize;
        for (d, &s) in dst.iter_mut().zip(src) {
            let scaled = if *d == 0 {
                0
            } else {
                EXP[LOG[*d as usize] as usize + log_x]
            };
            *d = scaled ^ s;
        }
        return;
    }
    let t = MulTable::new(x);
    Backend::for_len(dst.len()).scale_add_assign(dst, src, &t);
}

/// [`scale_add_assign`] with a caller-built [`MulTable`], for callers
/// that reuse one multiplier across many planes (always dispatches via
/// [`Backend::for_len`]; the threshold only guards table construction).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn scale_add_assign_with(dst: &mut [u8], src: &[u8], t: &MulTable) {
    Backend::for_len(dst.len()).scale_add_assign(dst, src, t);
}

/// `dst[i] ← dst[i] ⊕ src[i] · x` for every `i` — the accumulation step
/// of Lagrange reconstruction.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use mcss_gf256::{slice, Gf256};
///
/// let mut acc = [0x01u8, 0x00];
/// slice::add_scaled_assign(&mut acc, &[0x02, 0x02], Gf256::new(3));
/// assert_eq!(acc, [0x01 ^ 0x06, 0x06]);
/// ```
pub fn add_scaled_assign(dst: &mut [u8], src: &[u8], x: Gf256) {
    assert_eq!(dst.len(), src.len(), "plane lengths must match");
    if x.is_zero() {
        return;
    }
    if x == Gf256::ONE {
        arch::xor_assign(dst, src);
        return;
    }
    if dst.len() < DISPATCH_THRESHOLD {
        let log_x = LOG[x.value() as usize] as usize;
        for (d, &s) in dst.iter_mut().zip(src) {
            if s != 0 {
                *d ^= EXP[LOG[s as usize] as usize + log_x];
            }
        }
        return;
    }
    let t = MulTable::new(x);
    Backend::for_len(dst.len()).add_scaled_assign(dst, src, &t);
}

/// `dst[i] ← a[i] ⊕ b[i]` for every `i` — fused GF(2⁸) addition of two
/// planes into a third, at the widest XOR the host offers (AVX-512 /
/// AVX2 on x86-64, the auto-vectorized portable loop elsewhere). One
/// pass instead of copy-then-[`add_scaled_assign`] with
/// [`Gf256::ONE`]; the XOR codec's encode is built from this.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use mcss_gf256::slice;
///
/// let mut dst = [0u8; 2];
/// slice::xor_into(&mut dst, &[0x0f, 0xf0], &[0x01, 0x10]);
/// assert_eq!(dst, [0x0e, 0xe0]);
/// ```
pub fn xor_into(dst: &mut [u8], a: &[u8], b: &[u8]) {
    assert_eq!(dst.len(), a.len(), "plane lengths must match");
    assert_eq!(dst.len(), b.len(), "plane lengths must match");
    arch::xor_into(dst, a, b);
}

/// [`add_scaled_assign`] with a caller-built [`MulTable`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_scaled_assign_with(dst: &mut [u8], src: &[u8], t: &MulTable) {
    Backend::for_len(dst.len()).add_scaled_assign(dst, src, t);
}

/// Multiplies every byte in place by the scalar `x`.
///
/// # Examples
///
/// ```
/// use mcss_gf256::{slice, Gf256};
///
/// let mut v = [1u8, 2, 4];
/// slice::scale_assign(&mut v, Gf256::new(2));
/// assert_eq!(v, [2, 4, 8]);
/// ```
pub fn scale_assign(dst: &mut [u8], x: Gf256) {
    if x.is_zero() {
        dst.fill(0);
        return;
    }
    if x == Gf256::ONE {
        return;
    }
    if dst.len() < DISPATCH_THRESHOLD {
        let log_x = LOG[x.value() as usize] as usize;
        for d in dst.iter_mut() {
            if *d != 0 {
                *d = EXP[LOG[*d as usize] as usize + log_x];
            }
        }
        return;
    }
    let t = MulTable::new(x);
    Backend::for_len(dst.len()).scale_assign(dst, &t);
}

/// Fused multi-plane Horner evaluation: overwrites `acc` with
/// `Σᵢ planes[i] · x^(n−1−i)` (planes ordered highest coefficient
/// first) — equivalent to zeroing `acc` and calling
/// [`scale_add_assign`] once per plane, but with a single [`MulTable`]
/// build and the accumulator kept in registers across planes. `acc`'s
/// prior contents are ignored.
///
/// # Panics
///
/// Panics if any plane's length differs from `acc`'s.
///
/// # Examples
///
/// ```
/// use mcss_gf256::{slice, Gf256};
///
/// // p(y) = 2·y + 3 at y = 4, per byte.
/// let mut acc = [0u8; 2];
/// slice::horner_into(&mut acc, &[&[2, 2], &[3, 3]], Gf256::new(4));
/// let want = (Gf256::new(2) * Gf256::new(4) + Gf256::new(3)).value();
/// assert_eq!(acc, [want, want]);
/// ```
pub fn horner_into(acc: &mut [u8], planes: &[&[u8]], x: Gf256) {
    let t = MulTable::new(x);
    Backend::for_len(acc.len()).horner_into(acc, planes, &t);
}

/// [`horner_into`] with a caller-built [`MulTable`].
///
/// # Panics
///
/// Panics if any plane's length differs from `acc`'s.
pub fn horner_into_with(acc: &mut [u8], planes: &[&[u8]], t: &MulTable) {
    Backend::for_len(acc.len()).horner_into(acc, planes, t);
}

/// Reference check that the doubled EXP table really removes the modular
/// reduction: the largest reachable index is `2·(GROUP_ORDER − 1)`.
#[allow(dead_code)]
const _: () = assert!(2 * (GROUP_ORDER - 1) < 512);

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scale_add_matches_scalar_ops() {
        let dst0 = [0u8, 1, 2, 0xff, 0x80];
        let src = [9u8, 0, 0xaa, 1, 0x7f];
        for x in [0u8, 1, 2, 3, 0x53, 0xff] {
            let x = Gf256::new(x);
            let mut dst = dst0;
            scale_add_assign(&mut dst, &src, x);
            for i in 0..dst0.len() {
                let want = Gf256::new(dst0[i]) * x + Gf256::new(src[i]);
                assert_eq!(dst[i], want.value(), "x={x} i={i}");
            }
        }
    }

    #[test]
    fn add_scaled_matches_scalar_ops() {
        let dst0 = [0u8, 1, 2, 0xff, 0x80];
        let src = [9u8, 0, 0xaa, 1, 0x7f];
        for x in [0u8, 1, 2, 3, 0x53, 0xff] {
            let x = Gf256::new(x);
            let mut dst = dst0;
            add_scaled_assign(&mut dst, &src, x);
            for i in 0..dst0.len() {
                let want = Gf256::new(dst0[i]) + Gf256::new(src[i]) * x;
                assert_eq!(dst[i], want.value(), "x={x} i={i}");
            }
        }
    }

    #[test]
    fn scale_assign_matches_scalar_ops() {
        let v0 = [0u8, 1, 2, 0xff, 0x80];
        for x in [0u8, 1, 2, 0x53, 0xff] {
            let x = Gf256::new(x);
            let mut v = v0;
            scale_assign(&mut v, x);
            for i in 0..v0.len() {
                assert_eq!(v[i], (Gf256::new(v0[i]) * x).value(), "x={x} i={i}");
            }
        }
    }

    #[test]
    fn dispatched_path_matches_scalar_path() {
        // Long slices take the backend fast path; it must agree with the
        // short-slice double-lookup path byte for byte (including the
        // ragged 37-byte tail past the last full vector).
        let dst0: Vec<u8> = (0..DISPATCH_THRESHOLD * 4 + 37)
            .map(|i| (i * 7) as u8)
            .collect();
        let src: Vec<u8> = (0..dst0.len()).map(|i| (i * 13 + 5) as u8).collect();
        for x in [2u8, 0x53, 0xff] {
            let x = Gf256::new(x);
            let mut long = dst0.clone();
            scale_add_assign(&mut long, &src, x);
            let mut long2 = dst0.clone();
            add_scaled_assign(&mut long2, &src, x);
            let mut long3 = dst0.clone();
            scale_assign(&mut long3, x);
            for (i, (&d, &s)) in dst0.iter().zip(&src).enumerate() {
                assert_eq!(long[i], (Gf256::new(d) * x + Gf256::new(s)).value());
                assert_eq!(long2[i], (Gf256::new(d) + Gf256::new(s) * x).value());
                assert_eq!(long3[i], (Gf256::new(d) * x).value());
            }
        }
    }

    #[test]
    fn horner_into_matches_per_plane_steps() {
        for len in [0usize, 5, 130, 1000] {
            let planes: Vec<Vec<u8>> = (0..3)
                .map(|p| (0..len).map(|i| (i * 11 + p * 29 + 1) as u8).collect())
                .collect();
            let refs: Vec<&[u8]> = planes.iter().map(Vec::as_slice).collect();
            for x in [0u8, 1, 5, 0x9d] {
                let x = Gf256::new(x);
                let mut want = vec![0u8; len];
                for p in &refs {
                    scale_add_assign(&mut want, p, x);
                }
                let mut got = vec![0x77u8; len];
                horner_into(&mut got, &refs, x);
                assert_eq!(got, want, "len={len} x={x}");
            }
        }
    }

    #[test]
    fn with_variants_match_plain_calls() {
        let dst0: Vec<u8> = (0..600).map(|i| (i * 3) as u8).collect();
        let src: Vec<u8> = (0..600).map(|i| (i * 5 + 1) as u8).collect();
        let x = Gf256::new(0x1c);
        let t = MulTable::new(x);
        let (mut a, mut b) = (dst0.clone(), dst0.clone());
        scale_add_assign(&mut a, &src, x);
        scale_add_assign_with(&mut b, &src, &t);
        assert_eq!(a, b);
        let (mut a, mut b) = (dst0.clone(), dst0);
        add_scaled_assign(&mut a, &src, x);
        add_scaled_assign_with(&mut b, &src, &t);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "plane lengths")]
    fn mismatched_lengths_panic() {
        let mut d = [0u8; 2];
        scale_add_assign(&mut d, &[0u8; 3], Gf256::ONE);
    }

    proptest! {
        #[test]
        fn horner_over_planes_equals_pointwise_eval(
            planes in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 8), 1..6),
            x in any::<u8>(),
        ) {
            // Evaluate, for every byte position b, the polynomial whose
            // coefficients are planes[*][b] at the point x — once with
            // the slice Horner, once with Poly::eval.
            let x = Gf256::new(x);
            let len = planes[0].len();
            let mut acc = vec![0u8; len];
            for plane in planes.iter().rev() {
                scale_add_assign(&mut acc, plane, x);
            }
            let refs: Vec<&[u8]> = planes.iter().rev().map(Vec::as_slice).collect();
            let mut fused = vec![0u8; len];
            horner_into(&mut fused, &refs, x);
            prop_assert_eq!(&fused, &acc);
            for b in 0..len {
                let coeffs: Vec<Gf256> =
                    planes.iter().map(|p| Gf256::new(p[b])).collect();
                let poly = crate::Poly::new(coeffs);
                prop_assert_eq!(acc[b], poly.eval(x).value());
            }
        }

        #[test]
        fn add_scaled_linearity(
            a in proptest::collection::vec(any::<u8>(), 16),
            b in proptest::collection::vec(any::<u8>(), 16),
            x in any::<u8>(),
        ) {
            // acc ⊕ b·x computed bulk equals scalar fold.
            let x = Gf256::new(x);
            let mut acc = a.clone();
            add_scaled_assign(&mut acc, &b, x);
            for i in 0..16 {
                let want = Gf256::new(a[i]) + Gf256::new(b[i]) * x;
                prop_assert_eq!(acc[i], want.value());
            }
        }
    }
}
