//! Bulk field operations on byte slices.
//!
//! Shamir sharing of packet-sized secrets evaluates one polynomial per
//! byte. Doing that byte-by-byte walks the log/exp tables with a data
//! dependency per step; the slice forms here process whole coefficient
//! *planes* at once (all bytes' i-th coefficients together), which lets
//! the compiler unroll and keeps a single scalar's log lookup out of the
//! inner loop. [`mcss_shamir`](https://docs.rs/mcss-shamir) evaluates
//! shares with one [`scale_add_assign`] per coefficient plane (Horner
//! over planes).

use crate::{Gf256, EXP, GROUP_ORDER, LOG};

/// Slice length from which the kernels amortize a 256-entry
/// multiplication table instead of doing two table hops per byte. The
/// table build costs 255 lookups, so it pays for itself within a few
/// hundred bytes; batched (concatenated-plane) callers sit well above
/// this.
const MUL_TABLE_THRESHOLD: usize = 512;

/// The row `b ↦ b · x` of the multiplication table, for a nonzero `x`
/// given by its log.
#[inline]
fn mul_row(log_x: usize) -> [u8; 256] {
    let mut row = [0u8; 256];
    for b in 1..256 {
        row[b] = EXP[LOG[b] as usize + log_x];
    }
    row
}

/// `dst[i] ← dst[i] · x  ⊕  src[i]` for every `i` — one Horner step over
/// a coefficient plane.
///
/// With `x = 0` this reduces to copying `src` into `dst`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use mcss_gf256::{slice, Gf256};
///
/// let mut acc = [0x02, 0x03];
/// slice::scale_add_assign(&mut acc, &[0x01, 0x00], Gf256::new(2));
/// assert_eq!(acc, [0x04 ^ 0x01, 0x06]);
/// ```
pub fn scale_add_assign(dst: &mut [u8], src: &[u8], x: Gf256) {
    assert_eq!(dst.len(), src.len(), "plane lengths must match");
    if x.is_zero() {
        dst.copy_from_slice(src);
        return;
    }
    if x == Gf256::ONE {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let log_x = LOG[x.value() as usize] as usize;
    if dst.len() >= MUL_TABLE_THRESHOLD {
        let row = mul_row(log_x);
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = row[*d as usize] ^ s;
        }
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        let scaled = if *d == 0 {
            0
        } else {
            EXP[LOG[*d as usize] as usize + log_x]
        };
        *d = scaled ^ s;
    }
}

/// `dst[i] ← dst[i] ⊕ src[i] · x` for every `i` — the accumulation step
/// of Lagrange reconstruction.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use mcss_gf256::{slice, Gf256};
///
/// let mut acc = [0x01u8, 0x00];
/// slice::add_scaled_assign(&mut acc, &[0x02, 0x02], Gf256::new(3));
/// assert_eq!(acc, [0x01 ^ 0x06, 0x06]);
/// ```
pub fn add_scaled_assign(dst: &mut [u8], src: &[u8], x: Gf256) {
    assert_eq!(dst.len(), src.len(), "plane lengths must match");
    if x.is_zero() {
        return;
    }
    if x == Gf256::ONE {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let log_x = LOG[x.value() as usize] as usize;
    if dst.len() >= MUL_TABLE_THRESHOLD {
        let row = mul_row(log_x);
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= row[s as usize];
        }
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        if s != 0 {
            *d ^= EXP[LOG[s as usize] as usize + log_x];
        }
    }
}

/// Multiplies every byte in place by the scalar `x`.
///
/// # Examples
///
/// ```
/// use mcss_gf256::{slice, Gf256};
///
/// let mut v = [1u8, 2, 4];
/// slice::scale_assign(&mut v, Gf256::new(2));
/// assert_eq!(v, [2, 4, 8]);
/// ```
pub fn scale_assign(dst: &mut [u8], x: Gf256) {
    if x.is_zero() {
        dst.fill(0);
        return;
    }
    if x == Gf256::ONE {
        return;
    }
    let log_x = LOG[x.value() as usize] as usize;
    for d in dst.iter_mut() {
        if *d != 0 {
            *d = EXP[LOG[*d as usize] as usize + log_x];
        }
    }
}

/// Reference check that the doubled EXP table really removes the modular
/// reduction: the largest reachable index is `2·(GROUP_ORDER − 1)`.
#[allow(dead_code)]
const _: () = assert!(2 * (GROUP_ORDER - 1) < 512);

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scale_add_matches_scalar_ops() {
        let dst0 = [0u8, 1, 2, 0xff, 0x80];
        let src = [9u8, 0, 0xaa, 1, 0x7f];
        for x in [0u8, 1, 2, 3, 0x53, 0xff] {
            let x = Gf256::new(x);
            let mut dst = dst0;
            scale_add_assign(&mut dst, &src, x);
            for i in 0..dst0.len() {
                let want = Gf256::new(dst0[i]) * x + Gf256::new(src[i]);
                assert_eq!(dst[i], want.value(), "x={x} i={i}");
            }
        }
    }

    #[test]
    fn add_scaled_matches_scalar_ops() {
        let dst0 = [0u8, 1, 2, 0xff, 0x80];
        let src = [9u8, 0, 0xaa, 1, 0x7f];
        for x in [0u8, 1, 2, 3, 0x53, 0xff] {
            let x = Gf256::new(x);
            let mut dst = dst0;
            add_scaled_assign(&mut dst, &src, x);
            for i in 0..dst0.len() {
                let want = Gf256::new(dst0[i]) + Gf256::new(src[i]) * x;
                assert_eq!(dst[i], want.value(), "x={x} i={i}");
            }
        }
    }

    #[test]
    fn scale_assign_matches_scalar_ops() {
        let v0 = [0u8, 1, 2, 0xff, 0x80];
        for x in [0u8, 1, 2, 0x53, 0xff] {
            let x = Gf256::new(x);
            let mut v = v0;
            scale_assign(&mut v, x);
            for i in 0..v0.len() {
                assert_eq!(v[i], (Gf256::new(v0[i]) * x).value(), "x={x} i={i}");
            }
        }
    }

    #[test]
    fn table_path_matches_scalar_path() {
        // Long slices take the mul_row fast path; it must agree with the
        // short-slice double-lookup path byte for byte.
        let dst0: Vec<u8> = (0..MUL_TABLE_THRESHOLD + 37)
            .map(|i| (i * 7) as u8)
            .collect();
        let src: Vec<u8> = (0..dst0.len()).map(|i| (i * 13 + 5) as u8).collect();
        for x in [2u8, 0x53, 0xff] {
            let x = Gf256::new(x);
            let mut long = dst0.clone();
            scale_add_assign(&mut long, &src, x);
            let mut long2 = dst0.clone();
            add_scaled_assign(&mut long2, &src, x);
            for (i, (&d, &s)) in dst0.iter().zip(&src).enumerate() {
                assert_eq!(long[i], (Gf256::new(d) * x + Gf256::new(s)).value());
                assert_eq!(long2[i], (Gf256::new(d) + Gf256::new(s) * x).value());
            }
        }
    }

    #[test]
    #[should_panic(expected = "plane lengths")]
    fn mismatched_lengths_panic() {
        let mut d = [0u8; 2];
        scale_add_assign(&mut d, &[0u8; 3], Gf256::ONE);
    }

    proptest! {
        #[test]
        fn horner_over_planes_equals_pointwise_eval(
            planes in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 8), 1..6),
            x in any::<u8>(),
        ) {
            // Evaluate, for every byte position b, the polynomial whose
            // coefficients are planes[*][b] at the point x — once with
            // the slice Horner, once with Poly::eval.
            let x = Gf256::new(x);
            let len = planes[0].len();
            let mut acc = vec![0u8; len];
            for plane in planes.iter().rev() {
                scale_add_assign(&mut acc, plane, x);
            }
            for b in 0..len {
                let coeffs: Vec<Gf256> =
                    planes.iter().map(|p| Gf256::new(p[b])).collect();
                let poly = crate::Poly::new(coeffs);
                prop_assert_eq!(acc[b], poly.eval(x).value());
            }
        }

        #[test]
        fn add_scaled_linearity(
            a in proptest::collection::vec(any::<u8>(), 16),
            b in proptest::collection::vec(any::<u8>(), 16),
            x in any::<u8>(),
        ) {
            // acc ⊕ b·x computed bulk equals scalar fold.
            let x = Gf256::new(x);
            let mut acc = a.clone();
            add_scaled_assign(&mut acc, &b, x);
            for i in 0..16 {
                let want = Gf256::new(a[i]) + Gf256::new(b[i]) * x;
                prop_assert_eq!(acc[i], want.value());
            }
        }
    }
}
