//! Differential property tests for the GF(2⁸) kernel backends.
//!
//! Every backend available on the host (scalar, table, SWAR, and the
//! vector paths — `pshufb`/`vpermb`/`gf2p8mulb` on x86_64, NEON on
//! aarch64) must produce byte-identical results for all three slice ops
//! and the fused Horner kernel, for random lengths in 0..4096 including
//! misaligned heads (the kernels are run on sub-slices starting at a
//! random offset, so the vector loads start off any natural alignment)
//! and ragged tails (lengths that are not a multiple of any vector
//! width). The proptests sweep whichever backends the host offers; the
//! per-backend `*_exhaustive_boundaries` tests additionally pin every
//! chunk-edge length for each named vector backend and *skip loudly*
//! (an `[skip]` line on stderr) rather than silently pass when the host
//! lacks the feature, so a green run on a non-GFNI host is
//! distinguishable from actual coverage.

use mcss_gf256::simd::{Backend, MulTable};
use mcss_gf256::Gf256;
use proptest::prelude::*;

/// Backends to diff on this host; scalar is the reference.
fn available() -> impl Iterator<Item = Backend> {
    Backend::ALL.into_iter().filter(|b| b.is_available())
}

/// A buffer plus a misalignment offset: tests run on `buf[head..]`.
fn plane() -> impl Strategy<Value = (Vec<u8>, usize)> {
    (proptest::collection::vec(any::<u8>(), 0..4096), 0usize..64)
}

fn sub(buf: &[u8], head: usize, len: usize) -> &[u8] {
    &buf[head.min(buf.len())..][..len]
}

proptest! {
    #[test]
    fn scale_add_assign_is_backend_independent(
        (dst0, head) in plane(),
        src0 in proptest::collection::vec(any::<u8>(), 4096),
        x in any::<u8>(),
    ) {
        let head = head.min(dst0.len());
        let len = dst0.len() - head;
        let src = sub(&src0, head, len);
        let t = MulTable::new(Gf256::new(x));
        let mut want = dst0.clone();
        Backend::Scalar.scale_add_assign(&mut want[head..], src, &t);
        for backend in available() {
            let mut got = dst0.clone();
            backend.scale_add_assign(&mut got[head..], src, &t);
            prop_assert_eq!(
                &got, &want,
                "backend {} x={} len={} head={}", backend.name(), x, len, head
            );
        }
    }

    #[test]
    fn add_scaled_assign_is_backend_independent(
        (dst0, head) in plane(),
        src0 in proptest::collection::vec(any::<u8>(), 4096),
        x in any::<u8>(),
    ) {
        let head = head.min(dst0.len());
        let len = dst0.len() - head;
        let src = sub(&src0, head, len);
        let t = MulTable::new(Gf256::new(x));
        let mut want = dst0.clone();
        Backend::Scalar.add_scaled_assign(&mut want[head..], src, &t);
        for backend in available() {
            let mut got = dst0.clone();
            backend.add_scaled_assign(&mut got[head..], src, &t);
            prop_assert_eq!(
                &got, &want,
                "backend {} x={} len={} head={}", backend.name(), x, len, head
            );
        }
    }

    #[test]
    fn scale_assign_is_backend_independent(
        (dst0, head) in plane(),
        x in any::<u8>(),
    ) {
        let head = head.min(dst0.len());
        let t = MulTable::new(Gf256::new(x));
        let mut want = dst0.clone();
        Backend::Scalar.scale_assign(&mut want[head..], &t);
        for backend in available() {
            let mut got = dst0.clone();
            backend.scale_assign(&mut got[head..], &t);
            prop_assert_eq!(
                &got, &want,
                "backend {} x={} len={} head={}",
                backend.name(), x, dst0.len() - head, head
            );
        }
    }

    #[test]
    fn fused_horner_is_backend_independent(
        len in 0usize..4096,
        head in 0usize..64,
        n_planes in 1usize..6,
        seed in any::<u64>(),
        x in any::<u8>(),
    ) {
        // Planes are derived deterministically from the seed; what
        // matters here is the backend diff, not the value distribution.
        let head = head.min(len);
        let planes: Vec<Vec<u8>> = (0..n_planes)
            .map(|p| {
                (0..len)
                    .map(|i| {
                        (seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(
                                ((p * 4096 + i) as u64).wrapping_mul(1442695040888963407),
                            )
                            >> 33) as u8
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = planes.iter().map(|p| &p[head..]).collect();
        let t = MulTable::new(Gf256::new(x));
        let mut want = vec![0u8; len - head];
        Backend::Scalar.horner_into(&mut want, &refs, &t);
        for backend in available() {
            // Pre-poison: prior acc contents must be ignored.
            let mut got = vec![0x5au8; len - head];
            backend.horner_into(&mut got, &refs, &t);
            prop_assert_eq!(
                &got, &want,
                "backend {} x={} len={} head={} planes={}",
                backend.name(), x, len - head, head, n_planes
            );
        }
    }
}

/// The backend diff above samples lengths; the vector-width boundaries
/// themselves (0..=65: every SWAR/SSSE3/AVX2 chunk edge ±1) are checked
/// exhaustively for every backend.
#[test]
fn all_chunk_boundary_lengths_agree() {
    let dst0: Vec<u8> = (0..80).map(|i| (i * 37 + 11) as u8).collect();
    let src: Vec<u8> = (0..80).map(|i| (i * 101 + 3) as u8).collect();
    for x in [0u8, 1, 2, 0x53, 0xff] {
        let t = MulTable::new(Gf256::new(x));
        for len in 0..=65usize {
            let mut want = dst0[..len].to_vec();
            Backend::Scalar.scale_add_assign(&mut want, &src[..len], &t);
            for backend in available() {
                let mut got = dst0[..len].to_vec();
                backend.scale_add_assign(&mut got, &src[..len], &t);
                assert_eq!(got, want, "backend {} x={x} len={len}", backend.name());
            }
        }
    }
}

/// Exhaustive chunk-edge diff for one named backend: every length in
/// 0..=193 (covering three 64-byte AVX-512/GFNI chunks, the 16-byte
/// mid-tails, and the scalar table tail, each ±1) crossed with
/// misaligned heads 0..16, for all four ops. Returns `false` — after
/// printing a loud `[skip]` line — when the backend is unavailable, so
/// the callers' `assert!(ran || !must_run(..))` keeps CI forced legs
/// honest without failing on hosts that lack the feature.
fn exhaustive_boundaries(backend: Backend) -> bool {
    if !backend.is_available() {
        eprintln!(
            "[skip] backend `{}` unavailable on this host; exhaustive boundary diff not run",
            backend.name()
        );
        return false;
    }
    let dst0: Vec<u8> = (0..224).map(|i| (i * 37 + 11) as u8).collect();
    let src: Vec<u8> = (0..224).map(|i| (i * 101 + 3) as u8).collect();
    let plane_b: Vec<u8> = (0..224).map(|i| (i * 59 + 7) as u8).collect();
    for x in [0u8, 1, 2, 0x53, 0xff] {
        let t = MulTable::new(Gf256::new(x));
        for head in 0..16usize {
            for len in 0..=193usize {
                let d0 = &dst0[head..head + len];
                let s = &src[head..head + len];

                let mut want = d0.to_vec();
                Backend::Scalar.scale_add_assign(&mut want, s, &t);
                let mut got = d0.to_vec();
                backend.scale_add_assign(&mut got, s, &t);
                assert_eq!(
                    got,
                    want,
                    "scale_add backend {} x={x} len={len} head={head}",
                    backend.name()
                );

                let mut want = d0.to_vec();
                Backend::Scalar.add_scaled_assign(&mut want, s, &t);
                let mut got = d0.to_vec();
                backend.add_scaled_assign(&mut got, s, &t);
                assert_eq!(
                    got,
                    want,
                    "add_scaled backend {} x={x} len={len} head={head}",
                    backend.name()
                );

                let mut want = d0.to_vec();
                Backend::Scalar.scale_assign(&mut want, &t);
                let mut got = d0.to_vec();
                backend.scale_assign(&mut got, &t);
                assert_eq!(
                    got,
                    want,
                    "scale backend {} x={x} len={len} head={head}",
                    backend.name()
                );

                let planes = [s, &plane_b[head..head + len]];
                let mut want = vec![0u8; len];
                Backend::Scalar.horner_into(&mut want, &planes, &t);
                let mut got = vec![0xa5u8; len];
                backend.horner_into(&mut got, &planes, &t);
                assert_eq!(
                    got,
                    want,
                    "horner backend {} x={x} len={len} head={head}",
                    backend.name()
                );
            }
        }
    }
    true
}

/// Whether `backend` is forced via `MCSS_GF256_BACKEND` *and* the host
/// can actually run it — only then must its exhaustive diff run rather
/// than skip. CI runner pools are a hardware lottery (not every host
/// has GFNI or AVX-512 VBMI, and NEON never exists on x86-64), so a
/// forced-but-unavailable backend mirrors the dispatch layer's fallback:
/// it skips loudly with a distinct `[skip-forced]` marker instead of
/// failing the leg.
fn must_run(backend: Backend) -> bool {
    let forced = std::env::var("MCSS_GF256_BACKEND").is_ok_and(|n| n == backend.name());
    if forced && !backend.is_available() {
        eprintln!(
            "[skip-forced] MCSS_GF256_BACKEND={} forced but the host lacks the feature; \
             exhaustive boundary diff not run",
            backend.name()
        );
        return false;
    }
    forced
}

#[test]
fn simd_exhaustive_boundaries() {
    let ran = exhaustive_boundaries(Backend::Simd);
    assert!(ran || !must_run(Backend::Simd));
}

#[test]
fn gfni_exhaustive_boundaries() {
    let ran = exhaustive_boundaries(Backend::Gfni);
    assert!(ran || !must_run(Backend::Gfni));
}

#[test]
fn avx512_exhaustive_boundaries() {
    let ran = exhaustive_boundaries(Backend::Avx512);
    assert!(ran || !must_run(Backend::Avx512));
}

#[test]
fn neon_exhaustive_boundaries() {
    let ran = exhaustive_boundaries(Backend::Neon);
    assert!(ran || !must_run(Backend::Neon));
}

#[test]
fn swar_exhaustive_boundaries() {
    assert!(exhaustive_boundaries(Backend::Swar));
}

#[test]
fn table_exhaustive_boundaries() {
    assert!(exhaustive_boundaries(Backend::Table));
}
