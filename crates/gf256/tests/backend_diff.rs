//! Differential property tests for the GF(2⁸) kernel backends.
//!
//! Every backend available on the host (scalar, table, SWAR, and — on
//! x86_64 — the `pshufb` SIMD path) must produce byte-identical results
//! for all three slice ops and the fused Horner kernel, for random
//! lengths in 0..4096 including misaligned heads (the kernels are run
//! on sub-slices starting at a random offset, so the SIMD loads start
//! off any natural alignment) and ragged tails (lengths that are not a
//! multiple of any vector width).

use mcss_gf256::simd::{Backend, MulTable};
use mcss_gf256::Gf256;
use proptest::prelude::*;

/// Backends to diff on this host; scalar is the reference.
fn available() -> impl Iterator<Item = Backend> {
    Backend::ALL.into_iter().filter(|b| b.is_available())
}

/// A buffer plus a misalignment offset: tests run on `buf[head..]`.
fn plane() -> impl Strategy<Value = (Vec<u8>, usize)> {
    (proptest::collection::vec(any::<u8>(), 0..4096), 0usize..64)
}

fn sub(buf: &[u8], head: usize, len: usize) -> &[u8] {
    &buf[head.min(buf.len())..][..len]
}

proptest! {
    #[test]
    fn scale_add_assign_is_backend_independent(
        (dst0, head) in plane(),
        src0 in proptest::collection::vec(any::<u8>(), 4096),
        x in any::<u8>(),
    ) {
        let head = head.min(dst0.len());
        let len = dst0.len() - head;
        let src = sub(&src0, head, len);
        let t = MulTable::new(Gf256::new(x));
        let mut want = dst0.clone();
        Backend::Scalar.scale_add_assign(&mut want[head..], src, &t);
        for backend in available() {
            let mut got = dst0.clone();
            backend.scale_add_assign(&mut got[head..], src, &t);
            prop_assert_eq!(
                &got, &want,
                "backend {} x={} len={} head={}", backend.name(), x, len, head
            );
        }
    }

    #[test]
    fn add_scaled_assign_is_backend_independent(
        (dst0, head) in plane(),
        src0 in proptest::collection::vec(any::<u8>(), 4096),
        x in any::<u8>(),
    ) {
        let head = head.min(dst0.len());
        let len = dst0.len() - head;
        let src = sub(&src0, head, len);
        let t = MulTable::new(Gf256::new(x));
        let mut want = dst0.clone();
        Backend::Scalar.add_scaled_assign(&mut want[head..], src, &t);
        for backend in available() {
            let mut got = dst0.clone();
            backend.add_scaled_assign(&mut got[head..], src, &t);
            prop_assert_eq!(
                &got, &want,
                "backend {} x={} len={} head={}", backend.name(), x, len, head
            );
        }
    }

    #[test]
    fn scale_assign_is_backend_independent(
        (dst0, head) in plane(),
        x in any::<u8>(),
    ) {
        let head = head.min(dst0.len());
        let t = MulTable::new(Gf256::new(x));
        let mut want = dst0.clone();
        Backend::Scalar.scale_assign(&mut want[head..], &t);
        for backend in available() {
            let mut got = dst0.clone();
            backend.scale_assign(&mut got[head..], &t);
            prop_assert_eq!(
                &got, &want,
                "backend {} x={} len={} head={}",
                backend.name(), x, dst0.len() - head, head
            );
        }
    }

    #[test]
    fn fused_horner_is_backend_independent(
        len in 0usize..4096,
        head in 0usize..64,
        n_planes in 1usize..6,
        seed in any::<u64>(),
        x in any::<u8>(),
    ) {
        // Planes are derived deterministically from the seed; what
        // matters here is the backend diff, not the value distribution.
        let head = head.min(len);
        let planes: Vec<Vec<u8>> = (0..n_planes)
            .map(|p| {
                (0..len)
                    .map(|i| {
                        (seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(
                                ((p * 4096 + i) as u64).wrapping_mul(1442695040888963407),
                            )
                            >> 33) as u8
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = planes.iter().map(|p| &p[head..]).collect();
        let t = MulTable::new(Gf256::new(x));
        let mut want = vec![0u8; len - head];
        Backend::Scalar.horner_into(&mut want, &refs, &t);
        for backend in available() {
            // Pre-poison: prior acc contents must be ignored.
            let mut got = vec![0x5au8; len - head];
            backend.horner_into(&mut got, &refs, &t);
            prop_assert_eq!(
                &got, &want,
                "backend {} x={} len={} head={} planes={}",
                backend.name(), x, len - head, head, n_planes
            );
        }
    }
}

/// The backend diff above samples lengths; the vector-width boundaries
/// themselves (0..=65: every SWAR/SSSE3/AVX2 chunk edge ±1) are checked
/// exhaustively for every backend.
#[test]
fn all_chunk_boundary_lengths_agree() {
    let dst0: Vec<u8> = (0..80).map(|i| (i * 37 + 11) as u8).collect();
    let src: Vec<u8> = (0..80).map(|i| (i * 101 + 3) as u8).collect();
    for x in [0u8, 1, 2, 0x53, 0xff] {
        let t = MulTable::new(Gf256::new(x));
        for len in 0..=65usize {
            let mut want = dst0[..len].to_vec();
            Backend::Scalar.scale_add_assign(&mut want, &src[..len], &t);
            for backend in available() {
                let mut got = dst0[..len].to_vec();
                backend.scale_add_assign(&mut got, &src[..len], &t);
                assert_eq!(got, want, "backend {} x={x} len={len}", backend.name());
            }
        }
    }
}
