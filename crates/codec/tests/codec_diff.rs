//! Differential tests across the share codecs, modeled on the GF(2⁸)
//! `backend_diff.rs` suite: the same secret pushed through every
//! [`CodecId`] must round-trip through every erasure pattern the
//! codec's guarantee covers, with the Shamir backend's RNG stream
//! byte-identical to the pre-refactor `mcss_shamir` entry points.
//!
//! The exhaustive sweep walks every `(k, m)` with `m ≤ 6` crossed with
//! secret lengths around the fragment-boundary edges (empty, one byte,
//! `k·L` exact multiples ±1, and a misaligned kilobyte), and for each
//! point enumerates **all 2^m − 1 share subsets**: subsets of size ≥ k
//! must reconstruct for both codecs, and any subset that reconstructs
//! must yield the original secret (the XOR codec may legitimately
//! succeed below `k` — its documented weaker guarantee — but it must
//! never succeed with wrong bytes).

use mcss_codec::{xor2d, CodecError, CodecId, CodecScratch, ShamirCodec, ShareCodec, Xor2dCodec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Splits `secret` with `codec`, returning the `m` share payloads.
fn split(codec: CodecId, secret: &[u8], k: u8, m: u8, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scratch = CodecScratch::new();
    let mut outs = vec![Vec::new(); m as usize];
    codec
        .split_into(secret, k, m, &mut rng, &mut scratch, &mut outs)
        .expect("split succeeds");
    outs
}

/// Reconstructs from the subset of shares selected by `mask` (bit `j`
/// set ⇒ share with abscissa `j + 1` is available).
fn reconstruct_subset(
    codec: CodecId,
    k: u8,
    m: u8,
    shares: &[Vec<u8>],
    mask: u32,
) -> Result<Vec<u8>, CodecError> {
    let picked: Vec<(u8, &[u8])> = (0..m as usize)
        .filter(|j| mask & (1 << j) != 0)
        .map(|j| ((j + 1) as u8, shares[j].as_slice()))
        .collect();
    let mut out = Vec::new();
    codec
        .reconstruct_into(k, m, &picked, &mut out)
        .map(|()| out)
}

/// Secret lengths that hit the XOR layout's edges for every `k ≤ 6`:
/// empty, single byte, around each small multiple, and a misaligned
/// kilobyte (1021 is prime, so `⌈len/k⌉·k − len` is nonzero for all
/// `k` in range — the zero-tail path).
const LENGTHS: [usize; 12] = [0, 1, 2, 3, 5, 6, 7, 12, 13, 30, 31, 1021];

#[test]
fn exhaustive_small_parameter_round_trip_all_erasure_patterns() {
    for m in 1u8..=6 {
        for k in 1u8..=m {
            for &len in &LENGTHS {
                let secret: Vec<u8> = (0..len).map(|i| (i * 131 + 17) as u8).collect();
                for codec in CodecId::ALL {
                    let shares = split(codec, &secret, k, m, 0xD1FF ^ u64::from(k));
                    for s in &shares {
                        assert_eq!(
                            s.len(),
                            codec.share_len(len, k, m),
                            "{codec} (k={k}, m={m}, len={len}): share_len mismatch"
                        );
                    }
                    for mask in 1u32..(1 << m) {
                        let have = mask.count_ones() as usize;
                        let got = reconstruct_subset(codec, k, m, &shares, mask);
                        if have >= k as usize {
                            assert_eq!(
                                got.as_deref(),
                                Ok(secret.as_slice()),
                                "{codec} (k={k}, m={m}, len={len}, mask={mask:b}): \
                                 ≥k shares must reconstruct exactly"
                            );
                        } else if let Ok(out) = got {
                            // Sub-threshold success is only ever the XOR
                            // codec's covering-set case — and even then
                            // the bytes must be right.
                            assert_eq!(
                                codec,
                                CodecId::Xor2d,
                                "(k={k}, m={m}, mask={mask:b}): Shamir \
                                 reconstructed from {have} < k shares"
                            );
                            assert_eq!(
                                out, secret,
                                "xor (k={k}, m={m}, len={len}, mask={mask:b}): \
                                 covering subset returned wrong bytes"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The XOR codec's guarantee is *piece cover*: a subset reconstructs
/// exactly when replaying the placement over the captured shares
/// reaches every piece. Diff the actual decode outcome against that
/// predicate for every subset, so the combinatorial privacy model in
/// [`xor2d::recovery_probability`] provably matches the decoder.
#[test]
fn xor_decode_success_matches_cover_predicate() {
    for m in 1u8..=6 {
        for k in 1u8..=m {
            let secret: Vec<u8> = (0..29).map(|i| (i * 7 + 1) as u8).collect();
            let shares = split(CodecId::Xor2d, &secret, k, m, 99);
            for mask in 1u32..(1 << m) {
                let covers = xor2d::recoverable(k, m, mask);
                let got = reconstruct_subset(CodecId::Xor2d, k, m, &shares, mask);
                assert_eq!(
                    got.is_ok(),
                    covers,
                    "(k={k}, m={m}, mask={mask:b}): decoder and cover \
                     predicate disagree"
                );
            }
        }
    }
}

/// `CodecId::Shamir` must be the *same function* as the original
/// `mcss_shamir` entry points: same RNG draws in the same order, same
/// output bytes, so the engine-trace pins survive the codec seam.
#[test]
fn shamir_codec_rng_stream_is_byte_identical_to_direct_split() {
    for (k, m, len) in [(1u8, 1u8, 16usize), (2, 3, 33), (3, 5, 1024), (5, 5, 7)] {
        let secret: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
        let params = mcss_shamir::Params::new(k, m).expect("valid params");

        let mut direct_rng = StdRng::seed_from_u64(0xBEEF);
        let mut direct_scratch = mcss_shamir::BatchScratch::default();
        let mut direct = vec![Vec::new(); m as usize];
        mcss_shamir::split_into(
            &secret,
            params,
            &mut direct_rng,
            &mut direct_scratch,
            &mut direct,
        )
        .expect("direct split");

        let codec = split(CodecId::Shamir, &secret, k, m, 0xBEEF);
        assert_eq!(
            codec, direct,
            "(k={k}, m={m}, len={len}): share bytes diverged"
        );

        // The RNG must land in the same state too — equal output with
        // extra draws would still desync every later symbol.
        let mut codec_rng = StdRng::seed_from_u64(0xBEEF);
        let mut scratch = CodecScratch::new();
        let mut outs = vec![Vec::new(); m as usize];
        CodecId::Shamir
            .split_into(&secret, k, m, &mut codec_rng, &mut scratch, &mut outs)
            .expect("codec split");
        use rand::RngExt as _;
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        direct_rng.fill(&mut a);
        codec_rng.fill(&mut b);
        assert_eq!(a, b, "(k={k}, m={m}, len={len}): RNG streams desynced");
    }
}

/// Splitting appends after caller-written bytes (headers) for both
/// codecs, leaving the prefix untouched.
#[test]
fn split_appends_after_existing_header_bytes() {
    let secret = [7u8; 50];
    for codec in CodecId::ALL {
        let mut rng = StdRng::seed_from_u64(4);
        let mut scratch = CodecScratch::new();
        let mut outs: Vec<Vec<u8>> = (0..5).map(|j| vec![0xC0, j as u8]).collect();
        codec
            .split_into(&secret, 2, 5, &mut rng, &mut scratch, &mut outs)
            .expect("split succeeds");
        for (j, out) in outs.iter().enumerate() {
            assert_eq!(&out[..2], &[0xC0, j as u8], "{codec}: header clobbered");
            assert_eq!(
                out.len(),
                2 + codec.share_len(50, 2, 5),
                "{codec}: appended length"
            );
        }
    }
}

/// The trait objects route to the same implementations as the enum.
#[test]
fn trait_objects_match_codec_id_dispatch() {
    let secret = [0x42u8; 77];
    let codecs: [(&dyn ShareCodec, CodecId); 2] = [
        (&ShamirCodec, CodecId::Shamir),
        (&Xor2dCodec, CodecId::Xor2d),
    ];
    for (obj, id) in codecs {
        assert_eq!(obj.id(), id);
        assert_eq!(obj.share_len(77, 3, 5), id.share_len(77, 3, 5));
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let mut scratch = CodecScratch::new();
        let mut via_obj = vec![Vec::new(); 5];
        let mut via_id = vec![Vec::new(); 5];
        obj.split_into(&secret, 3, 5, &mut rng_a, &mut scratch, &mut via_obj)
            .expect("trait split");
        id.split_into(&secret, 3, 5, &mut rng_b, &mut scratch, &mut via_id)
            .expect("enum split");
        assert_eq!(via_obj, via_id, "{id}: trait and enum dispatch diverged");
    }
}

proptest! {
    /// Random secrets and parameters round-trip through both codecs
    /// with a random ≥k subset, including large payloads that span
    /// many vector-width boundaries in the XOR kernels.
    #[test]
    fn random_round_trip_with_random_threshold_subset(
        secret in proptest::collection::vec(any::<u8>(), 0..2048),
        k in 1u8..=8,
        extra in 0u8..=4,
        subset_seed in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let m = k + extra;
        for codec in CodecId::ALL {
            let shares = split(codec, &secret, k, m, seed);
            // A pseudo-random mask with at least k bits set.
            let mut mask = subset_seed & ((1 << m) - 1);
            let mut j = 0u32;
            while mask.count_ones() < u32::from(k) {
                mask |= 1 << (j % u32::from(m));
                j += 1;
            }
            let got = reconstruct_subset(codec, k, m, &shares, mask);
            prop_assert_eq!(
                got.as_deref(),
                Ok(secret.as_slice()),
                "{} (k={}, m={}, mask={:b})", codec, k, m, mask
            );
        }
    }

    /// Sibling shares always have the codec's advertised uniform
    /// length, whatever the secret length's alignment.
    #[test]
    fn share_lengths_are_uniform_and_advertised(
        len in 0usize..1500,
        k in 1u8..=8,
        extra in 0u8..=4,
    ) {
        let m = k + extra;
        let secret = vec![0xABu8; len];
        for codec in CodecId::ALL {
            let shares = split(codec, &secret, k, m, 1);
            for s in &shares {
                prop_assert_eq!(s.len(), codec.share_len(len, k, m));
            }
        }
    }
}
