//! Pluggable share-coding backends.
//!
//! The tradeoff model upstream of this crate — `Z(p)`, `(κ, μ)`, the
//! schedule LP — is codec-agnostic: it reasons about *which channels
//! carry how many shares*, not about how the shares are produced. This
//! crate makes the coding layer itself swappable behind one seam:
//!
//! * [`ShareCodec`] — the object-safe trait: per-share payload sizing,
//!   `split_into` over caller-owned output buffers (appending after any
//!   caller-written headers, exactly like `mcss_shamir::split_into`),
//!   and `reconstruct_into` from any sufficient subset of shares.
//! * [`CodecId`] — the closed enum of built-in backends, used for wire
//!   identification and zero-cost enum dispatch on the engine hot path
//!   (the trait object exists for external callers; the engine
//!   monomorphizes through `CodecId`'s inherent methods).
//! * [`ShamirCodec`] — delegates to `mcss-shamir` verbatim. Its RNG
//!   consumption, share bytes, and scratch behaviour are byte-identical
//!   to calling `mcss_shamir::split_into` directly; every engine-trace
//!   and RNG-stream pin made before this crate existed still holds.
//! * [`xor2d`] — an XOR/2D-layered codec in the spirit of Chan & Chou's
//!   two-dimensional XOR schemes: near-memcpy encode speed in exchange
//!   for a *weaker, combinatorial* privacy guarantee (see the module
//!   docs for the exact statement — it is **not** the `k−1`-collusion
//!   guarantee Shamir gives, and for small `k` with large `m` a
//!   sub-`k` capture set can recover the secret).
//!
//! # Choosing a codec
//!
//! The engine reads its default from [`CodecId::from_env`]: set
//! `MCSS_CODEC=shamir|xor` (mirroring `MCSS_GF256_BACKEND`) or override
//! per-session via `ProtocolConfig::with_codec`.

#![forbid(unsafe_code)]

pub mod xor2d;

use std::fmt;
use std::sync::OnceLock;

use rand::Rng;

use mcss_shamir::{lagrange_weight_xs, BatchScratch, Params};

/// Hard cap on shares per symbol, shared with `mcss-shamir`.
pub const MAX_SHARES: usize = mcss_shamir::MAX_SHARES;

/// Errors from the codec layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Parameters violate `1 ≤ k ≤ m ≤ MAX_SHARES`.
    InvalidParams {
        /// The offending threshold.
        k: u8,
        /// The offending multiplicity.
        m: u8,
    },
    /// Secret longer than the codec can address (`u16` length prefix).
    PayloadTooLarge {
        /// The offending length.
        len: usize,
    },
    /// `split_into` was given the wrong number of output buffers.
    WrongShareCount {
        /// Buffers required (`m`).
        expected: usize,
        /// Buffers supplied.
        got: usize,
    },
    /// Reconstruction was given no shares.
    NoShares,
    /// Two shares carry the same abscissa.
    DuplicateShare {
        /// The repeated abscissa.
        x: u8,
    },
    /// A share's abscissa is outside `1..=m`.
    InvalidAbscissa {
        /// The offending abscissa.
        x: u8,
    },
    /// Share bytes are inconsistent with the codec's layout (mismatched
    /// lengths, impossible length prefix).
    Malformed,
    /// The supplied shares do not jointly cover the secret — for the
    /// XOR codec, some piece has no captured carrier.
    Unrecoverable,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodecError::InvalidParams { k, m } => {
                write!(f, "invalid codec parameters: k={k}, m={m}")
            }
            CodecError::PayloadTooLarge { len } => {
                write!(f, "secret of {len} bytes exceeds codec limit")
            }
            CodecError::WrongShareCount { expected, got } => {
                write!(f, "need {expected} output buffers, got {got}")
            }
            CodecError::NoShares => write!(f, "no shares supplied"),
            CodecError::DuplicateShare { x } => write!(f, "duplicate share abscissa {x}"),
            CodecError::InvalidAbscissa { x } => write!(f, "share abscissa {x} out of range"),
            CodecError::Malformed => write!(f, "share bytes inconsistent with codec layout"),
            CodecError::Unrecoverable => write!(f, "supplied shares cannot recover the secret"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Reusable split scratch, shared across codecs so one engine field
/// serves whichever codec a session selects. Buffers grow to their
/// high-water mark during warmup and are never shrunk: the steady
/// state allocates nothing.
#[derive(Debug, Default)]
pub struct CodecScratch {
    /// Coefficient-plane scratch for the Shamir backend.
    pub shamir: BatchScratch,
    /// Pad buffer for the XOR backend.
    pub pad: Vec<u8>,
}

impl CodecScratch {
    /// Empty scratch; buffers are sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Identifies a coding backend, both on the wire (one byte in the v2
/// share header) and for dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecId {
    /// Shamir `k`-of-`m` over GF(2⁸): information-theoretic privacy
    /// against any `k−1` captured shares, Lagrange reconstruction.
    Shamir,
    /// XOR/2D-layered replication: near-memcpy encode, weaker
    /// combinatorial privacy (see [`xor2d`]).
    Xor2d,
}

static ENV_CODEC: OnceLock<CodecId> = OnceLock::new();

impl CodecId {
    /// Every built-in codec, in wire-id order.
    pub const ALL: [CodecId; 2] = [CodecId::Shamir, CodecId::Xor2d];

    /// The byte identifying this codec in the v2 share header.
    /// Version-1 frames carry no codec byte and decode as [`Shamir`]
    /// (the only codec that existed when v1 was frozen).
    ///
    /// [`Shamir`]: CodecId::Shamir
    #[must_use]
    pub fn wire_id(self) -> u8 {
        match self {
            CodecId::Shamir => 0,
            CodecId::Xor2d => 1,
        }
    }

    /// Parses a wire codec byte. `None` for unknown ids — the caller
    /// must drop the frame with a typed error, never guess.
    #[must_use]
    pub fn from_wire(id: u8) -> Option<CodecId> {
        match id {
            0 => Some(CodecId::Shamir),
            1 => Some(CodecId::Xor2d),
            _ => None,
        }
    }

    /// Stable lowercase name (`shamir`, `xor`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CodecId::Shamir => "shamir",
            CodecId::Xor2d => "xor",
        }
    }

    /// Parses a codec name as accepted by `MCSS_CODEC`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<CodecId> {
        match name.trim().to_ascii_lowercase().as_str() {
            "shamir" => Some(CodecId::Shamir),
            "xor" | "xor2d" => Some(CodecId::Xor2d),
            _ => None,
        }
    }

    /// The process-default codec: `MCSS_CODEC` if set and valid,
    /// otherwise [`Shamir`](CodecId::Shamir). Read once and cached;
    /// unknown names warn on stderr and fall back, mirroring
    /// `MCSS_GF256_BACKEND` handling.
    #[must_use]
    pub fn from_env() -> CodecId {
        *ENV_CODEC.get_or_init(|| match std::env::var("MCSS_CODEC") {
            Ok(name) => match CodecId::from_name(&name) {
                Some(codec) => codec,
                None => {
                    eprintln!(
                        "[codec] unknown MCSS_CODEC={name:?} (expected shamir|xor); \
                         using shamir"
                    );
                    CodecId::Shamir
                }
            },
            Err(_) => CodecId::Shamir,
        })
    }

    /// Per-share payload length for a secret of `secret_len` bytes
    /// split `k`-of-`m`. Uniform across the `m` shares for both codecs
    /// (the reassembly layer checks sibling lengths for consistency).
    #[must_use]
    pub fn share_len(self, secret_len: usize, k: u8, m: u8) -> usize {
        match self {
            CodecId::Shamir => secret_len,
            CodecId::Xor2d => xor2d::Layout::new(k, m, secret_len)
                .map(|l| l.share_len())
                .unwrap_or(0),
        }
    }

    /// Splits `secret` into `m` share payloads, appending each after
    /// whatever the caller already wrote into `outs[j]` (headers).
    /// Monomorphic over the RNG so the engine hot path pays no dynamic
    /// dispatch; for [`Shamir`](CodecId::Shamir) this *is*
    /// `mcss_shamir::split_into` — same RNG draws, same bytes.
    pub fn split_into<R: Rng + ?Sized>(
        self,
        secret: &[u8],
        k: u8,
        m: u8,
        rng: &mut R,
        scratch: &mut CodecScratch,
        outs: &mut [Vec<u8>],
    ) -> Result<(), CodecError> {
        match self {
            CodecId::Shamir => {
                let params = Params::new(k, m).map_err(|_| CodecError::InvalidParams { k, m })?;
                if outs.len() != m as usize {
                    return Err(CodecError::WrongShareCount {
                        expected: m as usize,
                        got: outs.len(),
                    });
                }
                mcss_shamir::split_into(secret, params, rng, &mut scratch.shamir, outs)
                    .map_err(|_| CodecError::PayloadTooLarge { len: secret.len() })
            }
            CodecId::Xor2d => xor2d::split_into(secret, k, m, rng, &mut scratch.pad, outs),
        }
    }

    /// Reconstructs the secret from `shares` (abscissa, payload) pairs
    /// into `out`. Any `k` distinct shares suffice for both codecs;
    /// the XOR codec additionally succeeds on some sub-`k` covering
    /// sets (its documented weaker guarantee).
    pub fn reconstruct_into(
        self,
        k: u8,
        m: u8,
        shares: &[(u8, &[u8])],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        match self {
            CodecId::Shamir => shamir_reconstruct_into(k, m, shares, out),
            CodecId::Xor2d => {
                xor2d::reconstruct_with(k, m, shares.len(), |i| shares[i].0, |i| shares[i].1, out)
            }
        }
    }
}

impl fmt::Display for CodecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn shamir_reconstruct_into(
    k: u8,
    m: u8,
    shares: &[(u8, &[u8])],
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    if k == 0 || m < k {
        return Err(CodecError::InvalidParams { k, m });
    }
    if shares.is_empty() {
        return Err(CodecError::NoShares);
    }
    if shares.len() < k as usize {
        return Err(CodecError::Unrecoverable);
    }
    let mut xs = [0u8; MAX_SHARES];
    let used = &shares[..k as usize];
    let len = used[0].1.len();
    for (i, &(x, data)) in used.iter().enumerate() {
        if x == 0 || x as usize > m as usize {
            return Err(CodecError::InvalidAbscissa { x });
        }
        if used[..i].iter().any(|&(seen, _)| seen == x) {
            return Err(CodecError::DuplicateShare { x });
        }
        if data.len() != len {
            return Err(CodecError::Malformed);
        }
        xs[i] = x;
    }
    let xs = &xs[..used.len()];
    out.clear();
    out.resize(len, 0);
    for (i, &(_, data)) in used.iter().enumerate() {
        let w = lagrange_weight_xs(xs, i);
        mcss_gf256::slice::add_scaled_assign(out, data, w);
    }
    Ok(())
}

/// The codec seam: sizing, splitting, and reconstruction over
/// caller-owned buffers and RNG streams. Object-safe so drivers can
/// hold `&dyn ShareCodec`; the engine dispatches through [`CodecId`]
/// instead to keep the hot path monomorphic.
pub trait ShareCodec {
    /// Which backend this is (wire identification).
    fn id(&self) -> CodecId;

    /// Uniform per-share payload length for a `secret_len`-byte secret.
    fn share_len(&self, secret_len: usize, k: u8, m: u8) -> usize;

    /// Splits `secret` into `m` payloads appended to `outs`. Draws all
    /// randomness from `rng` in a codec-defined deterministic order.
    fn split_into(
        &self,
        secret: &[u8],
        k: u8,
        m: u8,
        rng: &mut dyn Rng,
        scratch: &mut CodecScratch,
        outs: &mut [Vec<u8>],
    ) -> Result<(), CodecError>;

    /// Reconstructs from `(abscissa, payload)` pairs into `out`.
    fn reconstruct_into(
        &self,
        k: u8,
        m: u8,
        shares: &[(u8, &[u8])],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError>;
}

impl ShareCodec for CodecId {
    fn id(&self) -> CodecId {
        *self
    }

    fn share_len(&self, secret_len: usize, k: u8, m: u8) -> usize {
        CodecId::share_len(*self, secret_len, k, m)
    }

    fn split_into(
        &self,
        secret: &[u8],
        k: u8,
        m: u8,
        rng: &mut dyn Rng,
        scratch: &mut CodecScratch,
        outs: &mut [Vec<u8>],
    ) -> Result<(), CodecError> {
        CodecId::split_into(*self, secret, k, m, rng, scratch, outs)
    }

    fn reconstruct_into(
        &self,
        k: u8,
        m: u8,
        shares: &[(u8, &[u8])],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        CodecId::reconstruct_into(*self, k, m, shares, out)
    }
}

/// The Shamir backend as a unit struct, for callers that want a
/// `ShareCodec` value rather than a [`CodecId`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ShamirCodec;

impl ShareCodec for ShamirCodec {
    fn id(&self) -> CodecId {
        CodecId::Shamir
    }

    fn share_len(&self, secret_len: usize, k: u8, m: u8) -> usize {
        CodecId::Shamir.share_len(secret_len, k, m)
    }

    fn split_into(
        &self,
        secret: &[u8],
        k: u8,
        m: u8,
        rng: &mut dyn Rng,
        scratch: &mut CodecScratch,
        outs: &mut [Vec<u8>],
    ) -> Result<(), CodecError> {
        CodecId::Shamir.split_into(secret, k, m, rng, scratch, outs)
    }

    fn reconstruct_into(
        &self,
        k: u8,
        m: u8,
        shares: &[(u8, &[u8])],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        CodecId::Shamir.reconstruct_into(k, m, shares, out)
    }
}

/// The XOR/2D backend as a unit struct.
#[derive(Debug, Clone, Copy, Default)]
pub struct Xor2dCodec;

impl ShareCodec for Xor2dCodec {
    fn id(&self) -> CodecId {
        CodecId::Xor2d
    }

    fn share_len(&self, secret_len: usize, k: u8, m: u8) -> usize {
        CodecId::Xor2d.share_len(secret_len, k, m)
    }

    fn split_into(
        &self,
        secret: &[u8],
        k: u8,
        m: u8,
        rng: &mut dyn Rng,
        scratch: &mut CodecScratch,
        outs: &mut [Vec<u8>],
    ) -> Result<(), CodecError> {
        CodecId::Xor2d.split_into(secret, k, m, rng, scratch, outs)
    }

    fn reconstruct_into(
        &self,
        k: u8,
        m: u8,
        shares: &[(u8, &[u8])],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        CodecId::Xor2d.reconstruct_into(k, m, shares, out)
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn wire_ids_round_trip() {
        for codec in CodecId::ALL {
            assert_eq!(CodecId::from_wire(codec.wire_id()), Some(codec));
            assert_eq!(CodecId::from_name(codec.name()), Some(codec));
        }
        assert_eq!(CodecId::from_wire(0xEE), None);
        assert_eq!(CodecId::from_name("xor2d"), Some(CodecId::Xor2d));
        assert_eq!(CodecId::from_name("nope"), None);
    }

    #[test]
    fn shamir_codec_matches_direct_split_byte_for_byte() {
        let secret: Vec<u8> = (0..1250u32).map(|i| (i * 7 + 3) as u8).collect();
        let (k, m) = (3u8, 5u8);

        let mut direct_rng = StdRng::seed_from_u64(42);
        let mut direct_scratch = BatchScratch::new();
        let mut direct: Vec<Vec<u8>> = (0..m).map(|_| b"hdr".to_vec()).collect();
        mcss_shamir::split_into(
            &secret,
            Params::new(k, m).unwrap(),
            &mut direct_rng,
            &mut direct_scratch,
            &mut direct,
        )
        .unwrap();

        let mut codec_rng = StdRng::seed_from_u64(42);
        let mut scratch = CodecScratch::new();
        let mut via_codec: Vec<Vec<u8>> = (0..m).map(|_| b"hdr".to_vec()).collect();
        CodecId::Shamir
            .split_into(&secret, k, m, &mut codec_rng, &mut scratch, &mut via_codec)
            .unwrap();

        assert_eq!(direct, via_codec, "ShamirCodec diverged from mcss-shamir");
        // The RNG streams must have advanced identically too.
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        rand::RngExt::fill(&mut direct_rng, &mut a);
        rand::RngExt::fill(&mut codec_rng, &mut b);
        assert_eq!(a, b, "RNG stream diverged after split");
    }

    #[test]
    fn shamir_reconstruct_round_trips() {
        let secret = b"the quick brown fox jumps over".to_vec();
        let (k, m) = (3u8, 5u8);
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = CodecScratch::new();
        let mut outs: Vec<Vec<u8>> = (0..m).map(|_| Vec::new()).collect();
        CodecId::Shamir
            .split_into(&secret, k, m, &mut rng, &mut scratch, &mut outs)
            .unwrap();
        let shares: Vec<(u8, &[u8])> = [4u8, 1, 3]
            .iter()
            .map(|&x| (x, outs[x as usize - 1].as_slice()))
            .collect();
        let mut out = Vec::new();
        CodecId::Shamir
            .reconstruct_into(k, m, &shares, &mut out)
            .unwrap();
        assert_eq!(out, secret);
    }

    #[test]
    fn shamir_reconstruct_rejects_bad_inputs() {
        let mut out = Vec::new();
        let data: &[u8] = b"xx";
        assert_eq!(
            CodecId::Shamir.reconstruct_into(2, 3, &[], &mut out),
            Err(CodecError::NoShares)
        );
        assert_eq!(
            CodecId::Shamir.reconstruct_into(2, 3, &[(1, data)], &mut out),
            Err(CodecError::Unrecoverable)
        );
        assert_eq!(
            CodecId::Shamir.reconstruct_into(2, 3, &[(1, data), (1, data)], &mut out),
            Err(CodecError::DuplicateShare { x: 1 })
        );
        assert_eq!(
            CodecId::Shamir.reconstruct_into(2, 3, &[(1, data), (7, data)], &mut out),
            Err(CodecError::InvalidAbscissa { x: 7 })
        );
    }

    #[test]
    fn trait_object_dispatch_works() {
        let codecs: [&dyn ShareCodec; 2] = [&ShamirCodec, &Xor2dCodec];
        let secret = b"0123456789abcdef".to_vec();
        for codec in codecs {
            let mut rng = StdRng::seed_from_u64(3);
            let mut scratch = CodecScratch::new();
            let mut outs: Vec<Vec<u8>> = (0..4).map(|_| Vec::new()).collect();
            codec
                .split_into(&secret, 2, 4, &mut rng, &mut scratch, &mut outs)
                .unwrap();
            assert_eq!(outs[0].len(), codec.share_len(secret.len(), 2, 4));
            let shares: Vec<(u8, &[u8])> = outs
                .iter()
                .enumerate()
                .take(2)
                .map(|(j, o)| (j as u8 + 1, o.as_slice()))
                .collect();
            let mut out = Vec::new();
            codec.reconstruct_into(2, 4, &shares, &mut out).unwrap();
            assert_eq!(out, secret, "{} round trip", codec.id());
        }
    }
}
