//! XOR/2D-layered share codec.
//!
//! A replication-based XOR scheme in the spirit of Chan & Chou's
//! *Two-Dimensional XOR-Based Secret Sharing for Layered Multipath
//! Communication*: the secret is cut into `k` equal fragments, every
//! fragment is masked with one shared random pad, and the `k + 1`
//! resulting *pieces* (masked fragments plus the pad itself) are
//! replicated across the `m` shares in a two-dimensional layout —
//! piece index along one axis, replica slot along the other. Encoding
//! is one RNG fill of `len/k` bytes plus memcpy/XOR passes; there is
//! no field arithmetic beyond XOR (`GF(2⁸)` addition), which rides the
//! same vectorized slice kernels as the Shamir hot path.
//!
//! # Layout
//!
//! For a secret of `len` bytes split `k`-of-`m` (`k ≥ 2`):
//!
//! * fragment length `L = ⌈len / k⌉`; fragment `p` is bytes
//!   `[p·L, (p+1)·L)` of the secret, zero-padded at the tail,
//! * pieces `0..k` are `fragment(p) ⊕ pad`, piece `k` is `pad`,
//! * each piece gets `w = m − k + 1` replicas, placed on the `w`
//!   consecutive shares `(p·w + i) mod m` for `i in 0..w`,
//! * within a share, replicas stack in placement order (first-fit
//!   slots); every share is padded to the same slot count `c`, so all
//!   `m` share payloads have identical length `2 + c·L` (a 2-byte LE
//!   secret-length prefix precedes the slots — `L` is not recoverable
//!   from the share length alone).
//!
//! `k = 1` degenerates to replication: one piece, the secret itself,
//! on every share, and **no** RNG draw.
//!
//! # Guarantees — read this before choosing the codec
//!
//! *Availability* matches Shamir: the `w` replicas of a piece land on
//! `w` distinct shares, and the complement of any `k`-subset has only
//! `m − k = w − 1` shares, so **any `k` distinct shares cover every
//! piece** and reconstruct the secret. The engine's `k`-of-`m`
//! reassembly threshold, the schedule model's loss/delay math, and the
//! wire format are all unchanged.
//!
//! *Privacy* is strictly weaker than Shamir's and is **combinatorial,
//! not information-theoretic**: an adversary recovers the secret
//! exactly when its captured share set jointly covers all `k + 1`
//! pieces, and recovers fragment `p` alone when it covers piece `p`
//! and the pad. Because pieces are replicated `w = m − k + 1` times,
//! piece sets overlap on shares; for small `k` and large `m` a single
//! share can carry every piece (e.g. `k = 2, m = 5` places
//! `(k+1)·w = 12` replicas on 5 shares, so some share holds all 3
//! pieces by pigeonhole). The codec's true exposure is the closed form
//! [`recovery_probability`], which always satisfies
//! `recovery_probability ≥ Z(p)` — never reuse the Shamir
//! Poisson-binomial `Z(p)` for this codec. The eavesdropper soak and
//! the privacy-vs-throughput bench sweep both measure against this
//! function.

use rand::{Rng, RngExt as _};

use mcss_gf256::slice as gf_slice;

use crate::{CodecError, MAX_SHARES};

/// Bytes of secret-length prefix at the head of every share payload.
pub const LEN_PREFIX: usize = 2;

/// The placement geometry for one `(k, m, secret_len)` triple.
///
/// Cheap to compute (one pass over the `(k+1)·(m−k+1)` replicas, no
/// allocation) and entirely deterministic, so encoder and decoder
/// derive it independently from the share header alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    k: u8,
    m: u8,
    secret_len: usize,
    /// Fragment length `L`.
    fragment_len: usize,
    /// Piece count: `k + 1`, or 1 when `k == 1`.
    pieces: usize,
    /// Replicas per piece, `w = m − k + 1`.
    width: usize,
    /// Slots per share, `c = max` per-share replica count.
    slots: usize,
}

impl Layout {
    /// Computes the layout, validating `1 ≤ k ≤ m ≤ MAX_SHARES` and
    /// the `u16` secret-length bound.
    pub fn new(k: u8, m: u8, secret_len: usize) -> Result<Layout, CodecError> {
        if k == 0 || m < k || m as usize > MAX_SHARES {
            return Err(CodecError::InvalidParams { k, m });
        }
        if secret_len > u16::MAX as usize {
            return Err(CodecError::PayloadTooLarge { len: secret_len });
        }
        let (kk, mm) = (k as usize, m as usize);
        let (pieces, fragment_len) = if kk == 1 {
            (1, secret_len)
        } else {
            (kk + 1, secret_len.div_ceil(kk))
        };
        let width = mm - kk + 1;
        let mut fill = [0u16; 256];
        let mut slots = 0u16;
        for p in 0..pieces {
            for i in 0..width {
                let j = (p * width + i) % mm;
                fill[j] += 1;
                slots = slots.max(fill[j]);
            }
        }
        Ok(Layout {
            k,
            m,
            secret_len,
            fragment_len,
            pieces,
            width,
            slots: slots as usize,
        })
    }

    /// Uniform per-share payload length: prefix + `c` slots.
    #[must_use]
    pub fn share_len(&self) -> usize {
        LEN_PREFIX + self.slots * self.fragment_len
    }

    /// Fragment length `L`.
    #[must_use]
    pub fn fragment_len(&self) -> usize {
        self.fragment_len
    }

    /// Number of distinct pieces.
    #[must_use]
    pub fn pieces(&self) -> usize {
        self.pieces
    }

    /// Replicas per piece.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Slots per share.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Visits every replica as `(piece, share, slot)` in the canonical
    /// placement order both encoder and decoder use.
    fn for_each_replica(&self, mut f: impl FnMut(usize, usize, usize)) {
        let mm = self.m as usize;
        let mut fill = [0u16; 256];
        for p in 0..self.pieces {
            for i in 0..self.width {
                let j = (p * self.width + i) % mm;
                let s = fill[j] as usize;
                fill[j] += 1;
                f(p, j, s);
            }
        }
    }
}

/// Splits `secret` into `m` share payloads, appending each to the
/// corresponding `outs[j]` after whatever the caller already wrote
/// there (frame headers). Draws exactly one `rng.fill` of `L` bytes
/// into `pad` (and none at all for `k == 1`). Allocation-free once
/// `pad` and `outs` have reached capacity.
pub fn split_into<R: Rng + ?Sized>(
    secret: &[u8],
    k: u8,
    m: u8,
    rng: &mut R,
    pad: &mut Vec<u8>,
    outs: &mut [Vec<u8>],
) -> Result<(), CodecError> {
    let layout = Layout::new(k, m, secret.len())?;
    if outs.len() != m as usize {
        return Err(CodecError::WrongShareCount {
            expected: m as usize,
            got: outs.len(),
        });
    }
    let l = layout.fragment_len;
    let prefix = (secret.len() as u16).to_le_bytes();
    let mut base = [0usize; 256];
    for (j, out) in outs.iter_mut().enumerate() {
        let start = out.len();
        base[j] = start + LEN_PREFIX;
        out.extend_from_slice(&prefix);
        out.resize(start + layout.share_len(), 0);
    }
    if k == 1 {
        for (j, out) in outs.iter_mut().enumerate() {
            out[base[j]..base[j] + l].copy_from_slice(secret);
        }
        return Ok(());
    }
    pad.clear();
    pad.resize(l, 0);
    rng.fill(pad.as_mut_slice());
    let kk = k as usize;
    layout.for_each_replica(|p, j, s| {
        let at = base[j] + s * l;
        let dst = &mut outs[j][at..at + l];
        if p == kk {
            dst.copy_from_slice(pad);
        } else {
            // The last fragment may start at or beyond the secret's
            // end when `len < k·L`; its missing (zero) tail XORs to
            // the bare pad. One fused wide-XOR pass — the split's hot
            // loop — instead of copy-then-XOR.
            let f0 = (p * l).min(secret.len());
            let f1 = (f0 + l).min(secret.len());
            let n = f1 - f0;
            gf_slice::xor_into(&mut dst[..n], &secret[f0..f1], &pad[..n]);
            dst[n..].copy_from_slice(&pad[n..]);
        }
    });
    Ok(())
}

/// Reconstructs the secret from shares presented through accessor
/// closures — `x_of(i)` the abscissa (`1..=m`) and `data_of(i)` the
/// payload of the `i`-th provided share — so pooled storage
/// (handle-indexed buffers) decodes without collecting a slice of
/// references. Allocation-free beyond growing `out`.
///
/// Succeeds exactly when the provided shares jointly cover every
/// piece; any `k` distinct shares always do.
pub fn reconstruct_with<'a>(
    k: u8,
    m: u8,
    n: usize,
    x_of: impl Fn(usize) -> u8,
    data_of: impl Fn(usize) -> &'a [u8],
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    if k == 0 || m < k || m as usize > MAX_SHARES {
        return Err(CodecError::InvalidParams { k, m });
    }
    if n == 0 {
        return Err(CodecError::NoShares);
    }
    let mm = m as usize;
    let mut present = [usize::MAX; 256];
    let mut share_len = usize::MAX;
    for i in 0..n {
        let x = x_of(i);
        if x == 0 || x as usize > mm {
            return Err(CodecError::InvalidAbscissa { x });
        }
        let j = (x - 1) as usize;
        if present[j] != usize::MAX {
            return Err(CodecError::DuplicateShare { x });
        }
        present[j] = i;
        let len = data_of(i).len();
        if share_len == usize::MAX {
            share_len = len;
        } else if len != share_len {
            return Err(CodecError::Malformed);
        }
    }
    if share_len < LEN_PREFIX {
        return Err(CodecError::Malformed);
    }
    let head = data_of(0);
    let secret_len = u16::from_le_bytes([head[0], head[1]]) as usize;
    let layout = Layout::new(k, m, secret_len)?;
    if share_len != layout.share_len() {
        return Err(CodecError::Malformed);
    }
    let l = layout.fragment_len;

    // One replay of the placement picks the first present replica of
    // each piece: (provided index, slot).
    const NONE: (u16, u16) = (u16::MAX, u16::MAX);
    let mut src = [NONE; 256];
    let mut found = 0usize;
    layout.for_each_replica(|p, j, s| {
        if src[p] == NONE && present[j] != usize::MAX {
            src[p] = (present[j] as u16, s as u16);
            found += 1;
        }
    });
    if found < layout.pieces {
        return Err(CodecError::Unrecoverable);
    }

    let piece = |p: usize| -> &'a [u8] {
        let (i, s) = src[p];
        &data_of(i as usize)[LEN_PREFIX + s as usize * l..][..l]
    };
    out.clear();
    if k == 1 {
        out.extend_from_slice(piece(0));
        return Ok(());
    }
    let kk = k as usize;
    out.resize(kk * l, 0);
    let pad = piece(kk);
    for p in 0..kk {
        gf_slice::xor_into(&mut out[p * l..(p + 1) * l], piece(p), pad);
    }
    out.truncate(secret_len);
    Ok(())
}

/// Slice-of-pairs convenience wrapper over [`reconstruct_with`].
pub fn reconstruct_into(
    k: u8,
    m: u8,
    shares: &[(u8, &[u8])],
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    reconstruct_with(k, m, shares.len(), |i| shares[i].0, |i| shares[i].1, out)
}

/// Whether an adversary holding exactly the shares in `captured`
/// (bit `j` = share with abscissa `j + 1`) recovers the **whole**
/// secret: true iff the set covers every piece. This is the codec's
/// combinatorial guarantee — compare `captured.count_ones() >= k`,
/// which is Shamir's. Placement does not depend on the secret length,
/// so neither does this predicate.
///
/// # Panics
///
/// Panics on invalid `(k, m)` or `m > 16` (enumeration helper, sized
/// for the paper's ≤ 16-channel setups).
#[must_use]
pub fn recoverable(k: u8, m: u8, captured: u32) -> bool {
    assert!(
        k >= 1 && k <= m && m <= 16,
        "recoverable: need 1 ≤ k ≤ m ≤ 16"
    );
    let layout = Layout::new(k, m, k as usize).expect("params validated");
    let mm = m as usize;
    'pieces: for p in 0..layout.pieces {
        for i in 0..layout.width {
            if captured >> ((p * layout.width + i) % mm) & 1 == 1 {
                continue 'pieces;
            }
        }
        return false;
    }
    true
}

/// Closed-form probability that independent per-share capture with
/// probabilities `risks` (`risks[j]` for abscissa `j + 1`) recovers
/// the whole secret — the XOR analogue of the Poisson-binomial
/// `Z(p)`, by exhaustive enumeration of the `2^m` capture sets.
///
/// Always ≥ the Shamir `Z(p)` on the same risks: every ≥ `k`-subset
/// recovers here too, plus the sub-`k` covering sets.
///
/// # Panics
///
/// Panics on invalid `(k, m)`, `m > 16`, or `risks.len() != m`.
#[must_use]
pub fn recovery_probability(k: u8, m: u8, risks: &[f64]) -> f64 {
    assert_eq!(risks.len(), m as usize, "one risk per share");
    let mm = m as usize;
    let mut total = 0.0;
    for mask in 0u32..1 << mm {
        if !recoverable(k, m, mask) {
            continue;
        }
        let mut prob = 1.0;
        for (j, &r) in risks.iter().enumerate() {
            prob *= if mask >> j & 1 == 1 { r } else { 1.0 - r };
        }
        total += prob;
    }
    total
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn split(secret: &[u8], k: u8, m: u8, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pad = Vec::new();
        let mut outs: Vec<Vec<u8>> = (0..m).map(|_| Vec::new()).collect();
        split_into(secret, k, m, &mut rng, &mut pad, &mut outs).unwrap();
        outs
    }

    #[test]
    fn round_trips_any_k_subset() {
        let secret: Vec<u8> = (0..1017u32).map(|i| (i * 31 + 5) as u8).collect();
        for m in 1..=6u8 {
            for k in 1..=m {
                let outs = split(&secret, k, m, 99);
                assert!(outs.iter().all(|o| o.len() == outs[0].len()));
                // Every k-subset reconstructs.
                for mask in 0u32..1 << m {
                    if mask.count_ones() != u32::from(k) {
                        continue;
                    }
                    let shares: Vec<(u8, &[u8])> = (0..m)
                        .filter(|&j| mask >> j & 1 == 1)
                        .map(|j| (j + 1, outs[j as usize].as_slice()))
                        .collect();
                    let mut out = Vec::new();
                    reconstruct_into(k, m, &shares, &mut out)
                        .unwrap_or_else(|e| panic!("(k={k}, m={m}, mask={mask:b}): {e}"));
                    assert_eq!(out, secret, "(k={k}, m={m}, mask={mask:b})");
                }
            }
        }
    }

    #[test]
    fn decode_success_matches_recoverable_predicate() {
        let secret = b"combinatorial guarantee".to_vec();
        for m in 1..=6u8 {
            for k in 1..=m {
                let outs = split(&secret, k, m, 7);
                for mask in 1u32..1 << m {
                    let shares: Vec<(u8, &[u8])> = (0..m)
                        .filter(|&j| mask >> j & 1 == 1)
                        .map(|j| (j + 1, outs[j as usize].as_slice()))
                        .collect();
                    let mut out = Vec::new();
                    let got = reconstruct_into(k, m, &shares, &mut out);
                    if recoverable(k, m, mask) {
                        assert_eq!(got, Ok(()), "(k={k}, m={m}, mask={mask:b})");
                        assert_eq!(out, secret);
                    } else {
                        assert_eq!(
                            got,
                            Err(CodecError::Unrecoverable),
                            "(k={k}, m={m}, mask={mask:b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn k1_is_plain_replication_with_no_rng_draw() {
        let secret = b"broadcast".to_vec();
        let mut rng = StdRng::seed_from_u64(5);
        let mut pad = Vec::new();
        let mut outs: Vec<Vec<u8>> = (0..3).map(|_| Vec::new()).collect();
        split_into(&secret, 1, 3, &mut rng, &mut pad, &mut outs).unwrap();
        let mut untouched = StdRng::seed_from_u64(5);
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        rng.fill(&mut a);
        untouched.fill(&mut b);
        assert_eq!(a, b, "k=1 split consumed RNG");
        for out in &outs {
            assert_eq!(&out[LEN_PREFIX..], secret.as_slice());
        }
    }

    #[test]
    fn length_prefix_survives_ragged_tails() {
        // Lengths that don't divide by k exercise the zero-padded tail.
        for len in [0usize, 1, 2, 3, 7, 16, 17, 255, 1000] {
            let secret: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let outs = split(&secret, 3, 5, 11);
            let shares: Vec<(u8, &[u8])> = [2u8, 4, 5]
                .iter()
                .map(|&x| (x, outs[x as usize - 1].as_slice()))
                .collect();
            let mut out = Vec::new();
            reconstruct_into(3, 5, &shares, &mut out).unwrap();
            assert_eq!(out, secret, "len={len}");
        }
    }

    #[test]
    fn malformed_shares_are_rejected_not_panicked() {
        let secret = b"some secret material here".to_vec();
        let outs = split(&secret, 2, 3, 3);
        let mut out = Vec::new();

        // Truncated payload (shorter than the prefix).
        let short: &[u8] = &outs[0][..1];
        assert_eq!(
            reconstruct_into(2, 3, &[(1, short), (2, short)], &mut out),
            Err(CodecError::Malformed)
        );

        // Mismatched sibling lengths.
        assert_eq!(
            reconstruct_into(2, 3, &[(1, &outs[0]), (2, &outs[1][..4])], &mut out),
            Err(CodecError::Malformed)
        );

        // Garbled length prefix: consistent share lengths, impossible
        // recorded secret length.
        let mut a = outs[0].clone();
        let mut b = outs[1].clone();
        a[0] = 0xFF;
        a[1] = 0xFF;
        b[0] = 0xFF;
        b[1] = 0xFF;
        assert_eq!(
            reconstruct_into(2, 3, &[(1, &a), (2, &b)], &mut out),
            Err(CodecError::Malformed)
        );

        // Bad abscissae.
        assert_eq!(
            reconstruct_into(2, 3, &[(0, &outs[0]), (2, &outs[1])], &mut out),
            Err(CodecError::InvalidAbscissa { x: 0 })
        );
        assert_eq!(
            reconstruct_into(2, 3, &[(1, &outs[0]), (1, &outs[0])], &mut out),
            Err(CodecError::DuplicateShare { x: 1 })
        );
    }

    #[test]
    fn recovery_probability_dominates_shamir_z() {
        // Z(p) for Shamir = P(≥ k of m captured), Poisson binomial by
        // the same enumeration.
        fn z_shamir(k: u8, m: u8, risks: &[f64]) -> f64 {
            let mut total = 0.0;
            for mask in 0u32..1 << m {
                if mask.count_ones() < u32::from(k) {
                    continue;
                }
                let mut prob = 1.0;
                for (j, &r) in risks.iter().enumerate() {
                    prob *= if mask >> j & 1 == 1 { r } else { 1.0 - r };
                }
                total += prob;
            }
            total
        }
        let risks5 = [0.05, 0.10, 0.20, 0.25, 0.40];
        for m in 1..=5u8 {
            for k in 1..=m {
                let r = &risks5[..m as usize];
                let xor = recovery_probability(k, m, r);
                let shamir = z_shamir(k, m, r);
                assert!(
                    xor >= shamir - 1e-12,
                    "(k={k}, m={m}): xor {xor} < shamir Z {shamir}"
                );
                assert!((0.0..=1.0 + 1e-12).contains(&xor));
            }
        }
        // k == m: covering all pieces needs all m shares on both
        // schemes, so the guarantees coincide.
        for m in 1..=5u8 {
            let r = &risks5[..m as usize];
            let xor = recovery_probability(m, m, r);
            let shamir = z_shamir(m, m, r);
            assert!((xor - shamir).abs() < 1e-12, "k=m={m}: {xor} vs {shamir}");
        }
    }

    #[test]
    fn share_len_is_uniform_and_matches_layout() {
        for m in 1..=8u8 {
            for k in 1..=m {
                for len in [0usize, 1, 64, 1250] {
                    let layout = Layout::new(k, m, len).unwrap();
                    let secret: Vec<u8> = (0..len).map(|i| i as u8).collect();
                    let outs = split(&secret, k, m, 1);
                    for out in &outs {
                        assert_eq!(out.len(), layout.share_len(), "(k={k}, m={m}, len={len})");
                    }
                }
            }
        }
    }

    #[test]
    fn split_appends_after_existing_header_bytes() {
        let secret = b"header discipline".to_vec();
        let mut rng = StdRng::seed_from_u64(21);
        let mut pad = Vec::new();
        let mut outs: Vec<Vec<u8>> = (0..3).map(|j| vec![0xA0 | j as u8; 4]).collect();
        split_into(&secret, 2, 3, &mut rng, &mut pad, &mut outs).unwrap();
        let layout = Layout::new(2, 3, secret.len()).unwrap();
        for (j, out) in outs.iter().enumerate() {
            assert_eq!(&out[..4], &[0xA0 | j as u8; 4], "header clobbered");
            assert_eq!(out.len(), 4 + layout.share_len());
        }
    }

    #[test]
    fn oversized_secret_is_rejected() {
        let secret = vec![0u8; u16::MAX as usize + 1];
        let mut rng = StdRng::seed_from_u64(1);
        let mut pad = Vec::new();
        let mut outs: Vec<Vec<u8>> = (0..3).map(|_| Vec::new()).collect();
        assert_eq!(
            split_into(&secret, 2, 3, &mut rng, &mut pad, &mut outs),
            Err(CodecError::PayloadTooLarge {
                len: u16::MAX as usize + 1
            })
        );
    }
}
