//! Dynamic network behaviour: delay jitter and mid-run reconfiguration.

use mcss_netsim::stats::DelaySummary;
use mcss_netsim::{
    Application, ChannelId, Context, Endpoint, Frame, LinkConfig, NetworkBuilder, SimTime,
    Simulator,
};

/// Paced one-channel sender that records per-frame latency at B.
struct Probe {
    latency: DelaySummary,
    sent: u64,
    received: u64,
    period: SimTime,
    until: SimTime,
}

impl Probe {
    fn new(period: SimTime, until: SimTime) -> Self {
        Probe {
            latency: DelaySummary::new(),
            sent: 0,
            received: 0,
            period,
            until,
        }
    }
}

impl Application for Probe {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimTime::ZERO, 0);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: u64) {
        if ctx.now() >= self.until {
            return;
        }
        let mut payload = vec![0u8; 100];
        payload[..8].copy_from_slice(&ctx.now().as_nanos().to_be_bytes());
        let _ = ctx.send(0, Endpoint::A, Frame::new(payload));
        self.sent += 1;
        let next = ctx.now() + self.period;
        ctx.set_timer(next, 0);
    }
    fn on_deliver(&mut self, ctx: &mut Context<'_>, _c: ChannelId, to: Endpoint, frame: Frame) {
        if to == Endpoint::B {
            let sent = u64::from_be_bytes(frame.payload()[..8].try_into().unwrap());
            self.latency.record(ctx.now() - SimTime::from_nanos(sent));
            self.received += 1;
        }
    }
}

#[test]
fn jitter_spreads_delay_around_mean() {
    let mut b = NetworkBuilder::new();
    b.channel(
        LinkConfig::new(1e9)
            .with_delay(SimTime::from_millis(10))
            .with_jitter(SimTime::from_millis(2)),
    );
    let probe = Probe::new(SimTime::from_micros(100), SimTime::from_millis(500));
    let mut sim = Simulator::new(b.build(), probe, 42);
    sim.run_until(SimTime::from_secs(1));
    let app = sim.app();
    assert!(app.latency.count() > 4000);
    let mean = app.latency.mean().unwrap();
    let min = app.latency.min().unwrap();
    let max = app.latency.max().unwrap();
    // Mean near 10 ms; extremes near 8 and 12 ms (+ tiny serialization).
    assert!(
        mean >= SimTime::from_micros(9800) && mean <= SimTime::from_micros(10_200),
        "mean {mean}"
    );
    assert!(min < SimTime::from_micros(8300), "min {min}");
    assert!(max > SimTime::from_micros(11_700), "max {max}");
    assert!(
        min >= SimTime::from_millis(8),
        "min below jitter floor: {min}"
    );
}

#[test]
fn zero_jitter_is_deterministic_delay() {
    let mut b = NetworkBuilder::new();
    b.channel(LinkConfig::new(1e9).with_delay(SimTime::from_millis(5)));
    let probe = Probe::new(SimTime::from_millis(1), SimTime::from_millis(100));
    let mut sim = Simulator::new(b.build(), probe, 1);
    sim.run_until(SimTime::from_millis(200));
    let app = sim.app();
    let spread = app.latency.max().unwrap() - app.latency.min().unwrap();
    assert!(spread < SimTime::from_nanos(1000), "spread {spread}");
}

#[test]
fn jitter_can_reorder_frames() {
    // Two frames sent 1 µs apart with ±5 ms jitter will reorder with
    // overwhelming probability over many trials; we assert at least one
    // out-of-order delivery is observed.
    struct Order {
        sent: u64,
        deliveries: Vec<u64>,
    }
    impl Application for Order {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimTime::ZERO, 0);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _t: u64) {
            if self.sent >= 200 {
                return;
            }
            let mut payload = vec![0u8; 16];
            payload[..8].copy_from_slice(&self.sent.to_be_bytes());
            self.sent += 1;
            let _ = ctx.send(0, Endpoint::A, Frame::new(payload));
            let next = ctx.now() + SimTime::from_micros(1);
            ctx.set_timer(next, 0);
        }
        fn on_deliver(
            &mut self,
            _ctx: &mut Context<'_>,
            _c: ChannelId,
            to: Endpoint,
            frame: Frame,
        ) {
            if to == Endpoint::B {
                self.deliveries
                    .push(u64::from_be_bytes(frame.payload()[..8].try_into().unwrap()));
            }
        }
    }
    let mut b = NetworkBuilder::new();
    b.channel(
        LinkConfig::new(1e9)
            .with_delay(SimTime::from_millis(10))
            .with_jitter(SimTime::from_millis(5)),
    );
    let mut sim = Simulator::new(
        b.build(),
        Order {
            sent: 0,
            deliveries: Vec::new(),
        },
        7,
    );
    sim.run_until(SimTime::from_secs(1));
    let d = &sim.app().deliveries;
    assert_eq!(d.len(), 200);
    assert!(
        d.windows(2).any(|w| w[0] > w[1]),
        "expected at least one reordering"
    );
}

#[test]
fn reconfigure_changes_rate_mid_run() {
    // 10 Mbit/s for the first half, 1 Mbit/s for the second: delivered
    // bits should reflect both regimes.
    let mut b = NetworkBuilder::new();
    // A short queue keeps the already-admitted backlog small at the
    // moment of reconfiguration (frames in flight keep their old fate).
    let short_queue = SimTime::from_millis(5);
    b.channel(LinkConfig::new(10e6).with_queue_limit(short_queue));
    let probe = Probe::new(SimTime::from_micros(50), SimTime::from_secs(2)); // 16 Mbit/s offered
    let mut sim = Simulator::new(b.build(), probe, 3);
    sim.run_until(SimTime::from_secs(1));
    let first_half = sim.network().channel(0).forward().stats().delivered_bits;
    sim.network_mut().reconfigure(
        0,
        Endpoint::A,
        LinkConfig::new(1e6).with_queue_limit(short_queue),
    );
    sim.run_until(SimTime::from_secs(2));
    let total = sim.network().channel(0).forward().stats().delivered_bits;
    let second_half = total - first_half;
    let f = first_half as f64;
    let s = second_half as f64;
    assert!((f - 10e6).abs() / 10e6 < 0.05, "first half {f}");
    assert!((s - 1e6).abs() / 1e6 < 0.2, "second half {s}");
}

#[test]
fn reconfigure_injects_loss_mid_run() {
    let mut b = NetworkBuilder::new();
    b.channel(LinkConfig::new(1e9));
    let probe = Probe::new(SimTime::from_micros(100), SimTime::from_secs(2));
    let mut sim = Simulator::new(b.build(), probe, 11);
    sim.run_until(SimTime::from_secs(1));
    let lost_before = sim.network().channel(0).forward().stats().lost_frames;
    assert_eq!(lost_before, 0);
    sim.network_mut()
        .reconfigure(0, Endpoint::A, LinkConfig::new(1e9).with_loss(0.5));
    sim.run_until(SimTime::from_secs(3));
    let stats = *sim.network().channel(0).forward().stats();
    // Second half: ~10_000 frames at 50% loss.
    assert!(
        stats.lost_frames > 4000 && stats.lost_frames < 6000,
        "lost {}",
        stats.lost_frames
    );
    assert_eq!(sim.app().received + stats.lost_frames, sim.app().sent);
}

#[test]
fn reconfigure_only_touches_one_direction() {
    let mut b = NetworkBuilder::new();
    b.channel(LinkConfig::new(10e6));
    let mut sim = Simulator::new(
        b.build(),
        Probe::new(SimTime::from_millis(1), SimTime::ZERO),
        1,
    );
    sim.network_mut()
        .reconfigure(0, Endpoint::A, LinkConfig::new(1e6));
    assert_eq!(sim.network().channel(0).forward().config().rate_bps(), 1e6);
    assert_eq!(
        sim.network().channel(0).backward().config().rate_bps(),
        10e6
    );
}
