//! Measurement helpers (throughput, loss, and delay meters),
//! re-exported from [`mcss_base::stats`] where they now live so the
//! sans-I/O protocol engine can use them without the simulator.

pub use mcss_base::stats::*;
