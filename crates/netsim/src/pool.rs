//! Reusable byte-buffer pooling for the zero-allocation data path,
//! re-exported from [`mcss_base::pool`] where it now lives so the
//! sans-I/O protocol engine can use it without the simulator.

pub use mcss_base::pool::*;
