//! Pending-event storage, re-exported from [`mcss_base::queue`] where
//! it now lives so server shards can run the same hierarchical timer
//! wheel without pulling in the simulator.
//!
//! Both backends implement the same total order — earliest `at` first,
//! ties broken by insertion sequence — so a simulation replays an
//! identical event stream whichever backend it runs on; see the
//! [`mcss_base::queue`] module docs for the wheel's layout and
//! invariants.

pub use mcss_base::queue::{EventQueue, QueueKind};
