//! Traffic generators: the simulator-side equivalents of the paper's
//! measurement tools.
//!
//! * [`Pacer`] — drift-free constant-bit-rate scheduling, the sending
//!   discipline of `iperf`'s UDP mode.
//! * [`ChannelProbe`] — measures one channel's deliverable rate and loss
//!   by sending paced sequenced datagrams (how the paper obtains the
//!   vectors `r⃗` and `l⃗` before each experiment).
//! * [`EchoBenchmark`] — the paper's custom RTT utility: timestamped
//!   datagrams echoed by the far host; one-way delay is RTT/2.

use crate::frame::Frame;
use crate::network::{ChannelId, Endpoint};
use crate::sim::{Application, Context};
use crate::stats::{DelaySummary, SequenceLossMeter, ThroughputMeter};
use crate::time::SimTime;

pub use mcss_base::Pacer;

/// `iperf`-style single-channel UDP probe: host A sends sequenced
/// datagrams at a fixed offered rate for a fixed duration; host B counts
/// them. Measures the channel's deliverable rate and loss.
///
/// Used by the benchmark harness to calibrate `r⃗` exactly as §VI-A does
/// ("We begin by using this method to obtain an accurate rate for each
/// individual channel").
#[derive(Debug)]
pub struct ChannelProbe {
    channel: ChannelId,
    payload_bytes: usize,
    duration: SimTime,
    pacer: Pacer,
    next_seq: u64,
    received: ThroughputMeter,
    loss: SequenceLossMeter,
}

impl ChannelProbe {
    /// Probes `channel` with `payload_bytes`-byte datagrams offered at
    /// `offered_bps` for `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `payload_bytes < 8` (the sequence number needs 8 bytes)
    /// or the rate is invalid.
    #[must_use]
    pub fn new(
        channel: ChannelId,
        offered_bps: f64,
        payload_bytes: usize,
        duration: SimTime,
    ) -> Self {
        assert!(payload_bytes >= 8, "payload must hold a sequence number");
        ChannelProbe {
            channel,
            payload_bytes,
            duration,
            pacer: Pacer::new(offered_bps, payload_bytes as u64 * 8),
            next_seq: 0,
            received: ThroughputMeter::new(),
            loss: SequenceLossMeter::new(),
        }
    }

    /// Achieved receive rate in bits per second over the probe duration.
    #[must_use]
    pub fn achieved_bps(&self) -> f64 {
        self.received.rate_bps(self.duration)
    }

    /// Datagram loss fraction observed by the receiver.
    #[must_use]
    pub fn loss_fraction(&self) -> f64 {
        self.loss.loss_fraction()
    }

    /// The probe duration.
    #[must_use]
    pub fn duration(&self) -> SimTime {
        self.duration
    }

    fn frame(&mut self) -> Frame {
        let mut payload = vec![0u8; self.payload_bytes];
        payload[..8].copy_from_slice(&self.next_seq.to_be_bytes());
        self.next_seq += 1;
        Frame::new(payload)
    }
}

impl Application for ChannelProbe {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let at = self.pacer.next_tick();
        ctx.set_timer(at, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if ctx.now() >= self.duration {
            return;
        }
        let frame = self.frame();
        let _ = ctx.send(self.channel, Endpoint::A, frame);
        let at = self.pacer.next_tick();
        ctx.set_timer(at, 0);
    }

    fn on_deliver(
        &mut self,
        ctx: &mut Context<'_>,
        _channel: ChannelId,
        to: Endpoint,
        frame: Frame,
    ) {
        if to == Endpoint::B && ctx.now() <= self.duration {
            let seq = u64::from_be_bytes(frame.payload()[..8].try_into().expect("8-byte seq"));
            self.loss.record(seq);
            self.received.record(ctx.now(), frame.bits());
        }
    }
}

/// The paper's RTT measurement utility (§VI-B): host A sends paced,
/// timestamped datagrams on one channel; host B echoes them back on the
/// same channel; A accumulates round-trip times. One-way delay is
/// reported as RTT/2, exactly as the paper divides by two.
#[derive(Debug)]
pub struct EchoBenchmark {
    channel: ChannelId,
    payload_bytes: usize,
    duration: SimTime,
    pacer: Pacer,
    rtts: DelaySummary,
}

impl EchoBenchmark {
    /// Echo-probes `channel` at `offered_bps` for `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `payload_bytes < 8` (the timestamp needs 8 bytes).
    #[must_use]
    pub fn new(
        channel: ChannelId,
        offered_bps: f64,
        payload_bytes: usize,
        duration: SimTime,
    ) -> Self {
        assert!(payload_bytes >= 8, "payload must hold a timestamp");
        EchoBenchmark {
            channel,
            payload_bytes,
            duration,
            pacer: Pacer::new(offered_bps, payload_bytes as u64 * 8),
            rtts: DelaySummary::new(),
        }
    }

    /// Round-trip time summary.
    #[must_use]
    pub fn rtt(&self) -> &DelaySummary {
        &self.rtts
    }

    /// Mean one-way delay (RTT/2), or `None` if nothing was echoed.
    #[must_use]
    pub fn mean_one_way_delay(&self) -> Option<SimTime> {
        self.rtts
            .mean()
            .map(|m| SimTime::from_nanos(m.as_nanos() / 2))
    }
}

impl Application for EchoBenchmark {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let at = self.pacer.next_tick();
        ctx.set_timer(at, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if ctx.now() >= self.duration {
            return;
        }
        let mut payload = vec![0u8; self.payload_bytes];
        payload[..8].copy_from_slice(&ctx.now().as_nanos().to_be_bytes());
        let _ = ctx.send(self.channel, Endpoint::A, Frame::new(payload));
        let at = self.pacer.next_tick();
        ctx.set_timer(at, 0);
    }

    fn on_deliver(
        &mut self,
        ctx: &mut Context<'_>,
        channel: ChannelId,
        to: Endpoint,
        frame: Frame,
    ) {
        match to {
            Endpoint::B => {
                // Echo server: bounce the datagram back unchanged.
                let _ = ctx.send(channel, Endpoint::B, frame);
            }
            Endpoint::A => {
                let sent =
                    u64::from_be_bytes(frame.payload()[..8].try_into().expect("8-byte stamp"));
                self.rtts.record(ctx.now() - SimTime::from_nanos(sent));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::network::NetworkBuilder;
    use crate::sim::Simulator;

    fn net(cfg: LinkConfig) -> crate::network::Network {
        let mut b = NetworkBuilder::new();
        b.channel(cfg);
        b.build()
    }

    #[test]
    fn probe_measures_shaped_rate() {
        // Offer 10 Mbit/s into a 5 Mbit/s channel: achieve ≈ 5 Mbit/s.
        let probe = ChannelProbe::new(0, 10e6, 125, SimTime::from_secs(1));
        let mut sim = Simulator::new(net(LinkConfig::new(5e6)), probe, 3);
        sim.run_until(SimTime::from_secs(2));
        let got = sim.app().achieved_bps();
        assert!(
            (got - 5e6).abs() / 5e6 < 0.03,
            "achieved {got} expected ~5e6"
        );
    }

    #[test]
    fn probe_measures_undersubscribed_rate() {
        // Offer 2 Mbit/s into a 100 Mbit/s channel: achieve the offer.
        let probe = ChannelProbe::new(0, 2e6, 125, SimTime::from_secs(1));
        let mut sim = Simulator::new(net(LinkConfig::new(100e6)), probe, 3);
        sim.run_until(SimTime::from_secs(2));
        let got = sim.app().achieved_bps();
        assert!((got - 2e6).abs() / 2e6 < 0.02, "achieved {got}");
    }

    #[test]
    fn probe_measures_loss() {
        let probe = ChannelProbe::new(0, 5e6, 125, SimTime::from_secs(2));
        let cfg = LinkConfig::new(100e6).with_loss(0.02);
        let mut sim = Simulator::new(net(cfg), probe, 11);
        sim.run_until(SimTime::from_secs(3));
        let got = sim.app().loss_fraction();
        assert!((got - 0.02).abs() < 0.008, "loss {got} expected ~0.02");
    }

    #[test]
    fn echo_measures_one_way_delay() {
        let bench = EchoBenchmark::new(0, 1e6, 125, SimTime::from_millis(500));
        let cfg = LinkConfig::new(100e6).with_delay(SimTime::from_micros(2500));
        let mut sim = Simulator::new(net(cfg), bench, 5);
        sim.run_until(SimTime::from_secs(1));
        let one_way = sim.app().mean_one_way_delay().unwrap();
        // 2.5 ms propagation + 10 µs serialization each way.
        let expect = SimTime::from_micros(2510);
        let err = one_way
            .saturating_sub(expect)
            .max(expect.saturating_sub(one_way));
        assert!(
            err < SimTime::from_micros(20),
            "one-way {one_way} expected ~{expect}"
        );
        assert!(sim.app().rtt().count() > 100);
    }

    #[test]
    #[should_panic(expected = "sequence number")]
    fn probe_payload_too_small() {
        let _ = ChannelProbe::new(0, 1e6, 4, SimTime::from_secs(1));
    }
}
