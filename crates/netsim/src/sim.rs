//! The event loop: a deterministic discrete-event simulator over a
//! two-host [`Network`].

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::frame::Frame;
use crate::link::{Admit, SendOutcome};
use crate::network::{ChannelId, Endpoint, Network};
use crate::queue::{EventQueue, QueueKind};
use crate::time::SimTime;
use crate::trace::{Trace, TraceKind};

/// Application logic plugged into a [`Simulator`].
///
/// All methods have empty defaults so implementations only handle the
/// events they care about. Implementations drive everything through the
/// [`Context`]: sending frames, reading channel state, and arming timers.
pub trait Application {
    /// Called once, at time zero, before any event is processed.
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Called when a frame arrives at endpoint `to` over `channel`.
    fn on_deliver(
        &mut self,
        ctx: &mut Context<'_>,
        channel: ChannelId,
        to: Endpoint,
        frame: Frame,
    ) {
        let _ = (ctx, channel, to, frame);
    }

    /// Called when a timer armed with [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        let _ = (ctx, token);
    }
}

#[derive(Debug)]
enum EventKind {
    Deliver {
        channel: ChannelId,
        to: Endpoint,
        sent_at: SimTime,
        frame: Frame,
    },
    Timer {
        token: u64,
    },
}

/// The application's handle to the simulation during a callback.
///
/// Provides the current time, frame transmission, channel introspection
/// (backlog/writability — the simulator's `epoll` equivalent), timers,
/// and the simulation's seeded RNG.
#[derive(Debug)]
pub struct Context<'a> {
    now: SimTime,
    network: &'a mut Network,
    queue: &'a mut EventQueue<EventKind>,
    seq: &'a mut u64,
    rng: &'a mut StdRng,
    trace: &'a mut Option<Trace>,
}

impl Context<'_> {
    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of channels in the network.
    #[must_use]
    pub fn num_channels(&self) -> usize {
        self.network.len()
    }

    /// Sends `frame` from endpoint `from` over `channel`.
    ///
    /// Returns [`SendOutcome::Dropped`] if the local queue is full;
    /// random in-flight loss is *not* observable at the sender.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn send(&mut self, channel: ChannelId, from: Endpoint, frame: Frame) -> SendOutcome {
        match self.try_send(channel, from, frame) {
            Ok(()) => SendOutcome::Queued,
            Err(_rejected) => SendOutcome::Dropped,
        }
    }

    /// Like [`send`](Context::send), but hands the frame back on a
    /// local queue drop so a pooled payload buffer can be recycled
    /// instead of freed.
    ///
    /// Only *locally observable* rejection returns the frame: random
    /// in-flight loss still consumes it, exactly as a real socket write
    /// succeeds on frames the network later loses. `Err` therefore
    /// reveals nothing [`send`](Context::send) doesn't.
    ///
    /// # Errors
    ///
    /// Returns the frame if the local queue is full
    /// ([`SendOutcome::Dropped`]).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn try_send(
        &mut self,
        channel: ChannelId,
        from: Endpoint,
        frame: Frame,
    ) -> Result<(), Frame> {
        let bytes = frame.len();
        let link = self.network.channel_mut(channel).link_from(from);
        let result = match link.admit(self.now, &frame, self.rng) {
            Admit::Dropped => Err(frame),
            Admit::Lost => Ok(()),
            Admit::Deliver { at } => {
                let seq = *self.seq;
                *self.seq += 1;
                self.queue.push(
                    at,
                    seq,
                    EventKind::Deliver {
                        channel,
                        to: from.peer(),
                        sent_at: self.now,
                        frame,
                    },
                );
                Ok(())
            }
        };
        if let Some(trace) = self.trace.as_mut() {
            let outcome = match &result {
                Ok(()) => SendOutcome::Queued,
                Err(_) => SendOutcome::Dropped,
            };
            trace.record(
                self.now,
                TraceKind::Send {
                    channel,
                    from,
                    bytes,
                    outcome,
                },
            );
        }
        result
    }

    /// Serialization backlog of `channel` in the direction out of `from`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    #[must_use]
    pub fn backlog(&self, channel: ChannelId, from: Endpoint) -> SimTime {
        self.network
            .channel(channel)
            .link_from_ref(from)
            .backlog(self.now)
    }

    /// Whether `channel` is ready for writing from `from`: its backlog is
    /// at most `threshold`. This is the simulator's equivalent of
    /// `epoll` writability, which the ReMICSS dynamic share schedule
    /// relies on.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    #[must_use]
    pub fn is_writable(&self, channel: ChannelId, from: Endpoint, threshold: SimTime) -> bool {
        self.backlog(channel, from) <= threshold
    }

    /// Arms a timer to fire at absolute time `at` (clamped to now if in
    /// the past) with an application-defined token.
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        let seq = *self.seq;
        *self.seq += 1;
        self.queue
            .push(at.max(self.now), seq, EventKind::Timer { token });
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// A deterministic discrete-event simulator joining a [`Network`] and an
/// [`Application`].
///
/// See the [crate docs](crate) for a complete example.
#[derive(Debug)]
pub struct Simulator<A> {
    now: SimTime,
    network: Network,
    app: A,
    queue: EventQueue<EventKind>,
    seq: u64,
    events: u64,
    rng: StdRng,
    trace: Option<Trace>,
}

impl<A: Application> Simulator<A> {
    /// Creates a simulator and immediately runs the application's
    /// [`on_start`](Application::on_start) hook at time zero.
    ///
    /// Uses the default timer-wheel event queue; the same
    /// `(network, app, seed)` triple always produces the same trace,
    /// whichever [`QueueKind`] runs it (see [`crate::queue`]).
    pub fn new(network: Network, app: A, seed: u64) -> Self {
        Simulator::with_queue_kind(network, app, seed, QueueKind::default())
    }

    /// Like [`new`](Simulator::new) with an explicit event-queue
    /// backend, for pinning the wheel against the reference heap.
    pub fn with_queue_kind(network: Network, app: A, seed: u64, kind: QueueKind) -> Self {
        let mut sim = Simulator {
            now: SimTime::ZERO,
            network,
            app,
            queue: EventQueue::new(kind),
            seq: 0,
            events: 0,
            rng: StdRng::seed_from_u64(seed),
            trace: None,
        };
        let mut ctx = Context {
            now: sim.now,
            network: &mut sim.network,
            queue: &mut sim.queue,
            seq: &mut sim.seq,
            rng: &mut sim.rng,
            trace: &mut sim.trace,
        };
        sim.app.on_start(&mut ctx);
        sim
    }

    /// Turns on event tracing with a bounded ring buffer of `capacity`
    /// events (see [`trace`](crate::trace)). Tracing costs a few
    /// nanoseconds per event; leave it off for large sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero. A zero-capacity trace would
    /// silently record nothing while appearing enabled (`trace()`
    /// returning `Some`), so it is rejected loudly instead of being a
    /// no-op.
    pub fn enable_trace(&mut self, capacity: usize) {
        assert!(
            capacity > 0,
            "enable_trace(0): a zero-capacity trace records nothing; \
             pass a positive capacity or leave tracing off"
        );
        self.trace = Some(Trace::new(capacity));
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The network (for reading link statistics).
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the network, for mid-run reconfiguration via
    /// [`Network::reconfigure`].
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The application.
    #[must_use]
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable access to the application (e.g. to extract results).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Number of events processed so far (deliveries + timer firings).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Processes the next event, if any. Returns `false` when the event
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        let _span = mcss_obs::span!("netsim.step");
        let Some((at, _seq, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time must be monotone");
        self.now = at;
        self.events += 1;
        match kind {
            EventKind::Deliver {
                channel,
                to,
                sent_at,
                frame,
            } => {
                self.network
                    .channel_mut(channel)
                    .link_from(to.peer())
                    .record_delivery(sent_at, at, &frame);
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(
                        self.now,
                        TraceKind::Deliver {
                            channel,
                            to,
                            bytes: frame.len(),
                        },
                    );
                }
                let mut ctx = Context {
                    now: self.now,
                    network: &mut self.network,
                    queue: &mut self.queue,
                    seq: &mut self.seq,
                    rng: &mut self.rng,
                    trace: &mut self.trace,
                };
                self.app.on_deliver(&mut ctx, channel, to, frame);
            }
            EventKind::Timer { token } => {
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(self.now, TraceKind::Timer { token });
                }
                let mut ctx = Context {
                    now: self.now,
                    network: &mut self.network,
                    queue: &mut self.queue,
                    seq: &mut self.seq,
                    rng: &mut self.rng,
                    trace: &mut self.trace,
                };
                self.app.on_timer(&mut ctx, token);
            }
        }
        true
    }

    /// Runs every event scheduled at or before `deadline`, then advances
    /// the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(at) = self.queue.next_at() {
            if at > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
    }

    /// Runs until the event queue is empty.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::network::NetworkBuilder;

    /// Records everything it sees, for assertions.
    #[derive(Default)]
    struct Recorder {
        delivered: Vec<(SimTime, ChannelId, Endpoint, usize)>,
        timers: Vec<(SimTime, u64)>,
    }

    impl Application for Recorder {
        fn on_deliver(
            &mut self,
            ctx: &mut Context<'_>,
            channel: ChannelId,
            to: Endpoint,
            frame: Frame,
        ) {
            self.delivered.push((ctx.now(), channel, to, frame.len()));
        }

        fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
            self.timers.push((ctx.now(), token));
        }
    }

    fn one_channel(rate: f64) -> Network {
        let mut b = NetworkBuilder::new();
        b.channel(LinkConfig::new(rate));
        b.build()
    }

    /// App that sends one frame from A at start.
    struct SendOnce(Recorder);
    impl Application for SendOnce {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let out = ctx.send(0, Endpoint::A, Frame::new(vec![0u8; 125]));
            assert_eq!(out, SendOutcome::Queued);
        }
        fn on_deliver(
            &mut self,
            ctx: &mut Context<'_>,
            channel: ChannelId,
            to: Endpoint,
            frame: Frame,
        ) {
            self.0.on_deliver(ctx, channel, to, frame);
        }
    }

    /// Pins the documented `enable_trace(0)` contract: loud rejection,
    /// not a silently-enabled trace that records nothing.
    #[test]
    #[should_panic(expected = "enable_trace(0)")]
    fn enable_trace_zero_capacity_panics() {
        let mut sim = Simulator::new(one_channel(1e6), Recorder::default(), 0);
        sim.enable_trace(0);
    }

    #[test]
    fn single_frame_delivery_time() {
        // 1000 bits at 1 Mbit/s = 1 ms serialization, no delay.
        let mut sim = Simulator::new(one_channel(1e6), SendOnce(Recorder::default()), 0);
        sim.run_to_completion();
        assert_eq!(
            sim.app().0.delivered,
            vec![(SimTime::from_millis(1), 0, Endpoint::B, 125)]
        );
        let stats = *sim.network().channel(0).forward().stats();
        assert_eq!(stats.delivered_frames, 1);
        assert_eq!(stats.delivered_bits, 1000);
        assert_eq!(stats.mean_latency(), Some(SimTime::from_millis(1)));
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timers(Recorder);
        impl Application for Timers {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimTime::from_millis(5), 5);
                ctx.set_timer(SimTime::from_millis(1), 1);
                ctx.set_timer(SimTime::from_millis(1), 2); // tie: insertion order
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
                self.0.on_timer(ctx, token);
            }
        }
        let mut sim = Simulator::new(one_channel(1e6), Timers(Recorder::default()), 0);
        sim.run_to_completion();
        assert_eq!(
            sim.app().0.timers,
            vec![
                (SimTime::from_millis(1), 1),
                (SimTime::from_millis(1), 2),
                (SimTime::from_millis(5), 5),
            ]
        );
    }

    #[test]
    fn past_timer_clamped_to_now() {
        struct Past(Recorder);
        impl Application for Past {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimTime::from_millis(2), 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
                if token == 0 {
                    ctx.set_timer(SimTime::ZERO, 1); // in the past
                }
                self.0.on_timer(ctx, token);
            }
        }
        let mut sim = Simulator::new(one_channel(1e6), Past(Recorder::default()), 0);
        sim.run_to_completion();
        assert_eq!(sim.app().0.timers[1], (SimTime::from_millis(2), 1));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        struct Periodic;
        impl Application for Periodic {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimTime::from_millis(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _t: u64) {
                let next = ctx.now() + SimTime::from_millis(1);
                ctx.set_timer(next, 0);
                let _ = ctx.send(0, Endpoint::A, Frame::new(vec![0u8; 10]));
            }
        }
        let mut sim = Simulator::new(one_channel(1e9), Periodic, 0);
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.now(), SimTime::from_millis(10));
        let sent = sim.network().channel(0).forward().stats().queued_frames;
        assert_eq!(sent, 10);
        // The clock still advances to a later deadline with queued events.
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(sim.now(), SimTime::from_millis(20));
    }

    #[test]
    fn bidirectional_traffic_is_independent() {
        struct Both;
        impl Application for Both {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let _ = ctx.send(0, Endpoint::A, Frame::new(vec![0u8; 125]));
                let _ = ctx.send(0, Endpoint::B, Frame::new(vec![0u8; 250]));
            }
        }
        let mut sim = Simulator::new(one_channel(1e6), Both, 0);
        sim.run_to_completion();
        assert_eq!(
            sim.network().channel(0).forward().stats().delivered_bits,
            1000
        );
        assert_eq!(
            sim.network().channel(0).backward().stats().delivered_bits,
            2000
        );
    }

    #[test]
    fn echo_round_trip() {
        struct Echo {
            rtt: Option<SimTime>,
        }
        impl Application for Echo {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let _ = ctx.send(0, Endpoint::A, Frame::new(vec![1u8; 125]));
            }
            fn on_deliver(
                &mut self,
                ctx: &mut Context<'_>,
                channel: ChannelId,
                to: Endpoint,
                frame: Frame,
            ) {
                match to {
                    Endpoint::B => {
                        let _ = ctx.send(channel, Endpoint::B, frame);
                    }
                    Endpoint::A => self.rtt = Some(ctx.now()),
                }
            }
        }
        // 1 ms serialization + 5 ms delay each way.
        let mut b = NetworkBuilder::new();
        b.channel(LinkConfig::new(1e6).with_delay(SimTime::from_millis(5)));
        let mut sim = Simulator::new(b.build(), Echo { rtt: None }, 0);
        sim.run_to_completion();
        assert_eq!(sim.app().rtt, Some(SimTime::from_millis(12)));
    }

    #[test]
    fn writability_reflects_backlog() {
        struct Check;
        impl Application for Check {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                assert!(ctx.is_writable(0, Endpoint::A, SimTime::ZERO));
                // 8000 bits at 1 Mbit/s = 8 ms backlog.
                let _ = ctx.send(0, Endpoint::A, Frame::new(vec![0u8; 1000]));
                assert!(!ctx.is_writable(0, Endpoint::A, SimTime::ZERO));
                assert!(ctx.is_writable(0, Endpoint::A, SimTime::from_millis(8)));
                assert_eq!(ctx.backlog(0, Endpoint::A), SimTime::from_millis(8));
                assert_eq!(ctx.backlog(0, Endpoint::B), SimTime::ZERO);
            }
        }
        let mut sim = Simulator::new(one_channel(1e6), Check, 0);
        sim.run_to_completion();
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        struct Lossy {
            delivered: u64,
        }
        impl Application for Lossy {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimTime::ZERO, 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _t: u64) {
                let _ = ctx.send(0, Endpoint::A, Frame::new(vec![0u8; 100]));
                if ctx.now() < SimTime::from_millis(100) {
                    let next = ctx.now() + SimTime::from_micros(100);
                    ctx.set_timer(next, 0);
                }
            }
            fn on_deliver(
                &mut self,
                _ctx: &mut Context<'_>,
                _c: ChannelId,
                _to: Endpoint,
                _f: Frame,
            ) {
                self.delivered += 1;
            }
        }
        let net = || {
            let mut b = NetworkBuilder::new();
            b.channel(LinkConfig::new(100e6).with_loss(0.3));
            b.build()
        };
        let run = |seed| {
            let mut sim = Simulator::new(net(), Lossy { delivered: 0 }, seed);
            sim.run_to_completion();
            (
                sim.app().delivered,
                sim.network().channel(0).forward().stats().lost_frames,
            )
        };
        assert_eq!(run(42), run(42));
        // Different seeds draw different loss patterns (overwhelmingly).
        assert_ne!(run(42).1, run(43).1);
    }

    #[test]
    fn empty_queue_step_returns_false() {
        let mut sim = Simulator::new(one_channel(1e6), Recorder::default(), 0);
        assert!(!sim.step());
    }

    /// A jittery, lossy, multi-channel app whose full delivery/timer
    /// record must be identical under both event-queue backends.
    #[test]
    fn wheel_replays_heap_bit_identical() {
        struct Chatty(Recorder);
        impl Application for Chatty {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimTime::ZERO, 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, t: u64) {
                for c in 0..ctx.num_channels() {
                    let _ = ctx.send(c, Endpoint::A, Frame::new(vec![0u8; 200 + 10 * c]));
                }
                if ctx.now() < SimTime::from_millis(50) {
                    // Uneven periods so timers and deliveries interleave
                    // and collide at shared timestamps.
                    let next = ctx.now() + SimTime::from_micros(90 + 7 * (t % 13));
                    ctx.set_timer(next, t + 1);
                }
                self.0.on_timer(ctx, t);
            }
            fn on_deliver(
                &mut self,
                ctx: &mut Context<'_>,
                channel: ChannelId,
                to: Endpoint,
                frame: Frame,
            ) {
                if to == Endpoint::B && frame.len().is_multiple_of(3) {
                    let _ = ctx.send(channel, Endpoint::B, frame.clone());
                }
                self.0.on_deliver(ctx, channel, to, frame);
            }
        }
        let net = || {
            let mut b = NetworkBuilder::new();
            b.channel(LinkConfig::new(8e6).with_loss(0.05));
            b.channel(
                LinkConfig::new(2e6)
                    .with_delay(SimTime::from_millis(3))
                    .with_jitter(SimTime::from_millis(1)),
            );
            b.channel(LinkConfig::new(1e6));
            b.build()
        };
        let run = |kind| {
            let mut sim = Simulator::with_queue_kind(net(), Chatty(Recorder::default()), 11, kind);
            sim.enable_trace(1 << 16);
            sim.run_to_completion();
            let trace: Vec<_> = sim.trace().unwrap().events().cloned().collect();
            let events = sim.events_processed();
            let recorder = sim.app_mut();
            (
                std::mem::take(&mut recorder.0.delivered),
                std::mem::take(&mut recorder.0.timers),
                trace,
                events,
            )
        };
        let heap = run(crate::queue::QueueKind::Heap);
        let wheel = run(crate::queue::QueueKind::Wheel);
        assert_eq!(heap, wheel);
        assert!(heap.3 > 1000, "workload should be non-trivial");
    }

    #[test]
    fn app_accessors() {
        let mut sim = Simulator::new(one_channel(1e6), Recorder::default(), 0);
        sim.app_mut().timers.push((SimTime::ZERO, 9));
        assert_eq!(sim.app().timers.len(), 1);
    }
}
