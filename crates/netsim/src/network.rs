//! The two-host network: a bundle of full-duplex channels.
//!
//! The paper's testbed is exactly two hosts joined by five dedicated
//! wired channels; this module models that topology (and only that
//! topology — the model assumes disjoint point-to-point channels).

use crate::link::{Link, LinkConfig, LinkStats};
use crate::time::SimTime;

/// Index of a channel within the [`Network`].
pub type ChannelId = usize;

pub use mcss_base::Endpoint;

/// A full-duplex channel: an independent shaped link in each direction.
#[derive(Debug, Clone)]
pub struct Channel {
    forward: Link,  // A → B
    backward: Link, // B → A
}

impl Channel {
    /// The A→B direction.
    #[must_use]
    pub fn forward(&self) -> LinkView<'_> {
        LinkView {
            link: &self.forward,
        }
    }

    /// The B→A direction.
    #[must_use]
    pub fn backward(&self) -> LinkView<'_> {
        LinkView {
            link: &self.backward,
        }
    }

    pub(crate) fn link_from(&mut self, from: Endpoint) -> &mut Link {
        match from {
            Endpoint::A => &mut self.forward,
            Endpoint::B => &mut self.backward,
        }
    }

    pub(crate) fn link_from_ref(&self, from: Endpoint) -> &Link {
        match from {
            Endpoint::A => &self.forward,
            Endpoint::B => &self.backward,
        }
    }
}

/// Read-only view of one link direction.
#[derive(Debug, Clone, Copy)]
pub struct LinkView<'a> {
    link: &'a Link,
}

impl LinkView<'_> {
    /// The link's configuration.
    #[must_use]
    pub fn config(&self) -> &LinkConfig {
        self.link.config()
    }

    /// The link's counters.
    #[must_use]
    pub fn stats(&self) -> &LinkStats {
        self.link.stats()
    }

    /// Serialization backlog at time `now`.
    #[must_use]
    pub fn backlog(&self, now: SimTime) -> SimTime {
        self.link.backlog(now)
    }
}

/// The set of channels joining host A and host B.
#[derive(Debug, Clone)]
pub struct Network {
    channels: Vec<Channel>,
}

impl Network {
    /// Number of channels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether the network has no channels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// The channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id]
    }

    /// Iterator over all channels.
    pub fn channels(&self) -> impl Iterator<Item = &Channel> {
        self.channels.iter()
    }

    pub(crate) fn channel_mut(&mut self, id: ChannelId) -> &mut Channel {
        &mut self.channels[id]
    }

    /// Replaces the shaping of one link direction mid-simulation —
    /// failure injection, rate renegotiation, or mobility. Frames
    /// already in flight are unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn reconfigure(&mut self, id: ChannelId, from: Endpoint, cfg: LinkConfig) {
        self.channels[id].link_from(from).reconfigure(cfg);
    }
}

/// Builder for a [`Network`].
///
/// # Examples
///
/// ```
/// use mcss_netsim::{LinkConfig, NetworkBuilder, SimTime};
///
/// let mut b = NetworkBuilder::new();
/// // Symmetric channel (same shaping both ways), like the testbed.
/// b.channel(LinkConfig::new(100e6).with_delay(SimTime::from_micros(250)));
/// // Asymmetric channel.
/// b.channel_asymmetric(LinkConfig::new(10e6), LinkConfig::new(1e6));
/// let net = b.build();
/// assert_eq!(net.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetworkBuilder {
    channels: Vec<Channel>,
}

impl NetworkBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        NetworkBuilder::default()
    }

    /// Adds a symmetric channel: the same shaping in both directions
    /// (the paper applies its `htb`/`netem` settings per direction,
    /// identically).
    pub fn channel(&mut self, cfg: LinkConfig) -> ChannelId {
        self.channel_asymmetric(cfg, cfg)
    }

    /// Adds a channel with distinct forward (A→B) and backward (B→A)
    /// shaping.
    pub fn channel_asymmetric(&mut self, forward: LinkConfig, backward: LinkConfig) -> ChannelId {
        let id = self.channels.len();
        self.channels.push(Channel {
            forward: Link::new(forward),
            backward: Link::new(backward),
        });
        id
    }

    /// Finalizes the network.
    #[must_use]
    pub fn build(self) -> Network {
        Network {
            channels: self.channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_peer() {
        assert_eq!(Endpoint::A.peer(), Endpoint::B);
        assert_eq!(Endpoint::B.peer(), Endpoint::A);
        assert_eq!(Endpoint::A.to_string(), "A");
        assert_eq!(Endpoint::B.to_string(), "B");
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = NetworkBuilder::new();
        assert_eq!(b.channel(LinkConfig::new(1e6)), 0);
        assert_eq!(b.channel(LinkConfig::new(2e6)), 1);
        let net = b.build();
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
        assert_eq!(net.channels().count(), 2);
        assert_eq!(net.channel(1).forward().config().rate_bps(), 2e6);
    }

    #[test]
    fn asymmetric_directions_independent() {
        let mut b = NetworkBuilder::new();
        b.channel_asymmetric(LinkConfig::new(10e6), LinkConfig::new(1e6));
        let net = b.build();
        assert_eq!(net.channel(0).forward().config().rate_bps(), 10e6);
        assert_eq!(net.channel(0).backward().config().rate_bps(), 1e6);
    }

    #[test]
    fn link_views_expose_state() {
        let mut b = NetworkBuilder::new();
        b.channel(LinkConfig::new(1e6));
        let net = b.build();
        let v = net.channel(0).forward();
        assert_eq!(v.stats().offered_frames, 0);
        assert_eq!(v.backlog(SimTime::ZERO), SimTime::ZERO);
    }
}
