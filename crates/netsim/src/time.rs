//! Simulated time, re-exported from [`mcss_base`] where it now lives so
//! the sans-I/O protocol engine can use it without the simulator.

pub use mcss_base::SimTime;
