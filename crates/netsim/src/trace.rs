//! Opt-in event tracing: a bounded ring buffer of everything the
//! simulator did, for debugging protocol behaviour after the fact.
//!
//! Tracing is off by default (simulations at millions of events should
//! not pay for it); enable it with
//! [`Simulator::enable_trace`](crate::Simulator::enable_trace).
//!
//! # Examples
//!
//! ```
//! use mcss_netsim::{
//!     trace::TraceKind, Application, Context, Endpoint, Frame, LinkConfig,
//!     NetworkBuilder, SimTime, Simulator,
//! };
//!
//! struct Once;
//! impl Application for Once {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         let _ = ctx.send(0, Endpoint::A, Frame::new(vec![0u8; 10]));
//!     }
//! }
//!
//! let mut b = NetworkBuilder::new();
//! b.channel(LinkConfig::new(1e6));
//! let mut sim = Simulator::new(b.build(), Once, 1);
//! sim.enable_trace(100);
//! sim.run_to_completion();
//! let trace = sim.trace().unwrap();
//! assert!(trace
//!     .events()
//!     .any(|e| matches!(e.kind, TraceKind::Deliver { .. })));
//! ```

use std::collections::VecDeque;

use crate::link::SendOutcome;
use crate::network::{ChannelId, Endpoint};
use crate::time::SimTime;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The application offered a frame to a channel.
    Send {
        /// The channel used.
        channel: ChannelId,
        /// The sending endpoint.
        from: Endpoint,
        /// Payload size in bytes.
        bytes: usize,
        /// Whether the local queue accepted it.
        outcome: SendOutcome,
    },
    /// A frame arrived at an endpoint.
    Deliver {
        /// The channel used.
        channel: ChannelId,
        /// The receiving endpoint.
        to: Endpoint,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// An application timer fired.
    Timer {
        /// The application-defined token.
        token: u64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded ring buffer of [`TraceEvent`]s; the oldest events are
/// discarded once `capacity` is reached.
#[derive(Debug, Clone)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    discarded: u64,
}

impl Trace {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            discarded: 0,
        }
    }

    pub(crate) fn record(&mut self, at: SimTime, kind: TraceKind) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.discarded += 1;
        }
        self.events.push_back(TraceEvent { at, kind });
    }

    /// Iterator over retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded because the ring was full.
    #[must_use]
    pub fn discarded(&self) -> u64 {
        self.discarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_discards_oldest() {
        let mut t = Trace::new(2);
        t.record(SimTime::from_nanos(1), TraceKind::Timer { token: 1 });
        t.record(SimTime::from_nanos(2), TraceKind::Timer { token: 2 });
        t.record(SimTime::from_nanos(3), TraceKind::Timer { token: 3 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.discarded(), 1);
        let tokens: Vec<u64> = t
            .events()
            .map(|e| match e.kind {
                TraceKind::Timer { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, vec![2, 3]);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Trace::new(0);
    }
}
