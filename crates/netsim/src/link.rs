//! Unidirectional shaped links: token-bucket rate limiting, bounded
//! queueing, Bernoulli loss, and fixed delay — the simulator's equivalent
//! of one `htb` class plus `netem`.

use rand::Rng;
use rand::RngExt as _;

use crate::frame::Frame;
use crate::time::SimTime;

/// Configuration of one link direction.
///
/// # Examples
///
/// ```
/// use mcss_netsim::{LinkConfig, SimTime};
///
/// let cfg = LinkConfig::new(100e6)
///     .with_loss(0.01)
///     .with_delay(SimTime::from_micros(250))
///     .with_overhead_bytes(42);
/// assert_eq!(cfg.rate_bps(), 100e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    rate_bps: f64,
    loss: f64,
    delay: SimTime,
    jitter: SimTime,
    queue_limit: SimTime,
    overhead_bits: u64,
}

impl LinkConfig {
    /// Default queue depth: how much serialization backlog the link
    /// buffers before tail-dropping (in time at line rate).
    pub const DEFAULT_QUEUE_LIMIT: SimTime = SimTime::from_millis(50);

    /// A lossless, zero-delay link at `rate_bps` bits per second.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_bps` is strictly positive and finite.
    #[must_use]
    pub fn new(rate_bps: f64) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "link rate must be positive"
        );
        LinkConfig {
            rate_bps,
            loss: 0.0,
            delay: SimTime::ZERO,
            jitter: SimTime::ZERO,
            queue_limit: Self::DEFAULT_QUEUE_LIMIT,
            overhead_bits: 0,
        }
    }

    /// Sets the Bernoulli per-frame loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `loss ∈ [0, 1)`.
    #[must_use]
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        self.loss = loss;
        self
    }

    /// Sets the one-way propagation delay.
    #[must_use]
    pub fn with_delay(mut self, delay: SimTime) -> Self {
        self.delay = delay;
        self
    }

    /// Sets a uniform delay jitter: each frame's propagation delay is
    /// drawn uniformly from `delay ± jitter` (clamped at zero), like
    /// `netem delay <d> <jitter>`. Jittered frames may reorder.
    #[must_use]
    pub fn with_jitter(mut self, jitter: SimTime) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the maximum queued serialization backlog before tail drop.
    #[must_use]
    pub fn with_queue_limit(mut self, limit: SimTime) -> Self {
        self.queue_limit = limit;
        self
    }

    /// Sets per-frame framing overhead in bytes (e.g. 42 for
    /// Ethernet + IP + UDP headers), charged against the rate budget.
    #[must_use]
    pub fn with_overhead_bytes(mut self, bytes: u64) -> Self {
        self.overhead_bits = bytes * 8;
        self
    }

    /// Line rate in bits per second.
    #[must_use]
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Loss probability.
    #[must_use]
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// One-way delay.
    #[must_use]
    pub fn delay(&self) -> SimTime {
        self.delay
    }

    /// Uniform delay jitter amplitude.
    #[must_use]
    pub fn jitter(&self) -> SimTime {
        self.jitter
    }

    /// Queue limit (backlog time).
    #[must_use]
    pub fn queue_limit(&self) -> SimTime {
        self.queue_limit
    }

    /// Per-frame overhead in bits.
    #[must_use]
    pub fn overhead_bits(&self) -> u64 {
        self.overhead_bits
    }
}

/// What the sender observes when handing a frame to a link.
///
/// Random in-flight loss is deliberately *not* visible here — a real
/// sender cannot distinguish a lost datagram from a delivered one at send
/// time. Local queue overflow is visible (like `ENOBUFS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SendOutcome {
    /// The frame was accepted and scheduled for (possible) delivery.
    Queued,
    /// The frame was tail-dropped by the local queue.
    Dropped,
}

/// Counters kept by each link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LinkStats {
    /// Frames offered by the application.
    pub offered_frames: u64,
    /// Frames accepted into the queue.
    pub queued_frames: u64,
    /// Frames tail-dropped by the local queue.
    pub dropped_frames: u64,
    /// Frames lost in flight (Bernoulli loss).
    pub lost_frames: u64,
    /// Frames delivered to the far endpoint.
    pub delivered_frames: u64,
    /// Payload bits delivered (excluding framing overhead).
    pub delivered_bits: u64,
    /// Sum of per-frame one-way latency (queueing + serialization +
    /// propagation), for mean-latency reporting.
    pub total_latency: SimTime,
}

impl LinkStats {
    /// Mean one-way latency of delivered frames, or `None` if nothing was
    /// delivered.
    #[must_use]
    pub fn mean_latency(&self) -> Option<SimTime> {
        (self.delivered_frames > 0)
            .then(|| SimTime::from_nanos(self.total_latency.as_nanos() / self.delivered_frames))
    }

    /// Fraction of queued frames lost in flight.
    #[must_use]
    pub fn loss_ratio(&self) -> f64 {
        if self.queued_frames == 0 {
            0.0
        } else {
            self.lost_frames as f64 / self.queued_frames as f64
        }
    }
}

/// Internal admission decision, including information the sender must not
/// see (whether the frame will be lost, and when it arrives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admit {
    Dropped,
    Lost,
    Deliver { at: SimTime },
}

/// One direction of a channel.
#[derive(Debug, Clone)]
pub(crate) struct Link {
    cfg: LinkConfig,
    /// Time at which the serializer finishes everything queued so far.
    next_free: SimTime,
    stats: LinkStats,
}

impl Link {
    pub(crate) fn new(cfg: LinkConfig) -> Self {
        Link {
            cfg,
            next_free: SimTime::ZERO,
            stats: LinkStats::default(),
        }
    }

    pub(crate) fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    pub(crate) fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Current serialization backlog: how long a frame admitted now would
    /// wait before its first bit is on the wire.
    pub(crate) fn backlog(&self, now: SimTime) -> SimTime {
        self.next_free.saturating_sub(now)
    }

    /// Admits a frame at time `now`, advancing the serializer clock and
    /// drawing the loss coin. Returns the full fate of the frame.
    pub(crate) fn admit<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        frame: &Frame,
        rng: &mut R,
    ) -> Admit {
        self.stats.offered_frames += 1;
        if self.backlog(now) > self.cfg.queue_limit {
            self.stats.dropped_frames += 1;
            return Admit::Dropped;
        }
        let wire_bits = frame.bits() + self.cfg.overhead_bits;
        let tx = SimTime::from_secs_f64(wire_bits as f64 / self.cfg.rate_bps);
        let start = self.next_free.max(now);
        self.next_free = start + tx;
        self.stats.queued_frames += 1;
        if self.cfg.loss > 0.0 && rng.random_bool(self.cfg.loss) {
            self.stats.lost_frames += 1;
            return Admit::Lost;
        }
        let delay = if self.cfg.jitter == SimTime::ZERO {
            self.cfg.delay
        } else {
            let lo = self.cfg.delay.saturating_sub(self.cfg.jitter).as_nanos();
            let hi = self.cfg.delay.saturating_add(self.cfg.jitter).as_nanos();
            SimTime::from_nanos(rng.random_range(lo..=hi))
        };
        Admit::Deliver {
            at: self.next_free + delay,
        }
    }

    /// Replaces the link's shaping configuration mid-simulation
    /// (failure injection / dynamic networks). Queued frames already in
    /// flight keep their old fate; new frames see the new shaping.
    pub(crate) fn reconfigure(&mut self, cfg: LinkConfig) {
        self.cfg = cfg;
    }

    /// Records a completed delivery (called by the simulator when the
    /// deliver event fires).
    pub(crate) fn record_delivery(
        &mut self,
        sent_at: SimTime,
        delivered_at: SimTime,
        frame: &Frame,
    ) {
        self.stats.delivered_frames += 1;
        self.stats.delivered_bits += frame.bits();
        self.stats.total_latency += delivered_at - sent_at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn config_builder() {
        let c = LinkConfig::new(1e6)
            .with_loss(0.5)
            .with_delay(SimTime::from_millis(3))
            .with_queue_limit(SimTime::from_millis(7))
            .with_overhead_bytes(10);
        assert_eq!(c.loss(), 0.5);
        assert_eq!(c.delay(), SimTime::from_millis(3));
        assert_eq!(c.queue_limit(), SimTime::from_millis(7));
        assert_eq!(c.overhead_bits(), 80);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn zero_rate_panics() {
        let _ = LinkConfig::new(0.0);
    }

    #[test]
    #[should_panic(expected = "loss")]
    fn full_loss_panics() {
        let _ = LinkConfig::new(1.0).with_loss(1.0);
    }

    #[test]
    fn serialization_time_accumulates() {
        // 1 Mbit/s, 1000-bit frames: 1 ms each.
        let mut link = Link::new(LinkConfig::new(1e6));
        let f = Frame::new(vec![0u8; 125]);
        let mut r = rng();
        let a1 = link.admit(SimTime::ZERO, &f, &mut r);
        assert_eq!(
            a1,
            Admit::Deliver {
                at: SimTime::from_millis(1)
            }
        );
        let a2 = link.admit(SimTime::ZERO, &f, &mut r);
        assert_eq!(
            a2,
            Admit::Deliver {
                at: SimTime::from_millis(2)
            }
        );
        assert_eq!(link.backlog(SimTime::ZERO), SimTime::from_millis(2));
        // After the backlog drains the serializer idles.
        let a3 = link.admit(SimTime::from_millis(10), &f, &mut r);
        assert_eq!(
            a3,
            Admit::Deliver {
                at: SimTime::from_millis(11)
            }
        );
    }

    #[test]
    fn delay_adds_to_delivery() {
        let mut link = Link::new(LinkConfig::new(1e6).with_delay(SimTime::from_millis(5)));
        let f = Frame::new(vec![0u8; 125]);
        let a = link.admit(SimTime::ZERO, &f, &mut rng());
        assert_eq!(
            a,
            Admit::Deliver {
                at: SimTime::from_millis(6)
            }
        );
    }

    #[test]
    fn overhead_charged_against_rate() {
        // 125-byte payload + 125-byte overhead = 2000 bits at 1 Mbit/s.
        let mut link = Link::new(LinkConfig::new(1e6).with_overhead_bytes(125));
        let f = Frame::new(vec![0u8; 125]);
        let a = link.admit(SimTime::ZERO, &f, &mut rng());
        assert_eq!(
            a,
            Admit::Deliver {
                at: SimTime::from_millis(2)
            }
        );
    }

    #[test]
    fn queue_overflow_drops() {
        let mut link = Link::new(LinkConfig::new(1e6).with_queue_limit(SimTime::from_millis(2)));
        let f = Frame::new(vec![0u8; 125]); // 1 ms each
        let mut r = rng();
        // Backlog after three frames = 3 ms > 2 ms limit.
        assert_ne!(link.admit(SimTime::ZERO, &f, &mut r), Admit::Dropped);
        assert_ne!(link.admit(SimTime::ZERO, &f, &mut r), Admit::Dropped);
        assert_ne!(link.admit(SimTime::ZERO, &f, &mut r), Admit::Dropped);
        assert_eq!(link.admit(SimTime::ZERO, &f, &mut r), Admit::Dropped);
        assert_eq!(link.stats().dropped_frames, 1);
        assert_eq!(link.stats().queued_frames, 3);
        assert_eq!(link.stats().offered_frames, 4);
    }

    #[test]
    fn loss_ratio_converges() {
        let mut link = Link::new(LinkConfig::new(1e12).with_loss(0.25));
        let f = Frame::new(vec![0u8; 10]);
        let mut r = rng();
        let mut t = SimTime::ZERO;
        for _ in 0..20_000 {
            t += SimTime::from_micros(1);
            let _ = link.admit(t, &f, &mut r);
        }
        let ratio = link.stats().loss_ratio();
        assert!((ratio - 0.25).abs() < 0.02, "loss ratio {ratio}");
    }

    #[test]
    fn delivery_stats() {
        let mut link = Link::new(LinkConfig::new(1e6));
        let f = Frame::new(vec![0u8; 125]);
        link.record_delivery(SimTime::ZERO, SimTime::from_millis(4), &f);
        link.record_delivery(SimTime::ZERO, SimTime::from_millis(2), &f);
        let s = link.stats();
        assert_eq!(s.delivered_frames, 2);
        assert_eq!(s.delivered_bits, 2000);
        assert_eq!(s.mean_latency(), Some(SimTime::from_millis(3)));
        assert_eq!(LinkStats::default().mean_latency(), None);
        assert_eq!(LinkStats::default().loss_ratio(), 0.0);
    }
}
