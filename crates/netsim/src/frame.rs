//! Frames: the unit of transmission on a simulated link.

use bytes::Bytes;

/// A datagram in flight. Cheaply cloneable (the payload is an [`Bytes`]
/// handle).
///
/// # Examples
///
/// ```
/// use mcss_netsim::Frame;
///
/// let f = Frame::new(vec![1, 2, 3]);
/// assert_eq!(f.len(), 3);
/// assert_eq!(f.payload(), &[1, 2, 3][..]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    payload: Bytes,
}

impl Frame {
    /// Wraps a payload into a frame.
    #[must_use]
    pub fn new(payload: impl Into<Bytes>) -> Self {
        Frame {
            payload: payload.into(),
        }
    }

    /// The payload bytes.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Consumes the frame, returning the payload handle.
    #[must_use]
    pub fn into_payload(self) -> Bytes {
        self.payload
    }

    /// Payload length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Payload size in bits (excluding per-link framing overhead, which
    /// the link adds per its [`LinkConfig`](crate::LinkConfig)).
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.payload.len() as u64 * 8
    }
}

impl From<Vec<u8>> for Frame {
    fn from(v: Vec<u8>) -> Self {
        Frame::new(v)
    }
}

impl From<Bytes> for Frame {
    fn from(b: Bytes) -> Self {
        Frame { payload: b }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let f = Frame::new(vec![9u8; 100]);
        assert_eq!(f.len(), 100);
        assert_eq!(f.bits(), 800);
        assert!(!f.is_empty());
        assert_eq!(f.clone().into_payload().len(), 100);
    }

    #[test]
    fn empty_frame() {
        let f = Frame::new(Vec::new());
        assert!(f.is_empty());
        assert_eq!(f.bits(), 0);
    }

    #[test]
    fn conversions() {
        let a: Frame = vec![1u8, 2].into();
        let b: Frame = Bytes::from_static(&[1u8, 2]).into();
        assert_eq!(a, b);
    }

    #[test]
    fn clones_share_payload() {
        let f = Frame::new(vec![0u8; 1024]);
        let g = f.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(f.payload().as_ptr(), g.payload().as_ptr());
    }
}
