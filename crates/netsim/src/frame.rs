//! Frames: the unit of transmission on a simulated link.

use std::hash::{Hash, Hasher};

use bytes::Bytes;

/// A datagram in flight.
///
/// The payload is either a shared [`Bytes`] handle (cheap clones, used
/// by tests and generic traffic sources) or an *owned* `Vec<u8>` from a
/// [`BufferPool`](crate::BufferPool): owned frames move through the
/// event queue by value and hand their buffer back for reuse at the
/// receiver via [`into_vec`](Frame::into_vec), which is what keeps the
/// protocol data path allocation-free. The two representations compare
/// and hash by payload contents, indistinguishably.
///
/// # Examples
///
/// ```
/// use mcss_netsim::Frame;
///
/// let f = Frame::new(vec![1, 2, 3]);
/// assert_eq!(f.len(), 3);
/// assert_eq!(f.payload(), &[1, 2, 3][..]);
/// ```
#[derive(Debug, Clone)]
pub struct Frame {
    payload: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    Shared(Bytes),
    Owned(Vec<u8>),
}

impl Frame {
    /// Wraps a payload into a shared-representation frame.
    #[must_use]
    pub fn new(payload: impl Into<Bytes>) -> Self {
        Frame {
            payload: Repr::Shared(payload.into()),
        }
    }

    /// Wraps an owned buffer — typically from a
    /// [`BufferPool`](crate::BufferPool) — without copying it.
    ///
    /// Unlike [`new`](Frame::new) with a `Vec` (which copies into a
    /// shared allocation), the vector itself is the payload and can be
    /// recovered intact with [`into_vec`](Frame::into_vec).
    #[must_use]
    pub fn from_vec(payload: Vec<u8>) -> Self {
        Frame {
            payload: Repr::Owned(payload),
        }
    }

    /// The payload bytes.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        match &self.payload {
            Repr::Shared(b) => b,
            Repr::Owned(v) => v,
        }
    }

    /// Consumes the frame, returning the payload as a shared handle
    /// (copies once if the frame owned its buffer).
    #[must_use]
    pub fn into_payload(self) -> Bytes {
        match self.payload {
            Repr::Shared(b) => b,
            Repr::Owned(v) => Bytes::from(v),
        }
    }

    /// Consumes the frame, returning the payload as an owned vector —
    /// without copying when the frame was built by
    /// [`from_vec`](Frame::from_vec), so the buffer can go back to its
    /// pool.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        match self.payload {
            Repr::Shared(b) => b.to_vec(),
            Repr::Owned(v) => v,
        }
    }

    /// Payload length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.payload().len()
    }

    /// Whether the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.payload().is_empty()
    }

    /// Payload size in bits (excluding per-link framing overhead, which
    /// the link adds per its [`LinkConfig`](crate::LinkConfig)).
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.payload().len() as u64 * 8
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        self.payload() == other.payload()
    }
}

impl Eq for Frame {}

impl Hash for Frame {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.payload().hash(state);
    }
}

impl From<Vec<u8>> for Frame {
    fn from(v: Vec<u8>) -> Self {
        Frame::from_vec(v)
    }
}

impl From<Bytes> for Frame {
    fn from(b: Bytes) -> Self {
        Frame {
            payload: Repr::Shared(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let f = Frame::new(vec![9u8; 100]);
        assert_eq!(f.len(), 100);
        assert_eq!(f.bits(), 800);
        assert!(!f.is_empty());
        assert_eq!(f.clone().into_payload().len(), 100);
    }

    #[test]
    fn empty_frame() {
        let f = Frame::new(Vec::new());
        assert!(f.is_empty());
        assert_eq!(f.bits(), 0);
    }

    #[test]
    fn conversions() {
        let a: Frame = vec![1u8, 2].into();
        let b: Frame = Bytes::from_static(&[1u8, 2]).into();
        assert_eq!(a, b);
    }

    #[test]
    fn clones_share_payload() {
        let f = Frame::new(vec![0u8; 1024]);
        let g = f.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(f.payload().as_ptr(), g.payload().as_ptr());
    }

    #[test]
    fn owned_round_trip_preserves_buffer() {
        let mut v = Vec::with_capacity(2048);
        v.extend_from_slice(&[7u8; 10]);
        let ptr = v.as_ptr();
        let f = Frame::from_vec(v);
        assert_eq!(f.payload(), &[7u8; 10]);
        let back = f.into_vec();
        assert_eq!(back.as_ptr(), ptr);
        assert_eq!(back.capacity(), 2048);
    }

    #[test]
    fn owned_and_shared_compare_by_contents() {
        let owned = Frame::from_vec(vec![1, 2, 3]);
        let shared = Frame::new(vec![1, 2, 3]);
        assert_eq!(owned, shared);
        use std::collections::hash_map::DefaultHasher;
        let hash = |f: &Frame| {
            let mut h = DefaultHasher::new();
            f.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&owned), hash(&shared));
    }
}
