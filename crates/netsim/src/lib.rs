//! A deterministic discrete-event network simulator reproducing the
//! evaluation testbed of Pohly & McDaniel (DSN 2016).
//!
//! The paper's experiments run between **two hosts** joined by five
//! dedicated, shaped channels: the Linux `htb` queueing class limits each
//! channel's rate and `netem` adds loss and delay. This simulator models
//! exactly that physics:
//!
//! * each [`Channel`](network::Channel) is a full-duplex pair of links;
//! * each link serializes frames at a configured bit rate behind a
//!   bounded FIFO (token-bucket semantics, like a single `htb` class);
//! * each frame independently survives with probability `1 − loss` and,
//!   if it survives, arrives one `delay` later (like `netem`);
//! * everything is driven by a single event queue (a hierarchical timer
//!   wheel, bit-identical to the reference binary heap — see [`queue`])
//!   with deterministic tie-breaking, and all randomness comes from one
//!   seeded RNG — the same seed always yields the same trace.
//!
//! Application logic (traffic generators, the ReMICSS protocol) plugs in
//! via the [`Application`] trait and interacts with the network through a
//! [`Context`].
//!
//! # Examples
//!
//! Measure the throughput of a single 8 Mbit/s channel:
//!
//! ```
//! use mcss_netsim::{
//!     Application, Context, Endpoint, Frame, LinkConfig, NetworkBuilder,
//!     SimTime, Simulator,
//! };
//!
//! struct Blaster;
//! impl Application for Blaster {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.set_timer(SimTime::ZERO, 0);
//!     }
//!     fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
//!         // Offer 16 Mbit/s into 8 Mbit/s; the queue sheds the excess.
//!         for _ in 0..16 {
//!             let _ = ctx.send(0, Endpoint::A, Frame::new(vec![0u8; 125]));
//!         }
//!         let next = ctx.now() + SimTime::from_millis(1);
//!         ctx.set_timer(next, 0);
//!     }
//! }
//!
//! let mut net = NetworkBuilder::new();
//! net.channel(LinkConfig::new(8_000_000.0));
//! let mut sim = Simulator::new(net.build(), Blaster, 7);
//! sim.run_until(SimTime::from_secs(1));
//! let delivered = sim.network().channel(0).forward().stats().delivered_bits;
//! let rate = delivered as f64; // bits over 1 second
//! assert!((rate - 8_000_000.0).abs() / 8_000_000.0 < 0.02);
//! ```

mod frame;
mod link;
pub mod network;
pub mod pool;
pub mod queue;
mod sim;
pub mod stats;
mod time;
pub mod trace;
pub mod traffic;

pub use frame::Frame;
pub use link::{LinkConfig, LinkStats, SendOutcome};
pub use network::{Channel, ChannelId, Endpoint, Network, NetworkBuilder};
pub use pool::{BufHandle, BufferPool};
pub use queue::QueueKind;
pub use sim::{Application, Context, Simulator};
pub use time::SimTime;
