//! Two-phase dense tableau simplex with Bland's anti-cycling rule.
//!
//! Internal engine behind [`Problem::solve`](crate::Problem::solve). The
//! program is brought to standard form (equalities with nonnegative
//! right-hand sides over nonnegative variables, via slack and surplus
//! columns), phase 1 minimizes the sum of artificial variables to find a
//! basic feasible solution, and phase 2 minimizes the real objective.

use crate::{ConstraintRow, LpError, Relation};

/// Absolute tolerance used for pivoting and feasibility decisions.
pub const EPSILON: f64 = 1e-9;

/// Hard cap on pivots per phase. Bland's rule guarantees finite
/// termination, so hitting this indicates numerical breakdown.
const MAX_ITERATIONS: usize = 100_000;

/// Dense tableau: `m` constraint rows over `n` columns plus a rhs column,
/// and a reduced-cost row maintained incrementally.
struct Tableau {
    m: usize,
    n: usize,
    /// Row-major `m × (n + 1)`; column `n` is the rhs.
    a: Vec<f64>,
    /// `z_j − c_j` for each column plus the objective value in slot `n`.
    zrow: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
}

impl Tableau {
    fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i * (self.n + 1) + j]
    }

    fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.a[i * (self.n + 1) + j]
    }

    fn rhs(&self, i: usize) -> f64 {
        self.at(i, self.n)
    }

    /// Rebuilds the reduced-cost row from scratch for cost vector `c`
    /// (indexed over all `n` columns).
    fn price(&mut self, c: &[f64]) {
        let width = self.n + 1;
        for j in 0..width {
            let mut z = 0.0;
            for i in 0..self.m {
                let cb = c[self.basis[i]];
                if cb != 0.0 {
                    z += cb * self.a[i * width + j];
                }
            }
            self.zrow[j] = z - if j < self.n { c[j] } else { 0.0 };
        }
    }

    /// Performs one pivot on (row, col), updating rows, basis and zrow.
    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.n + 1;
        let piv = self.at(row, col);
        debug_assert!(piv.abs() > EPSILON);
        let inv = 1.0 / piv;
        for j in 0..width {
            self.a[row * width + j] *= inv;
        }
        // Re-normalize the pivot element exactly.
        self.a[row * width + col] = 1.0;
        for i in 0..self.m {
            if i == row {
                continue;
            }
            let factor = self.at(i, col);
            if factor.abs() > 0.0 {
                for j in 0..width {
                    self.a[i * width + j] -= factor * self.a[row * width + j];
                }
                self.a[i * width + col] = 0.0;
            }
        }
        let zfactor = self.zrow[col];
        if zfactor.abs() > 0.0 {
            for j in 0..width {
                self.zrow[j] -= zfactor * self.a[row * width + j];
            }
            self.zrow[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations until optimality, restricted to columns
    /// `< allowed_cols`. Returns `Err(Unbounded)` if a favorable column
    /// has no positive entries.
    fn optimize(&mut self, allowed_cols: usize) -> Result<(), LpError> {
        for _ in 0..MAX_ITERATIONS {
            // Bland: entering column = smallest index with z_j − c_j > 0.
            let Some(col) = (0..allowed_cols).find(|&j| self.zrow[j] > EPSILON) else {
                return Ok(());
            };
            // Ratio test with Bland tie-breaking by basic variable index.
            let mut best: Option<(f64, usize, usize)> = None; // (ratio, basis var, row)
            for i in 0..self.m {
                let aij = self.at(i, col);
                if aij > EPSILON {
                    let ratio = self.rhs(i) / aij;
                    let key = (ratio, self.basis[i], i);
                    best = match best {
                        None => Some(key),
                        Some(cur) => {
                            if ratio < cur.0 - EPSILON
                                || (ratio < cur.0 + EPSILON && self.basis[i] < cur.1)
                            {
                                Some(key)
                            } else {
                                Some(cur)
                            }
                        }
                    };
                }
            }
            let Some((_, _, row)) = best else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
        Err(LpError::IterationLimit)
    }
}

/// Solves `min obj·x` subject to `rows`, `x ≥ 0`. Returns the optimal
/// variable values (length = `obj.len()`).
pub(crate) fn solve(obj: &[f64], rows: &[ConstraintRow]) -> Result<Vec<f64>, LpError> {
    let nvars = obj.len();
    let m = rows.len();
    // Count slack/surplus columns.
    let nslack = rows.iter().filter(|r| r.relation != Relation::Eq).count();
    let nstruct = nvars + nslack;
    let n = nstruct + m; // artificials appended per row
    let width = n + 1;

    let mut t = Tableau {
        m,
        n,
        a: vec![0.0; m * width],
        zrow: vec![0.0; width],
        basis: vec![0; m],
    };

    let mut slack_idx = nvars;
    for (i, row) in rows.iter().enumerate() {
        // Make the rhs nonnegative by negating the row if necessary.
        let flip = row.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for (j, &c) in row.coeffs.iter().enumerate() {
            *t.at_mut(i, j) = sign * c;
        }
        *t.at_mut(i, n) = sign * row.rhs;
        match row.relation {
            Relation::Le => {
                *t.at_mut(i, slack_idx) = sign; // slack (surplus if flipped)
                slack_idx += 1;
            }
            Relation::Ge => {
                *t.at_mut(i, slack_idx) = -sign; // surplus (slack if flipped)
                slack_idx += 1;
            }
            Relation::Eq => {}
        }
        // Artificial variable for every row keeps the construction simple
        // and uniform; phase 1 removes them.
        *t.at_mut(i, nstruct + i) = 1.0;
        t.basis[i] = nstruct + i;
    }

    // Phase 1: minimize the sum of artificials.
    let mut phase1_cost = vec![0.0; n];
    for c in phase1_cost.iter_mut().skip(nstruct) {
        *c = 1.0;
    }
    t.price(&phase1_cost);
    t.optimize(n)?;
    // zrow[n] holds z − 0 = c_B·b = current phase-1 objective.
    if t.zrow[n].abs() > 1e-7 {
        return Err(LpError::Infeasible);
    }

    // Drive any remaining artificial variables out of the basis.
    for i in 0..m {
        if t.basis[i] >= nstruct {
            if let Some(col) = (0..nstruct).find(|&j| t.at(i, j).abs() > EPSILON) {
                t.pivot(i, col);
            }
            // If no structural column pivots, the row is redundant
            // (all-zero); the artificial stays basic at value ~0, which is
            // harmless as long as phase 2 never lets it grow — enforced by
            // restricting entering columns to structurals below.
        }
    }

    // Phase 2: the real objective over structural columns only.
    let mut phase2_cost = vec![0.0; n];
    phase2_cost[..nvars].copy_from_slice(obj);
    t.price(&phase2_cost);
    t.optimize(nstruct)?;

    let mut x = vec![0.0; nvars];
    for i in 0..m {
        if t.basis[i] < nvars {
            x[t.basis[i]] = t.rhs(i).max(0.0);
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation};
    use rand::RngExt;
    use rand::SeedableRng;

    /// Brute-force LP solver for cross-checking: enumerate all basic
    /// solutions (choices of tight constraints / axes), keep feasible
    /// ones, return the best objective. Only valid when an optimum exists
    /// at a vertex, which holds for bounded feasible LPs.
    fn brute_force_min(obj: &[f64], rows: &[(Vec<f64>, Relation, f64)]) -> Option<f64> {
        let n = obj.len();
        // Build the full inequality system: rows plus x_i >= 0.
        // Each candidate vertex is the solution of n equations chosen from
        // the system (equalities must always be included).
        let mut eqs: Vec<(Vec<f64>, f64)> = Vec::new();
        let mut optional: Vec<(Vec<f64>, f64)> = Vec::new();
        for (c, r, b) in rows {
            match r {
                Relation::Eq => eqs.push((c.clone(), *b)),
                _ => optional.push((c.clone(), *b)),
            }
        }
        for i in 0..n {
            let mut e = vec![0.0; n];
            e[i] = 1.0;
            optional.push((e, 0.0));
        }
        let need = n.saturating_sub(eqs.len());
        let mut best: Option<f64> = None;
        let idx: Vec<usize> = (0..optional.len()).collect();
        for combo in combinations(&idx, need) {
            let mut a: Vec<Vec<f64>> = eqs.iter().map(|(c, _)| c.clone()).collect();
            let mut b: Vec<f64> = eqs.iter().map(|(_, v)| *v).collect();
            for &i in &combo {
                a.push(optional[i].0.clone());
                b.push(optional[i].1);
            }
            if let Some(x) = solve_linear(&a, &b) {
                if feasible(&x, rows) {
                    let v: f64 = obj.iter().zip(&x).map(|(c, x)| c * x).sum();
                    best = Some(best.map_or(v, |b: f64| b.min(v)));
                }
            }
        }
        best
    }

    fn combinations(items: &[usize], k: usize) -> Vec<Vec<usize>> {
        if k == 0 {
            return vec![vec![]];
        }
        if items.len() < k {
            return vec![];
        }
        let mut out = Vec::new();
        for (i, &first) in items.iter().enumerate() {
            for mut rest in combinations(&items[i + 1..], k - 1) {
                rest.insert(0, first);
                out.push(rest);
            }
        }
        out
    }

    fn solve_linear(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
        let n = a.first()?.len();
        if a.len() != n {
            return None;
        }
        let mut m: Vec<Vec<f64>> = a
            .iter()
            .zip(b)
            .map(|(row, &rhs)| {
                let mut r = row.clone();
                r.push(rhs);
                r
            })
            .collect();
        for col in 0..n {
            let piv =
                (col..n).max_by(|&i, &j| m[i][col].abs().partial_cmp(&m[j][col].abs()).unwrap())?;
            if m[piv][col].abs() < 1e-9 {
                return None;
            }
            m.swap(col, piv);
            let d = m[col][col];
            for v in m[col][col..=n].iter_mut() {
                *v /= d;
            }
            for i in 0..n {
                if i != col && m[i][col].abs() > 0.0 {
                    let f = m[i][col];
                    let pivot_row = m[col].clone();
                    for (v, pv) in m[i][col..=n].iter_mut().zip(&pivot_row[col..=n]) {
                        *v -= f * pv;
                    }
                }
            }
        }
        Some(m.iter().map(|r| r[n]).collect())
    }

    fn feasible(x: &[f64], rows: &[(Vec<f64>, Relation, f64)]) -> bool {
        if x.iter().any(|&v| v < -1e-7) {
            return false;
        }
        rows.iter().all(|(c, r, b)| {
            let lhs: f64 = c.iter().zip(x).map(|(c, x)| c * x).sum();
            match r {
                Relation::Le => lhs <= b + 1e-7,
                Relation::Ge => lhs >= b - 1e-7,
                Relation::Eq => (lhs - b).abs() < 1e-7,
            }
        })
    }

    #[test]
    fn randomized_cross_check_against_vertex_enumeration() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(424242);
        let mut checked = 0;
        for _ in 0..200 {
            let n = rng.random_range(1..=3);
            let nrows = rng.random_range(1..=3usize);
            let obj: Vec<f64> = (0..n).map(|_| rng.random_range(-5.0..5.0)).collect();
            let mut rows = Vec::new();
            for _ in 0..nrows {
                let coeffs: Vec<f64> = (0..n).map(|_| rng.random_range(-3.0..3.0)).collect();
                let rel = match rng.random_range(0..3) {
                    0 => Relation::Le,
                    1 => Relation::Ge,
                    _ => Relation::Eq,
                };
                let rhs = rng.random_range(-4.0..4.0);
                rows.push((coeffs, rel, rhs));
            }
            // Bound the region so vertex enumeration is exhaustive.
            for i in 0..n {
                let mut c = vec![0.0; n];
                c[i] = 1.0;
                rows.push((c, Relation::Le, 10.0));
            }
            let mut p = Problem::minimize(&obj);
            for (c, r, b) in &rows {
                p.constraint(c, *r, *b).unwrap();
            }
            let simplex = p.solve();
            let brute = brute_force_min(&obj, &rows);
            match (simplex, brute) {
                (Ok(s), Some(b)) => {
                    assert!(
                        (s.objective() - b).abs() < 1e-5,
                        "simplex {} vs brute {b} on obj {obj:?} rows {rows:?}",
                        s.objective()
                    );
                    checked += 1;
                }
                (Err(LpError::Infeasible), None) => {
                    checked += 1;
                }
                (got, want) => panic!(
                    "disagreement: simplex {got:?} vs brute {want:?} on obj {obj:?} rows {rows:?}"
                ),
            }
        }
        assert!(checked >= 150, "too few comparable cases: {checked}");
    }

    #[test]
    fn many_variable_probability_program() {
        // 80 variables, the size the n=5 schedule LP reaches.
        let n = 80;
        let costs: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
        let mut p = Problem::minimize(&costs);
        p.constraint(&vec![1.0; n], Relation::Eq, 1.0).unwrap();
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        p.constraint(&weights, Relation::Eq, 3.0).unwrap();
        let s = p.solve().unwrap();
        let total: f64 = s.values().iter().sum();
        assert!((total - 1.0).abs() < 1e-7);
        let mean: f64 = weights.iter().zip(s.values()).map(|(w, v)| w * v).sum();
        assert!((mean - 3.0).abs() < 1e-7);
    }
}
