//! A dense two-phase simplex solver for small linear programs.
//!
//! The multichannel secret sharing model (Pohly & McDaniel, DSN 2016)
//! computes optimal share schedules by linear programming: minimize the
//! schedule privacy risk `Z(p)`, loss `L(p)`, or delay `D(p)` over the
//! probability mass values `p(k, M)`, subject to linear constraints fixing
//! the mean threshold `κ`, mean multiplicity `μ`, and (for the §IV-D
//! program) per-channel utilization. Those programs have at most a few
//! hundred variables for realistic channel counts, so a dense tableau
//! simplex with Bland's anti-cycling rule is exact enough and fast enough.
//!
//! Variables are implicitly nonnegative (`x ≥ 0`), which matches
//! probability mass values; general bounds can be encoded with extra rows.
//!
//! # Examples
//!
//! ```
//! use mcss_lp::{Problem, Relation};
//!
//! # fn main() -> Result<(), mcss_lp::LpError> {
//! // maximize 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18
//! let mut p = Problem::maximize(&[3.0, 5.0]);
//! p.constraint(&[1.0, 0.0], Relation::Le, 4.0)?;
//! p.constraint(&[0.0, 2.0], Relation::Le, 12.0)?;
//! p.constraint(&[3.0, 2.0], Relation::Le, 18.0)?;
//! let s = p.solve()?;
//! assert!((s.objective() - 36.0).abs() < 1e-9);
//! assert!((s.value(0) - 2.0).abs() < 1e-9);
//! assert!((s.value(1) - 6.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

mod simplex;

pub use simplex::EPSILON;

/// Direction of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// Optimization sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Error from building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// A coefficient vector's length disagrees with the variable count.
    DimensionMismatch {
        /// Number of variables declared in the objective.
        expected: usize,
        /// Length of the offending coefficient vector.
        found: usize,
    },
    /// An objective or constraint coefficient is NaN or infinite.
    NotFinite,
    /// The iteration cap was hit (should not happen with Bland's rule;
    /// indicates severe numerical trouble).
    IterationLimit,
}

impl core::fmt::Display for LpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::DimensionMismatch { expected, found } => write!(
                f,
                "coefficient vector has length {found}, expected {expected}"
            ),
            LpError::NotFinite => write!(f, "coefficient is NaN or infinite"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

#[derive(Debug, Clone)]
struct Row {
    coeffs: Vec<f64>,
    relation: Relation,
    rhs: f64,
}

/// A linear program over nonnegative variables.
///
/// Build with [`Problem::minimize`] or [`Problem::maximize`], add rows with
/// [`constraint`](Problem::constraint), then call [`solve`](Problem::solve).
#[derive(Debug, Clone)]
pub struct Problem {
    objective: Vec<f64>,
    sense: Sense,
    rows: Vec<Row>,
}

impl Problem {
    /// Creates a minimization problem with the given objective
    /// coefficients (one per variable).
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_lp::Problem;
    /// let p = Problem::minimize(&[1.0, 2.0]);
    /// assert_eq!(p.num_vars(), 2);
    /// ```
    #[must_use]
    pub fn minimize(objective: &[f64]) -> Self {
        Problem {
            objective: objective.to_vec(),
            sense: Sense::Minimize,
            rows: Vec::new(),
        }
    }

    /// Creates a maximization problem with the given objective
    /// coefficients.
    #[must_use]
    pub fn maximize(objective: &[f64]) -> Self {
        Problem {
            objective: objective.to_vec(),
            sense: Sense::Maximize,
            rows: Vec::new(),
        }
    }

    /// Number of decision variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows added so far.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Adds the constraint `coeffs · x  rel  rhs`.
    ///
    /// # Errors
    ///
    /// [`LpError::DimensionMismatch`] if `coeffs.len() != num_vars()`,
    /// [`LpError::NotFinite`] if any coefficient or the rhs is NaN/∞.
    pub fn constraint(
        &mut self,
        coeffs: &[f64],
        relation: Relation,
        rhs: f64,
    ) -> Result<(), LpError> {
        if coeffs.len() != self.objective.len() {
            return Err(LpError::DimensionMismatch {
                expected: self.objective.len(),
                found: coeffs.len(),
            });
        }
        if !rhs.is_finite() || coeffs.iter().any(|c| !c.is_finite()) {
            return Err(LpError::NotFinite);
        }
        self.rows.push(Row {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
        Ok(())
    }

    /// Solves the program with the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// - [`LpError::Infeasible`] when no assignment satisfies all rows.
    /// - [`LpError::Unbounded`] when the objective can improve forever.
    /// - [`LpError::NotFinite`] if the objective contains NaN/∞.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_lp::{Problem, Relation};
    /// # fn main() -> Result<(), mcss_lp::LpError> {
    /// let mut p = Problem::minimize(&[1.0, 1.0]);
    /// p.constraint(&[1.0, 1.0], Relation::Eq, 1.0)?;
    /// let s = p.solve()?;
    /// assert!((s.objective() - 1.0).abs() < 1e-9);
    /// # Ok(())
    /// # }
    /// ```
    pub fn solve(&self) -> Result<Solution, LpError> {
        if self.objective.iter().any(|c| !c.is_finite()) {
            return Err(LpError::NotFinite);
        }
        let obj: Vec<f64> = match self.sense {
            Sense::Minimize => self.objective.clone(),
            Sense::Maximize => self.objective.iter().map(|c| -c).collect(),
        };
        let values = simplex::solve(&obj, &self.rows)?;
        let objective = self.objective.iter().zip(&values).map(|(c, x)| c * x).sum();
        Ok(Solution { values, objective })
    }
}

pub(crate) use Row as ConstraintRow;

/// An optimal solution to a [`Problem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
}

impl Solution {
    /// The optimal objective value, in the problem's original sense.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// The value of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn value(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// All variable values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    #[test]
    fn textbook_maximization() {
        // Dantzig's classic: max 3x+5y, x≤4, 2y≤12, 3x+2y≤18 ⇒ 36 at (2,6).
        let mut p = Problem::maximize(&[3.0, 5.0]);
        p.constraint(&[1.0, 0.0], Relation::Le, 4.0).unwrap();
        p.constraint(&[0.0, 2.0], Relation::Le, 12.0).unwrap();
        p.constraint(&[3.0, 2.0], Relation::Le, 18.0).unwrap();
        let s = p.solve().unwrap();
        assert!(approx(s.objective(), 36.0));
        assert!(approx(s.value(0), 2.0));
        assert!(approx(s.value(1), 6.0));
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x+3y s.t. x+y ≥ 10, x ≥ 2 ⇒ x=10 y=0? cost 20; or x=2,y=8
        // cost 28. Optimum is x=10.
        let mut p = Problem::minimize(&[2.0, 3.0]);
        p.constraint(&[1.0, 1.0], Relation::Ge, 10.0).unwrap();
        p.constraint(&[1.0, 0.0], Relation::Ge, 2.0).unwrap();
        let s = p.solve().unwrap();
        assert!(approx(s.objective(), 20.0));
        assert!(approx(s.value(0), 10.0));
    }

    #[test]
    fn equality_constraints() {
        // min x+2y+3z s.t. x+y+z = 1, y+z = 0.5 ⇒ x=0.5, y=0.5, z=0: 1.5.
        let mut p = Problem::minimize(&[1.0, 2.0, 3.0]);
        p.constraint(&[1.0, 1.0, 1.0], Relation::Eq, 1.0).unwrap();
        p.constraint(&[0.0, 1.0, 1.0], Relation::Eq, 0.5).unwrap();
        let s = p.solve().unwrap();
        assert!(approx(s.objective(), 1.5), "obj={}", s.objective());
        assert!(approx(s.value(0), 0.5));
        assert!(approx(s.value(1), 0.5));
        assert!(approx(s.value(2), 0.0));
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::minimize(&[1.0]);
        p.constraint(&[1.0], Relation::Le, 1.0).unwrap();
        p.constraint(&[1.0], Relation::Ge, 2.0).unwrap();
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn infeasible_equalities() {
        let mut p = Problem::minimize(&[0.0, 0.0]);
        p.constraint(&[1.0, 1.0], Relation::Eq, 1.0).unwrap();
        p.constraint(&[1.0, 1.0], Relation::Eq, 2.0).unwrap();
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize(&[1.0, 0.0]);
        p.constraint(&[0.0, 1.0], Relation::Le, 5.0).unwrap();
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn unbounded_minimization() {
        // min -x with only x ≥ 3: unbounded below.
        let mut p = Problem::minimize(&[-1.0]);
        p.constraint(&[1.0], Relation::Ge, 3.0).unwrap();
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_handled() {
        // x - y ≤ -2 with min x ⇒ x=0, y≥2 feasible; objective 0.
        let mut p = Problem::minimize(&[1.0, 0.0]);
        p.constraint(&[1.0, -1.0], Relation::Le, -2.0).unwrap();
        let s = p.solve().unwrap();
        assert!(approx(s.objective(), 0.0));
        assert!(s.value(1) >= 2.0 - 1e-9);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic cycling-prone example (Beale); Bland's rule must
        // terminate. min -0.75x4 + 150x5 - 0.02x6 + 6x7 (renumbered).
        let mut p = Problem::minimize(&[-0.75, 150.0, -0.02, 6.0]);
        p.constraint(&[0.25, -60.0, -1.0 / 25.0, 9.0], Relation::Le, 0.0)
            .unwrap();
        p.constraint(&[0.5, -90.0, -1.0 / 50.0, 3.0], Relation::Le, 0.0)
            .unwrap();
        p.constraint(&[0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0)
            .unwrap();
        let s = p.solve().unwrap();
        assert!(approx(s.objective(), -0.05), "obj={}", s.objective());
    }

    #[test]
    fn zero_objective_feasibility_check() {
        let mut p = Problem::minimize(&[0.0, 0.0]);
        p.constraint(&[1.0, 1.0], Relation::Eq, 1.0).unwrap();
        let s = p.solve().unwrap();
        assert!(approx(s.objective(), 0.0));
        assert!(approx(s.value(0) + s.value(1), 1.0));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut p = Problem::minimize(&[1.0, 2.0]);
        assert_eq!(
            p.constraint(&[1.0], Relation::Le, 1.0).unwrap_err(),
            LpError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn non_finite_rejected() {
        let mut p = Problem::minimize(&[1.0]);
        assert_eq!(
            p.constraint(&[f64::NAN], Relation::Le, 1.0).unwrap_err(),
            LpError::NotFinite
        );
        assert_eq!(
            p.constraint(&[1.0], Relation::Le, f64::INFINITY)
                .unwrap_err(),
            LpError::NotFinite
        );
        let bad = Problem::minimize(&[f64::INFINITY]);
        assert_eq!(bad.solve().unwrap_err(), LpError::NotFinite);
    }

    #[test]
    fn redundant_rows_tolerated() {
        let mut p = Problem::minimize(&[1.0, 1.0]);
        p.constraint(&[1.0, 1.0], Relation::Eq, 2.0).unwrap();
        p.constraint(&[2.0, 2.0], Relation::Eq, 4.0).unwrap(); // redundant
        let s = p.solve().unwrap();
        assert!(approx(s.objective(), 2.0));
    }

    #[test]
    fn probability_simplex_program() {
        // The shape the model generates: min c·p, p ≥ 0, Σp = 1, Σ a·p = t.
        let c = [0.9, 0.5, 0.2, 0.7];
        let kvals = [1.0, 2.0, 3.0, 4.0];
        let mut p = Problem::minimize(&c);
        p.constraint(&[1.0; 4], Relation::Eq, 1.0).unwrap();
        p.constraint(&kvals, Relation::Eq, 2.5).unwrap();
        let s = p.solve().unwrap();
        // Optimum mixes k=3 (cost .2) and k=2 (cost .5)? Check: choose
        // weights on (2,3): w2+w3=1, 2w2+3w3=2.5 ⇒ w2=w3=0.5 ⇒ cost 0.35.
        // Mixing (1,3): w1=0.25,w3=0.75 ⇒ 0.375. Mixing (2,4): 0.6.
        // Mixing (3,1)... best is 0.35? Also (3,4): 3w3+4w4=2.5 impossible
        // with w3+w4=1 (min 3). (1,4): w1=.5,w4=.5 ⇒ .8. So 0.35.
        assert!(approx(s.objective(), 0.35), "obj={}", s.objective());
        let total: f64 = s.values().iter().sum();
        assert!(approx(total, 1.0));
        assert!(s.values().iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn solution_accessors() {
        let mut p = Problem::maximize(&[1.0]);
        p.constraint(&[1.0], Relation::Le, 3.0).unwrap();
        let s = p.solve().unwrap();
        assert_eq!(s.values().len(), 1);
        assert!(approx(s.value(0), 3.0));
    }

    #[test]
    fn error_display() {
        for e in [
            LpError::Infeasible,
            LpError::Unbounded,
            LpError::DimensionMismatch {
                expected: 1,
                found: 2,
            },
            LpError::NotFinite,
            LpError::IterationLimit,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
