//! The socket-facing server: every shard runs on its own thread with
//! its **own** per-channel sockets, organized as `SO_REUSEPORT`
//! groups so the kernel delivers most datagrams straight to the shard
//! that owns the connection.
//!
//! # Socket topology
//!
//! Each protocol channel is one `SO_REUSEPORT` group: every shard
//! contributes a B-side member socket bound to the channel's shared
//! port, and owns an A-side socket connected to that port. Linux
//! routes an inbound datagram to a group member by hashing the source
//! address, so a given A socket maps to one *stable* member. At
//! startup the server probes that mapping and rebinds colliding A
//! sockets until (nearly) every shard's A socket lands on its own
//! member — after which share traffic for shard *i*'s sessions arrives
//! on shard *i*'s socket without crossing a thread boundary. The
//! bounded handoff queues of [`Shard`](crate::shard::Shard) remain as
//! the rare-path escape hatch (hash collisions the calibration could
//! not untangle, legacy frames). On non-Linux hosts each "group"
//! degenerates to a plain per-shard cross-connected loopback pair with
//! the same ownership layout.
//!
//! # Event loop backends
//!
//! * **epoll** (Linux, default): each shard sleeps in `epoll_wait` on
//!   its sockets plus an `eventfd` doorbell peers ring when they hand
//!   off a frame; the timeout comes from the shard timer wheel's next
//!   deadline, so an idle shard costs nothing. Datagram I/O is batched
//!   through `recvmmsg`/`sendmmsg` ([`sys::BATCH`] datagrams per
//!   syscall).
//! * **busypoll** (portable fallback): the original loop — poll every
//!   socket with nonblocking `recv`, sleep 100 µs when idle.
//!
//! Select with [`ServerConfig::io`](crate::shard::ServerConfig) or the
//! `MCSS_SERVER_IO` environment variable (`epoll` / `busypoll`).
//! Session behaviour is identical on both backends — each session's
//! events still arrive in order on its owning shard — so the choice is
//! purely operational.

use std::io;
use std::net::{SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mcss_base::{Endpoint, SimTime};
use mcss_obs::MetricsSnapshot;
use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::engine::{SessionReport, SourceMode, Workload};

use crate::shard::{ServerConfig, Shard, ShardSet, MAX_DATAGRAM};
use crate::stats::{ShardStats, ShardStatsSnapshot};

#[cfg(target_os = "linux")]
use std::os::fd::AsRawFd;

#[cfg(target_os = "linux")]
use crate::sys;

/// How the I/O backend is chosen at [`UdpServer::new`] time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// `MCSS_SERVER_IO` if set, otherwise [`IoBackend::Epoll`] on
    /// Linux and [`IoBackend::Busypoll`] elsewhere.
    #[default]
    Auto,
    /// Force the portable busy-poll loop.
    Busypoll,
    /// Force the readiness-driven epoll loop (Linux only).
    Epoll,
}

/// The resolved event-loop implementation a server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoBackend {
    /// Nonblocking `recv`/`send` per datagram, 100 µs idle sleep.
    Busypoll,
    /// `epoll_wait` wakeups, `recvmmsg`/`sendmmsg` batching, eventfd
    /// cross-shard doorbells.
    Epoll,
}

impl IoBackend {
    /// Backend name as accepted by `MCSS_SERVER_IO`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IoBackend::Busypoll => "busypoll",
            IoBackend::Epoll => "epoll",
        }
    }

    /// Every backend this host supports.
    #[must_use]
    pub fn available() -> &'static [IoBackend] {
        #[cfg(target_os = "linux")]
        {
            &[IoBackend::Epoll, IoBackend::Busypoll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            &[IoBackend::Busypoll]
        }
    }
}

impl IoMode {
    /// Resolves the mode to a concrete backend.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::Unsupported`] for epoll off Linux,
    /// [`io::ErrorKind::InvalidInput`] for an unrecognized
    /// `MCSS_SERVER_IO` value.
    pub fn resolve(self) -> io::Result<IoBackend> {
        match self {
            IoMode::Busypoll => Ok(IoBackend::Busypoll),
            IoMode::Epoll => {
                if cfg!(target_os = "linux") {
                    Ok(IoBackend::Epoll)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "the epoll backend requires Linux",
                    ))
                }
            }
            IoMode::Auto => match std::env::var("MCSS_SERVER_IO") {
                Ok(v) if v == "epoll" => IoMode::Epoll.resolve(),
                Ok(v) if v == "busypoll" => Ok(IoBackend::Busypoll),
                Ok(v) => Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("MCSS_SERVER_IO must be `epoll` or `busypoll`, got `{v}`"),
                )),
                Err(_) => {
                    if cfg!(target_os = "linux") {
                        Ok(IoBackend::Epoll)
                    } else {
                        Ok(IoBackend::Busypoll)
                    }
                }
            },
        }
    }
}

/// One shard's endpoint sockets for one protocol channel.
#[derive(Debug)]
struct ShardChannel {
    /// A-side socket, connected to the channel's B destination.
    a: UdpSocket,
    /// The B-group member this shard reads (shares arrive here).
    b: UdpSocket,
    /// Where control sent *from* B goes: this shard's own A socket.
    a_addr: SocketAddrV4,
    /// Whether `b` is connected (plain pair fallback) or a reuseport
    /// group member that must `send_to` explicitly.
    b_connected: bool,
}

impl ShardChannel {
    /// The socket inbound traffic *to* `endpoint` arrives on.
    fn recv_sock(&self, to: Endpoint) -> &UdpSocket {
        match to {
            Endpoint::A => &self.a,
            Endpoint::B => &self.b,
        }
    }

    /// Sends one datagram originated by `from`.
    fn send_from(&self, from: Endpoint, bytes: &[u8]) -> io::Result<usize> {
        match from {
            Endpoint::A => self.a.send(bytes),
            Endpoint::B if self.b_connected => self.b.send(bytes),
            Endpoint::B => self.b.send_to(bytes, self.a_addr),
        }
    }
}

/// All sockets one shard thread owns: one [`ShardChannel`] per
/// protocol channel.
#[derive(Debug)]
struct ShardIo {
    channels: Vec<ShardChannel>,
}

fn v4(addr: SocketAddr) -> SocketAddrV4 {
    match addr {
        SocketAddr::V4(a) => a,
        SocketAddr::V6(_) => unreachable!("server sockets are IPv4 loopback"),
    }
}

fn endpoint_idx(e: Endpoint) -> usize {
    match e {
        Endpoint::A => 0,
        Endpoint::B => 1,
    }
}

/// Kernel buffer size requested per socket. A fleet of thousands of
/// sessions legitimately bursts far past the ~208 KiB default receive
/// buffer within one event-loop pass; the kernel clamps this to
/// `net.core.rmem_max`, and a refusal is harmless (smaller buffers,
/// more tail drops under burst).
const SOCKET_BUF_BYTES: i32 = 4 << 20;

fn tune_socket(sock: &UdpSocket) {
    #[cfg(target_os = "linux")]
    sys::enlarge_socket_buffers(sock, SOCKET_BUF_BYTES);
    #[cfg(not(target_os = "linux"))]
    let _ = sock;
}

/// Portable topology: independent cross-connected loopback pairs, one
/// per (shard, channel), so the owner alignment is exact by
/// construction.
fn paired_topology(shards: usize, channels: usize) -> io::Result<Vec<ShardIo>> {
    let mut ios = Vec::with_capacity(shards);
    for _ in 0..shards {
        let mut per_channel = Vec::with_capacity(channels);
        for _ in 0..channels {
            let a = UdpSocket::bind("127.0.0.1:0")?;
            let b = UdpSocket::bind("127.0.0.1:0")?;
            a.connect(b.local_addr()?)?;
            b.connect(a.local_addr()?)?;
            a.set_nonblocking(true)?;
            b.set_nonblocking(true)?;
            tune_socket(&a);
            tune_socket(&b);
            let a_addr = v4(a.local_addr()?);
            per_channel.push(ShardChannel {
                a,
                b,
                a_addr,
                b_connected: true,
            });
        }
        ios.push(ShardIo {
            channels: per_channel,
        });
    }
    Ok(ios)
}

/// Builds the per-shard socket layout: reuseport groups with probed
/// owner alignment on Linux, plain pairs elsewhere (or when group
/// setup fails, e.g. under a kernel that forbids `SO_REUSEPORT`).
fn build_topology(shards: usize, channels: usize) -> io::Result<Vec<ShardIo>> {
    #[cfg(target_os = "linux")]
    {
        if let Ok(ios) = reuseport_topology(shards, channels) {
            return Ok(ios);
        }
    }
    paired_topology(shards, channels)
}

#[cfg(target_os = "linux")]
fn reuseport_topology(shards: usize, channels: usize) -> io::Result<Vec<ShardIo>> {
    let mut per_shard: Vec<Vec<ShardChannel>> =
        (0..shards).map(|_| Vec::with_capacity(channels)).collect();
    for _ in 0..channels {
        for (i, (a, b, a_addr)) in reuseport::channel_group(shards)?.into_iter().enumerate() {
            per_shard[i].push(ShardChannel {
                a,
                b,
                a_addr,
                b_connected: false,
            });
        }
    }
    Ok(per_shard
        .into_iter()
        .map(|channels| ShardIo { channels })
        .collect())
}

/// Reuseport group construction and hash calibration.
#[cfg(target_os = "linux")]
mod reuseport {
    use super::*;
    use std::net::Ipv4Addr;

    const PROBE_MAGIC: &[u8; 6] = b"MCSSPR";
    const PROBE_LEN: usize = PROBE_MAGIC.len() + 8;
    /// Rebind attempts per shard while calibrating the kernel's
    /// source-hash → member mapping.
    const MAX_REBINDS: usize = 16;

    fn probe_payload(tag: u64) -> [u8; PROBE_LEN] {
        let mut p = [0u8; PROBE_LEN];
        p[..PROBE_MAGIC.len()].copy_from_slice(PROBE_MAGIC);
        p[PROBE_MAGIC.len()..].copy_from_slice(&tag.to_le_bytes());
        p
    }

    /// Sends one tagged probe from `a` and reports which group member
    /// the kernel delivered it to. Stale datagrams from earlier
    /// attempts are consumed and ignored.
    fn probe_member(
        a: &UdpSocket,
        members: &[Option<UdpSocket>],
        tag: u64,
    ) -> io::Result<Option<usize>> {
        let payload = probe_payload(tag);
        a.send(&payload)?;
        let mut buf = [0u8; 64];
        let deadline = Instant::now() + Duration::from_millis(100);
        loop {
            for (j, member) in members.iter().enumerate() {
                let Some(member) = member.as_ref() else {
                    continue;
                };
                loop {
                    match member.recv(&mut buf) {
                        Ok(len) => {
                            if len == PROBE_LEN && buf[..PROBE_LEN] == payload {
                                return Ok(Some(j));
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => return Err(e),
                    }
                }
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    fn drain_members(members: &[Option<UdpSocket>]) -> io::Result<()> {
        let mut buf = [0u8; 64];
        for member in members.iter().flatten() {
            loop {
                match member.recv(&mut buf) {
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    fn bind_connected_a(group: SocketAddrV4) -> io::Result<UdpSocket> {
        let a = UdpSocket::bind("127.0.0.1:0")?;
        a.connect(group)?;
        a.set_nonblocking(true)?;
        super::tune_socket(&a);
        Ok(a)
    }

    /// One channel's group: `shards` member sockets on a shared port
    /// plus one calibrated A socket per shard, returned as
    /// `(a, member, a_addr)` per shard.
    ///
    /// The kernel picks a member by hashing the sender's address, so
    /// each candidate A socket maps to one stable member. A shard
    /// whose A socket hashes onto an already-claimed member is rebound
    /// (fresh ephemeral port → fresh hash) up to [`MAX_REBINDS`]
    /// times; the rare shard that never finds a free member keeps its
    /// last socket and leans on the cross-shard handoff path instead.
    pub(super) fn channel_group(
        shards: usize,
    ) -> io::Result<Vec<(UdpSocket, UdpSocket, SocketAddrV4)>> {
        let first = sys::reuseport_udp_bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))?;
        super::tune_socket(&first);
        let group = v4(first.local_addr()?);
        let mut members: Vec<Option<UdpSocket>> = vec![Some(first)];
        for _ in 1..shards {
            let member = sys::reuseport_udp_bind(group)?;
            super::tune_socket(&member);
            members.push(Some(member));
        }

        let mut assigned: Vec<Option<usize>> = vec![None; shards];
        let mut claimed = vec![false; shards];
        let mut a_socks: Vec<UdpSocket> = Vec::with_capacity(shards);
        let mut tag = 0u64;
        for (i, slot) in assigned.iter_mut().enumerate() {
            let mut kept: Option<UdpSocket> = None;
            for _ in 0..MAX_REBINDS {
                let a = bind_connected_a(group)?;
                tag += 1;
                match probe_member(&a, &members, tag)? {
                    Some(j) if !claimed[j] => {
                        claimed[j] = true;
                        *slot = Some(j);
                        kept = Some(a);
                        break;
                    }
                    Some(_) => {
                        // Collision: rebinding changes the source port
                        // and thus the hash. Keep the socket in case
                        // every attempt collides.
                        kept = Some(a);
                    }
                    None => {
                        // A probe that never arrives means the group
                        // is not delivering at all; bail so the caller
                        // falls back to plain pairs.
                        if i == 0 {
                            return Err(io::Error::other("reuseport probe undelivered"));
                        }
                        kept = Some(a);
                        break;
                    }
                }
            }
            a_socks.push(kept.expect("at least one bind attempt ran"));
        }
        // Shards the calibration could not align take the unclaimed
        // members in order; their traffic rides the handoff queues.
        let mut unclaimed = (0..shards).filter(|&j| !claimed[j]);
        for slot in &mut assigned {
            if slot.is_none() {
                *slot = Some(
                    unclaimed
                        .next()
                        .expect("one free member per unassigned shard"),
                );
            }
        }
        drain_members(&members)?;

        let mut out = Vec::with_capacity(shards);
        for (i, a) in a_socks.into_iter().enumerate() {
            let j = assigned[i].expect("every shard assigned");
            let b = members[j].take().expect("members assigned exactly once");
            let a_addr = v4(a.local_addr()?);
            out.push((a, b, a_addr));
        }
        Ok(out)
    }
}

/// Cross-shard wakeup doorbells: one eventfd per shard on the epoll
/// backend, nothing elsewhere (busy-polling shards re-check their
/// inboxes every iteration anyway).
#[derive(Debug, Default)]
struct Doorbells {
    #[cfg(target_os = "linux")]
    fds: Vec<sys::EventFd>,
}

impl Doorbells {
    fn for_backend(backend: IoBackend, shards: usize) -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            if backend == IoBackend::Epoll {
                let fds = (0..shards)
                    .map(|_| sys::EventFd::new())
                    .collect::<io::Result<Vec<_>>>()?;
                return Ok(Doorbells { fds });
            }
        }
        let _ = (backend, shards);
        Ok(Doorbells::default())
    }

    /// Wakes every sleeping shard (fatal-error path).
    fn ring_all(&self) {
        #[cfg(target_os = "linux")]
        for fd in &self.fds {
            fd.raise();
        }
    }
}

fn sim_now(epoch: Instant) -> SimTime {
    SimTime::from_nanos(epoch.elapsed().as_nanos() as u64)
}

/// The portable busy-poll event loop (the pre-epoll behaviour, plus
/// wakeup/syscall accounting): poll every socket each iteration, sleep
/// 100 µs when nothing moved.
fn run_shard_busypoll(
    shard: &mut Shard,
    io: &ShardIo,
    epoch: Instant,
    deadline: Instant,
    stop: &AtomicBool,
) -> io::Result<()> {
    let mut recv_buf = vec![0u8; MAX_DATAGRAM];
    loop {
        ShardStats::bump(&shard.stats().wakeups);
        let now = sim_now(epoch);
        shard.drain_inbox(now);
        shard.poll_timers(now);
        shard.drain_returns();
        let mut idle = true;
        for (channel, ch) in io.channels.iter().enumerate() {
            // Shares travel A→B (received on B's socket), control B→A
            // (received on A's).
            for to in [Endpoint::B, Endpoint::A] {
                loop {
                    ShardStats::bump(&shard.stats().syscalls_recv);
                    match ch.recv_sock(to).recv(&mut recv_buf) {
                        Ok(len) => {
                            idle = false;
                            let now = sim_now(epoch);
                            shard.route_datagram(now, channel, to, &recv_buf[..len]);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        shard.flush_ready(sim_now(epoch));
        while let Some(datagram) = shard.pop_outbound() {
            idle = false;
            ShardStats::bump(&shard.stats().syscalls_send);
            match io.channels[datagram.channel].send_from(datagram.from, &datagram.bytes) {
                Ok(_) => ShardStats::bump(&shard.stats().datagrams_sent),
                Err(e) if would_drop(&e) => ShardStats::bump(&shard.stats().send_drops),
                Err(e) => return Err(e),
            }
            shard.recycle_outbound(datagram.bytes);
        }
        if stop.load(Ordering::Relaxed) || Instant::now() >= deadline {
            return Ok(());
        }
        if idle {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}

/// The readiness-driven event loop: sleep in `epoll_wait` until a
/// socket is readable, a peer rings the doorbell, or the shard timer
/// wheel's next deadline arrives; then move datagrams in
/// `recvmmsg`/`sendmmsg` batches and flush the ready-set once for the
/// whole wakeup.
#[cfg(target_os = "linux")]
fn run_shard_epoll(
    shard: &mut Shard,
    io: &ShardIo,
    epoch: Instant,
    deadline: Instant,
    stop: &AtomicBool,
    doorbells: &[sys::EventFd],
) -> io::Result<()> {
    const DOORBELL_TOKEN: u64 = u64::MAX;
    /// Sleep cap: the stop flag, wall deadline, and any doorbell edge
    /// lost to a race are all observed within this bound.
    const MAX_SLEEP_MS: u64 = 25;

    let index = shard.index();
    let epoll = sys::Epoll::new()?;
    for (channel, ch) in io.channels.iter().enumerate() {
        epoll.add_readable(ch.a.as_raw_fd(), (channel * 2) as u64)?;
        epoll.add_readable(ch.b.as_raw_fd(), (channel * 2 + 1) as u64)?;
    }
    epoll.add_readable(doorbells[index].fd(), DOORBELL_TOKEN)?;

    let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; io.channels.len() * 2 + 1];
    let mut rx = sys::RecvBatch::new(MAX_DATAGRAM);
    let mut tx = sys::SendBatch::new();
    // Outbound staging, keyed by channel × originating endpoint so each
    // sendmmsg batch shares one (socket, destination).
    let mut stage: Vec<Vec<Vec<u8>>> = (0..io.channels.len() * 2).map(|_| Vec::new()).collect();
    let mut peer_pending = vec![false; doorbells.len()];
    // The first pass scans every socket; afterwards only sockets epoll
    // reported ready are visited.
    let mut ready_tokens: Vec<u64> = (0..(io.channels.len() * 2) as u64).collect();

    loop {
        // Clear before draining: a raise that slips in between causes
        // a spurious (cheap) wakeup, never a lost one.
        doorbells[index].clear();
        let now = sim_now(epoch);
        shard.drain_inbox(now);
        shard.poll_timers(now);
        shard.drain_returns();

        for &token in &ready_tokens {
            if token == DOORBELL_TOKEN {
                continue;
            }
            let channel = (token / 2) as usize;
            let to = if token % 2 == 0 {
                Endpoint::A
            } else {
                Endpoint::B
            };
            let fd = io.channels[channel].recv_sock(to).as_raw_fd();
            loop {
                match rx.recv(fd) {
                    Ok(n) => {
                        ShardStats::bump(&shard.stats().syscalls_recv);
                        let now = sim_now(epoch);
                        for i in 0..n {
                            if let Some(owner) =
                                shard.route_datagram(now, channel, to, rx.datagram(i))
                            {
                                peer_pending[owner] = true;
                            }
                        }
                        // A short batch means the socket is likely
                        // drained; level-triggered epoll re-reports
                        // any residue on the next wait.
                        if n < sys::BATCH {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        ShardStats::bump(&shard.stats().syscalls_recv);
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        shard.flush_ready(sim_now(epoch));
        for (owner, pending) in peer_pending.iter_mut().enumerate() {
            if *pending {
                *pending = false;
                if owner != index {
                    doorbells[owner].raise();
                }
            }
        }

        while let Some(datagram) = shard.pop_outbound() {
            stage[datagram.channel * 2 + endpoint_idx(datagram.from)].push(datagram.bytes);
        }
        for (key, bufs) in stage.iter_mut().enumerate() {
            if bufs.is_empty() {
                continue;
            }
            let ch = &io.channels[key / 2];
            let (fd, dest) = if key % 2 == 0 {
                (ch.a.as_raw_fd(), None)
            } else if ch.b_connected {
                (ch.b.as_raw_fd(), None)
            } else {
                (ch.b.as_raw_fd(), Some(ch.a_addr))
            };
            let outcome = tx.send_all(fd, bufs, dest, would_drop)?;
            ShardStats::bump_by(&shard.stats().datagrams_sent, outcome.sent as u64);
            ShardStats::bump_by(&shard.stats().send_drops, outcome.dropped as u64);
            ShardStats::bump_by(&shard.stats().syscalls_send, outcome.syscalls);
            for buf in bufs.drain(..) {
                shard.recycle_outbound(buf);
            }
        }

        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        let wall = Instant::now();
        if wall >= deadline {
            return Ok(());
        }
        let remaining_ms = (deadline - wall).as_millis() as u64;
        let timer_ms = shard.timer_sleep_ms(sim_now(epoch)).unwrap_or(u64::MAX);
        let timeout_ms = MAX_SLEEP_MS.min(remaining_ms).min(timer_ms);

        ShardStats::bump(&shard.stats().wakeups);
        let n = epoll.wait(&mut events, timeout_ms as i32)?;
        ready_tokens.clear();
        for event in &events[..n] {
            ready_tokens.push(event.data);
        }
    }
}

fn run_shard(
    backend: IoBackend,
    shard: &mut Shard,
    io: &ShardIo,
    epoch: Instant,
    deadline: Instant,
    stop: &AtomicBool,
    doorbells: &Doorbells,
) -> io::Result<()> {
    match backend {
        IoBackend::Busypoll => {
            let _ = doorbells;
            run_shard_busypoll(shard, io, epoch, deadline, stop)
        }
        IoBackend::Epoll => {
            #[cfg(target_os = "linux")]
            {
                run_shard_epoll(shard, io, epoch, deadline, stop, &doorbells.fds)
            }
            #[cfg(not(target_os = "linux"))]
            {
                unreachable!("IoMode::resolve rejects epoll off Linux")
            }
        }
    }
}

/// Aggregate outcome of one [`UdpServer::run_for`] window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerSummary {
    /// Wall-clock time the shard threads ran.
    pub elapsed: Duration,
    /// Sessions served.
    pub sessions: usize,
    /// Symbols sent across all sessions (from engine reports).
    pub sent_symbols: u64,
    /// Symbols reconstructed across all sessions.
    pub delivered_symbols: u64,
    /// Share datagrams queued outbound across all shards.
    pub shares_sent: u64,
    /// Datagrams read off the sockets across all shards.
    pub datagrams_received: u64,
    /// Frames handed off between shards.
    pub handoffs: u64,
    /// Outbound datagrams the kernel refused (socket backpressure).
    pub send_drops: u64,
}

impl ServerSummary {
    /// Aggregate reconstructed-symbol throughput.
    #[must_use]
    pub fn delivered_per_sec(&self) -> f64 {
        self.delivered_symbols as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Wall-clock phase layout for [`UdpServer::run_phases`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPhases {
    /// Ramp-up excluded from the measured window (sessions start,
    /// pools warm, reuseport routing settles).
    pub warmup: Duration,
    /// The measured window proper.
    pub measure: Duration,
    /// Post-window tail so in-flight datagrams land before the threads
    /// exit (excluded from the window, included in the whole-run
    /// summary).
    pub drain: Duration,
}

impl RunPhases {
    /// A pure measurement window with no warmup or drain.
    #[must_use]
    pub fn measure_only(measure: Duration) -> Self {
        RunPhases {
            warmup: Duration::ZERO,
            measure,
            drain: Duration::ZERO,
        }
    }

    fn total(self) -> Duration {
        self.warmup + self.measure + self.drain
    }
}

/// Counter deltas over exactly the measured window of a
/// [`UdpServer::run_phases`] run — warmup and drain excluded.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowStats {
    /// Measured wall-clock window.
    pub window: Duration,
    /// Symbols reconstructed within the window.
    pub delivered_symbols: u64,
    /// Share datagrams queued outbound within the window.
    pub shares_sent: u64,
    /// Datagrams read off the sockets within the window.
    pub datagrams_received: u64,
    /// Datagrams the kernel accepted within the window.
    pub datagrams_sent: u64,
    /// Event-loop wakeups within the window.
    pub wakeups: u64,
    /// Receive syscalls within the window.
    pub syscalls_recv: u64,
    /// Send syscalls within the window.
    pub syscalls_send: u64,
    /// Frames handed off between shards within the window.
    pub handoffs: u64,
    /// Outbound datagrams refused within the window.
    pub send_drops: u64,
}

impl WindowStats {
    fn delta(window: Duration, before: &ShardStatsSnapshot, after: &ShardStatsSnapshot) -> Self {
        WindowStats {
            window,
            delivered_symbols: after.symbols_delivered - before.symbols_delivered,
            shares_sent: after.shares_sent - before.shares_sent,
            datagrams_received: after.datagrams_received - before.datagrams_received,
            datagrams_sent: after.datagrams_sent - before.datagrams_sent,
            wakeups: after.wakeups - before.wakeups,
            syscalls_recv: after.syscalls_recv - before.syscalls_recv,
            syscalls_send: after.syscalls_send - before.syscalls_send,
            handoffs: after.handoff_in - before.handoff_in,
            send_drops: after.send_drops - before.send_drops,
        }
    }

    /// Reconstructed-symbol throughput over the window.
    #[must_use]
    pub fn delivered_per_sec(&self) -> f64 {
        self.delivered_symbols as f64 / self.window.as_secs_f64().max(1e-9)
    }

    /// Mean datagrams moved per I/O syscall (the batching payoff).
    #[must_use]
    pub fn datagrams_per_syscall(&self) -> f64 {
        let datagrams = self.datagrams_received + self.datagrams_sent;
        let syscalls = (self.syscalls_recv + self.syscalls_send).max(1);
        datagrams as f64 / syscalls as f64
    }
}

/// Whole-run summary plus the warmup-excluded measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhasedSummary {
    /// The whole run, warmup and drain included (same accounting as
    /// [`UdpServer::run_for`]).
    pub run: ServerSummary,
    /// Counter deltas over the measured window only.
    pub window: WindowStats,
}

/// The sharded server over real loopback sockets: construct, register
/// paced sessions, then [`run_for`](UdpServer::run_for) a wall-clock
/// window (or [`run_phases`](UdpServer::run_phases) for a
/// warmup-excluded measurement).
///
/// ```no_run
/// use std::sync::Arc;
/// use std::time::Duration;
/// use mcss_base::SimTime;
/// use mcss_remicss::config::ProtocolConfig;
/// use mcss_remicss::engine::Workload;
/// use mcss_server::{ServerConfig, UdpServer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let protocol = Arc::new(ProtocolConfig::new(2.0, 3.0)?.with_symbol_bytes(64));
/// let mut server = UdpServer::new(ServerConfig::with_shards(4), protocol, 5)?;
/// for cid in 0..100u32 {
///     let workload = Workload::cbr(50.0, SimTime::from_secs(10));
///     server.add_session(cid, workload, u64::from(cid))?;
/// }
/// let summary = server.run_for(Duration::from_millis(500))?;
/// println!("{} symbols/s", summary.delivered_per_sec());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct UdpServer {
    set: ShardSet,
    protocol: Arc<ProtocolConfig>,
    topology: Vec<ShardIo>,
    num_channels: usize,
    backend: IoBackend,
    /// Wall→engine time origin; reset at each run so `Started` lands
    /// near time zero, where the engines arm their initial timers.
    epoch: Instant,
}

impl UdpServer {
    /// Resolves the I/O backend, binds the per-shard socket topology,
    /// and builds the shard set.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if socket setup fails or
    /// [`ServerConfig::io`](crate::shard::ServerConfig) does not
    /// resolve ([`io::ErrorKind::Unsupported`] /
    /// [`io::ErrorKind::InvalidInput`]).
    pub fn new(
        config: ServerConfig,
        protocol: impl Into<Arc<ProtocolConfig>>,
        channels: usize,
    ) -> io::Result<Self> {
        let backend = config.io.resolve()?;
        let set = ShardSet::new(&config);
        let topology = build_topology(set.num_shards(), channels)?;
        Ok(UdpServer {
            set,
            protocol: protocol.into(),
            topology,
            num_channels: channels,
            backend,
            epoch: Instant::now(),
        })
    }

    /// The event-loop backend this server resolved to.
    #[must_use]
    pub fn backend(&self) -> IoBackend {
        self.backend
    }

    /// Registers a paced session under `cid`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] for a duplicate `cid` or
    /// protocol parameters the engine rejects.
    pub fn add_session(&mut self, cid: u32, workload: Workload, seed: u64) -> io::Result<()> {
        self.set
            .add_session(
                cid,
                Arc::clone(&self.protocol),
                self.num_channels,
                SourceMode::Paced(workload),
                seed,
            )
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))
    }

    /// Sessions registered.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.set.session_count()
    }

    /// The deterministic core (per-shard stats, pools, reports).
    #[must_use]
    pub fn shards(&self) -> &ShardSet {
        &self.set
    }

    /// Aggregated per-shard metrics (`server.shard{i}.*` plus
    /// `server.total.*`).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.set.metrics_snapshot()
    }

    /// Per-session engine reports over `window`.
    #[must_use]
    pub fn session_reports(&self, window: SimTime) -> Vec<(u32, SessionReport)> {
        let mut reports = Vec::new();
        for i in 0..self.set.num_shards() {
            let shard = self.set.shard(i);
            for cid in shard.cids() {
                reports.push((cid, shard.report(cid, window)));
            }
        }
        reports.sort_by_key(|(cid, _)| *cid);
        reports
    }

    /// Starts every session and runs one shard thread per shard for
    /// `wall` of wall-clock time.
    ///
    /// # Errors
    ///
    /// The first socket error any shard thread hit (`WouldBlock` and
    /// kernel-refused sends are handled internally, never surfaced).
    pub fn run_for(&mut self, wall: Duration) -> io::Result<ServerSummary> {
        self.run_phases(RunPhases::measure_only(wall))
            .map(|p| p.run)
    }

    /// Like [`run_for`](UdpServer::run_for), but with an explicit
    /// warmup / measure / drain phase layout: the returned
    /// [`WindowStats`] covers exactly the measure phase, so warmup
    /// ramp and shutdown tail never pollute a throughput number.
    ///
    /// # Errors
    ///
    /// As [`run_for`](UdpServer::run_for).
    pub fn run_phases(&mut self, phases: RunPhases) -> io::Result<PhasedSummary> {
        self.epoch = Instant::now();
        let epoch = self.epoch;
        let started = Instant::now();
        // Start sessions before the threads exist: Started arms timers
        // near t=0 and the wheels fire them once the threads spin up.
        let now = sim_now(epoch);
        for i in 0..self.set.num_shards() {
            let shard = self.set.shard_mut(i);
            let cids: Vec<u32> = shard.cids().collect();
            for cid in cids {
                shard.start_session(now, cid);
            }
        }

        let backend = self.backend;
        let stats: Vec<Arc<ShardStats>> = (0..self.set.num_shards())
            .map(|i| Arc::clone(self.set.shard(i).stats()))
            .collect();
        let doorbells = Doorbells::for_backend(backend, self.set.num_shards())?;
        let stop = AtomicBool::new(false);
        let first_error: Mutex<Option<io::Error>> = Mutex::new(None);
        let deadline = Instant::now() + phases.total();
        let set = &mut self.set;
        let topology = &self.topology;
        let mut window = WindowStats::default();
        std::thread::scope(|scope| {
            let doorbells = &doorbells;
            let stop = &stop;
            let first_error = &first_error;
            for (shard, io) in set.shards_mut().iter_mut().zip(topology.iter()) {
                scope.spawn(move || {
                    if let Err(e) = run_shard(backend, shard, io, epoch, deadline, stop, doorbells)
                    {
                        first_error.lock().unwrap().get_or_insert(e);
                        stop.store(true, Ordering::Relaxed);
                        doorbells.ring_all();
                    }
                });
            }
            // Measurement runs on this thread: counter snapshots at the
            // warmup/measure phase edges bound the window exactly.
            std::thread::sleep(phases.warmup);
            let t0 = Instant::now();
            let before = sum_stats(&stats);
            std::thread::sleep(phases.measure);
            let after = sum_stats(&stats);
            window = WindowStats::delta(t0.elapsed(), &before, &after);
            // The scope joins the shard threads, which exit on their
            // own once the drain phase runs out the deadline.
        });
        if let Some(e) = first_error.lock().unwrap().take() {
            return Err(e);
        }

        let elapsed = started.elapsed();
        let report_window = SimTime::from_nanos(elapsed.as_nanos() as u64);
        let mut sent_symbols = 0;
        let mut delivered_symbols = 0;
        for (_, report) in self.session_reports(report_window) {
            sent_symbols += report.sent_symbols;
            delivered_symbols += report.delivered_symbols;
        }
        let totals = self.set.totals();
        Ok(PhasedSummary {
            run: ServerSummary {
                elapsed,
                sessions: self.set.session_count(),
                sent_symbols,
                delivered_symbols,
                shares_sent: totals.shares_sent,
                datagrams_received: totals.datagrams_received,
                handoffs: totals.handoff_in,
                send_drops: totals.send_drops,
            },
            window,
        })
    }
}

fn sum_stats(stats: &[Arc<ShardStats>]) -> ShardStatsSnapshot {
    let mut total = ShardStatsSnapshot::default();
    for s in stats {
        total.add(&s.get());
    }
    total
}

/// Send errors that mean "this datagram is dropped" rather than "the
/// server is broken": full socket buffers and kernel-refused datagrams.
fn would_drop(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::OutOfMemory | io::ErrorKind::ConnectionRefused
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_modes_resolve_without_env() {
        assert_eq!(IoMode::Busypoll.resolve().unwrap(), IoBackend::Busypoll);
        #[cfg(target_os = "linux")]
        assert_eq!(IoMode::Epoll.resolve().unwrap(), IoBackend::Epoll);
        #[cfg(not(target_os = "linux"))]
        assert_eq!(
            IoMode::Epoll.resolve().unwrap_err().kind(),
            io::ErrorKind::Unsupported
        );
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in IoBackend::available() {
            assert!(matches!(backend.name(), "epoll" | "busypoll"));
        }
    }

    /// The calibrated reuseport topology must deliver each shard's
    /// A-originated traffic to that shard's own member socket.
    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_topology_routes_to_owner() {
        let shards = 4;
        let Ok(ios) = reuseport_topology(shards, 1) else {
            // Kernel without usable SO_REUSEPORT: the server falls
            // back to pairs; nothing to assert here.
            return;
        };
        let mut buf = [0u8; 64];
        let mut aligned = 0;
        for (i, io_i) in ios.iter().enumerate() {
            let ch = &io_i.channels[0];
            ch.a.send(b"ownership-probe").unwrap();
            std::thread::sleep(Duration::from_millis(5));
            let mut got_own = false;
            for io_j in &ios {
                let other = &io_j.channels[0];
                while let Ok(len) = other.b.recv(&mut buf) {
                    if &buf[..len] == b"ownership-probe" {
                        got_own = std::ptr::eq(other, ch);
                    }
                }
            }
            if got_own {
                aligned += 1;
            } else {
                // Calibration tolerates residual collisions; they ride
                // the handoff path.
                eprintln!("shard {i} not aligned (handoff path)");
            }
        }
        assert!(
            aligned >= shards - 1,
            "calibration left {} of {shards} shards unaligned",
            shards - aligned
        );
    }
}
