//! The socket-facing server: every shard runs on its own thread,
//! reading the *same* nonblocking UDP sockets.
//!
//! One cross-connected loopback socket pair exists per protocol
//! channel, shared by every session: outbound frames carry the 7-byte
//! connection-ID prefix, and whichever shard thread the kernel hands a
//! datagram to either owns the session (processed in place) or pushes
//! it onto the owner's bounded inbox — the same
//! [`Shard`](crate::shard::Shard) code the deterministic
//! [`ShardSet`](crate::shard::ShardSet) drives synchronously, now under
//! real scheduling races. Session behaviour stays deterministic *per
//! session* because each session's events still arrive in order on its
//! owning shard.

use std::io;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mcss_base::{Endpoint, SimTime};
use mcss_obs::MetricsSnapshot;
use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::engine::{SessionReport, SourceMode, Workload};

use crate::shard::{ServerConfig, ShardSet, MAX_DATAGRAM};
use crate::stats::ShardStats;

/// One channel's socket pair: `a` is host A's end, `b` is host B's
/// end, cross-connected on loopback.
#[derive(Debug)]
struct ChannelSockets {
    a: UdpSocket,
    b: UdpSocket,
}

impl ChannelSockets {
    fn loopback_pair() -> io::Result<Self> {
        let a = UdpSocket::bind("127.0.0.1:0")?;
        let b = UdpSocket::bind("127.0.0.1:0")?;
        a.connect(b.local_addr()?)?;
        b.connect(a.local_addr()?)?;
        a.set_nonblocking(true)?;
        b.set_nonblocking(true)?;
        Ok(ChannelSockets { a, b })
    }

    fn try_clone(&self) -> io::Result<Self> {
        Ok(ChannelSockets {
            a: self.a.try_clone()?,
            b: self.b.try_clone()?,
        })
    }

    /// `endpoint`'s own socket: transmit on it as `from`, receive on it
    /// as `to` (the pair is cross-connected).
    fn sock(&self, endpoint: Endpoint) -> &UdpSocket {
        match endpoint {
            Endpoint::A => &self.a,
            Endpoint::B => &self.b,
        }
    }
}

/// Aggregate outcome of one [`UdpServer::run_for`] window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerSummary {
    /// Wall-clock time the shard threads ran.
    pub elapsed: Duration,
    /// Sessions served.
    pub sessions: usize,
    /// Symbols sent across all sessions (from engine reports).
    pub sent_symbols: u64,
    /// Symbols reconstructed across all sessions.
    pub delivered_symbols: u64,
    /// Share datagrams queued outbound across all shards.
    pub shares_sent: u64,
    /// Datagrams read off the sockets across all shards.
    pub datagrams_received: u64,
    /// Frames handed off between shards.
    pub handoffs: u64,
    /// Outbound datagrams the kernel refused (socket backpressure).
    pub send_drops: u64,
}

impl ServerSummary {
    /// Aggregate reconstructed-symbol throughput.
    #[must_use]
    pub fn delivered_per_sec(&self) -> f64 {
        self.delivered_symbols as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// The sharded server over real loopback sockets: construct, register
/// paced sessions, then [`run_for`](UdpServer::run_for) a wall-clock
/// window.
///
/// ```no_run
/// use std::sync::Arc;
/// use std::time::Duration;
/// use mcss_base::SimTime;
/// use mcss_remicss::config::ProtocolConfig;
/// use mcss_remicss::engine::Workload;
/// use mcss_server::{ServerConfig, UdpServer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let protocol = Arc::new(ProtocolConfig::new(2.0, 3.0)?.with_symbol_bytes(64));
/// let mut server = UdpServer::new(ServerConfig::with_shards(4), protocol, 5)?;
/// for cid in 0..100u32 {
///     let workload = Workload::cbr(50.0, SimTime::from_secs(10));
///     server.add_session(cid, workload, u64::from(cid))?;
/// }
/// let summary = server.run_for(Duration::from_millis(500))?;
/// println!("{} symbols/s", summary.delivered_per_sec());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct UdpServer {
    set: ShardSet,
    protocol: Arc<ProtocolConfig>,
    channels: Vec<ChannelSockets>,
    /// Wall→engine time origin; reset at each run so `Started` lands
    /// near time zero, where the engines arm their initial timers.
    epoch: Instant,
}

impl UdpServer {
    /// Binds one loopback socket pair per channel and builds the shard
    /// set.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if socket setup fails.
    pub fn new(
        config: ServerConfig,
        protocol: impl Into<Arc<ProtocolConfig>>,
        channels: usize,
    ) -> io::Result<Self> {
        let pairs = (0..channels)
            .map(|_| ChannelSockets::loopback_pair())
            .collect::<io::Result<Vec<_>>>()?;
        Ok(UdpServer {
            set: ShardSet::new(&config),
            protocol: protocol.into(),
            channels: pairs,
            epoch: Instant::now(),
        })
    }

    /// Registers a paced session under `cid`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] for a duplicate `cid` or
    /// protocol parameters the engine rejects.
    pub fn add_session(&mut self, cid: u32, workload: Workload, seed: u64) -> io::Result<()> {
        let n = self.channels.len();
        self.set
            .add_session(
                cid,
                Arc::clone(&self.protocol),
                n,
                SourceMode::Paced(workload),
                seed,
            )
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))
    }

    /// Sessions registered.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.set.session_count()
    }

    /// The deterministic core (per-shard stats, pools, reports).
    #[must_use]
    pub fn shards(&self) -> &ShardSet {
        &self.set
    }

    /// Aggregated per-shard metrics (`server.shard{i}.*` plus
    /// `server.total.*`).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.set.metrics_snapshot()
    }

    /// Per-session engine reports over `window`.
    #[must_use]
    pub fn session_reports(&self, window: SimTime) -> Vec<(u32, SessionReport)> {
        let mut reports = Vec::new();
        for i in 0..self.set.num_shards() {
            let shard = self.set.shard(i);
            for cid in shard.cids() {
                reports.push((cid, shard.report(cid, window)));
            }
        }
        reports.sort_by_key(|(cid, _)| *cid);
        reports
    }

    /// Starts every session and runs one shard thread per shard for
    /// `wall` of wall-clock time, multiplexing all sessions over the
    /// shared sockets.
    ///
    /// # Errors
    ///
    /// The first socket error any shard thread hit (`WouldBlock` and
    /// kernel-refused sends are handled internally, never surfaced).
    pub fn run_for(&mut self, wall: Duration) -> io::Result<ServerSummary> {
        self.epoch = Instant::now();
        let epoch = self.epoch;
        let started = Instant::now();
        // Start sessions before the threads exist: Started arms timers
        // near t=0 and the wheels fire them once the threads spin up.
        let now = SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
        for i in 0..self.set.num_shards() {
            let shard = self.set.shard_mut(i);
            let cids: Vec<u32> = shard.cids().collect();
            for cid in cids {
                shard.start_session(now, cid);
            }
        }

        let stop = AtomicBool::new(false);
        let first_error: Mutex<Option<io::Error>> = Mutex::new(None);
        let deadline = Instant::now() + wall;
        std::thread::scope(|scope| -> io::Result<()> {
            let mut handles = Vec::new();
            for shard in self.set.shards_mut() {
                let sockets = self
                    .channels
                    .iter()
                    .map(ChannelSockets::try_clone)
                    .collect::<io::Result<Vec<_>>>()?;
                let stop = &stop;
                let first_error = &first_error;
                handles.push(scope.spawn(move || {
                    let mut recv_buf = vec![0u8; MAX_DATAGRAM];
                    loop {
                        let now = SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
                        shard.drain_inbox(now);
                        shard.poll_timers(now);
                        shard.drain_returns();
                        let mut idle = true;
                        for (channel, pair) in sockets.iter().enumerate() {
                            // Shares travel A→B (received on B's
                            // socket), control B→A (received on A's).
                            for to in [Endpoint::B, Endpoint::A] {
                                loop {
                                    match pair.sock(to).recv(&mut recv_buf) {
                                        Ok(len) => {
                                            idle = false;
                                            let now = SimTime::from_nanos(
                                                epoch.elapsed().as_nanos() as u64,
                                            );
                                            shard.route_datagram(
                                                now,
                                                channel,
                                                to,
                                                &recv_buf[..len],
                                            );
                                        }
                                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                        Err(e) => {
                                            first_error.lock().unwrap().get_or_insert(e);
                                            stop.store(true, Ordering::Relaxed);
                                            return;
                                        }
                                    }
                                }
                            }
                        }
                        while let Some(datagram) = shard.pop_outbound() {
                            idle = false;
                            match sockets[datagram.channel]
                                .sock(datagram.from)
                                .send(&datagram.bytes)
                            {
                                Ok(_) => ShardStats::bump(&shard.stats().datagrams_sent),
                                Err(e) if would_drop(&e) => {
                                    ShardStats::bump(&shard.stats().send_drops);
                                }
                                Err(e) => {
                                    first_error.lock().unwrap().get_or_insert(e);
                                    stop.store(true, Ordering::Relaxed);
                                    return;
                                }
                            }
                            shard.recycle_outbound(datagram.bytes);
                        }
                        if stop.load(Ordering::Relaxed) || Instant::now() >= deadline {
                            return;
                        }
                        if idle {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                    }
                }));
            }
            drop(handles); // scope joins
            Ok(())
        })?;
        if let Some(e) = first_error.lock().unwrap().take() {
            return Err(e);
        }

        let elapsed = started.elapsed();
        let window = SimTime::from_nanos(elapsed.as_nanos() as u64);
        let mut sent_symbols = 0;
        let mut delivered_symbols = 0;
        for (_, report) in self.session_reports(window) {
            sent_symbols += report.sent_symbols;
            delivered_symbols += report.delivered_symbols;
        }
        let totals = self.set.totals();
        Ok(ServerSummary {
            elapsed,
            sessions: self.set.session_count(),
            sent_symbols,
            delivered_symbols,
            shares_sent: totals.shares_sent,
            datagrams_received: totals.datagrams_received,
            handoffs: totals.handoff_in,
            send_drops: totals.send_drops,
        })
    }
}

/// Send errors that mean "this datagram is dropped" rather than "the
/// server is broken": full socket buffers and kernel-refused datagrams.
fn would_drop(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::OutOfMemory | io::ErrorKind::ConnectionRefused
    )
}
