//! Hand-rolled Linux syscall bindings for the readiness-driven event
//! loop: `epoll`, `eventfd`, batched datagram I/O (`recvmmsg` /
//! `sendmmsg`), and `SO_REUSEPORT` socket-group creation.
//!
//! The build environment vendors no `libc` crate, so the handful of
//! symbols the epoll backend needs are declared here directly against
//! the C library std already links. Everything is gated to
//! `target_os = "linux"` at the module declaration (`lib.rs`); the
//! portable busy-poll backend never touches this module.
//!
//! All `unsafe` in the server crate lives in this file, wrapped in
//! owned types ([`Epoll`], [`EventFd`], [`RecvBatch`], [`SendBatch`])
//! whose public APIs are safe: file descriptors are closed on drop,
//! and the batch types own their buffers, so the pointers handed to
//! the kernel stay valid for exactly the duration of each call.

use std::io;
use std::net::{SocketAddrV4, UdpSocket};
use std::os::fd::{FromRawFd, RawFd};

use std::os::raw::{c_int, c_uint, c_void};

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
/// Readable-readiness interest (level-triggered, the epoll default).
pub const EPOLLIN: u32 = 0x001;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const AF_INET: c_int = 2;
const SOCK_DGRAM: c_int = 2;
const SOCK_NONBLOCK: c_int = 0o4000;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_SNDBUF: c_int = 7;
const SO_RCVBUF: c_int = 8;
const SO_REUSEPORT: c_int = 15;
const MSG_DONTWAIT: c_int = 0x40;

/// `struct epoll_event`. Packed on x86 so the 64-bit data field sits
/// at offset 4, matching the kernel ABI.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
pub struct EpollEvent {
    /// `EPOLLIN` et al.
    pub events: u32,
    /// Caller token, returned verbatim on readiness.
    pub data: u64,
}

#[repr(C)]
struct IoVec {
    iov_base: *mut c_void,
    iov_len: usize,
}

#[repr(C)]
struct MsgHdr {
    msg_name: *mut c_void,
    msg_namelen: u32,
    msg_iov: *mut IoVec,
    msg_iovlen: usize,
    msg_control: *mut c_void,
    msg_controllen: usize,
    msg_flags: c_int,
}

#[repr(C)]
struct MMsgHdr {
    msg_hdr: MsgHdr,
    msg_len: c_uint,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct SockAddrIn {
    sin_family: u16,
    /// Big-endian port.
    sin_port: u16,
    /// Big-endian IPv4 address.
    sin_addr: u32,
    sin_zero: [u8; 8],
}

impl SockAddrIn {
    fn from_v4(addr: SocketAddrV4) -> Self {
        SockAddrIn {
            sin_family: AF_INET as u16,
            sin_port: addr.port().to_be(),
            sin_addr: u32::from_be_bytes(addr.ip().octets()).to_be(),
            sin_zero: [0; 8],
        }
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn bind(fd: c_int, addr: *const SockAddrIn, addrlen: u32) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn recvmmsg(
        fd: c_int,
        msgvec: *mut MMsgHdr,
        vlen: c_uint,
        flags: c_int,
        timeout: *mut c_void,
    ) -> c_int;
    fn sendmmsg(fd: c_int, msgvec: *mut MMsgHdr, vlen: c_uint, flags: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance: register interest once, then block in
/// [`wait`](Epoll::wait) until a registered fd is ready or the timeout
/// lapses.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    /// Registers level-triggered readable interest in `fd` under
    /// `token` (returned by [`wait`](Epoll::wait) when `fd` is ready).
    pub fn add_readable(&self, fd: RawFd, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: EPOLLIN,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut event) })?;
        Ok(())
    }

    /// Blocks until at least one registered fd is ready or `timeout_ms`
    /// elapses (`0` polls, negative blocks indefinitely). Fills `events`
    /// and returns the count. `EINTR` is retried internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A nonblocking `eventfd`: the cross-shard doorbell. A shard that
/// pushes a handoff onto a sleeping peer's inbox raises the peer's
/// doorbell, which the peer has registered in its epoll set.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
        Ok(EventFd { fd })
    }

    /// The raw descriptor (for epoll registration).
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the counter, waking any epoll waiter. A full counter
    /// (`EAGAIN`) already guarantees a pending wakeup, so it is not an
    /// error.
    pub fn raise(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&raw const one).cast(), 8) };
    }

    /// Consumes the counter so the next [`raise`](EventFd::raise) wakes
    /// again. `EAGAIN` (already clear) is fine.
    pub fn clear(&self) {
        let mut buf: u64 = 0;
        unsafe { read(self.fd, (&raw mut buf).cast(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// Binds a nonblocking IPv4 UDP socket with `SO_REUSEPORT` set *before*
/// the bind, so several sockets can share one port as a kernel
/// load-balancing group. Returns it as a std [`UdpSocket`].
pub fn reuseport_udp_bind(addr: SocketAddrV4) -> io::Result<UdpSocket> {
    let fd = cvt(unsafe { socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    // From here the fd must not leak: wrap immediately so errors drop it.
    let sock = unsafe { UdpSocket::from_raw_fd(fd) };
    let on: c_int = 1;
    cvt(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_REUSEPORT,
            (&raw const on).cast(),
            size_of::<c_int>() as u32,
        )
    })?;
    let raw = SockAddrIn::from_v4(addr);
    cvt(unsafe { bind(fd, &raw, size_of::<SockAddrIn>() as u32) })?;
    Ok(sock)
}

/// Best-effort enlargement of a socket's kernel send and receive
/// buffers to `bytes` (the kernel clamps to `net.core.{r,w}mem_max`
/// and doubles for bookkeeping). Many-session servers burst thousands
/// of datagrams per event-loop pass; the 208 KiB default receive
/// buffer silently drops the tail of such a burst long before the mean
/// rate is anywhere near link capacity. Never fails: a refused
/// enlargement just leaves the default in place.
pub fn enlarge_socket_buffers(sock: &UdpSocket, bytes: i32) {
    use std::os::fd::AsRawFd;
    let fd = sock.as_raw_fd();
    for opt in [SO_RCVBUF, SO_SNDBUF] {
        unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                opt,
                (&raw const bytes).cast(),
                size_of::<c_int>() as u32,
            )
        };
    }
}

/// How many datagrams one `recvmmsg`/`sendmmsg` call moves at most.
pub const BATCH: usize = 32;

/// Reusable scratch for batched receives: `BATCH` datagram slots filled
/// by one `recvmmsg` syscall.
pub struct RecvBatch {
    /// `BATCH` contiguous slots of `slot` bytes each.
    storage: Vec<u8>,
    slot: usize,
    iovecs: Vec<IoVec>,
    hdrs: Vec<MMsgHdr>,
}

impl std::fmt::Debug for RecvBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecvBatch")
            .field("slot", &self.slot)
            .finish()
    }
}

impl RecvBatch {
    /// Allocates slots of `slot_bytes` each (use the transport MTU).
    #[must_use]
    pub fn new(slot_bytes: usize) -> Self {
        RecvBatch {
            storage: vec![0u8; BATCH * slot_bytes],
            slot: slot_bytes,
            iovecs: Vec::with_capacity(BATCH),
            hdrs: Vec::with_capacity(BATCH),
        }
    }

    /// One `recvmmsg` call on `fd`: returns the number of datagrams
    /// read (access them via [`datagram`](RecvBatch::datagram)), or the
    /// socket error (`WouldBlock` when drained).
    pub fn recv(&mut self, fd: RawFd) -> io::Result<usize> {
        self.iovecs.clear();
        self.hdrs.clear();
        for i in 0..BATCH {
            let base = unsafe { self.storage.as_mut_ptr().add(i * self.slot) };
            self.iovecs.push(IoVec {
                iov_base: base.cast(),
                iov_len: self.slot,
            });
        }
        for i in 0..BATCH {
            self.hdrs.push(MMsgHdr {
                msg_hdr: MsgHdr {
                    msg_name: std::ptr::null_mut(),
                    msg_namelen: 0,
                    msg_iov: &mut self.iovecs[i],
                    msg_iovlen: 1,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            });
        }
        let n = unsafe {
            recvmmsg(
                fd,
                self.hdrs.as_mut_ptr(),
                BATCH as c_uint,
                MSG_DONTWAIT,
                std::ptr::null_mut(),
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }

    /// Datagram `i` of the last [`recv`](RecvBatch::recv) (`i` below the
    /// returned count).
    #[must_use]
    pub fn datagram(&self, i: usize) -> &[u8] {
        let len = (self.hdrs[i].msg_len as usize).min(self.slot);
        &self.storage[i * self.slot..i * self.slot + len]
    }
}

/// Reusable scratch for batched sends: stage up to [`BATCH`] datagram
/// payloads, then flush them with as few `sendmmsg` syscalls as the
/// kernel allows.
pub struct SendBatch {
    iovecs: Vec<IoVec>,
    hdrs: Vec<MMsgHdr>,
    /// Destination storage kept alive across the call (one shared
    /// address for the whole batch, or none for connected sockets).
    dest: Option<SockAddrIn>,
}

impl std::fmt::Debug for SendBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SendBatch")
            .field("len", &self.hdrs.len())
            .finish()
    }
}

/// Outcome of one [`SendBatch::send_all`] flush.
#[derive(Debug, Clone, Copy, Default)]
pub struct SendOutcome {
    /// Datagrams the kernel accepted.
    pub sent: usize,
    /// Datagrams refused by transient backpressure (dropped, UDP
    /// semantics).
    pub dropped: usize,
    /// `sendmmsg` calls issued.
    pub syscalls: u64,
}

impl SendBatch {
    /// Creates empty scratch.
    #[must_use]
    pub fn new() -> Self {
        SendBatch {
            iovecs: Vec::with_capacity(BATCH),
            hdrs: Vec::with_capacity(BATCH),
            dest: None,
        }
    }

    /// Sends every payload in `bufs` on `fd` (all to `dest`, or to the
    /// socket's connected peer when `dest` is `None`), retrying the
    /// unsent tail after partial batches. Transient refusals
    /// (`would_drop`) drop the remaining tail and are tallied, any
    /// other error is returned.
    pub fn send_all(
        &mut self,
        fd: RawFd,
        bufs: &[Vec<u8>],
        dest: Option<SocketAddrV4>,
        would_drop: impl Fn(&io::Error) -> bool,
    ) -> io::Result<SendOutcome> {
        let mut outcome = SendOutcome::default();
        self.dest = dest.map(SockAddrIn::from_v4);
        let (name, name_len) = match &mut self.dest {
            Some(addr) => (
                std::ptr::from_mut(addr).cast::<c_void>(),
                size_of::<SockAddrIn>() as u32,
            ),
            None => (std::ptr::null_mut(), 0),
        };
        let mut off = 0;
        while off < bufs.len() {
            let chunk = &bufs[off..(off + BATCH).min(bufs.len())];
            self.iovecs.clear();
            self.hdrs.clear();
            for buf in chunk {
                self.iovecs.push(IoVec {
                    // sendmmsg never writes through the iovec; the
                    // mutable pointer is only demanded by the C type.
                    iov_base: buf.as_ptr().cast_mut().cast(),
                    iov_len: buf.len(),
                });
            }
            for i in 0..chunk.len() {
                self.hdrs.push(MMsgHdr {
                    msg_hdr: MsgHdr {
                        msg_name: name,
                        msg_namelen: name_len,
                        msg_iov: &mut self.iovecs[i],
                        msg_iovlen: 1,
                        msg_control: std::ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    },
                    msg_len: 0,
                });
            }
            let n = unsafe {
                sendmmsg(
                    fd,
                    self.hdrs.as_mut_ptr(),
                    chunk.len() as c_uint,
                    MSG_DONTWAIT,
                )
            };
            outcome.syscalls += 1;
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                if would_drop(&err) {
                    outcome.dropped += bufs.len() - off;
                    return Ok(outcome);
                }
                return Err(err);
            }
            outcome.sent += n as usize;
            off += n as usize;
        }
        Ok(outcome)
    }
}

impl Default for SendBatch {
    fn default() -> Self {
        SendBatch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::os::fd::AsRawFd;

    fn loopback_pair() -> (UdpSocket, UdpSocket) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.connect(b.local_addr().unwrap()).unwrap();
        b.connect(a.local_addr().unwrap()).unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn eventfd_raises_and_clears() {
        let efd = EventFd::new().unwrap();
        efd.raise();
        efd.raise();
        efd.clear();
        // Cleared: a fresh raise must still wake an epoll waiter.
        let ep = Epoll::new().unwrap();
        ep.add_readable(efd.fd(), 7).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "counter not clear");
        efd.raise();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 7);
    }

    #[test]
    fn epoll_wakes_on_datagram_and_times_out_idle() {
        let (a, b) = loopback_pair();
        let ep = Epoll::new().unwrap();
        ep.add_readable(b.as_raw_fd(), 42).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Idle: times out immediately.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        a.send(b"ping").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 42);
        assert_ne!({ events[0].events } & EPOLLIN, 0);
    }

    #[test]
    fn batched_send_and_recv_round_trip() {
        let (a, b) = loopback_pair();
        let payloads: Vec<Vec<u8>> = (0..BATCH + 3).map(|i| vec![i as u8; 16 + i % 7]).collect();
        let mut tx = SendBatch::new();
        let outcome = tx
            .send_all(a.as_raw_fd(), &payloads, None, |_| false)
            .unwrap();
        assert_eq!(outcome.sent, payloads.len());
        assert!(
            outcome.syscalls <= 2,
            "{} datagrams should take <= 2 sendmmsg calls, took {}",
            payloads.len(),
            outcome.syscalls
        );

        let mut rx = RecvBatch::new(512);
        let mut got = Vec::new();
        loop {
            match rx.recv(b.as_raw_fd()) {
                Ok(n) => {
                    for i in 0..n {
                        got.push(rx.datagram(i).to_vec());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("recvmmsg failed: {e}"),
            }
        }
        assert_eq!(got, payloads, "datagrams lost or reordered on loopback");
    }

    #[test]
    fn send_all_to_explicit_destination() {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        b.set_nonblocking(true).unwrap();
        let dest = match b.local_addr().unwrap() {
            std::net::SocketAddr::V4(v4) => v4,
            _ => unreachable!(),
        };
        let mut tx = SendBatch::new();
        let bufs = vec![b"hello".to_vec(), b"world".to_vec()];
        let outcome = tx
            .send_all(a.as_raw_fd(), &bufs, Some(dest), |_| false)
            .unwrap();
        assert_eq!(outcome.sent, 2);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut rx = RecvBatch::new(64);
        let n = rx.recv(b.as_raw_fd()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(rx.datagram(0), b"hello");
        assert_eq!(rx.datagram(1), b"world");
    }

    #[test]
    fn reuseport_group_shares_one_port() {
        let any = SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0);
        let first = reuseport_udp_bind(any).unwrap();
        let port = match first.local_addr().unwrap() {
            std::net::SocketAddr::V4(v4) => v4.port(),
            _ => unreachable!(),
        };
        let again = reuseport_udp_bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))
            .expect("second member joins the same port");
        assert_eq!(
            again.local_addr().unwrap().port(),
            port,
            "group members must share the port"
        );
    }
}
