//! Per-shard operational counters.
//!
//! These are plain [`AtomicU64`]s rather than `mcss-obs` counters so
//! the demux/handoff invariants they witness stay observable in every
//! build — the proptests assert on them with telemetry compiled out.
//! [`ShardStats::snapshot`] bridges them into the `mcss-obs` world as
//! an always-available [`MetricsSnapshot`] fragment.

use std::sync::atomic::{AtomicU64, Ordering};

use mcss_obs::{CounterSnapshot, MetricsSnapshot};

/// Declares the atomic counter struct, its plain-data snapshot twin,
/// and the name table the metrics export walks — one source of truth
/// for the field list.
macro_rules! shard_stats {
    ($($(#[doc = $doc:literal])+ $field:ident),+ $(,)?) => {
        /// Live per-shard counters, shared between the owning shard
        /// thread and metric aggregators.
        #[derive(Debug, Default)]
        pub struct ShardStats {
            $($(#[doc = $doc])+ pub $field: AtomicU64,)+
        }

        /// A [`ShardStats`] value frozen at one instant.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct ShardStatsSnapshot {
            $($(#[doc = $doc])+ pub $field: u64,)+
        }

        impl ShardStats {
            /// Freezes the current counter values.
            #[must_use]
            pub fn get(&self) -> ShardStatsSnapshot {
                ShardStatsSnapshot {
                    $($field: self.$field.load(Ordering::Relaxed),)+
                }
            }
        }

        impl ShardStatsSnapshot {
            /// Adds another snapshot's counts (for cross-shard totals).
            pub fn add(&mut self, other: &ShardStatsSnapshot) {
                $(self.$field += other.$field;)+
            }

            /// Appends one counter per field, named
            /// `{prefix}.{field}`, onto `snapshot`.
            pub fn extend_snapshot(&self, prefix: &str, snapshot: &mut MetricsSnapshot) {
                $(snapshot.counters.push(CounterSnapshot {
                    name: format!("{prefix}.{}", stringify!($field)),
                    value: self.$field,
                });)+
            }
        }
    };
}

shard_stats! {
    /// Datagrams read off the wire by this shard.
    datagrams_received,
    /// Datagrams this shard put on the wire.
    datagrams_sent,
    /// Encoded share frames queued outbound.
    shares_sent,
    /// Encoded control frames queued outbound.
    controls_sent,
    /// Symbols reconstructed by this shard's sessions.
    symbols_delivered,
    /// Session timers fired from the shard wheel.
    timers_fired,
    /// Frames received here but owned elsewhere, handed off.
    handoff_out,
    /// Frames processed here that another shard received.
    handoff_in,
    /// Handoffs dropped because the owner's inbox was full.
    handoff_rejected,
    /// Handoff buffers adopted locally because the origin's
    /// return ring was full.
    returns_migrated,
    /// Prefixed frames whose connection ID matched no session.
    dropped_unknown_cid,
    /// Datagrams with no recognizable framing (bad demux magic,
    /// truncated or mutated prefix).
    dropped_malformed,
    /// Frames routed to a session but undecodable as share/control.
    dropped_bad_frame,
    /// Share frames carrying a codec id this build does not know;
    /// counted apart from `dropped_bad_frame` so a codec-version skew
    /// between peers is visible as itself, not as generic garbage.
    dropped_unknown_codec,
    /// Bare pre-prefix frames routed to the legacy session.
    legacy_frames,
    /// Bare pre-prefix frames with no legacy session registered.
    dropped_legacy,
    /// Outbound datagrams the transport refused (socket backpressure).
    send_drops,
    /// Event-loop wakeups: `epoll_wait` returns on the readiness
    /// backend, loop iterations on the busy-poll backend. The ratio of
    /// datagrams to wakeups shows how much work each wakeup amortizes.
    wakeups,
    /// Receive syscalls issued (`recvmmsg` calls on the epoll backend
    /// — including the trailing empty one that observes `EAGAIN` — or
    /// `recv` calls on the busy-poll backend).
    syscalls_recv,
    /// Send syscalls issued (`sendmmsg` or `send` calls, as above).
    syscalls_send,
}

impl ShardStats {
    /// Relaxed increment; counters are monotonic and independently
    /// read, so no ordering beyond atomicity is needed.
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed bulk increment for batched syscall accounting.
    pub(crate) fn bump_by(counter: &AtomicU64, n: u64) {
        if n > 0 {
            counter.fetch_add(n, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_add_and_export() {
        let stats = ShardStats::default();
        ShardStats::bump(&stats.datagrams_received);
        ShardStats::bump(&stats.datagrams_received);
        ShardStats::bump(&stats.handoff_out);
        let mut total = stats.get();
        assert_eq!(total.datagrams_received, 2);
        assert_eq!(total.handoff_out, 1);
        total.add(&stats.get());
        assert_eq!(total.datagrams_received, 4);

        let mut snap = MetricsSnapshot::default();
        total.extend_snapshot("server.shard0", &mut snap);
        let got = snap
            .counters
            .iter()
            .find(|c| c.name == "server.shard0.datagrams_received")
            .expect("exported");
        assert_eq!(got.value, 4);
    }
}
