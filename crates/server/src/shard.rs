//! The sharded session multiplexer: [`Shard`] owns a partition of the
//! connection-ID space, [`ShardSet`] drives every shard from one thread
//! with deterministic sequencing.
//!
//! Routing is static: connection `cid` lives on shard
//! `cid % num_shards`. A shard that reads a datagram it does not own
//! copies the inner frame into a buffer from its *own*
//! [`BufferPool`] and pushes it onto the owner's bounded inbox; after
//! processing, the owner sends the buffer home through the origin
//! shard's return ring, so every pool's working set stays closed under
//! cross-shard traffic (the steady state allocates nothing — see the
//! `pool_handoff` regression test).
//!
//! [`ShardSet`] is the sans-I/O core of the server: events carry
//! explicit [`SimTime`] stamps and each session draws from its own
//! seeded RNG, so the same event sequence replays bit-identically —
//! the determinism pin replays recorded single-session traces through
//! this demux path and compares action streams. The socket-facing
//! [`UdpServer`](crate::udp::UdpServer) wraps the same shards in
//! threads.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use mcss_base::{BufferPool, Endpoint, EventQueue, QueueKind, SimTime};
use mcss_codec::CodecId;
use mcss_obs::{GaugeSnapshot, MetricsSnapshot};
use mcss_remicss::actions::{Action, Event};
use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::engine::{Engine, SessionReport, SourceMode};
use mcss_remicss::wire::{demux_frame, put_cid_prefix, DemuxFrame, WireError};
use rand::rngs::StdRng;
use rand::SeedableRng as _;

use crate::queue::BoundedQueue;
use crate::stats::{ShardStats, ShardStatsSnapshot};

/// Largest datagram the server will read: far above any frame the
/// protocol emits (24-byte header + 16-bit payload length + 7-byte
/// demux prefix).
pub const MAX_DATAGRAM: usize = 65_535;

/// Sizing knobs for a shard set.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shards (worker partitions). Clamped to at least 1.
    pub shards: usize,
    /// Bound on each shard's handoff inbox and return ring.
    pub handoff_capacity: usize,
    /// I/O backend for the socket-facing driver ([`UdpServer`]); the
    /// deterministic [`ShardSet`] core never performs I/O and ignores
    /// it.
    ///
    /// [`UdpServer`]: crate::udp::UdpServer
    pub io: crate::udp::IoMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 1,
            handoff_capacity: 4096,
            io: crate::udp::IoMode::Auto,
        }
    }
}

impl ServerConfig {
    /// A config with `shards` shards and default queue bounds.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        ServerConfig {
            shards,
            ..ServerConfig::default()
        }
    }
}

/// Errors from session registration.
#[derive(Debug)]
pub enum ServerError {
    /// The connection ID is already registered.
    DuplicateCid(u32),
    /// The engine rejected the protocol parameters.
    Protocol(mcss_core::ModelError),
}

impl core::fmt::Display for ServerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServerError::DuplicateCid(cid) => write!(f, "connection id {cid} already registered"),
            ServerError::Protocol(e) => write!(f, "invalid protocol parameters: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<mcss_core::ModelError> for ServerError {
    fn from(e: mcss_core::ModelError) -> Self {
        ServerError::Protocol(e)
    }
}

/// One encoded datagram a shard wants on the wire, demux prefix
/// included. `bytes` comes from the shard's pool and must go back via
/// [`Shard::recycle_outbound`] (or [`Shard::drain_outbound`], which
/// recycles automatically).
#[derive(Debug)]
pub struct OutboundDatagram {
    /// The sending session's connection ID.
    pub cid: u32,
    /// Channel to transmit on.
    pub channel: usize,
    /// Sending endpoint.
    pub from: Endpoint,
    /// The full datagram: `"RX"` prefix + inner frame.
    pub bytes: Vec<u8>,
}

/// A frame owned by another shard, in flight between shard threads.
#[derive(Debug)]
struct Handoff {
    cid: u32,
    channel: usize,
    to: Endpoint,
    /// Shard whose pool `buf` came from (and returns to).
    origin: usize,
    /// The inner frame, demux prefix already stripped.
    buf: Vec<u8>,
}

/// One multiplexed session: the sans-I/O engine plus the per-session
/// state a driver owns (RNG, delivery queue, optional action log).
#[derive(Debug)]
struct SessionSlot {
    engine: Engine,
    rng: StdRng,
    record: bool,
    action_log: Vec<Action>,
    delivered: VecDeque<(u64, Vec<u8>)>,
    /// Whether this session is on the shard's ready-list (its engine
    /// may hold undrained actions). Intrusive flag: membership is O(1)
    /// to test and the list holds no duplicates.
    in_ready: bool,
    /// High-water mark of the engine's `delivered_total` already
    /// charged to the shard's `symbols_delivered` counter. Paced
    /// sources reconstruct without emitting `DeliverSymbol`, so the
    /// shard accounts deliveries by counter delta, not by action.
    counted_delivered: u64,
}

/// One worker partition: the sessions it owns, their shared buffer
/// pool and timer wheel, and the queues linking it to its peers.
#[derive(Debug)]
pub struct Shard {
    index: usize,
    num_shards: usize,
    sessions: HashMap<u32, SessionSlot>,
    pool: BufferPool,
    timers: EventQueue<(u32, u64)>,
    timer_seq: u64,
    outbound: VecDeque<OutboundDatagram>,
    /// Sessions with work pending: an event was delivered to their
    /// engine and its actions have not been drained yet. Together with
    /// each slot's `in_ready` flag this is the shard's *ready-set* —
    /// per-iteration work scales with the sessions that actually saw a
    /// datagram, timer, or offered symbol, never with the total
    /// session count.
    ready: Vec<u32>,
    /// Swap target for [`Shard::flush_ready`]; retained so the flush
    /// itself allocates nothing in steady state.
    ready_scratch: Vec<u32>,
    legacy_cid: Option<u32>,
    stats: Arc<ShardStats>,
    inbox: Arc<BoundedQueue<Handoff>>,
    inboxes: Vec<Arc<BoundedQueue<Handoff>>>,
    returns: Vec<Arc<BoundedQueue<Vec<u8>>>>,
}

impl Shard {
    fn new(
        index: usize,
        inboxes: Vec<Arc<BoundedQueue<Handoff>>>,
        returns: Vec<Arc<BoundedQueue<Vec<u8>>>>,
        stats: Arc<ShardStats>,
    ) -> Self {
        Shard {
            index,
            num_shards: inboxes.len(),
            sessions: HashMap::new(),
            pool: BufferPool::new(),
            timers: EventQueue::new(QueueKind::Wheel),
            timer_seq: 0,
            outbound: VecDeque::new(),
            ready: Vec::new(),
            ready_scratch: Vec::new(),
            legacy_cid: None,
            stats: Arc::clone(&stats),
            inbox: Arc::clone(&inboxes[index]),
            inboxes,
            returns,
        }
    }

    /// This shard's position in the set.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Sessions this shard owns.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Sessions this shard owns that encode with `codec`.
    #[must_use]
    pub fn codec_session_count(&self, codec: CodecId) -> usize {
        self.sessions
            .values()
            .filter(|slot| slot.engine.codec() == codec)
            .count()
    }

    /// Live counters (shared with metric aggregators).
    #[must_use]
    pub fn stats(&self) -> &Arc<ShardStats> {
        &self.stats
    }

    /// The shard's buffer pool (its hit/miss/grow counters witness the
    /// zero-allocation steady state).
    #[must_use]
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Connection IDs owned by this shard, unordered.
    pub fn cids(&self) -> impl Iterator<Item = u32> + '_ {
        self.sessions.keys().copied()
    }

    fn slot_mut(&mut self, cid: u32) -> &mut SessionSlot {
        self.sessions
            .get_mut(&cid)
            .unwrap_or_else(|| panic!("no session with connection id {cid}"))
    }

    fn add_session(&mut self, cid: u32, engine: Engine, seed: u64) -> Result<(), ServerError> {
        if self.sessions.contains_key(&cid) {
            return Err(ServerError::DuplicateCid(cid));
        }
        self.sessions.insert(
            cid,
            SessionSlot {
                engine,
                rng: StdRng::seed_from_u64(seed),
                record: false,
                action_log: Vec::new(),
                delivered: VecDeque::new(),
                in_ready: false,
                counted_delivered: 0,
            },
        );
        Ok(())
    }

    /// Puts `cid` on the ready-list (idempotent). Every event-delivery
    /// path funnels through this; the matching
    /// [`flush_ready`](Shard::flush_ready) drains the marked engines.
    fn mark_ready(&mut self, cid: u32) {
        let slot = self.slot_mut(cid);
        if !slot.in_ready {
            slot.in_ready = true;
            self.ready.push(cid);
        }
    }

    /// Sessions currently on the ready-list.
    #[must_use]
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Drains the engine of every session marked ready since the last
    /// flush, in marking order. The synchronous [`ShardSet`] API
    /// flushes after every event (preserving the recorded trace
    /// semantics exactly); the socket driver flushes once per wakeup,
    /// amortizing the drain across a whole receive batch.
    pub fn flush_ready(&mut self, now: SimTime) {
        if self.ready.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.ready_scratch);
        std::mem::swap(&mut batch, &mut self.ready);
        for &cid in &batch {
            if let Some(slot) = self.sessions.get_mut(&cid) {
                slot.in_ready = false;
            }
            self.drain_engine(now, cid);
        }
        batch.clear();
        self.ready_scratch = batch;
    }

    /// Delivers [`Event::Started`] to `cid` at `now`, arming its
    /// initial timers.
    pub fn start_session(&mut self, now: SimTime, cid: u32) {
        let slot = self.slot_mut(cid);
        slot.engine.handle(now, Event::Started, &mut slot.rng);
        self.mark_ready(cid);
        self.flush_ready(now);
    }

    /// Fires one timer event directly, bypassing the shard wheel.
    ///
    /// This is the trace-replay hook: recorded runs carry the exact
    /// timer firing order, and replaying it verbatim keeps the session
    /// bit-identical regardless of how the wheel would batch the same
    /// due times.
    pub fn fire_timer(&mut self, now: SimTime, cid: u32, token: u64) {
        self.fire_timer_inner(now, cid, token);
        self.flush_ready(now);
    }

    /// Delivers the timer event and marks the session ready without
    /// flushing — [`poll_timers`](Shard::poll_timers) batches the flush
    /// across every timer due this wakeup.
    fn fire_timer_inner(&mut self, now: SimTime, cid: u32, token: u64) {
        let slot = self.slot_mut(cid);
        slot.engine
            .handle(now, Event::TimerFired { token }, &mut slot.rng);
        ShardStats::bump(&self.stats.timers_fired);
        self.mark_ready(cid);
    }

    /// Updates `cid`'s view of `from`'s send backlog on `channel`.
    pub fn channel_writable(
        &mut self,
        now: SimTime,
        cid: u32,
        channel: usize,
        from: Endpoint,
        backlog: SimTime,
    ) {
        let slot = self.slot_mut(cid);
        slot.engine.handle(
            now,
            Event::ChannelWritable {
                channel,
                from,
                backlog,
            },
            &mut slot.rng,
        );
        self.mark_ready(cid);
        self.flush_ready(now);
    }

    /// Offers one symbol payload to an external-source session.
    pub fn offer_symbol(&mut self, now: SimTime, cid: u32, payload: &[u8]) {
        let slot = self.slot_mut(cid);
        slot.engine
            .handle(now, Event::SymbolReady { payload }, &mut slot.rng);
        self.mark_ready(cid);
        self.flush_ready(now);
    }

    /// Handles one datagram read by **this** shard. Own frames are
    /// processed in place (the session is marked ready; call
    /// [`flush_ready`](Shard::flush_ready) after the batch); frames
    /// owned elsewhere are copied into a pooled buffer and pushed to
    /// the owner's inbox. Returns the owner index when a handoff was
    /// enqueued (so a synchronous driver can pump it immediately, and
    /// the threaded driver can ring the owner's doorbell).
    pub fn route_datagram(
        &mut self,
        now: SimTime,
        channel: usize,
        to: Endpoint,
        datagram: &[u8],
    ) -> Option<usize> {
        ShardStats::bump(&self.stats.datagrams_received);
        let (cid, inner) = match demux_frame(datagram) {
            Ok(DemuxFrame::Cid { cid, inner }) => (cid, inner),
            Ok(DemuxFrame::Legacy(frame)) => match self.legacy_cid {
                Some(cid) => {
                    ShardStats::bump(&self.stats.legacy_frames);
                    (cid, frame)
                }
                None => {
                    ShardStats::bump(&self.stats.dropped_legacy);
                    return None;
                }
            },
            Err(_) => {
                ShardStats::bump(&self.stats.dropped_malformed);
                return None;
            }
        };
        let owner = cid as usize % self.num_shards;
        if owner == self.index {
            self.deliver_inner(now, cid, channel, to, inner);
            return None;
        }
        let mut buf = self.pool.take();
        buf.extend_from_slice(inner);
        let handoff = Handoff {
            cid,
            channel,
            to,
            origin: self.index,
            buf,
        };
        match self.inboxes[owner].push(handoff) {
            Ok(()) => {
                ShardStats::bump(&self.stats.handoff_out);
                Some(owner)
            }
            Err(rejected) => {
                // Inbox full: shed the frame (UDP semantics) but keep
                // the buffer — it is ours.
                ShardStats::bump(&self.stats.handoff_rejected);
                self.pool.put(rejected.buf);
                None
            }
        }
    }

    /// Feeds one demuxed inner frame to the owning session.
    fn deliver_inner(
        &mut self,
        now: SimTime,
        cid: u32,
        channel: usize,
        to: Endpoint,
        inner: &[u8],
    ) {
        let Some(slot) = self.sessions.get_mut(&cid) else {
            ShardStats::bump(&self.stats.dropped_unknown_cid);
            return;
        };
        match slot
            .engine
            .handle_frame(now, channel, to, inner, &mut slot.rng)
        {
            Ok(()) => {}
            // Codec-version skew between peers gets its own counter;
            // the frame is dropped either way, never misrouted.
            Err(WireError::UnknownCodec { .. }) => {
                ShardStats::bump(&self.stats.dropped_unknown_codec);
            }
            Err(_) => ShardStats::bump(&self.stats.dropped_bad_frame),
        }
        self.mark_ready(cid);
    }

    /// Processes every frame handed off by other shards, then sends
    /// each buffer home through its origin's return ring. A full ring
    /// migrates the buffer into this shard's pool instead — never a
    /// drop, never an allocation.
    pub fn drain_inbox(&mut self, now: SimTime) {
        let inbox = Arc::clone(&self.inbox);
        while let Some(handoff) = inbox.pop() {
            ShardStats::bump(&self.stats.handoff_in);
            self.deliver_inner(now, handoff.cid, handoff.channel, handoff.to, &handoff.buf);
            if handoff.origin == self.index {
                self.pool.put(handoff.buf);
                continue;
            }
            match self.returns[handoff.origin].push(handoff.buf) {
                Ok(()) => {}
                Err(buf) => {
                    ShardStats::bump(&self.stats.returns_migrated);
                    self.pool.put(buf);
                }
            }
        }
        self.flush_ready(now);
    }

    /// Reclaims buffers other shards finished with into this shard's
    /// pool.
    pub fn drain_returns(&mut self) {
        let ring = Arc::clone(&self.returns[self.index]);
        while let Some(buf) = ring.pop() {
            self.pool.put(buf);
        }
    }

    /// Fires every timer due at or before `now` from the shard wheel,
    /// then flushes the ready-set once for the whole batch. Returns the
    /// number of timers fired.
    pub fn poll_timers(&mut self, now: SimTime) -> usize {
        let mut fired = 0;
        while matches!(self.timers.next_at(), Some(at) if at <= now) {
            let (_, _, (cid, token)) = self.timers.pop().expect("peeked entry exists");
            if !self.sessions.contains_key(&cid) {
                continue;
            }
            self.fire_timer_inner(now, cid, token);
            fired += 1;
        }
        if fired > 0 {
            self.flush_ready(now);
        }
        fired
    }

    /// When the next shard-wheel timer is due, if any — the epoll
    /// backend sleeps exactly until this deadline instead of spinning.
    pub fn next_timer_at(&mut self) -> Option<SimTime> {
        self.timers.next_at()
    }

    /// Milliseconds the event loop may sleep from `now` before the
    /// next shard timer is due (rounded up, `None` when the wheel is
    /// empty) — the epoll backend's wait timeout.
    pub fn timer_sleep_ms(&mut self, now: SimTime) -> Option<u64> {
        self.timers.millis_until_next(now)
    }

    /// Outbound datagrams queued and not yet popped.
    #[must_use]
    pub fn outbound_len(&self) -> usize {
        self.outbound.len()
    }

    /// Drains the session's action queue: shares and control frames
    /// are prefixed with the connection ID into pooled buffers and
    /// queued outbound, timers go onto the shard wheel, reconstructed
    /// symbols park in the session's delivery queue.
    fn drain_engine(&mut self, _now: SimTime, cid: u32) {
        let Some(slot) = self.sessions.get_mut(&cid) else {
            return;
        };
        while let Some(action) = slot.engine.poll_action() {
            if slot.record {
                slot.action_log.push(action.clone());
            }
            match action {
                Action::SendShare {
                    channel,
                    from,
                    frame,
                } => {
                    let mut bytes = self.pool.take();
                    put_cid_prefix(&mut bytes, cid);
                    bytes.extend_from_slice(&frame);
                    // The frame left the session: enqueueing outbound is
                    // this driver's send. Transport-level drops are
                    // shard-level counters, not session rejections.
                    slot.engine.share_send_ok(channel);
                    slot.engine.recycle(frame);
                    self.outbound.push_back(OutboundDatagram {
                        cid,
                        channel,
                        from,
                        bytes,
                    });
                    ShardStats::bump(&self.stats.shares_sent);
                }
                Action::SendControl {
                    channel,
                    from,
                    frame,
                } => {
                    let mut bytes = self.pool.take();
                    put_cid_prefix(&mut bytes, cid);
                    bytes.extend_from_slice(&frame);
                    slot.engine.recycle(frame);
                    self.outbound.push_back(OutboundDatagram {
                        cid,
                        channel,
                        from,
                        bytes,
                    });
                    ShardStats::bump(&self.stats.controls_sent);
                }
                Action::SetTimer { token, at } => {
                    self.timer_seq += 1;
                    self.timers.push(at, self.timer_seq, (cid, token));
                }
                Action::DeliverSymbol { seq, payload } => {
                    slot.delivered.push_back((seq, payload));
                }
            }
        }
        // Paced sources consume reconstructions inside the engine (no
        // DeliverSymbol action), so delivery accounting reads the
        // engine counter's delta — covering both source modes once.
        let delivered = slot.engine.delivered_total();
        ShardStats::bump_by(
            &self.stats.symbols_delivered,
            delivered - slot.counted_delivered,
        );
        slot.counted_delivered = delivered;
    }

    /// Takes the oldest queued outbound datagram. Pass `bytes` back via
    /// [`recycle_outbound`](Shard::recycle_outbound) once sent.
    pub fn pop_outbound(&mut self) -> Option<OutboundDatagram> {
        self.outbound.pop_front()
    }

    /// Returns an outbound datagram's buffer to the shard pool.
    pub fn recycle_outbound(&mut self, bytes: Vec<u8>) {
        self.pool.put(bytes);
    }

    /// Visits every queued outbound datagram and recycles each buffer
    /// afterwards, counting them as sent.
    pub fn drain_outbound(&mut self, mut visit: impl FnMut(&OutboundDatagram)) {
        while let Some(datagram) = self.outbound.pop_front() {
            ShardStats::bump(&self.stats.datagrams_sent);
            visit(&datagram);
            self.pool.put(datagram.bytes);
        }
    }

    /// Takes every symbol `cid`'s session has reconstructed. Buffers
    /// may be handed back with
    /// [`recycle_delivered`](Shard::recycle_delivered) to keep the
    /// session's pool warm.
    pub fn take_delivered(&mut self, cid: u32) -> Vec<(u64, Vec<u8>)> {
        self.slot_mut(cid).delivered.drain(..).collect()
    }

    /// Takes the oldest reconstructed symbol from `cid`'s delivery
    /// queue without allocating (unlike
    /// [`take_delivered`](Shard::take_delivered), which collects).
    pub fn pop_delivered(&mut self, cid: u32) -> Option<(u64, Vec<u8>)> {
        self.slot_mut(cid).delivered.pop_front()
    }

    /// Returns a delivered payload buffer to `cid`'s engine pool.
    pub fn recycle_delivered(&mut self, cid: u32, payload: Vec<u8>) {
        self.slot_mut(cid).engine.recycle(payload);
    }

    /// Starts logging every action `cid`'s engine emits (for replay
    /// pinning; cloning frames is test-only overhead, off by default).
    pub fn record_actions(&mut self, cid: u32) {
        self.slot_mut(cid).record = true;
    }

    /// Takes the recorded action log.
    pub fn take_action_log(&mut self, cid: u32) -> Vec<Action> {
        std::mem::take(&mut self.slot_mut(cid).action_log)
    }

    /// The session's report over a measurement `window`.
    #[must_use]
    pub fn report(&self, cid: u32, window: SimTime) -> SessionReport {
        self.sessions
            .get(&cid)
            .unwrap_or_else(|| panic!("no session with connection id {cid}"))
            .engine
            .report(window)
    }
}

/// Every shard of the server, driven synchronously from one thread.
///
/// All sequencing is explicit — time comes from the caller, handoffs
/// are pumped to completion inside
/// [`deliver_datagram`](ShardSet::deliver_datagram) — so a given call
/// sequence produces bit-identical session behaviour on any shard
/// count.
#[derive(Debug)]
pub struct ShardSet {
    shards: Vec<Shard>,
}

impl ShardSet {
    /// Builds `config.shards` empty shards with their cross-shard
    /// queues wired up.
    #[must_use]
    pub fn new(config: &ServerConfig) -> Self {
        let n = config.shards.max(1);
        let inboxes: Vec<_> = (0..n)
            .map(|_| Arc::new(BoundedQueue::new(config.handoff_capacity)))
            .collect();
        let returns: Vec<_> = (0..n)
            .map(|_| Arc::new(BoundedQueue::new(config.handoff_capacity)))
            .collect();
        let shards = (0..n)
            .map(|i| {
                Shard::new(
                    i,
                    inboxes.clone(),
                    returns.clone(),
                    Arc::new(ShardStats::default()),
                )
            })
            .collect();
        ShardSet { shards }
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning connection `cid`.
    #[must_use]
    pub fn shard_of(&self, cid: u32) -> usize {
        cid as usize % self.shards.len()
    }

    /// Read access to one shard.
    #[must_use]
    pub fn shard(&self, index: usize) -> &Shard {
        &self.shards[index]
    }

    /// Mutable access to one shard (the threaded driver moves these
    /// into worker threads instead).
    pub fn shard_mut(&mut self, index: usize) -> &mut Shard {
        &mut self.shards[index]
    }

    pub(crate) fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }

    /// Sessions across all shards.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(Shard::session_count).sum()
    }

    /// Registers a session under `cid` on its owning shard.
    ///
    /// # Errors
    ///
    /// [`ServerError::DuplicateCid`] if `cid` is taken,
    /// [`ServerError::Protocol`] if the engine rejects the config.
    pub fn add_session(
        &mut self,
        cid: u32,
        config: impl Into<Arc<ProtocolConfig>>,
        channels: usize,
        source: SourceMode,
        seed: u64,
    ) -> Result<(), ServerError> {
        let engine = Engine::new(config, channels, source)?;
        let owner = self.shard_of(cid);
        self.shards[owner].add_session(cid, engine, seed)
    }

    /// Routes bare pre-prefix (`"RM"`/`"RC"`) frames to the session
    /// registered under `cid` — the compatibility path for
    /// single-session peers that predate the demux prefix.
    ///
    /// # Panics
    ///
    /// Panics if no session is registered under `cid`.
    pub fn set_legacy_session(&mut self, cid: u32) {
        let owner = self.shard_of(cid);
        assert!(
            self.shards[owner].sessions.contains_key(&cid),
            "no session with connection id {cid}"
        );
        for shard in &mut self.shards {
            shard.legacy_cid = Some(cid);
        }
    }

    /// Starts session `cid` at `now`.
    pub fn start(&mut self, now: SimTime, cid: u32) {
        let owner = self.shard_of(cid);
        self.shards[owner].start_session(now, cid);
    }

    /// Replay hook: fires `cid`'s timer `token` at `now` directly.
    pub fn fire_timer(&mut self, now: SimTime, cid: u32, token: u64) {
        let owner = self.shard_of(cid);
        self.shards[owner].fire_timer(now, cid, token);
    }

    /// Updates `cid`'s channel-backlog view.
    pub fn channel_writable(
        &mut self,
        now: SimTime,
        cid: u32,
        channel: usize,
        from: Endpoint,
        backlog: SimTime,
    ) {
        let owner = self.shard_of(cid);
        self.shards[owner].channel_writable(now, cid, channel, from, backlog);
    }

    /// Offers a symbol payload to external-source session `cid`.
    pub fn offer_symbol(&mut self, now: SimTime, cid: u32, payload: &[u8]) {
        let owner = self.shard_of(cid);
        self.shards[owner].offer_symbol(now, cid, payload);
    }

    /// Delivers one datagram as read by shard `received_on`, pumping
    /// any cross-shard handoff (and the buffer's trip home) to
    /// completion before returning.
    pub fn deliver_datagram(
        &mut self,
        now: SimTime,
        channel: usize,
        to: Endpoint,
        datagram: &[u8],
        received_on: usize,
    ) {
        if let Some(owner) = self.shards[received_on].route_datagram(now, channel, to, datagram) {
            self.shards[owner].drain_inbox(now);
            self.shards[received_on].drain_returns();
        }
        // Frames processed in place only marked their session ready;
        // flushing here keeps the synchronous API's
        // one-event-one-drain semantics (the trace pins rely on it).
        self.shards[received_on].flush_ready(now);
    }

    /// One duty cycle over every shard: drain handoffs, fire due
    /// timers, reclaim returned buffers.
    pub fn poll(&mut self, now: SimTime) {
        for shard in &mut self.shards {
            shard.drain_inbox(now);
            shard.poll_timers(now);
        }
        for shard in &mut self.shards {
            shard.drain_returns();
        }
    }

    /// Frozen counters for one shard.
    #[must_use]
    pub fn stats(&self, index: usize) -> ShardStatsSnapshot {
        self.shards[index].stats.get()
    }

    /// Counter totals across all shards.
    #[must_use]
    pub fn totals(&self) -> ShardStatsSnapshot {
        let mut total = ShardStatsSnapshot::default();
        for shard in &self.shards {
            total.add(&shard.stats.get());
        }
        total
    }

    /// The snapshot endpoint: per-shard counters under
    /// `server.shard{i}.*`, totals under `server.total.*`, plus a
    /// session-count gauge — ready to merge with engine metrics or
    /// export as Prometheus text.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = MetricsSnapshot::default();
        let mut total = ShardStatsSnapshot::default();
        for (i, shard) in self.shards.iter().enumerate() {
            let stats = shard.stats.get();
            stats.extend_snapshot(&format!("server.shard{i}"), &mut snapshot);
            snapshot.gauges.push(GaugeSnapshot {
                name: format!("server.shard{i}.sessions"),
                value: shard.session_count() as i64,
            });
            snapshot.gauges.push(GaugeSnapshot {
                name: format!("server.shard{i}.datagrams_per_syscall"),
                value: datagrams_per_syscall(&stats),
            });
            total.add(&stats);
        }
        total.extend_snapshot("server.total", &mut snapshot);
        snapshot.gauges.push(GaugeSnapshot {
            name: "server.total.sessions".to_string(),
            value: self.session_count() as i64,
        });
        // Per-codec session counts, so an operator sees codec rollouts
        // (and stragglers on the old codec) at a glance.
        for codec in CodecId::ALL {
            let count: usize = self
                .shards
                .iter()
                .map(|s| s.codec_session_count(codec))
                .sum();
            snapshot.gauges.push(GaugeSnapshot {
                name: format!("server.total.sessions_{}", codec.name()),
                value: count as i64,
            });
        }
        snapshot.gauges.push(GaugeSnapshot {
            name: "server.total.datagrams_per_syscall".to_string(),
            value: datagrams_per_syscall(&total),
        });
        snapshot
    }

    /// The report of session `cid` over `window`.
    #[must_use]
    pub fn report(&self, cid: u32, window: SimTime) -> SessionReport {
        let owner = self.shard_of(cid);
        self.shards[owner].report(cid, window)
    }
}

/// Whole datagrams moved per I/O syscall, rounded down — the syscall
/// amortization the batched backends buy (a busy-polling shard sits
/// below 1, which rounds to 0; the raw counters keep full precision).
fn datagrams_per_syscall(stats: &ShardStatsSnapshot) -> i64 {
    let datagrams = stats.datagrams_received + stats.datagrams_sent;
    let syscalls = stats.syscalls_recv + stats.syscalls_send;
    datagrams.checked_div(syscalls).unwrap_or(0) as i64
}
