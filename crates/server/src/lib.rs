//! `mcss-server`: a sharded multi-session server over the sans-I/O
//! ReMICSS engine.
//!
//! PR 5 made the protocol session a pure state machine precisely so
//! many of them can be multiplexed by one driver; this crate is that
//! driver at scale. Tens of thousands of engine instances share a
//! handful of nonblocking UDP sockets, partitioned across
//! thread-per-core **shards** by a 32-bit connection ID carried in a
//! demux prefix on every frame
//! ([`mcss_remicss::wire::demux_frame`]).
//!
//! * [`ShardSet`] — the deterministic core: every shard driven
//!   synchronously with explicit timestamps and per-session seeded
//!   RNGs. The test layer lives here: trace-replay determinism pins,
//!   demux isolation proptests, and the eavesdropper soak all drive
//!   this type.
//! * [`UdpServer`] — the same shards on real threads, each with its
//!   own per-channel sockets arranged as calibrated `SO_REUSEPORT`
//!   groups so the kernel routes most datagrams straight to the owning
//!   shard; frames that still land elsewhere cross over through
//!   bounded handoff queues. Two event-loop backends ([`IoBackend`]):
//!   readiness-driven epoll with `recvmmsg`/`sendmmsg` batching
//!   (Linux, default) and a portable busy-poll fallback, selected via
//!   [`ServerConfig::io`] or `MCSS_SERVER_IO`.
//! * Each shard owns a [`BufferPool`](mcss_base::BufferPool) and a
//!   hierarchical timer wheel ([`mcss_base::queue`]); handed-off
//!   buffers travel home through per-shard return rings, keeping the
//!   steady state allocation-free across shard boundaries.
//! * [`ShardSet::metrics_snapshot`] aggregates per-shard counters into
//!   an `mcss-obs` [`MetricsSnapshot`](mcss_obs::MetricsSnapshot)
//!   (JSON or Prometheus text).
//!
//! # Example: three sessions, two shards, one datagram path
//!
//! ```
//! use std::sync::Arc;
//! use mcss_base::{Endpoint, SimTime};
//! use mcss_remicss::config::ProtocolConfig;
//! use mcss_remicss::engine::SourceMode;
//! use mcss_server::{ServerConfig, ShardSet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let protocol = Arc::new(ProtocolConfig::new(2.0, 3.0)?.with_symbol_bytes(32));
//! let mut set = ShardSet::new(&ServerConfig::with_shards(2));
//! for cid in [1u32, 2, 3] {
//!     set.add_session(cid, Arc::clone(&protocol), 5, SourceMode::External, 7)?;
//!     set.start(SimTime::ZERO, cid);
//! }
//! let now = SimTime::from_micros(50);
//! set.offer_symbol(now, 1, &[0xAB; 32]);
//! // Session 1's shares are now queued outbound on shard 1 (1 % 2),
//! // each datagram carrying the "RX" prefix with connection ID 1.
//! let mut datagrams = Vec::new();
//! set.shard_mut(1).drain_outbound(|d| datagrams.push((d.channel, d.bytes.clone())));
//! assert!(!datagrams.is_empty());
//! // Deliver them back through the demux path, as read by the *other*
//! // shard: they hand off to shard 1 and reassemble there.
//! for (channel, bytes) in &datagrams {
//!     set.deliver_datagram(now, *channel, Endpoint::B, bytes, 0);
//! }
//! assert_eq!(set.totals().handoff_in, datagrams.len() as u64);
//! # Ok(())
//! # }
//! ```

pub mod queue;
pub mod shard;
pub mod stats;
#[cfg(target_os = "linux")]
pub mod sys;
pub mod udp;

pub use queue::BoundedQueue;
pub use shard::{OutboundDatagram, ServerConfig, ServerError, Shard, ShardSet, MAX_DATAGRAM};
pub use stats::{ShardStats, ShardStatsSnapshot};
pub use udp::{IoBackend, IoMode, PhasedSummary, RunPhases, ServerSummary, UdpServer, WindowStats};
