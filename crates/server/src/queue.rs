//! Bounded MPSC queues for cross-shard traffic.
//!
//! Two queue instances exist per shard: an **inbox** of handed-off
//! frames owned by this shard but received on another shard's socket
//! read, and a **return ring** carrying pooled buffers back to the
//! shard whose [`BufferPool`](mcss_base::BufferPool) they came from.
//! Both are bounded: a full inbox sheds load (the frame is dropped and
//! counted, UDP semantics), a full return ring migrates the buffer into
//! the consumer's local pool instead — backpressure never blocks a
//! shard thread.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded multi-producer single-consumer queue. `push` never
/// blocks: over capacity it hands the item back to the caller, which
/// decides between dropping (inbox) and local adoption (return ring).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    items: Mutex<VecDeque<T>>,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items, storage
    /// preallocated so steady-state push/pop never touches the
    /// allocator.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity,
            items: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Enqueues `item`, or returns it if the queue is full.
    ///
    /// # Errors
    ///
    /// `Err(item)` when `len() == capacity()`; ownership returns to the
    /// caller.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut items = self.items.lock().expect("queue lock poisoned");
        if items.len() >= self.capacity {
            return Err(item);
        }
        items.push_back(item);
        Ok(())
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&self) -> Option<T> {
        self.items.lock().expect("queue lock poisoned").pop_front()
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.lock().expect("queue lock poisoned").len()
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bound passed at construction.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_returns_item() {
        let q = BoundedQueue::new(2);
        q.push("a").unwrap();
        q.push("b").unwrap();
        assert_eq!(q.push("c"), Err("c"));
        assert_eq!(q.pop(), Some("a"));
        q.push("c").unwrap();
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn concurrent_producers_never_exceed_capacity() {
        use std::sync::Arc;
        let q = Arc::new(BoundedQueue::new(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..100 {
                        let _ = q.push(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(q.len(), 64);
    }
}
