//! End-to-end smoke of the threaded [`UdpServer`]: real loopback
//! sockets, one thread per shard with its own socket group. Runs the
//! same small multi-session workload under **every** I/O backend the
//! host supports (busypoll everywhere, epoll on Linux) and verifies
//! that symbols move, that nothing on the wire misroutes (no
//! unknown-cid or malformed drops on a clean loopback), and that the
//! metrics snapshot exports the per-shard and total counter families —
//! including the new wakeup/syscall amortization counters.

use std::sync::Arc;
use std::time::Duration;

use mcss_base::SimTime;
use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::engine::Workload;
use mcss_server::{IoBackend, IoMode, ServerConfig, UdpServer};

fn run_smoke(io: IoMode, expect: IoBackend) {
    let protocol = Arc::new(ProtocolConfig::new(2.0, 3.0).unwrap().with_symbol_bytes(64));
    let mut config = ServerConfig::with_shards(2);
    config.io = io;
    let mut server = UdpServer::new(config, protocol, 5).expect("loopback sockets bind");
    assert_eq!(server.backend(), expect);
    const SESSIONS: u32 = 16;
    for cid in 0..SESSIONS {
        // Duration far beyond the run window so sources never idle.
        let workload = Workload::cbr(50.0, SimTime::from_secs(30));
        server
            .add_session(cid, workload, 1 + u64::from(cid))
            .unwrap();
    }
    assert_eq!(server.session_count(), SESSIONS as usize);

    let summary = server.run_for(Duration::from_millis(400)).expect("run");

    assert_eq!(summary.sessions, SESSIONS as usize);
    assert!(summary.sent_symbols > 0, "sources produced nothing");
    assert!(
        summary.delivered_symbols > 0,
        "no symbol survived the loopback round trip: {summary:?}"
    );
    assert!(summary.shares_sent >= summary.sent_symbols);
    assert!(summary.datagrams_received > 0);

    let totals = server.shards().totals();
    // A clean loopback carries only frames the server itself prefixed.
    assert_eq!(totals.dropped_unknown_cid, 0, "{totals:?}");
    assert_eq!(totals.dropped_malformed, 0, "{totals:?}");
    assert_eq!(totals.dropped_legacy, 0, "{totals:?}");
    // Buffers never leak across pools: full return rings would count.
    assert_eq!(totals.returns_migrated, 0, "{totals:?}");
    // Every backend accounts its event loop.
    assert!(totals.wakeups > 0, "{totals:?}");
    assert!(totals.syscalls_recv > 0, "{totals:?}");
    assert!(totals.syscalls_send > 0, "{totals:?}");

    // Per-session reports are complete and sorted.
    let reports = server.session_reports(SimTime::from_millis(400));
    assert_eq!(reports.len(), SESSIONS as usize);
    assert!(reports.windows(2).all(|w| w[0].0 < w[1].0));

    // The snapshot endpoint exposes both shards and the totals.
    let snapshot = server.metrics_snapshot();
    for name in [
        "server.shard0.datagrams_received",
        "server.shard1.datagrams_received",
        "server.total.datagrams_received",
        "server.total.handoff_in",
        "server.shard0.wakeups",
        "server.shard1.wakeups",
        "server.total.syscalls_recv",
        "server.total.syscalls_send",
    ] {
        assert!(
            snapshot.counters.iter().any(|c| c.name == name),
            "snapshot missing {name}"
        );
    }
    assert!(
        snapshot
            .gauges
            .iter()
            .any(|g| g.name == "server.total.sessions" && g.value == i64::from(SESSIONS)),
        "snapshot missing session gauge"
    );
    assert!(
        snapshot
            .gauges
            .iter()
            .any(|g| g.name == "server.total.datagrams_per_syscall"),
        "snapshot missing amortization gauge"
    );
    let text = snapshot.to_prometheus();
    assert!(
        text.contains("server_total_datagrams_received"),
        "prometheus text missing server totals:\n{text}"
    );
}

#[test]
fn loopback_server_moves_symbols_and_exports_metrics_busypoll() {
    run_smoke(IoMode::Busypoll, IoBackend::Busypoll);
}

#[cfg(target_os = "linux")]
#[test]
fn loopback_server_moves_symbols_and_exports_metrics_epoll() {
    run_smoke(IoMode::Epoll, IoBackend::Epoll);
}

/// The epoll backend must amortize syscalls: far fewer wakeups than
/// the busy-poll loop for the same workload, and clearly fewer recv
/// syscalls than datagrams received (recvmmsg batching at work).
#[cfg(target_os = "linux")]
#[test]
fn epoll_backend_amortizes_wakeups_and_syscalls() {
    let protocol = Arc::new(ProtocolConfig::new(2.0, 3.0).unwrap().with_symbol_bytes(64));
    let mut config = ServerConfig::with_shards(2);
    config.io = IoMode::Epoll;
    let mut server = UdpServer::new(config, protocol, 5).expect("sockets bind");
    for cid in 0..64u32 {
        let workload = Workload::cbr(100.0, SimTime::from_secs(30));
        server
            .add_session(cid, workload, 1 + u64::from(cid))
            .unwrap();
    }
    let summary = server.run_for(Duration::from_millis(400)).expect("run");
    assert!(summary.delivered_symbols > 0, "{summary:?}");
    let totals = server.shards().totals();
    // The busy-poll loop would record one recv syscall per socket per
    // iteration (~10 sockets × thousands of iterations); readiness +
    // batching must come in far below one syscall per datagram pair.
    assert!(
        totals.syscalls_recv < totals.datagrams_received * 2,
        "recvmmsg batching missing: {totals:?}"
    );
    // Sleeping between timer deadlines bounds wakeups by wall-clock /
    // timer cadence, not by a spin rate.
    assert!(
        totals.wakeups < 100_000,
        "epoll loop appears to be spinning: {totals:?}"
    );
}
