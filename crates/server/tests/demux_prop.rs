//! Property tests for connection-ID demux isolation: whatever order
//! datagrams arrive in, whichever shard reads them, and whatever
//! corruption rides along, shares never cross between sessions, and
//! every malformed or unroutable datagram is counted and dropped.
//!
//! Each case runs a few external-source sessions whose symbol payloads
//! are tagged with their connection ID, scatters the resulting share
//! datagrams across shards in a case-dependent order (mixed with
//! corrupted variants), and then asserts payload purity per session
//! plus exact drop accounting.

use std::sync::Arc;

use mcss_base::{Endpoint, SimTime};
use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::engine::SourceMode;
use mcss_remicss::wire::CID_PREFIX_BYTES;
use mcss_server::{ServerConfig, ShardSet};
use proptest::prelude::*;

const SYMBOL_BYTES: usize = 16;
/// Registered connection IDs; chosen to straddle shard boundaries for
/// every shard count the cases draw.
const CIDS: [u32; 3] = [1, 2, 5];
/// A connection ID no case registers.
const UNKNOWN_CID: u32 = 0xDEAD_BEEF;

fn tag(cid: u32) -> [u8; SYMBOL_BYTES] {
    [cid as u8; SYMBOL_BYTES]
}

/// Collects `symbols` tagged symbols' share datagrams from each session.
fn collect_datagrams(set: &mut ShardSet, symbols: usize) -> Vec<(u32, usize, Vec<u8>)> {
    let mut out = Vec::new();
    for round in 0..symbols {
        for (i, &cid) in CIDS.iter().enumerate() {
            let now = SimTime::from_micros((round * CIDS.len() + i) as u64);
            set.offer_symbol(now, cid, &tag(cid));
        }
    }
    for shard in 0..set.num_shards() {
        let mut drained = Vec::new();
        set.shard_mut(shard).drain_outbound(|d| {
            drained.push((d.cid, d.channel, d.bytes.clone()));
        });
        out.extend(drained);
    }
    out
}

/// Corruption kinds: 0 rewrites the connection ID to an unregistered
/// one, 1 truncates inside the prefix, 2 mutates the prefix version,
/// 3 mutates the demux magic, 4 rewrites the inner share header to
/// claim a codec id this build has never heard of (a peer running a
/// future codec — the datagram routes fine but the share must drop
/// under its own counter, whatever codec the session itself runs).
fn corrupt(datagram: &[u8], kind: usize, fuzz: usize) -> Vec<u8> {
    let mut bytes = datagram.to_vec();
    match kind {
        0 => bytes[3..7].copy_from_slice(&UNKNOWN_CID.to_be_bytes()),
        1 => bytes.truncate(fuzz % (CID_PREFIX_BYTES + 1)),
        2 => bytes[2] = bytes[2].wrapping_add(1 + (fuzz % 250) as u8),
        3 => {
            bytes[0] = b'Q';
            bytes[1] = fuzz as u8;
        }
        _ => {
            // The v2 header is the v1 header with a codec byte inserted
            // at inner offset 6; upgrade v1 frames in place the same way
            // so the codec byte lands where a v2 decoder reads it.
            let version_at = CID_PREFIX_BYTES + 2;
            let codec_at = CID_PREFIX_BYTES + 6;
            if bytes[version_at] == 1 {
                bytes[version_at] = 2;
                bytes.insert(codec_at, 0xEE);
            } else {
                bytes[codec_at] = 0xEE;
            }
        }
    }
    bytes
}

proptest! {
    #[test]
    fn demux_never_crosses_sessions_and_counts_every_drop(
        shards in 1usize..=4,
        symbols in 1usize..=3,
        order_seed in any::<u64>(),
        corruptions in collection::vec((0usize..5, any::<usize>()), 0..6),
    ) {
        let config = Arc::new(
            ProtocolConfig::new(2.0, 3.0)
                .unwrap()
                .with_symbol_bytes(SYMBOL_BYTES),
        );
        let mut set = ShardSet::new(&ServerConfig::with_shards(shards));
        for &cid in &CIDS {
            set.add_session(cid, Arc::clone(&config), 5, SourceMode::External, u64::from(cid))
                .unwrap();
            set.start(SimTime::ZERO, cid);
        }

        let clean = collect_datagrams(&mut set, symbols);
        prop_assert!(!clean.is_empty());

        // Interleave corrupted variants of real datagrams with the
        // clean ones, then deliver in a case-dependent rotation with a
        // case-dependent reading shard.
        let mut wire: Vec<(usize, Vec<u8>)> = clean
            .iter()
            .map(|(_, channel, bytes)| (*channel, bytes.clone()))
            .collect();
        let mut expect_unknown = 0u64;
        let mut expect_malformed = 0u64;
        let mut expect_unknown_codec = 0u64;
        for (i, &(kind, fuzz)) in corruptions.iter().enumerate() {
            let (_, channel, template) = &clean[i % clean.len()];
            let mutated = corrupt(template, kind, fuzz);
            match kind {
                0 => expect_unknown += 1,
                4 => expect_unknown_codec += 1,
                _ => expect_malformed += 1,
            }
            wire.push((*channel, mutated));
        }
        let rotation = (order_seed as usize) % wire.len().max(1);
        wire.rotate_left(rotation);
        for (i, (channel, bytes)) in wire.iter().enumerate() {
            let received_on = (order_seed as usize + i * 7) % shards;
            let now = SimTime::from_millis(1) + SimTime::from_micros(i as u64);
            set.deliver_datagram(now, *channel, Endpoint::B, bytes, received_on);
        }

        // Every clean share reached its session, so every symbol
        // reconstructs — with its own session's tag, never a peer's.
        for &cid in &CIDS {
            let owner = set.shard_of(cid);
            let mut delivered = 0usize;
            while let Some((_, payload)) = set.shard_mut(owner).pop_delivered(cid) {
                prop_assert_eq!(&payload[..], &tag(cid)[..], "cross-session delivery to {}", cid);
                delivered += 1;
            }
            prop_assert_eq!(delivered, symbols, "session {} lost symbols", cid);
        }

        let totals = set.totals();
        prop_assert_eq!(totals.dropped_unknown_cid, expect_unknown);
        prop_assert_eq!(totals.dropped_malformed, expect_malformed);
        // Unknown codec ids are their own failure mode, never folded
        // into the generic bad-frame bucket.
        prop_assert_eq!(totals.dropped_unknown_codec, expect_unknown_codec);
        prop_assert_eq!(totals.dropped_bad_frame, 0);
        // No legacy session is registered, so nothing may take the
        // legacy path.
        prop_assert_eq!(totals.legacy_frames, 0);
        prop_assert_eq!(totals.handoff_rejected, 0);
        prop_assert_eq!(totals.datagrams_received, wire.len() as u64);
    }
}
