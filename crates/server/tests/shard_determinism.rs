//! Sharded-vs-serial determinism pin: the trace-replay equality from
//! `engine_trace.rs`, routed through the server's demux path instead of
//! a bare engine.
//!
//! Each recorded single-session simulator run (CBR, echo, and adaptive
//! feedback — the same workloads, seeds, and channel setup as the
//! serial pin) is replayed as one of several concurrent sessions on a
//! [`ShardSet`], with every recorded frame wrapped in the connection-ID
//! prefix and delivered through [`ShardSet::deliver_datagram`] as if a
//! rotating sequence of shards had read it off the wire. The per-session
//! action streams and final reports must be bit-identical to the
//! recorded serial run for shard counts 1, 2, and 8 — sharding, demux,
//! and cross-shard handoff may not perturb a session by a single byte.

use std::sync::Arc;

use mcss_base::SimTime;
use mcss_netsim::Simulator;
use mcss_remicss::actions::Action;
use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::engine::SourceMode;
use mcss_remicss::session::{Session, TraceEvent, TraceStep};
use mcss_remicss::{testbed, SessionReport, Workload};
use mcss_server::{ServerConfig, ShardSet};

/// One serial pin run: the recorded event/action trace plus the report
/// the sharded replay must reproduce.
struct RecordedRun {
    label: &'static str,
    config: Arc<ProtocolConfig>,
    workload: Workload,
    seed: u64,
    report: SessionReport,
    trace: Vec<TraceStep>,
}

fn record(
    label: &'static str,
    config: Arc<ProtocolConfig>,
    workload: Workload,
    seed: u64,
) -> RecordedRun {
    let channels = mcss_core::setups::diverse();
    let net = testbed::network_for(&channels, &config);
    let mut session = Session::new(Arc::clone(&config), channels.len(), workload).unwrap();
    session.record_trace();
    let mut sim = Simulator::new(net, session, seed);
    sim.run_until(workload.duration() + SimTime::from_secs(2));
    let report = sim.app().report(workload.duration());
    // The server driver reports every enqueued share as sent, so the
    // replay semantics require the recorded run to be drop-free.
    assert_eq!(
        report.send_queue_drops, 0,
        "{label}: pin run must be drop-free"
    );
    assert!(report.sent_symbols > 50, "{label}: pin run too short");
    let trace = sim.app_mut().take_trace();
    assert!(
        trace
            .iter()
            .any(|s| matches!(s, TraceStep::Action(Action::SendShare { .. }))),
        "{label}: trace recorded no transmissions"
    );
    RecordedRun {
        label,
        config,
        workload,
        seed,
        report,
        trace,
    }
}

/// The three serial pin scenarios, verbatim from `engine_trace.rs`.
fn recorded_runs() -> Vec<RecordedRun> {
    let channels = mcss_core::setups::diverse();
    let plain = Arc::new(ProtocolConfig::new(2.0, 3.0).unwrap());
    let adaptive = Arc::new(ProtocolConfig::new(2.0, 3.0).unwrap().with_adaptive(0.01));
    let rate = testbed::optimal_symbol_rate(&channels, &plain).unwrap();
    let window = SimTime::from_millis(300);
    vec![
        record(
            "cbr",
            Arc::clone(&plain),
            Workload::cbr(0.5 * rate, window),
            42,
        ),
        record("echo", plain, Workload::echo(0.3 * rate, window), 7),
        record(
            "adaptive",
            Arc::clone(&adaptive),
            Workload::cbr(
                0.5 * testbed::optimal_symbol_rate(&channels, &adaptive).unwrap(),
                window,
            ),
            9,
        ),
    ]
}

/// Replays every recorded run concurrently on one `ShardSet`,
/// interleaving the sessions step by step and rotating which shard
/// "reads" each inbound frame, then asserts per-session bit-equality
/// with the serial recording.
fn assert_sharded_replay_matches(runs: &[RecordedRun], shards: usize) {
    let mut set = ShardSet::new(&ServerConfig::with_shards(shards));
    // Consecutive cids spread the sessions across shards (for any of
    // the pinned shard counts these cover several distinct owners).
    let cids: Vec<u32> = (0..runs.len() as u32).map(|i| 101 + i).collect();
    for (run, &cid) in runs.iter().zip(&cids) {
        set.add_session(
            cid,
            Arc::clone(&run.config),
            mcss_core::setups::diverse().len(),
            SourceMode::Paced(run.workload),
            run.seed,
        )
        .unwrap();
        let owner = set.shard_of(cid);
        set.shard_mut(owner).record_actions(cid);
    }

    // Round-robin one trace step per session per round, so sessions
    // interleave on the shards exactly as concurrent traffic would.
    let mut next_step = vec![0usize; runs.len()];
    let mut received_on = 0usize;
    let mut datagram = Vec::new();
    loop {
        let mut progressed = false;
        for (s, run) in runs.iter().enumerate() {
            let Some(step) = run.trace.get(next_step[s]) else {
                continue;
            };
            next_step[s] += 1;
            progressed = true;
            let cid = cids[s];
            match step {
                TraceStep::Event { now, event } => match event {
                    TraceEvent::Started => set.start(*now, cid),
                    TraceEvent::Timer { token } => set.fire_timer(*now, cid, *token),
                    TraceEvent::Backlogs { from, backlogs } => {
                        for (channel, &backlog) in backlogs.iter().enumerate() {
                            set.channel_writable(*now, cid, channel, *from, backlog);
                        }
                    }
                    TraceEvent::Frame { channel, to, bytes } => {
                        datagram.clear();
                        mcss_remicss::wire::put_cid_prefix(&mut datagram, cid);
                        datagram.extend_from_slice(bytes);
                        set.deliver_datagram(*now, *channel, *to, &datagram, received_on);
                        received_on = (received_on + 1) % shards;
                    }
                },
                // Action steps are assertions, not inputs: the shard
                // logged the engine's actions as they were emitted.
                TraceStep::Action(_) => {}
            }
        }
        if !progressed {
            break;
        }
    }

    let totals = set.totals();
    assert_eq!(totals.dropped_unknown_cid, 0, "shards={shards}");
    assert_eq!(totals.dropped_malformed, 0, "shards={shards}");
    assert_eq!(totals.dropped_bad_frame, 0, "shards={shards}");
    assert_eq!(totals.handoff_rejected, 0, "shards={shards}");
    if shards > 1 {
        // The rotating reader guarantees frames regularly land on
        // non-owning shards, so the handoff path really ran.
        assert!(
            totals.handoff_in > 0,
            "shards={shards}: replay never exercised cross-shard handoff"
        );
    }

    for (run, &cid) in runs.iter().zip(&cids) {
        let expected: Vec<&Action> = run
            .trace
            .iter()
            .filter_map(|s| match s {
                TraceStep::Action(a) => Some(a),
                TraceStep::Event { .. } => None,
            })
            .collect();
        let owner = set.shard_of(cid);
        let got = set.shard_mut(owner).take_action_log(cid);
        assert_eq!(
            got.len(),
            expected.len(),
            "{} (shards={shards}): action count diverged",
            run.label
        );
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(
                g, *e,
                "{} (shards={shards}): action {i} diverged",
                run.label
            );
        }
        let replayed = set.report(cid, run.workload.duration());
        assert_eq!(
            replayed, run.report,
            "{} (shards={shards}): report diverged",
            run.label
        );
    }
}

#[test]
fn sharded_replay_is_bit_identical_for_1_2_and_8_shards() {
    let runs = recorded_runs();
    for shards in [1, 2, 8] {
        assert_sharded_replay_matches(&runs, shards);
    }
}
