//! Eavesdropper soak: the realized k-of-m exposure rate over a million
//! multiplexed symbols matches the model's Poisson-binomial exposure
//! probability `Z(p)` (Pohly & McDaniel §III) to within 1%.
//!
//! A thousand sessions share one [`ShardSet`], all driven by a static
//! share schedule. An eavesdropper taps the server's outbound side:
//! every datagram is demuxed exactly as a network observer would see it
//! (connection-ID prefix, then the share header). For each symbol the
//! adversary draws an independent channel-compromise vector from the
//! channel risk profile and recovers the symbol iff it captured at
//! least `k` of its shares. Over ≥1M symbols the empirical recovery
//! rate must converge to `schedule.risk(&channels)`.
//!
//! A second soak covers the MICSS/courier threat model
//! ([`JointRisk::fixed_taps`]): the adversary permanently holds a fixed
//! channel subset, so per-symbol exposure is deterministic given the
//! schedule draw, and the realized rate must converge to
//! `JointRisk::fixed_taps(n, T).schedule_risk(schedule)`.

use std::collections::HashMap;
use std::sync::Arc;

use mcss_base::SimTime;
use mcss_codec::{xor2d, CodecId};
use mcss_core::adversary::JointRisk;
use mcss_core::{ScheduleBuilder, ShareSchedule, Subset};
use mcss_remicss::config::{ProtocolConfig, SchedulerKind};
use mcss_remicss::engine::SourceMode;
use mcss_remicss::wire::{demux_frame, DemuxFrame, ShareRef};
use mcss_server::{ServerConfig, ShardSet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const SESSIONS: u32 = 1_000;
const SYMBOLS_PER_SESSION: usize = 1_000;
const SHARDS: usize = 4;
const SYMBOL_BYTES: usize = 16;
const CHANNELS: usize = 5;

/// Per-symbol adversary bookkeeping within one offer round.
struct SymbolSight {
    k: u8,
    captured: u8,
}

/// The soak schedule: mixes thresholds and subsets so both the subset
/// choice and the threshold matter to any adversary model.
fn soak_schedule() -> Arc<ShareSchedule> {
    let mut builder = ScheduleBuilder::new(CHANNELS);
    builder
        .push(2, Subset::from_indices(&[0, 1, 2]), 0.40)
        .unwrap();
    builder
        .push(3, Subset::from_indices(&[0, 1, 2, 3, 4]), 0.35)
        .unwrap();
    builder
        .push(1, Subset::from_indices(&[3, 4]), 0.25)
        .unwrap();
    Arc::new(builder.build().unwrap())
}

#[test]
fn realized_exposure_matches_poisson_binomial_risk() {
    // Channels whose compromise risks differ enough that the subset
    // choice matters.
    let risks = [0.05, 0.10, 0.20, 0.25, 0.40];
    let channels = mcss_core::setups::diverse_with_risk(&risks);
    let schedule = soak_schedule();
    let expected = schedule.risk(&channels);

    let config = Arc::new(
        ProtocolConfig::new(schedule.kappa(), schedule.mu())
            .unwrap()
            .with_symbol_bytes(SYMBOL_BYTES)
            .with_scheduler(SchedulerKind::Static(Arc::clone(&schedule))),
    );
    let mut set = ShardSet::new(&ServerConfig::with_shards(SHARDS));
    for cid in 0..SESSIONS {
        set.add_session(
            cid,
            Arc::clone(&config),
            CHANNELS,
            SourceMode::External,
            u64::from(cid) + 1,
        )
        .unwrap();
        set.start(SimTime::ZERO, cid);
    }

    let mut adversary = StdRng::seed_from_u64(0x5eed);
    let payload = [0xA5u8; SYMBOL_BYTES];
    let mut total_symbols = 0u64;
    let mut exposed_symbols = 0u64;
    // All shares of a symbol are emitted synchronously by the offer, so
    // the sighting map completes within each round and can be reused.
    let mut sightings: HashMap<(u32, u64), SymbolSight> = HashMap::new();
    for round in 0..SYMBOLS_PER_SESSION {
        let now = SimTime::from_millis(round as u64);
        for cid in 0..SESSIONS {
            set.offer_symbol(now, cid, &payload);
        }
        for shard in 0..SHARDS {
            // Split the borrow: the closure may not touch `adversary`
            // through `set`, so captures are collected per shard first.
            let mut seen: Vec<(u32, usize, u64, u8)> = Vec::new();
            set.shard_mut(shard).drain_outbound(|d| {
                let DemuxFrame::Cid { cid, inner } =
                    demux_frame(&d.bytes).expect("server emits well-formed datagrams")
                else {
                    panic!("server emitted a bare legacy frame");
                };
                assert_eq!(cid, d.cid, "prefix cid disagrees with the routing cid");
                let share = ShareRef::decode(inner).expect("server emits valid shares");
                seen.push((cid, d.channel, share.seq(), share.k()));
            });
            for (cid, channel, seq, k) in seen {
                let sight = sightings
                    .entry((cid, seq))
                    .or_insert_with(|| SymbolSight { k, captured: 0 });
                // One fresh compromise draw per channel sighting: with
                // at most one share per channel per symbol, this is an
                // independent per-channel Bernoulli, i.e. exactly the
                // Poisson-binomial trial behind Z(p).
                if adversary.random_bool(risks[channel]) {
                    sight.captured += 1;
                }
            }
        }
        for (_, sight) in sightings.drain() {
            total_symbols += 1;
            if sight.captured >= sight.k {
                exposed_symbols += 1;
            }
        }
    }

    assert_eq!(
        total_symbols,
        u64::from(SESSIONS) * SYMBOLS_PER_SESSION as u64,
        "soak lost symbols on the wire"
    );
    let realized = exposed_symbols as f64 / total_symbols as f64;
    let error = (realized - expected).abs();
    assert!(
        error < 0.01,
        "realized exposure {realized:.5} vs model Z(p) {expected:.5} \
         (error {error:.5} over {total_symbols} symbols)"
    );
    // Sanity on the regime: the chosen schedule sits in an interesting
    // middle ground, not a degenerate 0%/100% corner.
    assert!(expected > 0.02 && expected < 0.5, "Z(p)={expected:.4}");
}

/// The XOR codec's leg of the soak. Capturing ≥ k shares is *not* the
/// XOR adversary's bar: recovery needs a captured subset whose replica
/// placement covers every piece — a weaker (more often satisfied)
/// condition than Shamir's threshold, which is why the expectation
/// here is the codec's own combinatorial guarantee
/// ([`xor2d::recovery_probability`] per schedule entry, weighted by
/// entry probability) and **not** the Poisson-binomial `Z(p)`.
/// Abscissa `i + 1` rides the `i`-th channel of the entry's subset in
/// ascending index order, so each abscissa's capture risk is the risk
/// of that channel.
#[test]
fn xor_codec_realized_exposure_matches_combinatorial_guarantee() {
    const XOR_SESSIONS: u32 = 500;
    const XOR_ROUNDS: usize = 800;
    let risks = [0.05, 0.10, 0.20, 0.25, 0.40];
    let channels = mcss_core::setups::diverse_with_risk(&risks);
    let schedule = soak_schedule();
    let shamir_expected = schedule.risk(&channels);
    let expected: f64 = schedule
        .entries()
        .iter()
        .map(|(entry, prob)| {
            let subset_risks: Vec<f64> = entry.subset().iter().map(|ch| risks[ch]).collect();
            let m = u8::try_from(subset_risks.len()).unwrap();
            prob * xor2d::recovery_probability(entry.k(), m, &subset_risks)
        })
        .sum();
    // The gap this leg exists to measure: the XOR guarantee is weaker,
    // so its model exposure strictly dominates Z(p) on this schedule.
    assert!(
        expected > shamir_expected + 0.01,
        "xor model {expected:.5} does not dominate shamir Z(p) {shamir_expected:.5}"
    );

    let config = Arc::new(
        ProtocolConfig::new(schedule.kappa(), schedule.mu())
            .unwrap()
            .with_symbol_bytes(SYMBOL_BYTES)
            .with_scheduler(SchedulerKind::Static(Arc::clone(&schedule)))
            .with_codec(CodecId::Xor2d),
    );
    let mut set = ShardSet::new(&ServerConfig::with_shards(SHARDS));
    for cid in 0..XOR_SESSIONS {
        set.add_session(
            cid,
            Arc::clone(&config),
            CHANNELS,
            SourceMode::External,
            u64::from(cid) + 0x40d,
        )
        .unwrap();
        set.start(SimTime::ZERO, cid);
    }

    /// Which abscissas the adversary captured, as a bitmask (bit
    /// `x − 1`), plus the symbol's `(k, m)` — cover is decided by
    /// *which* shares were seen, not how many.
    struct XorSight {
        k: u8,
        m: u8,
        captured: u32,
    }

    let mut adversary = StdRng::seed_from_u64(0x40d5eed);
    let payload = [0x96u8; SYMBOL_BYTES];
    let mut total_symbols = 0u64;
    let mut recovered_symbols = 0u64;
    let mut sightings: HashMap<(u32, u64), XorSight> = HashMap::new();
    for round in 0..XOR_ROUNDS {
        let now = SimTime::from_millis(round as u64);
        for cid in 0..XOR_SESSIONS {
            set.offer_symbol(now, cid, &payload);
        }
        for shard in 0..SHARDS {
            let mut seen: Vec<(u32, usize, u64, u8, u8, u8)> = Vec::new();
            set.shard_mut(shard).drain_outbound(|d| {
                let DemuxFrame::Cid { cid, inner } =
                    demux_frame(&d.bytes).expect("server emits well-formed datagrams")
                else {
                    panic!("server emitted a bare legacy frame");
                };
                let share = ShareRef::decode(inner).expect("server emits valid shares");
                assert_eq!(share.codec(), CodecId::Xor2d, "session codec on the wire");
                seen.push((cid, d.channel, share.seq(), share.k(), share.m(), share.x()));
            });
            for (cid, channel, seq, k, m, x) in seen {
                let sight =
                    sightings
                        .entry((cid, seq))
                        .or_insert_with(|| XorSight { k, m, captured: 0 });
                if adversary.random_bool(risks[channel]) {
                    sight.captured |= 1 << (x - 1);
                }
            }
        }
        for (_, sight) in sightings.drain() {
            total_symbols += 1;
            if xor2d::recoverable(sight.k, sight.m, sight.captured) {
                recovered_symbols += 1;
            }
        }
    }

    assert_eq!(
        total_symbols,
        u64::from(XOR_SESSIONS) * XOR_ROUNDS as u64,
        "soak lost symbols on the wire"
    );
    let realized = recovered_symbols as f64 / total_symbols as f64;
    let error = (realized - expected).abs();
    assert!(
        error < 0.01,
        "xor realized exposure {realized:.5} vs combinatorial model {expected:.5} \
         (error {error:.5} over {total_symbols} symbols; shamir Z(p) would be \
         {shamir_expected:.5})"
    );
}

/// The fixed-set (MICSS/courier) adversary: permanently tapping the
/// channel subset `taps`, a symbol is recovered iff at least `k` of
/// its shares travel on tapped channels — no per-symbol randomness on
/// the adversary's side at all. The realized recovery rate over the
/// server's actual outbound traffic must converge to the closed-form
/// `JointRisk::fixed_taps(n, taps).schedule_risk(schedule)`, with the
/// only variance coming from the engine's schedule-entry draws.
fn run_fixed_taps_soak(taps: Subset, sessions: u32, rounds: usize) -> (f64, f64) {
    let schedule = soak_schedule();
    let expected = JointRisk::fixed_taps(CHANNELS, taps).schedule_risk(&schedule);

    let config = Arc::new(
        ProtocolConfig::new(schedule.kappa(), schedule.mu())
            .unwrap()
            .with_symbol_bytes(SYMBOL_BYTES)
            .with_scheduler(SchedulerKind::Static(Arc::clone(&schedule))),
    );
    let mut set = ShardSet::new(&ServerConfig::with_shards(SHARDS));
    for cid in 0..sessions {
        set.add_session(
            cid,
            Arc::clone(&config),
            CHANNELS,
            SourceMode::External,
            u64::from(cid) + 0x7a9,
        )
        .unwrap();
        set.start(SimTime::ZERO, cid);
    }

    let payload = [0x3Cu8; SYMBOL_BYTES];
    let mut total_symbols = 0u64;
    let mut recovered_symbols = 0u64;
    let mut sightings: HashMap<(u32, u64), SymbolSight> = HashMap::new();
    for round in 0..rounds {
        let now = SimTime::from_millis(round as u64);
        for cid in 0..sessions {
            set.offer_symbol(now, cid, &payload);
        }
        for shard in 0..SHARDS {
            let mut seen: Vec<(u32, usize, u64, u8)> = Vec::new();
            set.shard_mut(shard).drain_outbound(|d| {
                let DemuxFrame::Cid { cid, inner } =
                    demux_frame(&d.bytes).expect("server emits well-formed datagrams")
                else {
                    panic!("server emitted a bare legacy frame");
                };
                let share = ShareRef::decode(inner).expect("server emits valid shares");
                seen.push((cid, d.channel, share.seq(), share.k()));
            });
            for (cid, channel, seq, k) in seen {
                let sight = sightings
                    .entry((cid, seq))
                    .or_insert_with(|| SymbolSight { k, captured: 0 });
                // Deterministic capture: the tap set never changes.
                if taps.contains(channel) {
                    sight.captured += 1;
                }
            }
        }
        for (_, sight) in sightings.drain() {
            total_symbols += 1;
            if sight.captured >= sight.k {
                recovered_symbols += 1;
            }
        }
    }
    assert_eq!(
        total_symbols,
        u64::from(sessions) * rounds as u64,
        "soak lost symbols on the wire"
    );
    (recovered_symbols as f64 / total_symbols as f64, expected)
}

#[test]
fn fixed_taps_exposure_matches_joint_risk_model() {
    // Taps {0,1,2}: the (2,{0,1,2}) and (3, all-5) entries are fully
    // exposed, the (1,{3,4}) entry is untouchable → Z = 0.40 + 0.35.
    let (realized, expected) = run_fixed_taps_soak(Subset::from_indices(&[0, 1, 2]), 200, 400);
    assert!(
        (expected - 0.75).abs() < 1e-12,
        "model Z changed: {expected}"
    );
    let error = (realized - expected).abs();
    assert!(
        error < 0.01,
        "fixed-taps realized {realized:.5} vs model {expected:.5} (error {error:.5})"
    );

    // Taps {3,4}: only the (1,{3,4}) entry leaks → Z = 0.25.
    let (realized, expected) = run_fixed_taps_soak(Subset::from_indices(&[3, 4]), 200, 400);
    assert!(
        (expected - 0.25).abs() < 1e-12,
        "model Z changed: {expected}"
    );
    let error = (realized - expected).abs();
    assert!(
        error < 0.01,
        "fixed-taps realized {realized:.5} vs model {expected:.5} (error {error:.5})"
    );
}
