//! Zero-allocation regression for the cross-shard buffer handoff.
//!
//! Every datagram in this test is read by the *wrong* shard: the reader
//! copies the inner frame into a buffer from its own pool, hands it to
//! the owner through the bounded inbox, and the owner sends the buffer
//! home through the reader's return ring. In steady state that whole
//! round trip — plus the engines' split/frame/reassemble path under it
//! — must allocate nothing, and no buffer may be stranded on the wrong
//! shard (`returns_migrated` stays zero, both pools' miss/grow counters
//! stay flat).
//!
//! A counting global allocator (filtered to the measured thread, as in
//! the engine-level `zero_alloc` test) snapshots after a warmup window
//! long enough for every pool, ring, and reassembly table to reach its
//! high-water mark. The shard timer wheel is deliberately left idle
//! during measurement: its lazily-warmed slot vectors allocate on first
//! touch of each high-level frame (a documented property, pinned
//! elsewhere), which would otherwise mask a real leak in the handoff
//! path being measured here. Receiver state stays bounded anyway: the
//! resolved-map cap (set below the warmup count) bounds resolution
//! memory at insert time, and a single sweep fired at the
//! warmup/measure boundary prunes the completion-order bookkeeping
//! down to the (short) reassembly horizon while keeping its high-water
//! capacity — so the measurement window refills it without a doubling
//! reallocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mcss_base::{Endpoint, SimTime};
use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::engine::SourceMode;
use mcss_server::{ServerConfig, ShardSet};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static ON_MEASURED_THREAD: Cell<bool> = const { Cell::new(false) };
}

fn count_here() {
    if ON_MEASURED_THREAD.try_with(Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const SYMBOL_BYTES: usize = 512;
const ROUND: SimTime = SimTime::from_millis(1);
/// Must exceed `RESOLVED_CAP` so the receivers' resolved maps saturate
/// (and stop growing) before the measurement window opens.
const WARMUP_ROUNDS: u64 = 1_500;
const MEASURE_ROUNDS: u64 = 1_500;
const RESOLVED_CAP: usize = 1_024;
const CIDS: [u32; 2] = [0, 1];

/// One duty cycle: offer a symbol to each session, then deliver every
/// produced datagram to the session's *non-owning* shard so the frame
/// always crosses the handoff queues.
fn round(set: &mut ShardSet, now: SimTime, payload: &[u8]) {
    for &cid in &CIDS {
        set.offer_symbol(now, cid, payload);
    }
    for &cid in &CIDS {
        let owner = set.shard_of(cid);
        let wrong = (owner + 1) % set.num_shards();
        while let Some(datagram) = set.shard_mut(owner).pop_outbound() {
            set.deliver_datagram(now, datagram.channel, Endpoint::B, &datagram.bytes, wrong);
            set.shard_mut(owner).recycle_outbound(datagram.bytes);
        }
        while let Some((_, symbol)) = set.shard_mut(owner).pop_delivered(cid) {
            set.shard_mut(owner).recycle_delivered(cid, symbol);
        }
    }
}

#[test]
fn cross_shard_handoff_is_allocation_free_in_steady_state() {
    ON_MEASURED_THREAD.with(|flag| flag.set(true));
    let config = Arc::new(
        ProtocolConfig::new(2.0, 3.0)
            .unwrap()
            .with_symbol_bytes(SYMBOL_BYTES)
            .with_reassembly_timeout(SimTime::from_millis(20))
            .with_reassembly_resolved_cap(RESOLVED_CAP),
    );
    let mut set = ShardSet::new(&ServerConfig::with_shards(2));
    for &cid in &CIDS {
        set.add_session(
            cid,
            Arc::clone(&config),
            5,
            SourceMode::External,
            13 + u64::from(cid),
        )
        .unwrap();
        set.start(SimTime::ZERO, cid);
    }
    let payload = vec![0x5au8; SYMBOL_BYTES];

    let mut now = SimTime::ZERO;
    for _ in 0..WARMUP_ROUNDS {
        now += ROUND;
        round(&mut set, now, &payload);
    }
    // Fire the sessions' pending sweep timers once: prunes the
    // reassembly bookkeeping back to the 2x-timeout horizon, so the
    // measurement window refills inside the capacity the warmup built.
    set.poll(now);

    let warm = set.totals();
    let pool_high_water: Vec<(u64, u64)> = (0..set.num_shards())
        .map(|i| (set.shard(i).pool().misses(), set.shard(i).pool().grows()))
        .collect();
    let before = allocations();
    for _ in 0..MEASURE_ROUNDS {
        now += ROUND;
        round(&mut set, now, &payload);
    }
    let during = allocations() - before;
    let totals = set.totals();

    // The handoff path genuinely ran during measurement...
    assert!(
        totals.handoff_in > warm.handoff_in,
        "measurement window saw no cross-shard handoffs"
    );
    assert_eq!(
        totals.handoff_rejected, warm.handoff_rejected,
        "inbox overflowed"
    );
    // ...every buffer made it home rather than migrating pools...
    assert_eq!(totals.returns_migrated, 0, "return ring overflowed");
    // ...no session lost a symbol crossing shards...
    assert_eq!(
        totals.symbols_delivered,
        CIDS.len() as u64 * (WARMUP_ROUNDS + MEASURE_ROUNDS),
        "loopback-through-handoff lost symbols"
    );
    // ...and the steady state allocated nothing: shard pools stayed at
    // their high-water mark and the allocator never fired.
    for (i, &(misses, grows)) in pool_high_water.iter().enumerate() {
        assert_eq!(
            set.shard(i).pool().misses(),
            misses,
            "shard {i} pool missed"
        );
        assert_eq!(set.shard(i).pool().grows(), grows, "shard {i} pool grew");
    }
    assert_eq!(
        during, 0,
        "{during} allocations during {MEASURE_ROUNDS} steady-state handoff rounds"
    );
}
