//! Pending-event storage: a classic binary heap and a hierarchical
//! timer wheel, behind one [`EventQueue`] facade.
//!
//! Both backends implement the *same* total order — earliest `at` first,
//! ties broken by insertion sequence — so a consumer replays an
//! identical event stream whichever backend it runs on. The regression
//! tests in this module (and the protocol-level pins in `mcss-remicss`)
//! hold the wheel to that contract bit-for-bit.
//!
//! The queue serves two masters with the same needs: the discrete-event
//! simulator (`mcss-netsim`, which re-exports these types at their
//! historical `mcss_netsim::queue` paths) schedules frame deliveries
//! and application timers on it, and each `mcss-server` shard runs one
//! wheel as its session timer multiplexer — tens of thousands of
//! per-session sweep/source timers per shard, which is exactly the
//! many-short-horizon-timers workload wheels were invented for.
//!
//! # Why a wheel
//!
//! A binary heap pays `O(log n)` comparisons per push *and* per pop, and
//! its sift paths touch cache lines scattered across the arena. The
//! timer wheel buckets events by coarse time tick instead: a push is an
//! index computation plus a `Vec::push`, and a pop drains the next
//! occupied bucket found by a bitmask scan. For the workloads here —
//! millions of short-horizon deliveries and timers — the amortized
//! cost per event is `O(1)`.
//!
//! # Structure and invariants
//!
//! Ticks are `at >> TICK_SHIFT` (2¹² ns ≈ 4 µs per tick). The wheel
//! keeps a cursor tick `cur` and partitions pending events:
//!
//! * **staging** — a small binary min-heap ordered by `(at, seq)`
//!   holding every event whose tick is `<= cur`;
//! * **levels** — `LEVELS` rings of `SLOTS` buckets; an event whose tick
//!   differs from `cur` first in bit range `[6·l, 6·(l+1))` lives in
//!   level `l`, bucket `(tick >> 6·l) & 63`. A per-level occupancy
//!   bitmask makes "next occupied bucket" one `trailing_zeros`;
//! * **overflow** — events beyond the wheel span (≳ 3 days of simulated
//!   time), stored unordered and rebased lazily.
//!
//! The separation invariant — staging holds ticks `<= cur`, everything
//! else holds ticks `> cur` — means the staging minimum is the *global*
//! minimum, so `pop` is exact, not approximate. The simulator never
//! schedules into the past, so a push lands in staging only when its
//! tick has already been reached, which preserves the heap's tie-break
//! semantics exactly: among equal `(at)`, lower `seq` (earlier
//! insertion) pops first.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::mem;

use crate::time::SimTime;

/// Log2 of nanoseconds per wheel tick (4096 ns ≈ 4 µs).
const TICK_SHIFT: u32 = 12;
/// Log2 of buckets per level.
const SLOT_BITS: u32 = 6;
/// Buckets per level.
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Wheel levels; spans `2^(TICK_SHIFT + SLOT_BITS·LEVELS)` ns before
/// the overflow list takes over.
const LEVELS: usize = 6;

/// Which pending-event backend an [`EventQueue`] (and therefore a
/// simulator or a server shard's timer multiplexer) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// `BinaryHeap` ordered by `(at, seq)`: the reference backend.
    Heap,
    /// Hierarchical timer wheel, bit-identical to the heap (the
    /// default).
    #[default]
    Wheel,
}

/// One pending event: payload plus its scheduling key.
#[derive(Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: BinaryHeap is a max-heap, we want earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Pending-event queue with earliest-`(at, seq)`-first semantics.
///
/// Both backends produce identical pop sequences for identical push
/// sequences; see the module docs for why.
#[derive(Debug)]
pub struct EventQueue<T> {
    inner: Inner<T>,
}

#[derive(Debug)]
enum Inner<T> {
    Heap(BinaryHeap<Entry<T>>),
    Wheel(TimerWheel<T>),
}

impl<T> EventQueue<T> {
    /// Creates an empty queue on the chosen backend.
    #[must_use]
    pub fn new(kind: QueueKind) -> Self {
        let inner = match kind {
            QueueKind::Heap => Inner::Heap(BinaryHeap::new()),
            QueueKind::Wheel => Inner::Wheel(TimerWheel::new()),
        };
        EventQueue { inner }
    }

    /// The backend in use.
    #[must_use]
    pub fn kind(&self) -> QueueKind {
        match self.inner {
            Inner::Heap(_) => QueueKind::Heap,
            Inner::Wheel(_) => QueueKind::Wheel,
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(h) => h.len(),
            Inner::Wheel(w) => w.len,
        }
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `item` at `(at, seq)`. `seq` must be unique and
    /// monotonically assigned (the simulator's insertion counter).
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        let entry = Entry { at, seq, item };
        match &mut self.inner {
            Inner::Heap(h) => h.push(entry),
            Inner::Wheel(w) => w.push(entry),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let _span = mcss_obs::span!("base.queue.pop");
        let entry = match &mut self.inner {
            Inner::Heap(h) => h.pop(),
            Inner::Wheel(w) => w.pop(),
        };
        entry.map(|e| (e.at, e.seq, e.item))
    }

    /// Timestamp of the earliest event without removing it.
    ///
    /// Takes `&mut self`: the wheel may advance its cursor (moving
    /// events between internal tiers) to learn its minimum, which
    /// changes no observable ordering.
    pub fn next_at(&mut self) -> Option<SimTime> {
        match &mut self.inner {
            Inner::Heap(h) => h.peek().map(|e| e.at),
            Inner::Wheel(w) => w.next_at(),
        }
    }

    /// How long an event loop may sleep from `now` before the earliest
    /// event is due, in whole milliseconds rounded *up* — so a sleeper
    /// using this value never wakes before the deadline. `Some(0)`
    /// means an event is already due; `None` means the queue is empty
    /// (sleep indefinitely, or until some other wakeup source fires).
    pub fn millis_until_next(&mut self, now: SimTime) -> Option<u64> {
        self.next_at()
            .map(|at| at.saturating_sub(now).as_nanos().div_ceil(1_000_000))
    }
}

/// The hierarchical wheel itself. See the module docs for the layout.
#[derive(Debug)]
struct TimerWheel<T> {
    /// Cursor tick: staging holds ticks `<= cur`, wheel/overflow `> cur`.
    cur: u64,
    /// Min-heap by `(at, seq)` of all due-tick events.
    staging: BinaryHeap<Entry<T>>,
    /// `LEVELS × SLOTS` buckets.
    levels: Box<[[Vec<Entry<T>>; SLOTS]; LEVELS]>,
    /// Per-level occupancy bitmask (bit `s` set ⇔ bucket `s` non-empty).
    occ: [u64; LEVELS],
    /// Events beyond the wheel span, unordered.
    overflow: Vec<Entry<T>>,
    len: usize,
}

fn tick_of(at: SimTime) -> u64 {
    at.as_nanos() >> TICK_SHIFT
}

impl<T> TimerWheel<T> {
    fn new() -> Self {
        TimerWheel {
            cur: 0,
            staging: BinaryHeap::new(),
            levels: Box::new(std::array::from_fn(|_| std::array::from_fn(|_| Vec::new()))),
            occ: [0; LEVELS],
            overflow: Vec::new(),
            len: 0,
        }
    }

    fn push(&mut self, entry: Entry<T>) {
        self.len += 1;
        let tick = tick_of(entry.at);
        if tick <= self.cur {
            self.staging.push(entry);
        } else {
            self.place(entry, tick);
        }
    }

    /// Files a future entry (`tick > self.cur`) into its level bucket.
    fn place(&mut self, entry: Entry<T>, tick: u64) {
        debug_assert!(tick > self.cur);
        let diff = tick ^ self.cur;
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(entry);
            return;
        }
        let slot = ((tick >> (level as u32 * SLOT_BITS)) & SLOT_MASK) as usize;
        self.levels[level][slot].push(entry);
        self.occ[level] |= 1 << slot;
    }

    fn pop(&mut self) -> Option<Entry<T>> {
        if self.staging.is_empty() && !self.advance() {
            return None;
        }
        self.len -= 1;
        self.staging.pop()
    }

    fn next_at(&mut self) -> Option<SimTime> {
        if self.staging.is_empty() && !self.advance() {
            return None;
        }
        self.staging.peek().map(|e| e.at)
    }

    /// Advances the cursor to the next occupied tick and moves that
    /// bucket into staging. Returns `false` iff nothing is pending
    /// outside staging.
    fn advance(&mut self) -> bool {
        debug_assert!(self.staging.is_empty());
        loop {
            let mut cascaded = false;
            for level in 0..LEVELS {
                let slot_cur = ((self.cur >> (level as u32 * SLOT_BITS)) & SLOT_MASK) as usize;
                // Occupied buckets strictly after the cursor's bucket at
                // this level; buckets at or before it were drained when
                // the cursor entered this frame.
                let ahead = if slot_cur == SLOTS - 1 {
                    0
                } else {
                    self.occ[level] & (!0u64 << (slot_cur + 1))
                };
                if ahead == 0 {
                    continue;
                }
                let slot = ahead.trailing_zeros() as usize;
                self.occ[level] &= !(1u64 << slot);
                let mut bucket = mem::take(&mut self.levels[level][slot]);
                // Advance the cursor to the base tick of the bucket:
                // keep bits above the level, set the level's bits to
                // `slot`, zero everything below. Every entry in the
                // bucket has a tick at or past this base, and everything
                // still in the wheel is strictly past it.
                let below = (1u64 << ((level as u32 + 1) * SLOT_BITS)) - 1;
                self.cur = (self.cur & !below) | ((slot as u64) << (level as u32 * SLOT_BITS));
                for entry in bucket.drain(..) {
                    let tick = tick_of(entry.at);
                    if tick <= self.cur {
                        self.staging.push(entry);
                    } else {
                        // Re-files strictly below `level`: the entry
                        // agrees with the new cursor on this level's
                        // bits and above.
                        self.place(entry, tick);
                    }
                }
                self.levels[level][slot] = bucket; // keep the capacity
                cascaded = true;
                break;
            }
            if !self.staging.is_empty() {
                return true;
            }
            if cascaded {
                // A higher-level bucket cascaded into lower levels only;
                // rescan from level 0 to find the next occupied bucket.
                continue;
            }
            // Wheel empty: rebase onto the earliest overflow tick, if any.
            if self.overflow.is_empty() {
                return false;
            }
            let min_tick = self
                .overflow
                .iter()
                .map(|e| tick_of(e.at))
                .min()
                .expect("non-empty");
            debug_assert!(min_tick > self.cur);
            self.cur = min_tick;
            let overflow = mem::take(&mut self.overflow);
            for entry in overflow {
                let tick = tick_of(entry.at);
                if tick <= self.cur {
                    self.staging.push(entry);
                } else {
                    self.place(entry, tick);
                }
            }
            debug_assert!(!self.staging.is_empty());
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    #[test]
    fn millis_until_next_rounds_up_and_saturates() {
        for kind in [QueueKind::Heap, QueueKind::Wheel] {
            let mut q = EventQueue::new(kind);
            assert_eq!(q.millis_until_next(SimTime::ZERO), None, "{kind:?} empty");
            q.push(SimTime::from_micros(2_500), 0, ());
            // 2.5 ms away rounds up: sleeping the result never wakes early.
            assert_eq!(q.millis_until_next(SimTime::ZERO), Some(3), "{kind:?}");
            assert_eq!(
                q.millis_until_next(SimTime::from_micros(2_500)),
                Some(0),
                "{kind:?} due now"
            );
            // Past-due saturates to 0 rather than underflowing.
            assert_eq!(
                q.millis_until_next(SimTime::from_secs(1)),
                Some(0),
                "{kind:?} past due"
            );
        }
    }

    /// Exhaustively interleaves pushes and pops on both backends and
    /// demands identical pop streams — the wheel's core contract.
    fn lockstep(schedule: impl IntoIterator<Item = Option<u64>>) {
        let mut heap = EventQueue::new(QueueKind::Heap);
        let mut wheel = EventQueue::new(QueueKind::Wheel);
        let mut seq = 0u64;
        let mut now = SimTime::ZERO;
        for op in schedule {
            match op {
                Some(nanos) => {
                    // Never schedule into the past, like the simulator.
                    let at = now.max(SimTime::from_nanos(nanos));
                    heap.push(at, seq, seq);
                    wheel.push(at, seq, seq);
                    seq += 1;
                }
                None => {
                    assert_eq!(heap.next_at(), wheel.next_at());
                    let (h, w) = (heap.pop(), wheel.pop());
                    assert_eq!(h, w);
                    if let Some((at, _, _)) = h {
                        assert!(at >= now, "time must be monotone");
                        now = at;
                    }
                }
            }
            assert_eq!(heap.len(), wheel.len());
        }
        // Drain what remains.
        loop {
            let (h, w) = (heap.pop(), wheel.pop());
            assert_eq!(h, w);
            if h.is_none() {
                break;
            }
        }
    }

    #[test]
    fn empty_queue() {
        let mut q: EventQueue<u32> = EventQueue::new(QueueKind::Wheel);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.next_at(), None);
        assert_eq!(
            EventQueue::<u32>::new(QueueKind::Heap).kind(),
            QueueKind::Heap
        );
        assert_eq!(q.kind(), QueueKind::Wheel);
    }

    #[test]
    fn same_tick_orders_by_seq() {
        let mut q = EventQueue::new(QueueKind::Wheel);
        let at = SimTime::from_nanos(10_000);
        q.push(at, 1, 'b');
        q.push(at, 0, 'a');
        q.push(SimTime::from_nanos(10_001), 2, 'c'); // same tick, later at
        assert_eq!(q.pop(), Some((at, 0, 'a')));
        assert_eq!(q.pop(), Some((at, 1, 'b')));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10_001), 2, 'c')));
    }

    #[test]
    fn lockstep_dense_short_horizon() {
        // Deliveries a few µs..ms out, interleaved pops: the hot shape.
        let mut rng = StdRng::seed_from_u64(7);
        let mut ops = Vec::new();
        let mut t = 0u64;
        for _ in 0..5_000 {
            if rng.random_bool(0.6) {
                t += rng.random_range(0..50_000);
                ops.push(Some(t + rng.random_range(0..2_000_000)));
            } else {
                ops.push(None);
            }
        }
        lockstep(ops);
    }

    #[test]
    fn lockstep_cross_level_horizons() {
        // Mix of horizons spanning every wheel level and the overflow
        // list (up to ~10⁷ s), plus exact ties.
        let mut rng = StdRng::seed_from_u64(99);
        let mut ops = Vec::new();
        for i in 0..3_000u64 {
            if rng.random_bool(0.55) {
                let exp = rng.random_range(8..56);
                let nanos = rng.random_range(0..(1u64 << exp));
                ops.push(Some(nanos));
                if i % 7 == 0 {
                    ops.push(Some(nanos)); // exact tie, broken by seq
                }
            } else {
                ops.push(None);
            }
        }
        lockstep(ops);
    }

    #[test]
    fn lockstep_bursty_then_idle() {
        // Bursts at one tick followed by long idle gaps force cursor
        // jumps across empty frames and overflow rebasing.
        let mut ops = Vec::new();
        let mut t = 0u64;
        for burst in 0..50u64 {
            for j in 0..40 {
                ops.push(Some(t + j % 3));
            }
            for _ in 0..40 {
                ops.push(None);
            }
            t += 1u64 << (20 + (burst % 30)); // gaps up to ~10 minutes
        }
        lockstep(ops);
    }

    #[test]
    fn far_future_overflow_entries() {
        let mut q = EventQueue::new(QueueKind::Wheel);
        // ~4 months out: beyond the wheel span, lands in overflow.
        let far = SimTime::from_secs_f64(1e7);
        q.push(far, 0, 'z');
        q.push(SimTime::from_nanos(5), 1, 'a');
        assert_eq!(q.pop(), Some((SimTime::from_nanos(5), 1, 'a')));
        assert_eq!(q.next_at(), Some(far));
        assert_eq!(q.pop(), Some((far, 0, 'z')));
        assert!(q.is_empty());
    }
}
