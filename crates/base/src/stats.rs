//! Measurement helpers: throughput, loss, and delay meters used by the
//! benchmark harnesses (the simulator-side equivalents of what `iperf`
//! reports).

use crate::time::SimTime;

/// Measures achieved throughput over a window of simulated time.
///
/// # Examples
///
/// ```
/// use mcss_base::{SimTime, stats::ThroughputMeter};
///
/// let mut m = ThroughputMeter::new();
/// m.record(SimTime::from_millis(1), 1_000_000);
/// m.record(SimTime::from_millis(2), 1_000_000);
/// // 2 Mbit over 1 second window.
/// assert_eq!(m.rate_bps(SimTime::from_secs(1)), 2e6);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThroughputMeter {
    bits: u64,
    first: Option<SimTime>,
    last: SimTime,
}

impl ThroughputMeter {
    /// An empty meter.
    #[must_use]
    pub fn new() -> Self {
        ThroughputMeter::default()
    }

    /// Records `bits` delivered at time `at`.
    pub fn record(&mut self, at: SimTime, bits: u64) {
        self.bits += bits;
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.last = self.last.max(at);
    }

    /// Total bits recorded.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.bits
    }

    /// Time of the first and last recorded delivery.
    #[must_use]
    pub fn span(&self) -> Option<(SimTime, SimTime)> {
        self.first.map(|f| (f, self.last))
    }

    /// Throughput in bits per second over an externally supplied window
    /// (e.g. the benchmark duration), which is how `iperf` reports.
    /// A zero-length window yields 0.0 rather than a NaN/∞ rate.
    #[must_use]
    pub fn rate_bps(&self, window: SimTime) -> f64 {
        if window == SimTime::ZERO {
            return 0.0;
        }
        self.bits as f64 / window.as_secs_f64()
    }

    /// Throughput in bits per second over the *recorded* span (first to
    /// last delivery), for callers that did not track the window
    /// themselves. An empty meter, or one holding a single instant
    /// (first == last, a degenerate zero-length span), yields 0.0 —
    /// never NaN or infinity from the 0/0 division.
    #[must_use]
    pub fn span_rate_bps(&self) -> f64 {
        match self.span() {
            Some((first, last)) if last > first => self.bits as f64 / (last - first).as_secs_f64(),
            _ => 0.0,
        }
    }
}

/// Loss accounting for sequenced datagram streams, as `iperf` does for
/// UDP: loss = (highest sequence seen + 1 − received) / (highest + 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequenceLossMeter {
    received: u64,
    highest: Option<u64>,
}

impl SequenceLossMeter {
    /// An empty meter.
    #[must_use]
    pub fn new() -> Self {
        SequenceLossMeter::default()
    }

    /// Records receipt of sequence number `seq`.
    pub fn record(&mut self, seq: u64) {
        self.received += 1;
        self.highest = Some(self.highest.map_or(seq, |h| h.max(seq)));
    }

    /// Number of datagrams received.
    #[must_use]
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Datagrams presumed sent: highest sequence seen + 1.
    #[must_use]
    pub fn presumed_sent(&self) -> u64 {
        self.highest.map_or(0, |h| h + 1)
    }

    /// Estimated loss fraction.
    #[must_use]
    pub fn loss_fraction(&self) -> f64 {
        let sent = self.presumed_sent();
        if sent == 0 {
            0.0
        } else {
            1.0 - self.received as f64 / sent as f64
        }
    }
}

/// Running summary of a delay (or any duration) sample stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DelaySummary {
    count: u64,
    total: SimTime,
    min: Option<SimTime>,
    max: SimTime,
}

impl DelaySummary {
    /// An empty summary.
    #[must_use]
    pub fn new() -> Self {
        DelaySummary::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, sample: SimTime) {
        self.count += 1;
        self.total += sample;
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = self.max.max(sample);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, or `None` with no samples.
    #[must_use]
    pub fn mean(&self) -> Option<SimTime> {
        (self.count > 0).then(|| SimTime::from_nanos(self.total.as_nanos() / self.count))
    }

    /// Smallest sample.
    #[must_use]
    pub fn min(&self) -> Option<SimTime> {
        self.min
    }

    /// Largest sample, or `None` with no samples.
    #[must_use]
    pub fn max(&self) -> Option<SimTime> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_meter() {
        let mut m = ThroughputMeter::new();
        assert_eq!(m.rate_bps(SimTime::from_secs(1)), 0.0);
        assert_eq!(m.rate_bps(SimTime::ZERO), 0.0);
        m.record(SimTime::from_millis(10), 500);
        m.record(SimTime::from_millis(20), 500);
        assert_eq!(m.total_bits(), 1000);
        assert_eq!(
            m.span(),
            Some((SimTime::from_millis(10), SimTime::from_millis(20)))
        );
        assert_eq!(m.rate_bps(SimTime::from_millis(500)), 2000.0);
    }

    #[test]
    fn span_rate_empty_meter_is_zero() {
        let m = ThroughputMeter::new();
        assert_eq!(m.span_rate_bps(), 0.0);
    }

    #[test]
    fn span_rate_single_instant_is_zero_not_nan() {
        // All deliveries at one instant: the recorded span is zero-length
        // and the rate must be 0.0, not NaN or infinity.
        let mut m = ThroughputMeter::new();
        m.record(SimTime::from_millis(5), 1_000);
        m.record(SimTime::from_millis(5), 1_000);
        assert_eq!(
            m.span(),
            Some((SimTime::from_millis(5), SimTime::from_millis(5)))
        );
        let rate = m.span_rate_bps();
        assert!(rate.is_finite());
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn span_rate_over_recorded_span() {
        let mut m = ThroughputMeter::new();
        m.record(SimTime::from_millis(0), 500);
        m.record(SimTime::from_millis(500), 500);
        // 1000 bits over 0.5 s.
        assert_eq!(m.span_rate_bps(), 2000.0);
    }

    #[test]
    fn sequence_loss_meter() {
        let mut m = SequenceLossMeter::new();
        assert_eq!(m.loss_fraction(), 0.0);
        m.record(0);
        m.record(1);
        m.record(3); // 2 missing
        assert_eq!(m.received(), 3);
        assert_eq!(m.presumed_sent(), 4);
        assert!((m.loss_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sequence_loss_out_of_order() {
        let mut m = SequenceLossMeter::new();
        m.record(5);
        m.record(0);
        assert_eq!(m.presumed_sent(), 6);
        assert!((m.loss_fraction() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn delay_summary() {
        let mut s = DelaySummary::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        s.record(SimTime::from_millis(2));
        s.record(SimTime::from_millis(4));
        s.record(SimTime::from_millis(9));
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(SimTime::from_millis(5)));
        assert_eq!(s.min(), Some(SimTime::from_millis(2)));
        assert_eq!(s.max(), Some(SimTime::from_millis(9)));
    }
}
