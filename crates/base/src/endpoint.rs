//! The two hosts of a point-to-point multichannel bundle.
//!
//! The paper's testbed — and everything modeled on it — is exactly two
//! hosts joined by `n` dedicated channels. Protocol state machines and
//! drivers tag every frame and every send with the endpoint it belongs
//! to; the type lives here so the sans-I/O engine can use it without
//! pulling in the simulator.

/// One of the two hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The first host (the paper's sender in all experiments).
    A,
    /// The second host.
    B,
}

impl Endpoint {
    /// The other endpoint.
    #[must_use]
    pub const fn peer(self) -> Endpoint {
        match self {
            Endpoint::A => Endpoint::B,
            Endpoint::B => Endpoint::A,
        }
    }
}

impl core::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Endpoint::A => write!(f, "A"),
            Endpoint::B => write!(f, "B"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_is_involutive() {
        assert_eq!(Endpoint::A.peer(), Endpoint::B);
        assert_eq!(Endpoint::B.peer(), Endpoint::A);
        assert_eq!(Endpoint::A.peer().peer(), Endpoint::A);
    }

    #[test]
    fn display() {
        assert_eq!(Endpoint::A.to_string(), "A");
        assert_eq!(Endpoint::B.to_string(), "B");
    }
}
