//! Simulated time as integer nanoseconds.

/// A point in simulated time (also used for durations), in nanoseconds.
///
/// Integer time keeps the event heap total-ordered and the simulation
/// bit-for-bit reproducible; `f64` seconds are converted at the edges.
///
/// # Examples
///
/// ```
/// use mcss_base::SimTime;
///
/// let t = SimTime::from_millis(2) + SimTime::from_micros(500);
/// assert_eq!(t.as_nanos(), 2_500_000);
/// assert!((t.as_secs_f64() - 0.0025).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Constructs from fractional seconds, rounding to the nearest
    /// nanosecond and saturating at the representable range.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0, "simulated time cannot be negative");
        let ns = (secs * 1e9).round();
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// The value in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The value in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl core::ops::Add for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics on overflow in debug builds.
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics on underflow in debug builds.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl core::ops::SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl core::ops::Mul<u64> for SimTime {
    type Output = SimTime;

    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_consistent() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn float_round_trip() {
        let t = SimTime::from_secs_f64(1.2345);
        assert!((t.as_secs_f64() - 1.2345).abs() < 1e-9);
        assert_eq!(SimTime::from_secs_f64(0.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(4);
        assert_eq!(a + b, SimTime::from_nanos(14));
        assert_eq!(a - b, SimTime::from_nanos(6));
        assert_eq!(b * 3, SimTime::from_nanos(12));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(a), SimTime::MAX);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000000s");
    }
}
