//! Reusable byte-buffer pooling for the zero-allocation data path.
//!
//! A steady-state protocol session moves a bounded working set of
//! buffers: frames in flight, shares pending reassembly, scratch for
//! split/reconstruct. [`BufferPool`] keeps that working set alive so
//! the hot loop recycles capacity instead of asking the allocator —
//! after warmup, `take`/`put` and `acquire`/`release` cycles perform no
//! heap allocation at all (the counting-allocator test in
//! `mcss-remicss` pins this).
//!
//! Two usage shapes:
//!
//! * **Detached** buffers ([`take`](BufferPool::take) /
//!   [`put`](BufferPool::put)) leave the pool entirely — e.g. a frame
//!   payload that travels through the simulator by value and is
//!   returned at the receiver.
//! * **Checked-out** buffers ([`acquire`](BufferPool::acquire) /
//!   [`release`](BufferPool::release)) stay inside the pool and are
//!   addressed through a generation-checked [`BufHandle`] — e.g. share
//!   data parked in a reassembly table. The generation stamp turns
//!   use-after-release into a deterministic panic instead of silent
//!   corruption, which is what makes handle recycling safe to reason
//!   about.
//!
//! # Examples
//!
//! ```
//! use mcss_base::BufferPool;
//!
//! let mut pool = BufferPool::new();
//! let mut buf = pool.take();
//! buf.extend_from_slice(b"payload");
//! pool.put(buf);
//! assert_eq!(pool.take().capacity() >= 7, true); // capacity recycled
//!
//! let h = pool.acquire();
//! pool.get_mut(h).extend_from_slice(b"share");
//! assert_eq!(pool.get(h), b"share");
//! pool.release(h);
//! ```

/// A generation-stamped reference to a buffer checked out of a
/// [`BufferPool`] slot.
///
/// Handles are plain `Copy` data; the pool validates the generation on
/// every access, so a handle kept past its
/// [`release`](BufferPool::release) panics instead of aliasing a
/// recycled buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufHandle {
    index: u32,
    generation: u32,
}

#[derive(Debug, Default)]
struct Slot {
    generation: u32,
    live: bool,
    buf: Vec<u8>,
}

/// A pool of `Vec<u8>` buffers that retain their capacity across
/// reuse. See the [module docs](self) for the two usage shapes.
#[derive(Debug, Default)]
pub struct BufferPool {
    /// Free detached buffers.
    free: Vec<Vec<u8>>,
    /// Slot storage for checked-out buffers.
    slots: Vec<Slot>,
    /// Indices of released slots available for re-acquisition.
    free_slots: Vec<u32>,
    /// Buffers created fresh because the pool was dry.
    misses: u64,
    /// Buffers served from the free lists.
    hits: u64,
    /// Times a returned buffer raised the largest capacity seen.
    grows: u64,
    /// Largest buffer capacity that has passed through the pool.
    max_capacity: usize,
}

impl BufferPool {
    /// Creates an empty pool; buffers are created on demand and
    /// retained forever after.
    #[must_use]
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Takes a cleared detached buffer out of the pool (allocating one
    /// only if the pool is dry).
    pub fn take(&mut self) -> Vec<u8> {
        if let Some(buf) = self.free.pop() {
            self.hits += 1;
            debug_assert!(buf.is_empty());
            buf
        } else {
            self.misses += 1;
            Vec::new()
        }
    }

    /// Returns a detached buffer to the pool, retaining its capacity.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        self.note_capacity(buf.capacity());
        self.free.push(buf);
    }

    /// Tracks capacity escalation: each time a returned buffer exceeds
    /// every capacity seen before, the pool's working set grew.
    fn note_capacity(&mut self, capacity: usize) {
        if capacity > self.max_capacity {
            self.max_capacity = capacity;
            self.grows += 1;
        }
    }

    /// Checks out an empty in-pool buffer and returns its handle.
    pub fn acquire(&mut self) -> BufHandle {
        if let Some(index) = self.free_slots.pop() {
            self.hits += 1;
            let slot = &mut self.slots[index as usize];
            debug_assert!(!slot.live && slot.buf.is_empty());
            slot.live = true;
            BufHandle {
                index,
                generation: slot.generation,
            }
        } else {
            self.misses += 1;
            let index = u32::try_from(self.slots.len()).expect("pool slot count fits u32");
            self.slots.push(Slot {
                generation: 0,
                live: true,
                buf: Vec::new(),
            });
            BufHandle {
                index,
                generation: 0,
            }
        }
    }

    fn slot(&self, handle: BufHandle) -> &Slot {
        let slot = &self.slots[handle.index as usize];
        assert!(
            slot.live && slot.generation == handle.generation,
            "stale buffer handle: slot {} generation {} vs live generation {}",
            handle.index,
            handle.generation,
            slot.generation,
        );
        slot
    }

    /// The buffer behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` was released (stale generation).
    #[must_use]
    pub fn get(&self, handle: BufHandle) -> &[u8] {
        &self.slot(handle).buf
    }

    /// Mutable access to the buffer behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` was released (stale generation).
    pub fn get_mut(&mut self, handle: BufHandle) -> &mut Vec<u8> {
        self.slot(handle); // generation check
        &mut self.slots[handle.index as usize].buf
    }

    /// Releases a checked-out buffer back to its slot, invalidating
    /// every copy of `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` was already released (stale generation).
    pub fn release(&mut self, handle: BufHandle) {
        self.slot(handle); // generation check
        let slot = &mut self.slots[handle.index as usize];
        slot.live = false;
        slot.generation = slot.generation.wrapping_add(1);
        slot.buf.clear();
        let capacity = slot.buf.capacity();
        self.note_capacity(capacity);
        self.free_slots.push(handle.index);
    }

    /// Buffers created fresh because no pooled buffer was available.
    /// Flat after warmup ⇔ the data path is allocation-free.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Buffers served from the pool without allocating.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Detached buffers currently parked in the pool.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Times a returned buffer raised the largest capacity the pool had
    /// seen. Flat after warmup ⇔ the working set stopped growing.
    #[must_use]
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// The largest buffer capacity that has passed through the pool.
    #[must_use]
    pub fn max_capacity(&self) -> usize {
        self.max_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_round_trip_retains_capacity() {
        let mut pool = BufferPool::new();
        let mut a = pool.take();
        assert_eq!(pool.misses(), 1);
        a.extend_from_slice(&[0u8; 1500]);
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take();
        assert_eq!(pool.hits(), 1);
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn handles_round_trip() {
        let mut pool = BufferPool::new();
        let h1 = pool.acquire();
        let h2 = pool.acquire();
        assert_ne!(h1, h2);
        pool.get_mut(h1).push(1);
        pool.get_mut(h2).push(2);
        assert_eq!(pool.get(h1), &[1]);
        assert_eq!(pool.get(h2), &[2]);
        pool.release(h1);
        let h3 = pool.acquire(); // recycles h1's slot, new generation
        assert_eq!(pool.get(h3), &[] as &[u8]);
        assert_eq!(pool.get(h2), &[2]);
    }

    #[test]
    #[should_panic(expected = "stale buffer handle")]
    fn stale_handle_read_panics() {
        let mut pool = BufferPool::new();
        let h = pool.acquire();
        pool.release(h);
        let _ = pool.get(h);
    }

    #[test]
    #[should_panic(expected = "stale buffer handle")]
    fn double_release_panics() {
        let mut pool = BufferPool::new();
        let h = pool.acquire();
        pool.release(h);
        pool.release(h);
    }

    #[test]
    #[should_panic(expected = "stale buffer handle")]
    fn recycled_slot_rejects_old_handle() {
        let mut pool = BufferPool::new();
        let old = pool.acquire();
        pool.release(old);
        let _new = pool.acquire(); // same slot, bumped generation
        let _ = pool.get(old);
    }

    #[test]
    fn steady_state_is_miss_free() {
        let mut pool = BufferPool::new();
        for _ in 0..4 {
            let b = pool.take();
            pool.put(b);
            let h = pool.acquire();
            pool.release(h);
        }
        assert_eq!(pool.misses(), 2); // one detached, one slot
        assert_eq!(pool.hits(), 6);
    }

    #[test]
    fn grows_flat_once_working_set_stabilizes() {
        let mut pool = BufferPool::new();
        // Warmup: capacity climbs to 4096.
        for size in [64usize, 512, 4096] {
            let mut b = pool.take();
            b.resize(size, 0);
            pool.put(b);
        }
        assert_eq!(pool.grows(), 3);
        assert!(pool.max_capacity() >= 4096);
        // Steady state at or below the high-water mark: no new grows.
        for _ in 0..16 {
            let mut b = pool.take();
            b.resize(1500, 0);
            pool.put(b);
        }
        assert_eq!(pool.grows(), 3);
    }
}
