//! Runtime primitives shared by every layer of the workspace that is
//! *not* allowed to depend on the discrete-event simulator: the
//! sans-I/O protocol engine (`mcss-remicss`'s `engine` module), the
//! real-socket drivers, and the simulator itself.
//!
//! Everything here is pure data and arithmetic — no I/O, no clocks, no
//! randomness — which is exactly what lets the protocol core run
//! unchanged under simulated time and under a monotonic wall clock:
//!
//! * [`SimTime`] — nanosecond timestamps/durations. Despite the name
//!   (kept from its simulator origin), nothing about it is
//!   simulation-specific; drivers map any monotonic nanosecond count
//!   onto it.
//! * [`Endpoint`] — which of the two hosts of a point-to-point
//!   multichannel bundle is acting.
//! * [`BufferPool`] / [`BufHandle`] — capacity-recycling byte buffers,
//!   the backbone of the zero-allocation data path.
//! * [`Pacer`] — drift-free constant-rate tick scheduling.
//! * [`queue`] — pending-event storage: a reference binary heap and a
//!   bit-identical hierarchical timer wheel, shared by the simulator's
//!   event loop and each server shard's session timer multiplexer.
//! * [`stats`] — throughput, sequence-loss, and delay meters.
//!
//! `mcss-netsim` re-exports all of these under their historical paths
//! (`mcss_netsim::SimTime`, `mcss_netsim::pool`, …), so simulator-side
//! code keeps compiling unchanged.

pub mod endpoint;
mod pace;
pub mod pool;
pub mod queue;
pub mod stats;
mod time;

pub use endpoint::Endpoint;
pub use pace::Pacer;
pub use pool::{BufHandle, BufferPool};
pub use queue::{EventQueue, QueueKind};
pub use time::SimTime;
