//! Drift-free constant-rate scheduling, the sending discipline of
//! `iperf`'s UDP mode. Pure arithmetic over [`SimTime`]: the pacer
//! never reads a clock, it only emits the ideal tick times, so it works
//! identically under simulated and wall-clock drivers.

use crate::time::SimTime;

/// Drift-free constant-rate scheduler: emits tick times separated by a
/// fixed fractional-nanosecond period.
///
/// # Examples
///
/// ```
/// use mcss_base::Pacer;
///
/// // 1000-bit frames at 1 Mbit/s: one per millisecond.
/// let mut p = Pacer::new(1e6, 1000);
/// assert_eq!(p.next_tick().as_nanos(), 0);
/// assert_eq!(p.next_tick().as_nanos(), 1_000_000);
/// assert_eq!(p.next_tick().as_nanos(), 2_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct Pacer {
    period_ns: f64,
    next_ns: f64,
}

impl Pacer {
    /// A pacer emitting `frame_bits`-sized frames at `rate_bps`.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive and finite.
    #[must_use]
    pub fn new(rate_bps: f64, frame_bits: u64) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "rate must be positive"
        );
        assert!(frame_bits > 0, "frame size must be positive");
        Pacer {
            period_ns: frame_bits as f64 * 1e9 / rate_bps,
            next_ns: 0.0,
        }
    }

    /// Like [`new`](Pacer::new), but the first tick lands at `phase`
    /// instead of zero. Staggering the phase across a fleet of
    /// constant-rate sources de-phase-locks them: without it every
    /// source ticks at the same absolute instants and the aggregate
    /// arrives as synchronized bursts (which overflow receive buffers
    /// long before the mean rate saturates anything).
    ///
    /// # Panics
    ///
    /// As [`new`](Pacer::new).
    #[must_use]
    pub fn with_phase(rate_bps: f64, frame_bits: u64, phase: SimTime) -> Self {
        let mut pacer = Pacer::new(rate_bps, frame_bits);
        pacer.next_ns = phase.as_nanos() as f64;
        pacer
    }

    /// The inter-frame period.
    #[must_use]
    pub fn period(&self) -> SimTime {
        SimTime::from_nanos(self.period_ns.round() as u64)
    }

    /// The next tick time; each call advances the schedule by one period
    /// without accumulating rounding drift.
    pub fn next_tick(&mut self) -> SimTime {
        let t = SimTime::from_nanos(self.next_ns.round() as u64);
        self.next_ns += self.period_ns;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacer_has_no_drift() {
        // Period 333.333… ns; after 3 million ticks we should be at 1 s.
        let mut p = Pacer::new(3e9, 1000);
        let mut last = SimTime::ZERO;
        for _ in 0..3_000_000 {
            last = p.next_tick();
        }
        let expect = SimTime::from_secs_f64(2_999_999.0 / 3_000_000.0);
        assert!(
            last.saturating_sub(expect).max(expect.saturating_sub(last)) < SimTime::from_nanos(10),
            "pacer drifted: {last} vs {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = Pacer::new(0.0, 1000);
    }
}
