//! Pins the timer-wheel event engine against the binary heap at the
//! protocol level: the figures the paper reproduces are made of
//! [`SessionReport`] numbers, so a full session replayed under both
//! queue engines must produce **bit-identical** reports — every `f64`
//! compared via `to_bits`, not approximately.
//!
//! This holds because the wheel preserves the heap's exact `(time, seq)`
//! pop order (see `mcss_netsim::queue`), so the two runs consume the
//! same RNG stream and visit the same states.

#![cfg(feature = "sim")]

use std::sync::Arc;

use mcss_core::setups;
use mcss_netsim::{QueueKind, SimTime, Simulator};
use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::session::{Session, SessionReport, Workload};
use mcss_remicss::testbed;

fn run_with(
    channels: &mcss_core::ChannelSet,
    config: &Arc<ProtocolConfig>,
    workload: Workload,
    seed: u64,
    kind: QueueKind,
) -> (SessionReport, u64) {
    let window = workload.duration();
    let net = testbed::network_for(channels, config);
    let session = Session::new(Arc::clone(config), channels.len(), workload).unwrap();
    let mut sim = Simulator::with_queue_kind(net, session, seed, kind);
    sim.run_until(window + SimTime::from_secs(1));
    let events = sim.events_processed();
    (sim.app().report(window), events)
}

fn assert_bit_identical(heap: &SessionReport, wheel: &SessionReport) {
    // Integer and Option<SimTime> fields: plain equality is exact.
    assert_eq!(heap, wheel, "reports differ between queue engines");
    // f64 fields again, at the bit level (== would accept -0.0 vs 0.0).
    for (label, h, w) in [
        (
            "achieved_payload_bps",
            heap.achieved_payload_bps,
            wheel.achieved_payload_bps,
        ),
        (
            "achieved_symbol_rate",
            heap.achieved_symbol_rate,
            wheel.achieved_symbol_rate,
        ),
        ("loss_fraction", heap.loss_fraction, wheel.loss_fraction),
        ("mean_k", heap.mean_k, wheel.mean_k),
        ("mean_m", heap.mean_m, wheel.mean_m),
    ] {
        assert_eq!(h.to_bits(), w.to_bits(), "{label} not bit-identical");
    }
    match (heap.adaptive_final_mu, wheel.adaptive_final_mu) {
        (Some(h), Some(w)) => assert_eq!(h.to_bits(), w.to_bits(), "adaptive mu"),
        (h, w) => assert_eq!(h, w),
    }
}

#[test]
fn wheel_session_reports_match_heap_bit_for_bit() {
    // Lossy channels at a mildly oversubscribed rate: loss, eviction,
    // and queue-drop paths all exercised.
    let channels = setups::lossy();
    let config = Arc::new(ProtocolConfig::new(2.0, 3.5).unwrap());
    let w = Workload::cbr(2_000.0, SimTime::from_millis(400));
    let (heap, heap_events) = run_with(&channels, &config, w, 0xF1C, QueueKind::Heap);
    let (wheel, wheel_events) = run_with(&channels, &config, w, 0xF1C, QueueKind::Wheel);
    assert!(heap.sent_symbols > 300, "workload should be non-trivial");
    assert!(heap.loss_fraction > 0.0, "lossy setup should lose symbols");
    assert_eq!(heap_events, wheel_events, "event counts diverged");
    assert_bit_identical(&heap, &wheel);
}

#[test]
fn wheel_echo_session_matches_heap_bit_for_bit() {
    // Echo doubles the data path (B re-splits every completed symbol)
    // and exercises the delayed setup's cross-level timer horizons.
    let channels = setups::delayed();
    let config = Arc::new(ProtocolConfig::new(2.0, 3.0).unwrap());
    let offered = 0.3 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
    let w = Workload::echo(offered, SimTime::from_millis(400));
    let (heap, heap_events) = run_with(&channels, &config, w, 0xEC40, QueueKind::Heap);
    let (wheel, wheel_events) = run_with(&channels, &config, w, 0xEC40, QueueKind::Wheel);
    assert!(heap.mean_rtt.is_some(), "echo should record RTTs");
    assert_eq!(heap_events, wheel_events, "event counts diverged");
    assert_bit_identical(&heap, &wheel);
}

#[test]
fn wheel_adaptive_session_matches_heap_bit_for_bit() {
    // The adaptive controller's feedback loop makes event order feed
    // back into future scheduling decisions — the most order-sensitive
    // configuration the protocol has.
    let channels = setups::lossy();
    let config = Arc::new(ProtocolConfig::new(1.5, 3.0).unwrap().with_adaptive(0.02));
    let w = Workload::cbr(1_500.0, SimTime::from_millis(600));
    let (heap, heap_events) = run_with(&channels, &config, w, 7, QueueKind::Heap);
    let (wheel, wheel_events) = run_with(&channels, &config, w, 7, QueueKind::Wheel);
    assert!(heap.adaptive_adjustments > 0, "controller should adjust");
    assert_eq!(heap_events, wheel_events, "event counts diverged");
    assert_bit_identical(&heap, &wheel);
}
