//! Serial event-trace equality: the sans-I/O [`Engine`], replayed from
//! a recorded simulator event log with a fresh same-seeded RNG, must
//! reproduce the simulator session's exact action stream and final
//! report. This pins the engine extraction to the pre-refactor
//! behaviour bit-for-bit.
//!
//! The recorded runs use loss-free, jitter-free networks, where the
//! simulator's links draw no randomness at all — so the session RNG's
//! entire stream belongs to the engine (scheduler draws and Shamir
//! coefficients) and a standalone replay consumes it identically.

#![cfg(feature = "sim")]

use std::sync::Arc;

use mcss_netsim::{SimTime, Simulator};
use mcss_remicss::actions::{Action, Event};
use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::engine::{Engine, SourceMode};
use mcss_remicss::session::{Session, TraceEvent, TraceStep};
use mcss_remicss::{testbed, SessionReport, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_sim(
    channels: &mcss_core::ChannelSet,
    config: &Arc<ProtocolConfig>,
    workload: Workload,
    seed: u64,
    trace: bool,
) -> (SessionReport, Vec<TraceStep>) {
    let window = workload.duration();
    let net = testbed::network_for(channels, config);
    let mut session = Session::new(Arc::clone(config), channels.len(), workload).unwrap();
    if trace {
        session.record_trace();
    }
    let mut sim = Simulator::new(net, session, seed);
    sim.run_until(window + SimTime::from_secs(2));
    let report = sim.app().report(window);
    (report, sim.app_mut().take_trace())
}

/// Replays the recorded event log into a fresh engine with a fresh
/// same-seeded RNG, asserting the action stream matches step for step.
fn replay(
    config: &Arc<ProtocolConfig>,
    n: usize,
    workload: Workload,
    seed: u64,
    trace: &[TraceStep],
) -> SessionReport {
    let mut engine = Engine::new(Arc::clone(config), n, SourceMode::Paced(workload)).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pending: Vec<Action> = Vec::new();
    for (step_no, step) in trace.iter().enumerate() {
        match step {
            TraceStep::Event { now, event } => {
                assert!(
                    pending.is_empty(),
                    "recorded run drained {} more action(s) before step {step_no}: {pending:?}",
                    pending.len()
                );
                match event {
                    TraceEvent::Started => engine.handle(*now, Event::Started, &mut rng),
                    TraceEvent::Timer { token } => {
                        engine.handle(*now, Event::TimerFired { token: *token }, &mut rng);
                    }
                    TraceEvent::Backlogs { from, backlogs } => {
                        for (channel, &backlog) in backlogs.iter().enumerate() {
                            engine.handle(
                                *now,
                                Event::ChannelWritable {
                                    channel,
                                    from: *from,
                                    backlog,
                                },
                                &mut rng,
                            );
                        }
                    }
                    TraceEvent::Frame { channel, to, bytes } => {
                        engine
                            .handle_frame(*now, *channel, *to, bytes, &mut rng)
                            .expect("recorded frames decode");
                        engine.recycle(bytes.clone());
                    }
                }
                while let Some(action) = engine.poll_action() {
                    pending.push(action);
                }
                pending.reverse(); // pop from the front via pop()
            }
            TraceStep::Action(expected) => {
                let got = pending.pop().unwrap_or_else(|| {
                    panic!("replay produced no action at step {step_no}, expected {expected:?}")
                });
                assert_eq!(&got, expected, "action mismatch at step {step_no}");
                // Mirror the recorded driver's outcome reporting. The
                // recorded runs are drop-free (asserted by the caller),
                // so every share send succeeded.
                match got {
                    Action::SendShare { channel, frame, .. } => {
                        engine.share_send_ok(channel);
                        engine.recycle(frame);
                    }
                    Action::SendControl { frame, .. } => engine.recycle(frame),
                    Action::SetTimer { .. } => {}
                    Action::DeliverSymbol { .. } => {
                        unreachable!("paced engines deliver internally")
                    }
                }
            }
        }
    }
    assert!(
        pending.is_empty(),
        "replay left trailing actions: {pending:?}"
    );
    engine.report(workload.duration())
}

fn assert_trace_replays(
    channels: &mcss_core::ChannelSet,
    config: Arc<ProtocolConfig>,
    workload: Workload,
    seed: u64,
) {
    let (untraced, _) = run_sim(channels, &config, workload, seed, false);
    let (recorded, trace) = run_sim(channels, &config, workload, seed, true);
    // Recording must not perturb the session.
    assert_eq!(untraced, recorded, "trace recording perturbed the run");
    // The replay semantics below assume every send was accepted.
    assert_eq!(recorded.send_queue_drops, 0, "pin runs must be drop-free");
    assert!(
        recorded.sent_symbols > 50,
        "pin run too short to be meaningful"
    );
    assert!(
        trace
            .iter()
            .any(|s| matches!(s, TraceStep::Action(Action::SendShare { .. }))),
        "trace recorded no transmissions"
    );
    let replayed = replay(&config, channels.len(), workload, seed, &trace);
    assert_eq!(replayed, recorded, "replayed report diverged");
}

#[test]
fn cbr_trace_replays_bit_identically() {
    let channels = mcss_core::setups::diverse();
    let config = Arc::new(ProtocolConfig::new(2.0, 3.0).unwrap());
    let offered = 0.5 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
    let workload = Workload::cbr(offered, SimTime::from_millis(300));
    assert_trace_replays(&channels, config, workload, 42);
}

#[test]
fn echo_trace_replays_bit_identically() {
    let channels = mcss_core::setups::diverse();
    let config = Arc::new(ProtocolConfig::new(2.0, 3.0).unwrap());
    let offered = 0.3 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
    let workload = Workload::echo(offered, SimTime::from_millis(300));
    assert_trace_replays(&channels, config, workload, 7);
}

#[test]
fn adaptive_feedback_trace_replays_bit_identically() {
    // Exercises the control-frame path: feedback epochs, dedup at A,
    // and the adaptive controller's mu rewrites.
    let channels = mcss_core::setups::diverse();
    let config = Arc::new(ProtocolConfig::new(2.0, 3.0).unwrap().with_adaptive(0.01));
    let offered = 0.5 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
    let workload = Workload::cbr(offered, SimTime::from_millis(300));
    assert_trace_replays(&channels, config, workload, 9);
}
