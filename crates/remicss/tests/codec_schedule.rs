//! Cross-codec schedule equivalence: which channels carry how many
//! shares is the *scheduler's* decision, and swapping the share codec
//! must not change it. With a deterministic scheduler (a singleton
//! static schedule, or round-robin with integer `(κ, μ)`), the same
//! offered symbol stream must produce identical per-channel share
//! counts under Shamir and XOR — the codecs differ in share bytes and
//! RNG consumption, never in placement.
//!
//! Also drives the XOR codec through a lossy loopback: with `k < m`
//! and one channel silently dropping every share, each symbol still
//! reassembles from the surviving `k`-subset.

#![cfg(feature = "sim")]

use std::sync::Arc;

use mcss_base::{Endpoint, SimTime as T};
use mcss_codec::CodecId;
use mcss_core::{ShareSchedule, Subset};
use mcss_remicss::actions::{Action, Event};
use mcss_remicss::config::{ProtocolConfig, SchedulerKind};
use mcss_remicss::engine::{Engine, SourceMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs an external-source engine over a loopback for `symbols`
/// offered symbols, returning (per-channel share counts, delivered
/// symbol count). `drop_channel` swallows that channel's shares
/// without delivering them, like a dead link.
fn run_loopback(
    config: ProtocolConfig,
    n: usize,
    symbols: usize,
    seed: u64,
    drop_channel: Option<usize>,
) -> (Vec<u64>, u64) {
    let config = Arc::new(config.with_reassembly_timeout(T::from_millis(20)));
    let mut engine = Engine::new(Arc::clone(&config), n, SourceMode::External).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = T::ZERO;
    let mut timers: Vec<(T, u64)> = Vec::new();
    let mut sends = vec![0u64; n];
    let payload = vec![0x77u8; 256];

    engine.handle(now, Event::Started, &mut rng);
    let pump = |engine: &mut Engine,
                now: T,
                timers: &mut Vec<(T, u64)>,
                sends: &mut Vec<u64>,
                rng: &mut StdRng| {
        while let Some(action) = engine.poll_action() {
            match action {
                Action::SendShare { channel, frame, .. } => {
                    sends[channel] += 1;
                    engine.share_send_ok(channel);
                    if drop_channel != Some(channel) {
                        engine
                            .handle_frame(now, channel, Endpoint::B, &frame, rng)
                            .expect("loopback frames decode");
                    }
                    engine.recycle(frame);
                }
                Action::SendControl { frame, .. } => engine.recycle(frame),
                Action::SetTimer { token, at } => timers.push((at, token)),
                Action::DeliverSymbol { payload, .. } => engine.recycle(payload),
            }
        }
    };

    for _ in 0..symbols {
        now += T::from_micros(200);
        while let Some(idx) = timers.iter().position(|&(at, _)| at <= now) {
            let (_, token) = timers.swap_remove(idx);
            engine.handle(now, Event::TimerFired { token }, &mut rng);
            pump(&mut engine, now, &mut timers, &mut sends, &mut rng);
        }
        engine.handle(now, Event::SymbolReady { payload: &payload }, &mut rng);
        pump(&mut engine, now, &mut timers, &mut sends, &mut rng);
    }
    let report = engine.report(now);
    (sends, report.delivered_symbols)
}

fn config_with(codec: CodecId, scheduler: SchedulerKind) -> ProtocolConfig {
    ProtocolConfig::new(2.0, 3.0)
        .unwrap()
        .with_symbol_bytes(256)
        .with_scheduler(scheduler)
        .with_codec(codec)
}

#[test]
fn static_singleton_schedule_places_shares_identically_across_codecs() {
    let schedule =
        Arc::new(ShareSchedule::singleton(5, 2, Subset::from_indices(&[0, 2, 4])).unwrap());
    let mut runs = Vec::new();
    for codec in CodecId::ALL {
        let config = config_with(codec, SchedulerKind::Static(Arc::clone(&schedule)));
        let (sends, delivered) = run_loopback(config, 5, 400, 11, None);
        assert_eq!(delivered, 400, "{codec}: loopback lost symbols");
        // The singleton schedule names channels {0, 2, 4} only.
        assert_eq!(sends[1], 0, "{codec}: share on unscheduled channel 1");
        assert_eq!(sends[3], 0, "{codec}: share on unscheduled channel 3");
        assert_eq!(sends[0], 400, "{codec}: channel 0 share count");
        runs.push((codec, sends));
    }
    let (_, ref want) = runs[0];
    for (codec, sends) in &runs[1..] {
        assert_eq!(
            sends, want,
            "{codec}: per-channel share counts diverged from {}",
            runs[0].0
        );
    }
}

#[test]
fn round_robin_schedule_places_shares_identically_across_codecs() {
    // Integer (κ, μ) = (2, 3) makes every draw exactly (2, 3), so the
    // rotation is deterministic no matter how much randomness each
    // codec consumed in between.
    let mut runs = Vec::new();
    for codec in CodecId::ALL {
        let config = config_with(codec, SchedulerKind::RoundRobin);
        let (sends, delivered) = run_loopback(config, 5, 400, 23, None);
        assert_eq!(delivered, 400, "{codec}: loopback lost symbols");
        assert_eq!(sends.iter().sum::<u64>(), 1_200, "{codec}: 3 shares/symbol");
        runs.push((codec, sends));
    }
    let (_, ref want) = runs[0];
    for (codec, sends) in &runs[1..] {
        assert_eq!(
            sends, want,
            "{codec}: per-channel share counts diverged from {}",
            runs[0].0
        );
    }
}

#[test]
fn xor_codec_survives_a_dead_channel_at_threshold() {
    // k = 2 of m = 3 on channels {0, 1, 2}; channel 1 drops every
    // share. The surviving 2-subset covers every XOR piece (any
    // k-subset does, by the staggered placement), so nothing is lost.
    let schedule =
        Arc::new(ShareSchedule::singleton(3, 2, Subset::from_indices(&[0, 1, 2])).unwrap());
    let config = config_with(CodecId::Xor2d, SchedulerKind::Static(schedule));
    let (sends, delivered) = run_loopback(config, 3, 300, 5, Some(1));
    assert_eq!(sends, vec![300, 300, 300]);
    assert_eq!(
        delivered, 300,
        "xor: symbols lost despite a covering subset"
    );
}
