//! Property tests for the reassembly table: arbitrary interleavings,
//! duplications, and losses of shares must preserve its invariants.

#![cfg(feature = "sim")]

use mcss_netsim::SimTime;
use mcss_remicss::reassembly::{Accept, ReassemblyTable};
use mcss_remicss::wire::ShareFrame;
use mcss_shamir::{split, Params};
use proptest::prelude::*;
use rand::SeedableRng;

/// A scripted delivery: (symbol index, share index, repeat?).
type Script = (Vec<(u8, u8, u8)>, Vec<(u8, u8)>);

fn arbitrary_script() -> impl Strategy<Value = Script> {
    // Symbols use k = 2, m = 4, so any two distinct shares complete.
    let deliveries = proptest::collection::vec((0u8..6, 0u8..4, 1u8..3), 1..60);
    let params = proptest::collection::vec((2u8..=4, 0u8..=2), 6);
    (deliveries, params)
}

proptest! {
    /// Whatever order shares arrive in, each symbol completes exactly
    /// once, duplicates are flagged, and byte accounting never goes
    /// negative or leaks.
    #[test]
    fn interleaved_delivery_invariants(
        (script, _params) in arbitrary_script(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let k = 2u8;
        let m = 4u8;
        let symbols: Vec<Vec<ShareFrame>> = (0..6u64)
            .map(|seq| {
                let payload = vec![seq as u8; 32];
                split(&payload, Params::new(k, m).unwrap(), &mut rng)
                    .unwrap()
                    .iter()
                    .map(|s| {
                        ShareFrame::new(seq, k, m, s.x(), 0, s.data().to_vec()).unwrap()
                    })
                    .collect()
            })
            .collect();
        let mut table = ReassemblyTable::new(SimTime::from_secs(1), 1 << 20);
        let mut completed = [false; 6];
        for (si, xi, repeats) in script {
            let frame = &symbols[si as usize][xi as usize];
            for _ in 0..repeats {
                match table.accept(frame, SimTime::ZERO) {
                    Accept::Completed(payload) => {
                        prop_assert!(!completed[si as usize], "double completion");
                        completed[si as usize] = true;
                        prop_assert_eq!(payload, vec![si; 32]);
                    }
                    Accept::Stored | Accept::Duplicate | Accept::Stale => {}
                    Accept::Inconsistent => prop_assert!(false, "consistent input"),
                }
            }
        }
        // Accounting: buffered bytes are exactly 32 per stored share of
        // incomplete symbols.
        prop_assert_eq!(table.buffered_bytes() % 32, 0);
        let stats = table.stats();
        prop_assert_eq!(stats.completed as usize,
            completed.iter().filter(|&&c| c).count());
        prop_assert_eq!(stats.inconsistent, 0);
    }

    /// Sweeping at any point never breaks accounting, and after the
    /// timeout horizon the table is empty.
    #[test]
    fn sweeps_preserve_accounting(
        arrivals in proptest::collection::vec((0u8..8, 0u8..3, 0u64..200), 1..40),
        sweep_at in proptest::collection::vec(0u64..400, 0..8),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let k = 3u8;
        let m = 3u8;
        let symbols: Vec<Vec<ShareFrame>> = (0..8u64)
            .map(|seq| {
                let payload = vec![seq as u8; 16];
                split(&payload, Params::new(k, m).unwrap(), &mut rng)
                    .unwrap()
                    .iter()
                    .map(|s| ShareFrame::new(seq, k, m, s.x(), 0, s.data().to_vec()).unwrap())
                    .collect()
            })
            .collect();
        let timeout = SimTime::from_millis(50);
        let mut table = ReassemblyTable::new(timeout, 1 << 20);
        let mut events: Vec<(u64, Option<(u8, u8)>)> = arrivals
            .iter()
            .map(|&(si, xi, at)| (at, Some((si, xi))))
            .chain(sweep_at.iter().map(|&at| (at, None)))
            .collect();
        events.sort_by_key(|&(at, _)| at);
        for (at, ev) in events {
            let now = SimTime::from_millis(at);
            match ev {
                Some((si, xi)) => {
                    let _ = table.accept(&symbols[si as usize][xi as usize], now);
                }
                None => table.sweep(now),
            }
            prop_assert!(table.buffered_bytes() <= 1 << 20);
        }
        // A final sweep far in the future clears all partials.
        table.sweep(SimTime::from_secs(100));
        prop_assert_eq!(table.pending_symbols(), 0);
        prop_assert_eq!(table.buffered_bytes(), 0);
    }

    /// The memory cap is a hard invariant under adversarial arrival
    /// patterns: buffered bytes never exceed capacity.
    #[test]
    fn memory_cap_is_hard(
        arrivals in proptest::collection::vec((0u16..500, 0u8..2), 1..200),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let cap = 1000usize; // 31 shares of 32 bytes
        let mut table = ReassemblyTable::new(SimTime::from_secs(10), cap);
        for (i, (seq, xi)) in arrivals.iter().enumerate() {
            // k = 2, m = 2: each first share is stored, second completes.
            let payload = vec![0u8; 32];
            let shares = split(&payload, Params::new(2, 2).unwrap(), &mut rng).unwrap();
            let s = &shares[(*xi % 2) as usize];
            let frame = ShareFrame::new(
                u64::from(*seq),
                2,
                2,
                s.x(),
                0,
                s.data().to_vec(),
            )
            .unwrap();
            let _ = table.accept(&frame, SimTime::from_nanos(i as u64));
            prop_assert!(
                table.buffered_bytes() <= cap,
                "cap breached: {} > {cap}",
                table.buffered_bytes()
            );
        }
    }
}
