//! Proves the zero-allocation claims: in steady state, a ReMICSS session
//! moves a symbol from source → split → frame → link → reassemble →
//! reconstruct with **zero heap allocations**, for every `k ≤ m ≤ 8` —
//! and the GF(2⁸) kernel layer underneath (every backend available on
//! the host, including the SIMD `pshufb` path and the fused Horner
//! kernel) allocates nothing either: multiplier tables live in the
//! caller-owned `MulTable`, not per-call heap storage.
//!
//! A counting global allocator snapshots the allocation count after a
//! warmup window (pools filling, hash tables and event queues reaching
//! their high-water capacity) and asserts it does not move during a
//! measurement window in which thousands of symbols flow.
//!
//! The simulation runs on the binary-heap event queue: a warm heap is
//! strictly allocation-free, whereas the timer wheel touches a fresh
//! slot vector the first time the cursor enters it (its levels only
//! become fully warm after a complete wrap). The queue engine is pinned
//! bit-identical against the heap separately (see `engine_pin.rs`), so
//! this measures exactly the protocol data path.
//!
//! This test builds with the default `telemetry` feature **on**, so it
//! also proves the `mcss-obs` overhead contract: span timers, session
//! counters, and delay/gap/residency histograms all record on the data
//! path, and none of them allocate in steady state. Telemetry
//! registration (span-site resolution, histogram bucket storage) happens
//! at session build and during the warmup window, never after.

#![cfg(feature = "sim")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mcss_codec::CodecId;
use mcss_core::setups;
use mcss_gf256::simd::{Backend, MulTable};
use mcss_gf256::Gf256;
use mcss_netsim::{QueueKind, SimTime, Simulator};
use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::session::{Session, Workload};
use mcss_remicss::testbed;

/// Counts allocations made by the measured thread only: the libtest
/// harness keeps its own main thread alive alongside the test thread,
/// and its bookkeeping (channel wakeups, output capture) allocates at
/// arbitrary times — a process-global count flakes on that noise. The
/// flag is const-initialized so reading it inside the allocator cannot
/// itself allocate (no lazy TLS initialization).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static ON_MEASURED_THREAD: Cell<bool> = const { Cell::new(false) };
}

fn count_here() {
    if ON_MEASURED_THREAD.try_with(Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The allocation counter is shared, so the three checks run as phases
/// of a single `#[test]` — concurrent test threads would both count
/// into the same windows.
#[test]
fn steady_state_symbol_path_is_allocation_free() {
    ON_MEASURED_THREAD.with(|flag| flag.set(true));
    gf256_kernels_phase();
    split_into_phase();
    xor_codec_phase();
    session_phase();
    engine_external_phase(CodecId::Shamir);
    engine_external_phase(CodecId::Xor2d);
}

/// The GF(2⁸) kernels themselves — including the SIMD path and its
/// fused Horner form — perform zero heap allocations: the nibble and
/// row tables live in the caller-owned `MulTable` (stack or scratch),
/// never in per-call heap storage. Checked for every backend available
/// on this host, so on x86_64 CI this covers `simd` explicitly even
/// when the session phase below happens to run a different active
/// backend.
fn gf256_kernels_phase() {
    let mut dst = vec![0x5au8; 4096];
    let src = vec![0xc3u8; 4096];
    let planes: Vec<Vec<u8>> = (0..4).map(|p| vec![p as u8 + 1; 4096]).collect();
    let plane_refs: [&[u8]; 4] = [&planes[0], &planes[1], &planes[2], &planes[3]];
    // Force detection (and any env read) outside the counting window.
    let _ = Backend::active();
    for backend in Backend::ALL {
        if !backend.is_available() {
            continue;
        }
        let before = allocations();
        for x in [0u8, 1, 0x53] {
            let t = MulTable::new(Gf256::new(x));
            backend.scale_add_assign(&mut dst, &src, &t);
            backend.add_scaled_assign(&mut dst, &src, &t);
            backend.scale_assign(&mut dst, &t);
            backend.horner_into(&mut dst, &plane_refs, &t);
        }
        let during = allocations() - before;
        assert_eq!(
            during,
            0,
            "backend {}: {during} allocations in the kernel hot path",
            backend.name()
        );
    }
}

/// `split_into` stays allocation-free per symbol on the dispatched
/// (vector) kernel path: warm scratch and output buffers, then
/// thousands of symbols with zero allocator traffic.
fn split_into_phase() {
    use mcss_shamir::{split_into, BatchScratch, Params};
    use rand::SeedableRng;

    let params = Params::new(3, 5).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut scratch = BatchScratch::new();
    let payload = vec![0xabu8; 1_250];
    let mut outs: Vec<Vec<u8>> = (0..5).map(|_| Vec::with_capacity(2_048)).collect();
    let warm =
        |outs: &mut Vec<Vec<u8>>, rng: &mut rand::rngs::StdRng, scratch: &mut BatchScratch| {
            for _ in 0..16 {
                for o in outs.iter_mut() {
                    o.clear();
                }
                split_into(&payload, params, rng, scratch, outs).unwrap();
            }
        };
    warm(&mut outs, &mut rng, &mut scratch);
    let before = allocations();
    for _ in 0..1_000 {
        for o in outs.iter_mut() {
            o.clear();
        }
        split_into(&payload, params, &mut rng, &mut scratch, &mut outs).unwrap();
    }
    let during = allocations() - before;
    assert_eq!(
        during,
        0,
        "{during} allocations over 1000 split_into symbols on backend {}",
        Backend::active().name()
    );
}

/// The XOR/2D codec's own split + reconstruct loop is allocation-free
/// per symbol once the pad scratch and share buffers reach high water —
/// the same contract `split_into_phase` pins for Shamir. Reconstruction
/// reuses a warm output vector, so the whole round trip is measured.
fn xor_codec_phase() {
    use mcss_codec::xor2d;
    use rand::SeedableRng;

    let (k, m) = (3u8, 5u8);
    let payload = vec![0xabu8; 1_250];
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut pad = Vec::new();
    let mut outs: Vec<Vec<u8>> = (0..m as usize).map(|_| Vec::with_capacity(2_048)).collect();
    let mut secret = Vec::with_capacity(2_048);
    let round = |outs: &mut Vec<Vec<u8>>,
                 rng: &mut rand::rngs::StdRng,
                 pad: &mut Vec<u8>,
                 secret: &mut Vec<u8>| {
        for o in outs.iter_mut() {
            o.clear();
        }
        xor2d::split_into(&payload, k, m, rng, pad, outs).unwrap();
        let shares: [(u8, &[u8]); 3] = [(1, &outs[0]), (3, &outs[2]), (5, &outs[4])];
        xor2d::reconstruct_with(k, m, 3, |i| shares[i].0, |i| shares[i].1, secret).unwrap();
        assert_eq!(secret.as_slice(), payload.as_slice());
    };
    for _ in 0..16 {
        round(&mut outs, &mut rng, &mut pad, &mut secret);
    }
    let before = allocations();
    for _ in 0..1_000 {
        round(&mut outs, &mut rng, &mut pad, &mut secret);
    }
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "{during} allocations over 1000 XOR codec split+reconstruct rounds"
    );
}

/// The sans-I/O engine in [`SourceMode::External`] — the configuration
/// the UDP driver runs — is also allocation-free in steady state for
/// whichever codec the session selects: the action queue, frame pool,
/// and reassembly scratch all reach their high-water capacity during
/// warmup, and offering symbols, draining `SendShare` actions, looping
/// frames back to host B, and taking `DeliverSymbol` reconstructions
/// allocate nothing after that.
fn engine_external_phase(codec: CodecId) {
    use mcss_base::{Endpoint, SimTime as T};
    use mcss_remicss::actions::{Action, Event};
    use mcss_remicss::engine::{Engine, SourceMode};
    use rand::SeedableRng;

    const N: usize = 5;
    let config = Arc::new(
        ProtocolConfig::new(2.0, 3.0)
            .unwrap()
            .with_symbol_bytes(512)
            .with_reassembly_timeout(T::from_millis(20))
            .with_codec(codec),
    );
    let mut engine = Engine::new(Arc::clone(&config), N, SourceMode::External).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let mut now = T::ZERO;
    let mut timers: Vec<(T, u64)> = Vec::with_capacity(8);
    let payload = vec![0x5au8; 512];

    engine.handle(now, Event::Started, &mut rng);

    // Loop every share straight back to host B and recycle all buffers,
    // exactly as a loopback driver would.
    fn pump(engine: &mut Engine, now: T, timers: &mut Vec<(T, u64)>, rng: &mut rand::rngs::StdRng) {
        while let Some(action) = engine.poll_action() {
            match action {
                Action::SendShare { channel, frame, .. } => {
                    engine.share_send_ok(channel);
                    let _ = engine.handle_frame(now, channel, Endpoint::B, &frame, rng);
                    engine.recycle(frame);
                }
                Action::SendControl { frame, .. } => engine.recycle(frame),
                Action::SetTimer { token, at } => timers.push((at, token)),
                Action::DeliverSymbol { payload, .. } => engine.recycle(payload),
            }
        }
    }

    fn step(
        engine: &mut Engine,
        now: &mut T,
        timers: &mut Vec<(T, u64)>,
        payload: &[u8],
        rng: &mut rand::rngs::StdRng,
    ) {
        *now += T::from_micros(100);
        while let Some(idx) = timers.iter().position(|&(at, _)| at <= *now) {
            let (_, token) = timers.swap_remove(idx);
            engine.handle(*now, Event::TimerFired { token }, rng);
            pump(engine, *now, timers, rng);
        }
        engine.handle(*now, Event::SymbolReady { payload }, rng);
        pump(engine, *now, timers, rng);
    }

    for _ in 0..500 {
        step(&mut engine, &mut now, &mut timers, &payload, &mut rng);
    }
    let before = allocations();
    for _ in 0..2_000 {
        step(&mut engine, &mut now, &mut timers, &payload, &mut rng);
    }
    let during = allocations() - before;
    let report = engine.report(now);
    assert_eq!(report.delivered_symbols, 2_500, "loopback lost symbols");
    assert_eq!(
        during, 0,
        "external-source engine [{codec}]: {during} allocations in steady state"
    );
}

fn session_phase() {
    // 8 clean channels so every (k, m) with m ≤ 8 is schedulable.
    let channels = setups::identical_n(8, 10.0);
    // The warmup must outlast every slow-converging high-water mark:
    // the resolved map's occupancy peaks only once the source period has
    // drifted through all phases of the 5 ms sweep timer.
    let warmup = SimTime::from_millis(700);
    let measure = SimTime::from_millis(300);
    for m in 1..=8u8 {
        for k in 1..=m {
            // Integer (κ, μ) = (k, m) makes every draw exactly (k, m).
            let config = Arc::new(
                ProtocolConfig::new(f64::from(k), f64::from(m))
                    .unwrap()
                    // Short timeout so the resolved map's pruning horizon
                    // (2× timeout) is well inside the warmup window.
                    .with_reassembly_timeout(SimTime::from_millis(20)),
            );
            let rate = 0.3 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
            let workload = Workload::cbr(rate, warmup + measure + SimTime::from_millis(100));
            let net = testbed::network_for(&channels, &config);
            let session = Session::new(Arc::clone(&config), channels.len(), workload).unwrap();
            let mut sim = Simulator::with_queue_kind(net, session, 42, QueueKind::Heap);
            sim.run_until(warmup);
            let before = allocations();
            sim.run_until(warmup + measure);
            let during = allocations() - before;
            let report = sim.app().report(warmup + measure);
            assert!(
                report.delivered_symbols > 100,
                "(k={k}, m={m}) too few symbols delivered: {}",
                report.delivered_symbols
            );
            assert_eq!(
                during, 0,
                "(k={k}, m={m}): {during} allocations in steady state \
                 over {} delivered symbols",
                report.delivered_symbols
            );
        }
    }
}
