//! Proves the tentpole claim: in steady state, a ReMICSS session moves a
//! symbol from source → split → frame → link → reassemble → reconstruct
//! with **zero heap allocations**, for every `k ≤ m ≤ 8`.
//!
//! A counting global allocator snapshots the allocation count after a
//! warmup window (pools filling, hash tables and event queues reaching
//! their high-water capacity) and asserts it does not move during a
//! measurement window in which thousands of symbols flow.
//!
//! The simulation runs on the binary-heap event queue: a warm heap is
//! strictly allocation-free, whereas the timer wheel touches a fresh
//! slot vector the first time the cursor enters it (its levels only
//! become fully warm after a complete wrap). The queue engine is pinned
//! bit-identical against the heap separately (see `engine_pin.rs`), so
//! this measures exactly the protocol data path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mcss_core::setups;
use mcss_netsim::{QueueKind, SimTime, Simulator};
use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::session::{Session, Workload};
use mcss_remicss::testbed;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_symbol_path_is_allocation_free() {
    // 8 clean channels so every (k, m) with m ≤ 8 is schedulable.
    let channels = setups::identical_n(8, 10.0);
    // The warmup must outlast every slow-converging high-water mark:
    // the resolved map's occupancy peaks only once the source period has
    // drifted through all phases of the 5 ms sweep timer.
    let warmup = SimTime::from_millis(700);
    let measure = SimTime::from_millis(300);
    for m in 1..=8u8 {
        for k in 1..=m {
            // Integer (κ, μ) = (k, m) makes every draw exactly (k, m).
            let config = Arc::new(
                ProtocolConfig::new(f64::from(k), f64::from(m))
                    .unwrap()
                    // Short timeout so the resolved map's pruning horizon
                    // (2× timeout) is well inside the warmup window.
                    .with_reassembly_timeout(SimTime::from_millis(20)),
            );
            let rate = 0.3 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
            let workload = Workload::cbr(rate, warmup + measure + SimTime::from_millis(100));
            let net = testbed::network_for(&channels, &config);
            let session = Session::new(Arc::clone(&config), channels.len(), workload).unwrap();
            let mut sim = Simulator::with_queue_kind(net, session, 42, QueueKind::Heap);
            sim.run_until(warmup);
            let before = allocations();
            sim.run_until(warmup + measure);
            let during = allocations() - before;
            let report = sim.app().report(warmup + measure);
            assert!(
                report.delivered_symbols > 100,
                "(k={k}, m={m}) too few symbols delivered: {}",
                report.delivered_symbols
            );
            assert_eq!(
                during, 0,
                "(k={k}, m={m}): {during} allocations in steady state \
                 over {} delivered symbols",
                report.delivered_symbols
            );
        }
    }
}
