//! Statistical check on [`SessionMetrics`]: the empirical `(κ, μ)`
//! recovered from the realized `(k, m)` frequency matrix must converge
//! to the configured protocol parameters — the telemetry layer reports
//! what the scheduler actually does.

#![cfg(feature = "sim")]
#![cfg(feature = "telemetry")]

use mcss_netsim::SimTime;
use mcss_remicss::scheduler::{ChannelState, DynamicScheduler, Scheduler as _};
use mcss_remicss::SessionMetrics;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SYMBOLS: u64 = 100_000;

/// Drives the dynamic scheduler for 100k symbols on all-ready channels
/// and checks the metrics-side empirical means against the configuration.
fn check_convergence(kappa: f64, mu: f64, n: usize, seed: u64) {
    let mut sched = DynamicScheduler::new(kappa, mu, n).expect("valid (kappa, mu)");
    let mut metrics = SessionMetrics::new(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let backlogs = vec![SimTime::ZERO; n];
    let state = ChannelState::new(&backlogs, SimTime::from_millis(1));
    let mut choice = Default::default();
    for _ in 0..SYMBOLS {
        sched.choose_into(&state, &mut rng, &mut choice);
        metrics.record_choice(choice.k, choice.channels.len());
    }
    assert_eq!(metrics.choices(), SYMBOLS);
    let ek = metrics.empirical_kappa();
    let em = metrics.empirical_mu();
    assert!(
        (ek - kappa).abs() / kappa < 0.01,
        "empirical kappa {ek} vs configured {kappa} (n={n})"
    );
    assert!(
        (em - mu).abs() / mu < 0.01,
        "empirical mu {em} vs configured {mu} (n={n})"
    );
    // The frequency matrix and the means must agree: the means are
    // exactly the matrix's marginal expectations.
    let (mut sum_k, mut sum_m, mut total) = (0u64, 0u64, 0u64);
    for k in 0..=n {
        for m in 0..=n {
            let c = metrics.km_count(k, m);
            sum_k += c * k as u64;
            sum_m += c * m as u64;
            total += c;
        }
    }
    assert_eq!(total, SYMBOLS, "every draw lands in the (k, m) matrix");
    assert!((sum_k as f64 / total as f64 - ek).abs() < 1e-9);
    assert!((sum_m as f64 / total as f64 - em).abs() < 1e-9);
}

#[test]
fn fractional_parameters_converge_within_one_percent() {
    // Fractional (κ, μ): every draw rounds up or down, so convergence
    // genuinely exercises the sampler's randomization.
    check_convergence(2.4, 3.3, 5, 11);
}

#[test]
fn integral_parameters_are_exact() {
    // Integral (κ, μ) leave the sampler nothing to randomize: the
    // empirical means are exact, and a single matrix cell holds
    // every draw.
    let n = 5;
    let mut metrics = SessionMetrics::new(n);
    let mut sched = DynamicScheduler::new(2.0, 3.0, n).expect("valid");
    let mut rng = StdRng::seed_from_u64(7);
    let backlogs = vec![SimTime::ZERO; n];
    let state = ChannelState::new(&backlogs, SimTime::from_millis(1));
    let mut choice = Default::default();
    for _ in 0..10_000u64 {
        sched.choose_into(&state, &mut rng, &mut choice);
        metrics.record_choice(choice.k, choice.channels.len());
    }
    assert_eq!(metrics.empirical_kappa(), 2.0);
    assert_eq!(metrics.empirical_mu(), 3.0);
    assert_eq!(metrics.km_count(2, 3), 10_000);
}

#[test]
fn near_boundary_parameters_converge() {
    // μ close to n stresses the "all channels" end of the sampler.
    check_convergence(1.2, 4.8, 5, 23);
}
