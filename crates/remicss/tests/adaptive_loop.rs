//! End-to-end tests of the adaptive multiplicity loop: the protocol,
//! the feedback frames, and the controller acting together over the
//! simulated testbed.

#![cfg(feature = "sim")]

use mcss_core::{setups, Channel, ChannelSet};
use mcss_netsim::{Endpoint, LinkConfig, SimTime, Simulator};
use mcss_remicss::config::{ProtocolConfig, SchedulerKind};
use mcss_remicss::session::{Session, Workload};
use mcss_remicss::testbed;

fn very_lossy() -> ChannelSet {
    ChannelSet::new(
        (0..5)
            .map(|_| Channel::new(0.1, 0.25, 0.0, 50.0).unwrap())
            .collect(),
    )
    .unwrap()
}

#[test]
fn adaptation_requires_dynamic_scheduler() {
    let config = ProtocolConfig::new(1.0, 2.0)
        .unwrap()
        .with_scheduler(SchedulerKind::RoundRobin)
        .with_adaptive(0.01);
    assert!(Session::new(config, 5, Workload::cbr(100.0, SimTime::from_secs(1))).is_err());
}

#[test]
fn heavy_loss_drives_mu_up_and_recovers_delivery() {
    // 25% per-channel loss with kappa = 1: at mu = 1 the symbol loss is
    // 25%; at mu = 5 it is 0.25^5 ~ 0.1%. The controller must walk mu up.
    let channels = very_lossy();
    let config = ProtocolConfig::new(1.0, 1.0).unwrap().with_adaptive(0.01);
    let offered = 0.15 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
    let window = SimTime::from_secs(4);
    let net = testbed::network_for(&channels, &config);
    let session = Session::new(config.clone(), 5, Workload::cbr(offered, window)).unwrap();
    let mut sim = Simulator::new(net, session, 21);
    sim.run_until(window + SimTime::from_secs(1));
    let report = sim.app().report(window);
    let final_mu = report.adaptive_final_mu.expect("adaptive enabled");
    assert!(
        final_mu > 3.0,
        "controller should have raised mu well above 1, got {final_mu}"
    );
    assert!(report.adaptive_adjustments > 0);
    // The smoothed loss estimate should have converged near the target
    // regime, far below the raw 25%.
    let est = sim.app().adaptive().unwrap().estimated_loss().unwrap();
    assert!(est < 0.10, "estimated loss still {est}");
}

#[test]
fn clean_network_decays_mu_toward_kappa() {
    let channels = setups::identical(100.0);
    let config = ProtocolConfig::new(1.0, 4.0).unwrap().with_adaptive(0.05);
    let offered = 0.2 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
    let window = SimTime::from_secs(4);
    let net = testbed::network_for(&channels, &config);
    let session = Session::new(config.clone(), 5, Workload::cbr(offered, window)).unwrap();
    let mut sim = Simulator::new(net, session, 22);
    sim.run_until(window + SimTime::from_secs(1));
    let report = sim.app().report(window);
    let final_mu = report.adaptive_final_mu.unwrap();
    assert!(
        final_mu < 1.5,
        "clean channels should reclaim rate: mu = {final_mu}"
    );
}

#[test]
fn adaptation_reacts_to_midrun_degradation() {
    // Channels start clean; at t = 2 s every channel turns 30% lossy.
    let channels = setups::identical(50.0);
    let config = ProtocolConfig::new(1.0, 1.0).unwrap().with_adaptive(0.02);
    let offered = 0.2 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
    let window = SimTime::from_secs(6);
    let net = testbed::network_for(&channels, &config);
    let session = Session::new(config.clone(), 5, Workload::cbr(offered, window)).unwrap();
    let mut sim = Simulator::new(net, session, 23);

    sim.run_until(SimTime::from_secs(2));
    let mu_before = sim.app().adaptive().unwrap().mu();
    assert!(
        mu_before < 1.5,
        "clean start should keep mu low: {mu_before}"
    );

    for ch in 0..5 {
        for ep in [Endpoint::A, Endpoint::B] {
            sim.network_mut()
                .reconfigure(ch, ep, LinkConfig::new(50e6).with_loss(0.30));
        }
    }
    sim.run_until(window + SimTime::from_secs(1));
    let mu_after = sim.app().adaptive().unwrap().mu();
    assert!(
        mu_after > mu_before + 1.0,
        "controller should react to degradation: {mu_before} -> {mu_after}"
    );
}

#[test]
fn without_adaptation_mu_is_static() {
    let channels = very_lossy();
    let config = ProtocolConfig::new(1.0, 1.0).unwrap();
    let offered = 0.2 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
    let window = SimTime::from_secs(1);
    let net = testbed::network_for(&channels, &config);
    let session = Session::new(config.clone(), 5, Workload::cbr(offered, window)).unwrap();
    let mut sim = Simulator::new(net, session, 24);
    sim.run_until(window + SimTime::from_secs(1));
    let report = sim.app().report(window);
    assert_eq!(report.adaptive_final_mu, None);
    assert_eq!(report.adaptive_adjustments, 0);
    // Loss stays at the raw per-channel rate (~25%).
    assert!(report.loss_fraction > 0.15);
}
