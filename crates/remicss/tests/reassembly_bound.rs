//! Regression: the reassembly table's memory of resolved symbols must
//! stay flat over unbounded runs. Before the resolution cap, every
//! completed symbol left a record in `resolved` that only a sweep could
//! prune — a session that never swept (or swept rarely against a fast
//! sender) grew without bound.

#![cfg(feature = "sim")]

use mcss_netsim::SimTime;
use mcss_remicss::reassembly::{AcceptOutcome, ReassemblyTable};
use mcss_remicss::wire::{put_share_header, ShareRef};

fn share_frame(buf: &mut Vec<u8>, seq: u64, k: u8, m: u8, x: u8, payload: &[u8]) {
    buf.clear();
    put_share_header(buf, seq, k, m, x, 0, payload.len()).unwrap();
    buf.extend_from_slice(payload);
}

#[test]
fn resolved_memory_stays_flat_over_a_million_symbols() {
    let cap = 10_000usize;
    // Huge timeout and no sweeps: only the cap bounds resolution memory.
    let mut t = ReassemblyTable::new(SimTime::from_secs(3_600), 1 << 20).with_resolved_cap(cap);
    let mut out = Vec::new();
    let mut frame = Vec::new();
    let payload = [0xA5u8; 16];
    for seq in 0..1_000_000u64 {
        share_frame(&mut frame, seq, 1, 1, 1, &payload);
        let share = ShareRef::decode(&frame).unwrap();
        let outcome = t.accept_into(&share, SimTime::from_nanos(seq), &mut out);
        assert_eq!(outcome, AcceptOutcome::Completed);
        if seq % 65_536 == 0 {
            assert!(
                t.resolved_records() <= cap,
                "resolved grew past cap at seq {seq}: {}",
                t.resolved_records()
            );
        }
    }
    assert!(t.resolved_records() <= cap);
    assert_eq!(t.pending_symbols(), 0);
    assert_eq!(t.buffered_bytes(), 0);
    assert_eq!(t.stats().completed, 1_000_000);
    assert_eq!(t.stats().resolved_evictions, 1_000_000 - cap as u64);
}

#[test]
fn share_buffers_stay_flat_across_many_multi_share_symbols() {
    // k = 2 exercises the pending table and the pooled share buffers;
    // after warmup the pool must stop allocating.
    let mut t = ReassemblyTable::new(SimTime::from_secs(3_600), 1 << 20).with_resolved_cap(10_000);
    let mut out = Vec::new();
    let mut frame = Vec::new();
    let payload = [0x5Au8; 64];
    let mut run = |t: &mut ReassemblyTable, range: std::ops::Range<u64>| {
        for seq in range {
            for x in [1u8, 2u8] {
                share_frame(&mut frame, seq, 2, 2, x, &payload);
                let share = ShareRef::decode(&frame).unwrap();
                t.accept_into(&share, SimTime::from_nanos(seq), &mut out);
            }
        }
    };
    run(&mut t, 0..50_000);
    let warm_misses = t.pool_misses();
    run(&mut t, 50_000..100_000);
    assert_eq!(t.pool_misses(), warm_misses, "pool allocated after warmup");
    assert_eq!(t.stats().completed, 100_000);
    assert_eq!(t.pending_symbols(), 0);
    assert_eq!(t.buffered_bytes(), 0);
}
