//! End-to-end loopback run of the [`UdpDriver`]: move 1 MiB from host A
//! to host B across real UDP sockets on ≥ 4 channels, reconstruct every
//! symbol, and verify the engine's accounting saw no reassembly errors.

#![cfg(feature = "udp")]

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::udp::UdpDriver;

const CHANNELS: usize = 4;
const SYMBOL_BYTES: usize = 1024;
const TOTAL_BYTES: usize = 1 << 20; // 1 MiB
const SYMBOLS: usize = TOTAL_BYTES / SYMBOL_BYTES;

fn payload_byte(i: usize) -> u8 {
    (i.wrapping_mul(131).wrapping_add(i >> 10) & 0xff) as u8
}

#[test]
fn one_mebibyte_crosses_four_loopback_channels() {
    let config = ProtocolConfig::new(2.0, 3.0)
        .unwrap()
        .with_symbol_bytes(SYMBOL_BYTES);
    let mut driver = UdpDriver::new(config, CHANNELS, 0xDA7A).unwrap();

    let data: Vec<u8> = (0..TOTAL_BYTES).map(payload_byte).collect();
    let mut received: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let deadline = Instant::now() + Duration::from_secs(45);

    for chunk in data.chunks(SYMBOL_BYTES) {
        driver.send_symbol(chunk).unwrap();
        // Drain as we go so socket buffers never overflow.
        driver.poll().unwrap();
        while let Some((seq, payload)) = driver.next_symbol() {
            received.insert(seq, payload);
        }
    }
    while received.len() < SYMBOLS && Instant::now() < deadline {
        driver.drive(Duration::from_millis(5)).unwrap();
        while let Some((seq, payload)) = driver.next_symbol() {
            received.insert(seq, payload);
        }
    }

    assert_eq!(received.len(), SYMBOLS, "not every symbol reconstructed");
    let mut reassembled = Vec::with_capacity(TOTAL_BYTES);
    for (expect_seq, (seq, payload)) in received.into_iter().enumerate() {
        assert_eq!(seq, expect_seq as u64, "sequence gap");
        reassembled.extend_from_slice(&payload);
    }
    assert_eq!(reassembled, data, "reconstructed bytes differ");

    let report = driver.report(driver.now());
    assert_eq!(report.sent_symbols, SYMBOLS as u64);
    assert_eq!(report.delivered_symbols, SYMBOLS as u64);
    assert_eq!(report.wire_errors, 0);
    assert_eq!(report.corrupted_symbols, 0);
    assert_eq!(report.reassembly.timeout_evictions, 0);
    assert_eq!(report.reassembly.memory_evictions, 0);
    assert_eq!(report.reassembly.completed, SYMBOLS as u64);

    // The telemetry snapshot reports the run under `remicss.*` names.
    let snap = driver.engine().metrics_snapshot();
    #[cfg(feature = "telemetry")]
    {
        let resolved = snap
            .counters
            .iter()
            .find(|c| c.name == "remicss.symbols.resolved")
            .expect("resolved counter present");
        assert_eq!(resolved.value, SYMBOLS as u64);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = snap;
}

#[test]
fn injected_share_loss_is_masked_by_redundancy() {
    // κ = 2, μ = 3 over four channels: one lost share per symbol is
    // absorbed. Inject 30% loss on one channel and expect (almost)
    // everything through; the paper's whole point is that the threshold
    // scheme rides out single-channel trouble without retransmission.
    let config = ProtocolConfig::new(2.0, 3.0)
        .unwrap()
        .with_symbol_bytes(256);
    let mut driver = UdpDriver::new(config, CHANNELS, 0x10_55).unwrap();
    driver.set_loss(0, 0.3);

    let symbols = 200usize;
    let mut delivered = 0usize;
    for i in 0..symbols {
        let chunk = vec![payload_byte(i); 256];
        driver.send_symbol(&chunk).unwrap();
        driver.poll().unwrap();
        while driver.next_symbol().is_some() {
            delivered += 1;
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while delivered < symbols && Instant::now() < deadline {
        driver.drive(Duration::from_millis(5)).unwrap();
        while driver.next_symbol().is_some() {
            delivered += 1;
        }
    }
    // A symbol only dies if ≥ 2 of its 3 shares were lost; with loss on
    // a single channel that requires the 30% coin twice — impossible for
    // m = 3 over distinct channels. Everything must arrive.
    assert_eq!(delivered, symbols, "single-channel loss was not masked");
    let report = driver.report(driver.now());
    assert_eq!(report.wire_errors, 0);
}
