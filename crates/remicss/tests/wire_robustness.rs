//! Robustness of the wire codec: arbitrary bytes never panic the
//! decoder, valid frames survive arbitrary field values, and any
//! mutation the decoder *accepts* re-encodes to exactly the bytes it
//! decoded from (the format is canonical — no two byte strings decode
//! to the same frame).

use bytes::Bytes;
use mcss_remicss::wire::{
    decode_message, decode_message_ref, ControlFrame, Message, MessageRef, ShareFrame, ShareRef,
    CONTROL_BYTES,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any result is fine; panicking is not.
        let _ = ShareFrame::decode(&bytes);
        let _ = ControlFrame::decode(&bytes);
        let _ = decode_message(&bytes);
    }

    #[test]
    fn share_frame_round_trips_arbitrary_fields(
        seq in any::<u64>(),
        m in 1u8..=255,
        k_off in 0u8..=254,
        x_off in 0u8..=254,
        stamp in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let k = 1 + k_off % m;
        let x = 1 + x_off % m;
        let frame = ShareFrame::new(seq, k, m, x, stamp, payload).unwrap();
        let decoded = ShareFrame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn control_frame_round_trips(epoch in any::<u32>(), delivered in any::<u64>()) {
        let c = ControlFrame::new(epoch, delivered);
        prop_assert_eq!(ControlFrame::decode(&c.encode()).unwrap(), c);
        match decode_message(&c.encode()).unwrap() {
            Message::Control(got) => prop_assert_eq!(got, c),
            Message::Share(_) => prop_assert!(false, "misdispatched"),
        }
    }

    #[test]
    fn truncations_of_valid_frames_error_cleanly(
        cut in 0usize..24,
        payload in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let frame = ShareFrame::new(1, 1, 1, 1, 0, payload).unwrap();
        let enc = frame.encode();
        let cut = cut.min(enc.len().saturating_sub(1));
        prop_assert!(ShareFrame::decode(&enc[..cut]).is_err());
    }

    #[test]
    fn mutated_share_frames_error_or_reencode_identically(
        seq in any::<u64>(),
        m in 1u8..=8,
        k_off in 0u8..=7,
        x_off in 0u8..=7,
        stamp in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        mutations in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..16),
    ) {
        let k = 1 + k_off % m;
        let x = 1 + x_off % m;
        let frame = ShareFrame::new(seq, k, m, x, stamp, payload).unwrap();
        let mut enc = frame.encode().to_vec();
        for &(idx, byte) in &mutations {
            let len = enc.len();
            enc[idx % len] = byte;
        }
        match decode_message(&Bytes::copy_from_slice(&enc)) {
            Err(_) => {}
            Ok(Message::Share(decoded)) => {
                prop_assert_eq!(decoded.encode().as_ref(), enc.as_slice());
            }
            Ok(Message::Control(decoded)) => {
                prop_assert_eq!(decoded.encode().as_ref(), enc.as_slice());
            }
        }
    }

    #[test]
    fn mutated_control_frames_error_or_reencode_identically(
        epoch in any::<u32>(),
        delivered in any::<u64>(),
        mutations in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..8),
    ) {
        let mut enc = ControlFrame::new(epoch, delivered).encode().to_vec();
        for &(idx, byte) in &mutations {
            let len = enc.len();
            enc[idx % len] = byte;
        }
        match decode_message(&Bytes::copy_from_slice(&enc)) {
            Err(_) => {}
            Ok(Message::Share(decoded)) => {
                prop_assert_eq!(decoded.encode().as_ref(), enc.as_slice());
            }
            Ok(Message::Control(decoded)) => {
                prop_assert_eq!(decoded.encode().as_ref(), enc.as_slice());
            }
        }
    }

    #[test]
    fn borrowed_and_owning_decoders_agree_on_mutations(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        mutations in proptest::collection::vec((any::<usize>(), any::<u8>()), 0..12),
    ) {
        let frame = ShareFrame::new(11, 2, 3, 2, 5, payload).unwrap();
        let mut enc = frame.encode().to_vec();
        for &(idx, byte) in &mutations {
            let len = enc.len();
            enc[idx % len] = byte;
        }
        let owned = ShareFrame::decode(&enc);
        let by_ref = ShareRef::decode(&enc);
        match (&owned, &by_ref) {
            (Ok(o), Ok(r)) => {
                prop_assert_eq!(o.seq(), r.seq());
                prop_assert_eq!(o.k(), r.k());
                prop_assert_eq!(o.m(), r.m());
                prop_assert_eq!(o.x(), r.x());
                prop_assert_eq!(o.sent_at_nanos(), r.sent_at_nanos());
                prop_assert_eq!(o.payload().as_ref(), r.payload());
            }
            (Err(oe), Err(re)) => prop_assert_eq!(oe, re),
            other => prop_assert!(false, "decoders disagree: {:?}", other),
        }
        let owned_msg = decode_message(&Bytes::copy_from_slice(&enc));
        let ref_msg = decode_message_ref(&enc);
        prop_assert_eq!(
            owned_msg.is_ok(),
            ref_msg.is_ok(),
            "message dispatch disagrees"
        );
        if let (Ok(Message::Control(o)), Ok(MessageRef::Control(r))) = (&owned_msg, &ref_msg) {
            prop_assert_eq!(o, r);
        }
    }

    #[test]
    fn control_truncations_error_cleanly(
        epoch in any::<u32>(),
        delivered in any::<u64>(),
        cut in 0usize..CONTROL_BYTES,
    ) {
        let enc = ControlFrame::new(epoch, delivered).encode();
        prop_assert_eq!(enc.len(), CONTROL_BYTES);
        prop_assert!(ControlFrame::decode(&enc[..cut]).is_err());
        prop_assert!(decode_message(&enc[..cut]).is_err());
        prop_assert!(decode_message_ref(&enc[..cut]).is_err());
    }

    #[test]
    fn trailing_bytes_never_decode(
        epoch in any::<u32>(),
        delivered in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        extra in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        // The decoders must consume exactly the declared frame — any
        // trailing bytes are an error, never a silent over-read.
        let mut share = ShareFrame::new(3, 1, 2, 1, 9, payload).unwrap().encode().to_vec();
        share.extend_from_slice(&extra);
        prop_assert!(ShareFrame::decode(&share).is_err());
        prop_assert!(ShareRef::decode(&share).is_err());
        prop_assert!(decode_message(&share).is_err());
        prop_assert!(decode_message_ref(&share).is_err());

        let mut control = ControlFrame::new(epoch, delivered).encode().to_vec();
        control.extend_from_slice(&extra);
        prop_assert!(ControlFrame::decode(&control).is_err());
        prop_assert!(decode_message(&control).is_err());
        prop_assert!(decode_message_ref(&control).is_err());
    }

    #[test]
    fn control_decoders_agree_on_mutations(
        epoch in any::<u32>(),
        delivered in any::<u64>(),
        mutations in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..8),
        cut in 0usize..=CONTROL_BYTES,
    ) {
        // Mutate, then truncate: the owning and borrowing message
        // decoders must agree byte-for-byte on what they accept.
        let mut enc = ControlFrame::new(epoch, delivered).encode().to_vec();
        for &(idx, byte) in &mutations {
            let len = enc.len();
            enc[idx % len] = byte;
        }
        enc.truncate(cut);
        let owned = decode_message(&Bytes::copy_from_slice(&enc));
        let by_ref = decode_message_ref(&enc);
        match (&owned, &by_ref) {
            (Ok(Message::Control(o)), Ok(MessageRef::Control(r))) => prop_assert_eq!(o, r),
            (Ok(Message::Share(o)), Ok(MessageRef::Share(r))) => {
                prop_assert_eq!(o.payload().as_ref(), r.payload());
                prop_assert_eq!((o.seq(), o.k(), o.m(), o.x()), (r.seq(), r.k(), r.m(), r.x()));
            }
            (Err(oe), Err(re)) => prop_assert_eq!(oe, re),
            other => prop_assert!(false, "decoders disagree: {:?}", other),
        }
    }

    #[test]
    fn single_bit_flips_never_panic(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let frame = ShareFrame::new(7, 2, 3, 1, 99, payload).unwrap();
        let mut enc = frame.encode().to_vec();
        let idx = flip_byte % enc.len();
        enc[idx] ^= 1 << flip_bit;
        // Must either decode to *something* or error — never panic.
        let _ = decode_message(&Bytes::from(enc));
    }
}
