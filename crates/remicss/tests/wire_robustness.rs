//! Robustness of the wire codec: arbitrary bytes never panic the
//! decoder, and valid frames survive arbitrary field values.

use bytes::Bytes;
use mcss_remicss::wire::{decode_message, ControlFrame, Message, ShareFrame};
use proptest::prelude::*;

proptest! {
    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any result is fine; panicking is not.
        let _ = ShareFrame::decode(&bytes);
        let _ = ControlFrame::decode(&bytes);
        let _ = decode_message(&bytes);
    }

    #[test]
    fn share_frame_round_trips_arbitrary_fields(
        seq in any::<u64>(),
        m in 1u8..=255,
        k_off in 0u8..=254,
        x_off in 0u8..=254,
        stamp in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let k = 1 + k_off % m;
        let x = 1 + x_off % m;
        let frame = ShareFrame::new(seq, k, m, x, stamp, payload).unwrap();
        let decoded = ShareFrame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn control_frame_round_trips(epoch in any::<u32>(), delivered in any::<u64>()) {
        let c = ControlFrame::new(epoch, delivered);
        prop_assert_eq!(ControlFrame::decode(&c.encode()).unwrap(), c);
        match decode_message(&c.encode()).unwrap() {
            Message::Control(got) => prop_assert_eq!(got, c),
            Message::Share(_) => prop_assert!(false, "misdispatched"),
        }
    }

    #[test]
    fn truncations_of_valid_frames_error_cleanly(
        cut in 0usize..24,
        payload in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let frame = ShareFrame::new(1, 1, 1, 1, 0, payload).unwrap();
        let enc = frame.encode();
        let cut = cut.min(enc.len().saturating_sub(1));
        prop_assert!(ShareFrame::decode(&enc[..cut]).is_err());
    }

    #[test]
    fn single_bit_flips_never_panic(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let frame = ShareFrame::new(7, 2, 3, 1, 99, payload).unwrap();
        let mut enc = frame.encode().to_vec();
        let idx = flip_byte % enc.len();
        enc[idx] ^= 1 << flip_bit;
        // Must either decode to *something* or error — never panic.
        let _ = decode_message(&Bytes::from(enc));
    }
}
