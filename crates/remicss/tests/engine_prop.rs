//! Determinism properties of the sans-I/O engine, driven by a scripted
//! in-memory harness (no simulator, no sockets):
//!
//! * the same event sequence and seed always produce the identical
//!   action stream and report;
//! * permuting the order of `ChannelWritable` updates (same final
//!   backlog values) changes nothing;
//! * permuting the backlog *values* across channels changes only which
//!   channel each share is assigned to — never the share bytes or the
//!   reconstructed symbols, because the dynamic scheduler's channel pick
//!   is sort-based and draws no randomness.

use std::collections::VecDeque;

use mcss_base::{Endpoint, SimTime};
use mcss_remicss::actions::{Action, Event};
use mcss_remicss::config::ProtocolConfig;
use mcss_remicss::engine::{Engine, SourceMode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng as _};

const N: usize = 4;
const SYMBOL_BYTES: usize = 64;

/// One scripted driver step.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Advance the clock and fire due timers.
    Advance(u64),
    /// Offer one symbol (payload filled with this byte).
    Symbol(u8),
    /// Deliver the oldest in-flight share frame to host B.
    DeliverNext,
}

fn decode_ops(raw: &[(u8, u64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(tag, val)| match tag % 3 {
            0 => Op::Advance(1 + val % 2_000_000), // ≤ 2 ms steps
            1 => Op::Symbol((val & 0xff) as u8),
            _ => Op::DeliverNext,
        })
        .collect()
}

/// Everything observable about a run: the full action stream (frames
/// included) plus the closing report, with channel assignments split
/// out so callers can compare content and placement independently.
#[derive(Debug, Clone, PartialEq)]
struct RunLog {
    /// Actions in drain order, with `SendShare.channel` zeroed.
    actions_sans_channels: Vec<Action>,
    /// The `SendShare.channel` values in drain order.
    share_channels: Vec<usize>,
    /// Reconstructed symbols in delivery order.
    delivered: Vec<(u64, Vec<u8>)>,
}

/// Runs the scripted ops against a fresh engine. `backlogs[i]` is the
/// value reported for channel `i`; `feed_order` is the order the
/// `ChannelWritable` updates are fed in before every symbol.
fn run(ops: &[Op], seed: u64, backlogs: &[SimTime; N], feed_order: &[usize; N]) -> RunLog {
    let config = ProtocolConfig::new(2.0, 3.0)
        .unwrap()
        .with_symbol_bytes(SYMBOL_BYTES);
    let mut engine = Engine::new(config, N, SourceMode::External).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut now = SimTime::ZERO;
    let mut timers: VecDeque<(SimTime, u64)> = VecDeque::new(); // (at, token), FIFO per push
    let mut in_flight: VecDeque<Vec<u8>> = VecDeque::new();
    let mut log = RunLog {
        actions_sans_channels: Vec::new(),
        share_channels: Vec::new(),
        delivered: Vec::new(),
    };

    let drain = |engine: &mut Engine,
                 log: &mut RunLog,
                 timers: &mut VecDeque<(SimTime, u64)>,
                 in_flight: &mut VecDeque<Vec<u8>>| {
        while let Some(action) = engine.poll_action() {
            match action {
                Action::SendShare {
                    channel,
                    from,
                    frame,
                } => {
                    log.share_channels.push(channel);
                    log.actions_sans_channels.push(Action::SendShare {
                        channel: 0,
                        from,
                        frame: frame.clone(),
                    });
                    engine.share_send_ok(channel);
                    in_flight.push_back(frame);
                }
                Action::SetTimer { token, at } => {
                    log.actions_sans_channels
                        .push(Action::SetTimer { token, at });
                    timers.push_back((at, token));
                }
                other => {
                    if let Action::DeliverSymbol { seq, payload } = &other {
                        log.delivered.push((*seq, payload.clone()));
                    }
                    log.actions_sans_channels.push(other);
                }
            }
        }
    };

    engine.handle(now, Event::Started, &mut rng);
    drain(&mut engine, &mut log, &mut timers, &mut in_flight);

    for op in ops {
        match *op {
            Op::Advance(nanos) => {
                now += SimTime::from_nanos(nanos);
                loop {
                    // Earliest due timer; FIFO among equal due times.
                    let due = timers
                        .iter()
                        .enumerate()
                        .filter(|(_, (at, _))| *at <= now)
                        .min_by_key(|(idx, (at, _))| (*at, *idx))
                        .map(|(idx, _)| idx);
                    let Some(idx) = due else { break };
                    let (_, token) = timers.remove(idx).expect("index valid");
                    engine.handle(now, Event::TimerFired { token }, &mut rng);
                    drain(&mut engine, &mut log, &mut timers, &mut in_flight);
                }
            }
            Op::Symbol(fill) => {
                for &channel in feed_order {
                    engine.handle(
                        now,
                        Event::ChannelWritable {
                            channel,
                            from: Endpoint::A,
                            backlog: backlogs[channel],
                        },
                        &mut rng,
                    );
                }
                let payload = vec![fill; SYMBOL_BYTES];
                engine.handle(now, Event::SymbolReady { payload: &payload }, &mut rng);
                drain(&mut engine, &mut log, &mut timers, &mut in_flight);
            }
            Op::DeliverNext => {
                let Some(frame) = in_flight.pop_front() else {
                    continue;
                };
                engine
                    .handle_frame(now, 0, Endpoint::B, &frame, &mut rng)
                    .expect("engine frames decode");
                drain(&mut engine, &mut log, &mut timers, &mut in_flight);
                engine.recycle(frame);
            }
        }
    }
    log
}

fn permutation(seed: u64) -> [usize; N] {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm = [0usize; N];
    for (i, slot) in perm.iter_mut().enumerate() {
        *slot = i;
    }
    for i in (1..N).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

const IDENTITY: [usize; N] = [0, 1, 2, 3];

proptest! {
    #[test]
    fn same_events_same_seed_same_actions(
        raw in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..120),
        seed in any::<u64>(),
    ) {
        let ops = decode_ops(&raw);
        let backlogs = [SimTime::ZERO; N];
        let a = run(&ops, seed, &backlogs, &IDENTITY);
        let b = run(&ops, seed, &backlogs, &IDENTITY);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn channel_writable_order_is_irrelevant(
        raw in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..80),
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        let ops = decode_ops(&raw);
        // Distinct backlogs so a reordering bug would actually bite.
        let backlogs = [
            SimTime::ZERO,
            SimTime::from_micros(50),
            SimTime::from_millis(5),
            SimTime::from_millis(20),
        ];
        let a = run(&ops, seed, &backlogs, &IDENTITY);
        let b = run(&ops, seed, &backlogs, &permutation(perm_seed));
        // Same final backlog state per channel ⇒ identical in full,
        // channel assignments included.
        prop_assert_eq!(a.share_channels.clone(), b.share_channels.clone());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn backlog_values_steer_channels_but_never_content(
        raw in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..80),
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        let ops = decode_ops(&raw);
        let values = [
            SimTime::ZERO,
            SimTime::from_micros(50),
            SimTime::from_millis(5),
            SimTime::from_millis(20),
        ];
        let perm = permutation(perm_seed);
        let mut permuted = values;
        for i in 0..N {
            permuted[i] = values[perm[i]];
        }
        let a = run(&ops, seed, &values, &IDENTITY);
        let b = run(&ops, seed, &permuted, &IDENTITY);
        // Moving the congestion to different channels may move shares to
        // different channels — but the dynamic scheduler's channel pick
        // is sort-based (no RNG), so the share frames and reconstructed
        // symbols are byte-identical.
        prop_assert_eq!(a.actions_sans_channels, b.actions_sans_channels);
        prop_assert_eq!(a.delivered, b.delivered);
    }
}
