//! Per-symbol `(k, M)` selection strategies (§V).

use std::sync::Arc;

use mcss_base::SimTime;
use mcss_core::ShareSchedule;
use rand::rngs::StdRng;
use rand::RngExt as _;

/// A snapshot of sender-side channel state handed to the scheduler: the
/// serialization backlog of every channel and the readiness threshold.
///
/// This is the simulator's stand-in for an `epoll` readiness set.
#[derive(Debug, Clone, Copy)]
pub struct ChannelState<'a> {
    backlogs: &'a [SimTime],
    threshold: SimTime,
}

impl<'a> ChannelState<'a> {
    /// Builds a snapshot from per-channel backlogs.
    #[must_use]
    pub fn new(backlogs: &'a [SimTime], threshold: SimTime) -> Self {
        ChannelState {
            backlogs,
            threshold,
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.backlogs.len()
    }

    /// Whether there are no channels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.backlogs.is_empty()
    }

    /// Backlog of channel `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn backlog(&self, i: usize) -> SimTime {
        self.backlogs[i]
    }

    /// Whether channel `i` is ready for writing.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn is_ready(&self, i: usize) -> bool {
        self.backlogs[i] <= self.threshold
    }

    /// Number of ready channels.
    #[must_use]
    pub fn ready_count(&self) -> usize {
        (0..self.len()).filter(|&i| self.is_ready(i)).count()
    }
}

/// The scheduler's decision for one symbol: threshold `k` and the
/// channels to carry the `m = channels.len()` shares.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Choice {
    /// The threshold for this symbol.
    pub k: u8,
    /// The channels carrying shares, one share each.
    pub channels: Vec<usize>,
}

/// A per-symbol `(k, M)` selection strategy.
pub trait Scheduler {
    /// Chooses parameters for the next symbol.
    fn choose(&mut self, channels: &ChannelState<'_>, rng: &mut StdRng) -> Choice {
        let mut choice = Choice::default();
        self.choose_into(channels, rng, &mut choice);
        choice
    }

    /// Chooses parameters for the next symbol, reusing `choice`'s
    /// buffers (the hot path: no allocation once `choice.channels` has
    /// grown to the channel count).
    fn choose_into(&mut self, channels: &ChannelState<'_>, rng: &mut StdRng, choice: &mut Choice);
}

/// The session's scheduler: one of the concrete strategies, dispatched
/// by value (no boxing; replacing it — as the adaptive controller does —
/// allocates nothing).
#[derive(Debug, Clone)]
pub enum SessionScheduler {
    /// The paper's dynamic share schedule.
    Dynamic(DynamicScheduler),
    /// An explicit (e.g. LP-produced) schedule.
    Static(StaticScheduler),
    /// The round-robin ablation baseline.
    RoundRobin(RoundRobinScheduler),
}

impl Scheduler for SessionScheduler {
    fn choose_into(&mut self, channels: &ChannelState<'_>, rng: &mut StdRng, choice: &mut Choice) {
        let _span = mcss_obs::span!("remicss.schedule");
        match self {
            SessionScheduler::Dynamic(s) => s.choose_into(channels, rng, choice),
            SessionScheduler::Static(s) => s.choose_into(channels, rng, choice),
            SessionScheduler::RoundRobin(s) => s.choose_into(channels, rng, choice),
        }
    }
}

/// Draws integer `(k, m)` pairs whose means are the fractional protocol
/// parameters `(κ, μ)`, with `k ≤ m` guaranteed per draw.
///
/// Uses the same coupling as the Theorem 5 construction: when `⌊κ⌋ =
/// ⌊μ⌋` the high-`k` draw is coupled to the high-`m` draw so the invalid
/// corner `(⌈κ⌉, ⌊μ⌋)` has probability zero.
///
/// # Examples
///
/// ```
/// use mcss_remicss::scheduler::ParamSampler;
/// use rand::SeedableRng;
///
/// let s = ParamSampler::new(1.5, 3.25, 5).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let (k, m) = s.draw(&mut rng);
/// assert!(k as usize <= m && m <= 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamSampler {
    kappa: f64,
    mu: f64,
}

impl ParamSampler {
    /// Creates a sampler, validating `1 ≤ κ ≤ μ ≤ n`.
    ///
    /// # Errors
    ///
    /// [`mcss_core::ModelError::InvalidParameters`] on violation.
    pub fn new(kappa: f64, mu: f64, n: usize) -> Result<Self, mcss_core::ModelError> {
        if !(kappa.is_finite() && mu.is_finite()) || kappa < 1.0 || kappa > mu || mu > n as f64 {
            return Err(mcss_core::ModelError::InvalidParameters { kappa, mu, n });
        }
        Ok(ParamSampler { kappa, mu })
    }

    /// Draws one `(k, m)` pair.
    #[must_use]
    pub fn draw(&self, rng: &mut StdRng) -> (u8, usize) {
        let kf = self.kappa.floor();
        let a = self.kappa - kf;
        let mf = self.mu.floor();
        let b = self.mu - mf;
        let u: f64 = rng.random_range(0.0..1.0);
        if kf as i64 == mf as i64 {
            // Coupled draw: one uniform decides both (a ≤ b here).
            let k_hi = u < a;
            let m_hi = u < b;
            (
                (kf as u8) + u8::from(k_hi),
                (mf as usize) + usize::from(m_hi),
            )
        } else {
            let v: f64 = rng.random_range(0.0..1.0);
            (
                (kf as u8) + u8::from(u < a),
                (mf as usize) + usize::from(v < b),
            )
        }
    }
}

/// The paper's *dynamic share schedule* (§V): draw `(k, m)`, then send on
/// the `m` channels that are "first ready for writing" — implemented as
/// the `m` channels with the smallest serialization backlog, with
/// readiness ties broken by channel index (like `epoll` returning fds in
/// registration order).
#[derive(Debug, Clone)]
pub struct DynamicScheduler {
    sampler: ParamSampler,
}

impl DynamicScheduler {
    /// Creates the scheduler for means `(κ, μ)` over `n` channels.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation from [`ParamSampler::new`].
    pub fn new(kappa: f64, mu: f64, n: usize) -> Result<Self, mcss_core::ModelError> {
        Ok(DynamicScheduler {
            sampler: ParamSampler::new(kappa, mu, n)?,
        })
    }
}

impl Scheduler for DynamicScheduler {
    fn choose_into(&mut self, channels: &ChannelState<'_>, rng: &mut StdRng, choice: &mut Choice) {
        let (k, m) = self.sampler.draw(rng);
        // Ready channels first (in index order, like epoll's ready list),
        // then the least-backlogged busy channels. The sort key is unique
        // (it ends in the index), so the unstable sort is deterministic.
        choice.k = k;
        choice.channels.clear();
        choice.channels.extend(0..channels.len());
        choice
            .channels
            .sort_unstable_by_key(|&i| (!channels.is_ready(i), channels.backlog(i).as_nanos(), i));
        choice.channels.truncate(m);
    }
}

/// Samples `(k, M)` from an explicit [`ShareSchedule`] — typically one
/// produced by the §IV-B or §IV-D linear programs. Ignores readiness:
/// the schedule already encodes the per-channel utilization.
#[derive(Debug, Clone)]
pub struct StaticScheduler {
    schedule: Arc<ShareSchedule>,
}

impl StaticScheduler {
    /// Wraps a share schedule. Takes an `Arc` (or converts into one) so
    /// the sender- and receiver-side schedulers of a session share one
    /// schedule instead of deep-cloning it.
    #[must_use]
    pub fn new(schedule: impl Into<Arc<ShareSchedule>>) -> Self {
        StaticScheduler {
            schedule: schedule.into(),
        }
    }

    /// The wrapped schedule.
    #[must_use]
    pub fn schedule(&self) -> &ShareSchedule {
        &self.schedule
    }
}

impl Scheduler for StaticScheduler {
    fn choose_into(&mut self, _channels: &ChannelState<'_>, rng: &mut StdRng, choice: &mut Choice) {
        let entry = self.schedule.sample(rng);
        choice.k = entry.k();
        choice.channels.clear();
        choice.channels.extend(entry.subset().iter());
    }
}

/// Naive baseline: fixed `(k, m)` from rounding `(κ, μ)` per draw, with
/// the channel subset rotating round-robin regardless of channel rates
/// or readiness.
#[derive(Debug, Clone)]
pub struct RoundRobinScheduler {
    sampler: ParamSampler,
    offset: usize,
}

impl RoundRobinScheduler {
    /// Creates the baseline for means `(κ, μ)` over `n` channels.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation from [`ParamSampler::new`].
    pub fn new(kappa: f64, mu: f64, n: usize) -> Result<Self, mcss_core::ModelError> {
        Ok(RoundRobinScheduler {
            sampler: ParamSampler::new(kappa, mu, n)?,
            offset: 0,
        })
    }
}

impl Scheduler for RoundRobinScheduler {
    fn choose_into(&mut self, channels: &ChannelState<'_>, rng: &mut StdRng, choice: &mut Choice) {
        let (k, m) = self.sampler.draw(rng);
        let n = channels.len();
        choice.k = k;
        choice.channels.clear();
        choice
            .channels
            .extend((0..m).map(|j| (self.offset + j) % n));
        self.offset = (self.offset + m) % n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xabcd)
    }

    fn state(backlogs_us: &[u64]) -> Vec<SimTime> {
        backlogs_us
            .iter()
            .map(|&b| SimTime::from_micros(b))
            .collect()
    }

    #[test]
    fn channel_state_readiness() {
        let b = state(&[0, 100, 5000]);
        let s = ChannelState::new(&b, SimTime::from_micros(100));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.is_ready(0) && s.is_ready(1) && !s.is_ready(2));
        assert_eq!(s.ready_count(), 2);
        assert_eq!(s.backlog(2), SimTime::from_millis(5));
    }

    #[test]
    fn sampler_validates() {
        assert!(ParamSampler::new(1.0, 1.0, 5).is_ok());
        assert!(ParamSampler::new(0.9, 1.0, 5).is_err());
        assert!(ParamSampler::new(2.0, 1.5, 5).is_err());
        assert!(ParamSampler::new(1.0, 5.5, 5).is_err());
    }

    #[test]
    fn sampler_means_converge() {
        let mut r = rng();
        for &(kappa, mu) in &[(1.0, 1.0), (1.5, 3.25), (2.3, 2.6), (4.9, 5.0), (3.0, 3.0)] {
            let s = ParamSampler::new(kappa, mu, 5).unwrap();
            let trials = 60_000;
            let (mut ks, mut ms) = (0u64, 0u64);
            for _ in 0..trials {
                let (k, m) = s.draw(&mut r);
                assert!(k >= 1 && k as usize <= m, "invalid draw ({k}, {m})");
                assert!(m <= 5);
                ks += u64::from(k);
                ms += m as u64;
            }
            let mean_k = ks as f64 / trials as f64;
            let mean_m = ms as f64 / trials as f64;
            assert!((mean_k - kappa).abs() < 0.02, "kappa {kappa}: {mean_k}");
            assert!((mean_m - mu).abs() < 0.02, "mu {mu}: {mean_m}");
        }
    }

    #[test]
    fn sampler_same_cell_never_draws_invalid_corner() {
        // κ = 2.9, μ = 2.95: without coupling, (3, 2) would occur often.
        let s = ParamSampler::new(2.9, 2.95, 5).unwrap();
        let mut r = rng();
        for _ in 0..20_000 {
            let (k, m) = s.draw(&mut r);
            assert!(k as usize <= m);
        }
    }

    #[test]
    fn dynamic_prefers_ready_then_least_backlogged() {
        let mut sched = DynamicScheduler::new(3.0, 3.0, 5).unwrap();
        let b = state(&[5000, 0, 80, 9000, 40]);
        let s = ChannelState::new(&b, SimTime::from_micros(100));
        let c = sched.choose(&s, &mut rng());
        assert_eq!(c.k, 3);
        // Ready channels by backlog: 1 (0µs), 4 (40µs), 2 (80µs).
        assert_eq!(c.channels, vec![1, 4, 2]);
    }

    #[test]
    fn dynamic_falls_back_to_busy_channels() {
        let mut sched = DynamicScheduler::new(2.0, 4.0, 4).unwrap();
        let b = state(&[900, 500, 700, 300]);
        let s = ChannelState::new(&b, SimTime::ZERO); // nothing ready
        let c = sched.choose(&s, &mut rng());
        assert_eq!(c.channels, vec![3, 1, 2, 0]);
    }

    #[test]
    fn static_scheduler_follows_schedule() {
        let schedule = ShareSchedule::max_privacy(4);
        let mut sched = StaticScheduler::new(schedule);
        assert_eq!(sched.schedule().kappa(), 4.0);
        let b = state(&[0, 0, 0, 0]);
        let s = ChannelState::new(&b, SimTime::ZERO);
        let c = sched.choose(&s, &mut rng());
        assert_eq!(c.k, 4);
        assert_eq!(c.channels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_rotates() {
        let mut sched = RoundRobinScheduler::new(2.0, 2.0, 5).unwrap();
        let b = state(&[0; 5]);
        let s = ChannelState::new(&b, SimTime::ZERO);
        let mut r = rng();
        let c1 = sched.choose(&s, &mut r);
        let c2 = sched.choose(&s, &mut r);
        let c3 = sched.choose(&s, &mut r);
        assert_eq!(c1.channels, vec![0, 1]);
        assert_eq!(c2.channels, vec![2, 3]);
        assert_eq!(c3.channels, vec![4, 0]);
    }
}
