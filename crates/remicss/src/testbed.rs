//! Bridging the analytic model and the simulator.
//!
//! The model describes channels abstractly (`r` in shares per unit time);
//! the setups in [`mcss_core::setups`] store testbed rates in Mbit/s and
//! delays in seconds. This module converts a model [`ChannelSet`] into a
//! simulated [`Network`] and back into share-rate units, so that optimal
//! predictions and simulated measurements are directly comparable.

use mcss_core::{Channel, ChannelSet, ModelError};
use mcss_netsim::traffic::{ChannelProbe, EchoBenchmark};
use mcss_netsim::{LinkConfig, Network, NetworkBuilder, SimTime, Simulator};

use crate::config::ProtocolConfig;

/// Builds the simulated network for a model channel set: channel `i`
/// becomes a symmetric full-duplex link with `rateᵢ` Mbit/s, loss `lᵢ`,
/// and one-way delay `dᵢ` seconds per direction — the testbed's
/// `htb` + `netem` configuration.
///
/// The protocol's readiness threshold and queue sizing come from
/// `config`.
#[must_use]
pub fn network_for(channels: &ChannelSet, config: &ProtocolConfig) -> Network {
    let mut b = NetworkBuilder::new();
    for ch in channels {
        let mut cfg =
            LinkConfig::new(ch.rate() * 1e6).with_delay(SimTime::from_secs_f64(ch.delay()));
        if ch.loss() > 0.0 {
            cfg = cfg.with_loss(ch.loss());
        }
        // Queue roughly one readiness window beyond the threshold so a
        // "ready" channel can always absorb a frame without dropping.
        cfg = cfg.with_queue_limit(config.readiness_threshold() * 8);
        b.channel(cfg);
    }
    b.build()
}

/// Converts a Mbit/s channel set into share-per-second units for the
/// given protocol framing: `rᵢ [shares/s] = rᵢ [Mbit/s] · 10⁶ / (wire
/// bytes per share · 8)`. Risk, loss, and delay are unchanged.
///
/// # Errors
///
/// Propagates [`ModelError::Channel`] (cannot occur for a valid input
/// set).
pub fn share_rate_channels(
    channels: &ChannelSet,
    config: &ProtocolConfig,
) -> Result<ChannelSet, ModelError> {
    let bits_per_share = (config.share_wire_bytes() * 8) as f64;
    let converted = channels
        .iter()
        .map(|ch| {
            Channel::new(
                ch.risk(),
                ch.loss(),
                ch.delay(),
                ch.rate() * 1e6 / bits_per_share,
            )
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ChannelSet::new(converted)?)
}

/// The Theorem 4 optimal *symbol* rate (symbols per second) for this
/// channel set, protocol framing, and the config's `μ`.
///
/// # Errors
///
/// [`ModelError::InvalidParameters`] if the config's `μ` exceeds the
/// number of channels.
pub fn optimal_symbol_rate(
    channels: &ChannelSet,
    config: &ProtocolConfig,
) -> Result<f64, ModelError> {
    let share_channels = share_rate_channels(channels, config)?;
    mcss_core::optimal::optimal_rate(&share_channels, config.mu())
}

/// Measures a [`ChannelSet`] from a live (simulated) network, exactly
/// as §VI-A calibrates the testbed before each experiment: an
/// `iperf`-style probe per channel for rate, a half-rate probe for loss,
/// and an echo benchmark for one-way delay (RTT/2, minus the probe's
/// own serialization time). Eavesdropping risks are not measurable from
/// traffic, so they are supplied by the caller (one per channel).
///
/// `fresh_network` must produce an identically-configured network with
/// clean statistics on every call (each measurement runs in isolation so
/// probes never share a bottleneck).
///
/// # Errors
///
/// [`ModelError::Channel`] if a supplied risk is out of range or a
/// measured property falls outside the model's domain (e.g. a channel
/// that delivered nothing).
///
/// # Examples
///
/// ```no_run
/// use mcss_remicss::{config::ProtocolConfig, testbed};
/// use mcss_netsim::SimTime;
///
/// # fn main() -> Result<(), mcss_core::ModelError> {
/// let truth = mcss_core::setups::lossy();
/// let config = ProtocolConfig::new(1.0, 1.0)?;
/// let measured = testbed::calibrate(
///     || testbed::network_for(&truth, &config),
///     &[0.1; 5],
///     SimTime::from_secs(1),
///     7,
/// )?;
/// assert_eq!(measured.len(), truth.len());
/// # Ok(())
/// # }
/// ```
pub fn calibrate(
    mut fresh_network: impl FnMut() -> Network,
    risks: &[f64],
    duration: SimTime,
    seed: u64,
) -> Result<ChannelSet, ModelError> {
    const PROBE_BYTES: usize = 1250;
    const ECHO_BYTES: usize = 125;
    let n = fresh_network().len();
    assert_eq!(risks.len(), n, "one risk per channel");
    let mut channels = Vec::with_capacity(n);
    for (i, &risk) in risks.iter().enumerate() {
        // 1. Rate: saturate the channel, report the shaped rate.
        let probe = ChannelProbe::new(i, 2e9, PROBE_BYTES, duration);
        let mut sim = Simulator::new(fresh_network(), probe, seed ^ (i as u64) << 1);
        sim.run_until(duration + SimTime::from_secs(1));
        let rate_bps = sim.app().achieved_bps();

        // 2. Loss: probe at half the measured rate so the queue never
        //    drops; residual loss is the channel's own.
        let probe = ChannelProbe::new(i, rate_bps * 0.5, PROBE_BYTES, duration);
        let mut sim = Simulator::new(fresh_network(), probe, seed ^ (i as u64) << 2);
        sim.run_until(duration + SimTime::from_secs(1));
        let loss = sim.app().loss_fraction().clamp(0.0, 0.999_999);

        // The saturation probe observed goodput, which a channel's own
        // random loss shrinks by (1 − loss); undo that to report the
        // line rate rather than the deliverable rate.
        let rate_bps = rate_bps / (1.0 - loss);

        // 3. Delay: low-rate echo; one-way = RTT/2 minus the probe's own
        //    serialization at the measured line rate.
        let echo_rate = (rate_bps * 0.2).min(1e6);
        let echo = EchoBenchmark::new(i, echo_rate, ECHO_BYTES, duration);
        let mut sim = Simulator::new(fresh_network(), echo, seed ^ (i as u64) << 3);
        sim.run_until(duration + SimTime::from_secs(1));
        let one_way = sim
            .app()
            .mean_one_way_delay()
            .map_or(0.0, |d| d.as_secs_f64());
        let serialization = (ECHO_BYTES * 8) as f64 / rate_bps;
        let delay = (one_way - serialization).max(0.0);

        channels.push(Channel::new(risk, loss, delay, rate_bps / 1e6)?);
    }
    Ok(ChannelSet::new(channels)?)
}

/// Payload bits per second carried by a symbol rate under this framing.
#[must_use]
pub fn payload_bps(symbol_rate: f64, config: &ProtocolConfig) -> f64 {
    symbol_rate * (config.symbol_bytes() * 8) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcss_core::setups;

    #[test]
    fn network_mirrors_channels() {
        let channels = setups::lossy();
        let config = ProtocolConfig::new(1.0, 1.0).unwrap();
        let net = network_for(&channels, &config);
        assert_eq!(net.len(), 5);
        for (i, ch) in channels.iter().enumerate() {
            let link = net.channel(i).forward();
            assert_eq!(link.config().rate_bps(), ch.rate() * 1e6);
            assert_eq!(link.config().loss(), ch.loss());
        }
    }

    #[test]
    fn delays_converted_to_simtime() {
        let channels = setups::delayed();
        let config = ProtocolConfig::new(1.0, 1.0).unwrap();
        let net = network_for(&channels, &config);
        assert_eq!(
            net.channel(2).forward().config().delay(),
            SimTime::from_micros(12_500)
        );
    }

    #[test]
    fn share_rate_conversion() {
        let channels = setups::diverse();
        let config = ProtocolConfig::new(1.0, 1.0)
            .unwrap()
            .with_symbol_bytes(1226);
        // Wire share = 1226 + 24 = 1250 bytes = 10_000 bits.
        let sc = share_rate_channels(&channels, &config).unwrap();
        assert!((sc.channel(0).rate() - 500.0).abs() < 1e-9); // 5 Mbit/s
        assert!((sc.channel(4).rate() - 10_000.0).abs() < 1e-9); // 100 Mbit/s
    }

    #[test]
    fn optimal_symbol_rate_at_mu_one_is_total() {
        let channels = setups::diverse();
        let config = ProtocolConfig::new(1.0, 1.0)
            .unwrap()
            .with_symbol_bytes(1226);
        let r = optimal_symbol_rate(&channels, &config).unwrap();
        // 250 Mbit/s over 10 kbit shares.
        assert!((r - 25_000.0).abs() < 1e-6);
        assert!((payload_bps(r, &config) - 25_000.0 * 1226.0 * 8.0).abs() < 1e-6);
    }

    #[test]
    fn calibration_recovers_lossy_setup() {
        let truth = setups::lossy();
        let config = ProtocolConfig::new(1.0, 1.0).unwrap();
        let measured = calibrate(
            || network_for(&truth, &config),
            &[0.1; 5],
            SimTime::from_secs(2),
            99,
        )
        .unwrap();
        for (i, (t, m)) in truth.iter().zip(measured.iter()).enumerate() {
            assert!(
                (m.rate() - t.rate()).abs() / t.rate() < 0.03,
                "channel {i} rate: measured {} truth {}",
                m.rate(),
                t.rate()
            );
            assert!(
                (m.loss() - t.loss()).abs() < 0.01,
                "channel {i} loss: measured {} truth {}",
                m.loss(),
                t.loss()
            );
            assert_eq!(m.risk(), 0.1);
        }
    }

    #[test]
    fn calibration_recovers_delays() {
        let truth = setups::delayed();
        let config = ProtocolConfig::new(1.0, 1.0).unwrap();
        let measured = calibrate(
            || network_for(&truth, &config),
            &[0.1; 5],
            SimTime::from_secs(1),
            41,
        )
        .unwrap();
        for (i, (t, m)) in truth.iter().zip(measured.iter()).enumerate() {
            assert!(
                (m.delay() - t.delay()).abs() < 0.2e-3,
                "channel {i} delay: measured {} truth {}",
                m.delay(),
                t.delay()
            );
        }
    }

    #[test]
    fn mu_exceeding_channel_count_rejected() {
        let channels = setups::diverse();
        let config = ProtocolConfig::new(1.0, 6.0).unwrap();
        assert!(optimal_symbol_rate(&channels, &config).is_err());
    }
}
