//! Receiver-side share reassembly (§V).
//!
//! Without reliable share transport, shares of many symbols are in flight
//! at once: loss, reordering, and differing channel rates interleave
//! them arbitrarily. The receiver buffers partial symbols in a table and,
//! borrowing from IP fragment reassembly, bounds that table two ways:
//!
//! * **timeout eviction** — a partial symbol older than the timeout is
//!   abandoned (its remaining shares are presumed lost);
//! * **memory cap** — when buffered share bytes exceed the cap, the
//!   oldest partial symbols are evicted first.
//!
//! Completed symbols are remembered briefly so that late duplicate
//! shares are recognized as stale rather than re-buffered.

use std::collections::{HashMap, VecDeque};

use mcss_netsim::SimTime;
use mcss_shamir::{reconstruct, Share};

use crate::wire::ShareFrame;

/// Outcome of offering one share frame to the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Accept {
    /// The share was buffered; the symbol is still incomplete.
    Stored,
    /// The share completed its symbol; here is the reconstructed payload.
    Completed(Vec<u8>),
    /// A share with this abscissa was already buffered for this symbol.
    Duplicate,
    /// The symbol was already completed or evicted; the share is stale.
    Stale,
    /// The share disagreed with its siblings (length or threshold) and
    /// was rejected.
    Inconsistent,
}

/// Counters kept by the reassembly table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReassemblyStats {
    /// Symbols successfully reconstructed.
    pub completed: u64,
    /// Partial symbols evicted by the timeout.
    pub timeout_evictions: u64,
    /// Partial symbols evicted by the memory cap.
    pub memory_evictions: u64,
    /// Duplicate shares discarded.
    pub duplicates: u64,
    /// Stale shares (for already-completed or evicted symbols).
    pub stale: u64,
    /// Shares rejected for disagreeing with buffered siblings.
    pub inconsistent: u64,
}

#[derive(Debug)]
struct Pending {
    k: u8,
    shares: Vec<Share>,
    first_seen: SimTime,
    bytes: usize,
}

/// The share reassembly table.
///
/// # Examples
///
/// ```
/// use mcss_remicss::{reassembly::{Accept, ReassemblyTable}, wire::ShareFrame};
/// use mcss_netsim::SimTime;
/// use mcss_shamir::{split, Params};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut table = ReassemblyTable::new(SimTime::from_millis(100), 1 << 20);
/// let shares = split(b"secret", Params::new(2, 3)?, &mut rand::rng())?;
/// let f0 = ShareFrame::new(0, 2, 3, shares[0].x(), 0, shares[0].data().to_vec())?;
/// let f1 = ShareFrame::new(0, 2, 3, shares[1].x(), 0, shares[1].data().to_vec())?;
/// assert_eq!(table.accept(&f0, SimTime::ZERO), Accept::Stored);
/// let Accept::Completed(payload) = table.accept(&f1, SimTime::ZERO) else {
///     panic!("second share should complete a 2-of-3 symbol");
/// };
/// assert_eq!(payload, b"secret");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ReassemblyTable {
    timeout: SimTime,
    capacity_bytes: usize,
    buffered_bytes: usize,
    pending: HashMap<u64, Pending>,
    /// Insertion order of pending symbols, for oldest-first memory
    /// eviction (may contain ids already completed or evicted).
    order: VecDeque<u64>,
    /// Recently completed or evicted symbols and when they resolved.
    resolved: HashMap<u64, SimTime>,
    stats: ReassemblyStats,
}

impl ReassemblyTable {
    /// Creates a table with the given eviction timeout and memory cap.
    #[must_use]
    pub fn new(timeout: SimTime, capacity_bytes: usize) -> Self {
        ReassemblyTable {
            timeout,
            capacity_bytes,
            buffered_bytes: 0,
            pending: HashMap::new(),
            order: VecDeque::new(),
            resolved: HashMap::new(),
            stats: ReassemblyStats::default(),
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> ReassemblyStats {
        self.stats
    }

    /// Number of partial symbols currently buffered.
    #[must_use]
    pub fn pending_symbols(&self) -> usize {
        self.pending.len()
    }

    /// Buffered share bytes.
    #[must_use]
    pub fn buffered_bytes(&self) -> usize {
        self.buffered_bytes
    }

    /// Offers a share frame to the table at time `now`.
    pub fn accept(&mut self, frame: &ShareFrame, now: SimTime) -> Accept {
        let seq = frame.seq();
        if self.resolved.contains_key(&seq) {
            self.stats.stale += 1;
            return Accept::Stale;
        }
        let share = Share::new(frame.x(), frame.k(), frame.payload().to_vec());
        match self.pending.get_mut(&seq) {
            None => {
                if frame.k() == 1 {
                    // Threshold 1: the share is the symbol.
                    let payload = share.into_data();
                    self.resolve(seq, now);
                    self.stats.completed += 1;
                    return Accept::Completed(payload);
                }
                let bytes = frame.payload().len();
                self.make_room(bytes);
                self.pending.insert(
                    seq,
                    Pending {
                        k: frame.k(),
                        shares: vec![share],
                        first_seen: now,
                        bytes,
                    },
                );
                self.order.push_back(seq);
                self.buffered_bytes += bytes;
                Accept::Stored
            }
            Some(p) => {
                if p.k != frame.k()
                    || p.shares
                        .first()
                        .is_some_and(|s| s.data().len() != frame.payload().len())
                {
                    self.stats.inconsistent += 1;
                    return Accept::Inconsistent;
                }
                if p.shares.iter().any(|s| s.x() == frame.x()) {
                    self.stats.duplicates += 1;
                    return Accept::Duplicate;
                }
                p.shares.push(share);
                self.buffered_bytes += frame.payload().len();
                p.bytes += frame.payload().len();
                if p.shares.len() >= p.k as usize {
                    let p = self.pending.remove(&seq).expect("just seen");
                    self.buffered_bytes -= p.bytes;
                    self.resolve(seq, now);
                    match reconstruct(&p.shares) {
                        Ok(payload) => {
                            self.stats.completed += 1;
                            Accept::Completed(payload)
                        }
                        Err(_) => {
                            self.stats.inconsistent += 1;
                            Accept::Inconsistent
                        }
                    }
                } else {
                    Accept::Stored
                }
            }
        }
    }

    /// Evicts timed-out partial symbols and prunes stale resolution
    /// records. Call periodically (the session does so on a timer).
    pub fn sweep(&mut self, now: SimTime) {
        let timeout = self.timeout;
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| now.saturating_sub(p.first_seen) > timeout)
            .map(|(&seq, _)| seq)
            .collect();
        for seq in expired {
            let p = self.pending.remove(&seq).expect("listed above");
            self.buffered_bytes -= p.bytes;
            self.resolve(seq, now);
            self.stats.timeout_evictions += 1;
        }
        // Forget resolutions old enough that no share can still arrive
        // (keep them one extra timeout beyond the eviction horizon).
        let horizon = self.timeout * 2;
        self.resolved
            .retain(|_, &mut t| now.saturating_sub(t) <= horizon);
        self.order.retain(|seq| self.pending.contains_key(seq));
    }

    fn resolve(&mut self, seq: u64, now: SimTime) {
        self.resolved.insert(seq, now);
    }

    /// Evicts oldest partial symbols until `incoming` more bytes fit
    /// under the cap.
    fn make_room(&mut self, incoming: usize) {
        while self.buffered_bytes + incoming > self.capacity_bytes {
            // Oldest still-pending symbol.
            let Some(seq) = self.order.pop_front() else {
                break;
            };
            if let Some(p) = self.pending.remove(&seq) {
                self.buffered_bytes -= p.bytes;
                let at = p.first_seen;
                self.resolve(seq, at);
                self.stats.memory_evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcss_shamir::{split, Params};
    use rand::SeedableRng;

    fn frames(seq: u64, k: u8, m: u8, payload: &[u8]) -> Vec<ShareFrame> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seq + 1);
        let shares = split(payload, Params::new(k, m).unwrap(), &mut rng).unwrap();
        shares
            .iter()
            .map(|s| ShareFrame::new(seq, k, m, s.x(), 0, s.data().to_vec()).unwrap())
            .collect()
    }

    fn table() -> ReassemblyTable {
        ReassemblyTable::new(SimTime::from_millis(100), 1 << 20)
    }

    #[test]
    fn completes_at_threshold() {
        let mut t = table();
        let fs = frames(1, 3, 5, b"payload");
        assert_eq!(t.accept(&fs[0], SimTime::ZERO), Accept::Stored);
        assert_eq!(t.accept(&fs[2], SimTime::ZERO), Accept::Stored);
        let Accept::Completed(p) = t.accept(&fs[4], SimTime::ZERO) else {
            panic!("3rd share must complete");
        };
        assert_eq!(p, b"payload");
        assert_eq!(t.stats().completed, 1);
        assert_eq!(t.pending_symbols(), 0);
        assert_eq!(t.buffered_bytes(), 0);
    }

    #[test]
    fn threshold_one_completes_immediately() {
        let mut t = table();
        let fs = frames(9, 1, 3, b"now");
        let Accept::Completed(p) = t.accept(&fs[1], SimTime::ZERO) else {
            panic!("k=1 completes on first share");
        };
        assert_eq!(p, b"now");
    }

    #[test]
    fn late_shares_are_stale() {
        let mut t = table();
        let fs = frames(2, 2, 3, b"xy");
        t.accept(&fs[0], SimTime::ZERO);
        t.accept(&fs[1], SimTime::ZERO);
        assert_eq!(t.accept(&fs[2], SimTime::ZERO), Accept::Stale);
        assert_eq!(t.stats().stale, 1);
    }

    #[test]
    fn duplicates_detected() {
        let mut t = table();
        let fs = frames(3, 3, 3, b"dup");
        t.accept(&fs[0], SimTime::ZERO);
        assert_eq!(t.accept(&fs[0], SimTime::ZERO), Accept::Duplicate);
        assert_eq!(t.stats().duplicates, 1);
    }

    #[test]
    fn inconsistent_share_rejected() {
        let mut t = table();
        let fs = frames(4, 2, 3, b"abcd");
        t.accept(&fs[0], SimTime::ZERO);
        // Same seq, different k.
        let alien = ShareFrame::new(4, 3, 3, 2, 0, vec![0u8; 4]).unwrap();
        assert_eq!(t.accept(&alien, SimTime::ZERO), Accept::Inconsistent);
        // Same seq, different length.
        let alien = ShareFrame::new(4, 2, 3, 2, 0, vec![0u8; 9]).unwrap();
        assert_eq!(t.accept(&alien, SimTime::ZERO), Accept::Inconsistent);
        assert_eq!(t.stats().inconsistent, 2);
    }

    #[test]
    fn timeout_evicts_partials() {
        let mut t = ReassemblyTable::new(SimTime::from_millis(10), 1 << 20);
        let fs = frames(5, 2, 3, b"slow");
        t.accept(&fs[0], SimTime::ZERO);
        t.sweep(SimTime::from_millis(5));
        assert_eq!(t.pending_symbols(), 1, "not yet timed out");
        t.sweep(SimTime::from_millis(11));
        assert_eq!(t.pending_symbols(), 0);
        assert_eq!(t.stats().timeout_evictions, 1);
        // A share arriving after eviction is stale.
        assert_eq!(t.accept(&fs[1], SimTime::from_millis(12)), Accept::Stale);
    }

    #[test]
    fn memory_cap_evicts_oldest() {
        // Cap of 100 bytes; 40-byte shares.
        let mut t = ReassemblyTable::new(SimTime::from_secs(1), 100);
        let a = frames(10, 2, 2, &[1u8; 40]);
        let b = frames(11, 2, 2, &[2u8; 40]);
        let c = frames(12, 2, 2, &[3u8; 40]);
        t.accept(&a[0], SimTime::ZERO);
        t.accept(&b[0], SimTime::from_nanos(1));
        assert_eq!(t.buffered_bytes(), 80);
        // Third symbol exceeds the cap: symbol 10 (oldest) is evicted.
        t.accept(&c[0], SimTime::from_nanos(2));
        assert_eq!(t.stats().memory_evictions, 1);
        assert_eq!(t.buffered_bytes(), 80);
        assert_eq!(t.accept(&a[1], SimTime::from_nanos(3)), Accept::Stale);
        // Symbols 11 and 12 still complete.
        assert!(matches!(
            t.accept(&b[1], SimTime::from_nanos(4)),
            Accept::Completed(_)
        ));
        assert!(matches!(
            t.accept(&c[1], SimTime::from_nanos(5)),
            Accept::Completed(_)
        ));
    }

    #[test]
    fn resolved_records_pruned() {
        let mut t = ReassemblyTable::new(SimTime::from_millis(10), 1 << 20);
        let fs = frames(20, 1, 1, b"x");
        t.accept(&fs[0], SimTime::ZERO);
        // After 2× timeout the resolution record is pruned, so a late
        // duplicate is treated as a fresh symbol (and completes again,
        // as in IP reassembly where the id space is reused).
        t.sweep(SimTime::from_millis(25));
        assert!(matches!(
            t.accept(&fs[0], SimTime::from_millis(26)),
            Accept::Completed(_)
        ));
    }

    #[test]
    fn interleaved_symbols_reassemble() {
        let mut t = table();
        let a = frames(30, 2, 3, b"AAAA");
        let b = frames(31, 2, 3, b"BBBB");
        t.accept(&a[0], SimTime::ZERO);
        t.accept(&b[2], SimTime::ZERO);
        assert_eq!(t.pending_symbols(), 2);
        let Accept::Completed(pb) = t.accept(&b[0], SimTime::ZERO) else {
            panic!()
        };
        let Accept::Completed(pa) = t.accept(&a[1], SimTime::ZERO) else {
            panic!()
        };
        assert_eq!((pa.as_slice(), pb.as_slice()), (&b"AAAA"[..], &b"BBBB"[..]));
    }
}
