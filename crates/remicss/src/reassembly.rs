//! Receiver-side share reassembly (§V).
//!
//! Without reliable share transport, shares of many symbols are in flight
//! at once: loss, reordering, and differing channel rates interleave
//! them arbitrarily. The receiver buffers partial symbols in a table and,
//! borrowing from IP fragment reassembly, bounds that table three ways:
//!
//! * **timeout eviction** — a partial symbol older than the timeout is
//!   abandoned (its remaining shares are presumed lost);
//! * **memory cap** — when buffered share bytes exceed the cap, the
//!   oldest partial symbols are evicted first;
//! * **resolution cap** — completed/evicted symbol ids are remembered
//!   (so late duplicates read as stale, not fresh) in a map bounded by
//!   [`with_resolved_cap`](ReassemblyTable::with_resolved_cap),
//!   evicting oldest-first, so memory stays flat on unbounded runs.
//!
//! Share data lives in a [`BufferPool`]: each buffered share occupies a
//! generation-checked pool slot, reconstruction accumulates directly
//! into a caller-provided output buffer, and completed or evicted
//! entries hand their buffers back — the steady-state receive path
//! performs no heap allocation (see
//! [`accept_into`](ReassemblyTable::accept_into)).

use std::collections::{HashMap, VecDeque};

use mcss_base::{BufHandle, BufferPool, SimTime};
use mcss_codec::{xor2d, CodecId};
use mcss_gf256::slice as gf_slice;
use mcss_shamir::lagrange_weight_xs;

use crate::wire::{ShareFrame, ShareRef};

/// Outcome of offering one share frame to the table via the owning
/// [`accept`](ReassemblyTable::accept) API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Accept {
    /// The share was buffered; the symbol is still incomplete.
    Stored,
    /// The share completed its symbol; here is the reconstructed payload.
    Completed(Vec<u8>),
    /// A share with this abscissa was already buffered for this symbol.
    Duplicate,
    /// The symbol was already completed or evicted; the share is stale.
    Stale,
    /// The share disagreed with its siblings (length, threshold,
    /// multiplicity, or codec) and was rejected.
    Inconsistent,
}

/// Outcome of [`accept_into`](ReassemblyTable::accept_into): like
/// [`Accept`] but the completed payload is written to the caller's
/// buffer instead of being allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptOutcome {
    /// The share was buffered; the symbol is still incomplete.
    Stored,
    /// The share completed its symbol; the payload is in `out`.
    Completed,
    /// A share with this abscissa was already buffered for this symbol.
    Duplicate,
    /// The symbol was already completed or evicted; the share is stale.
    Stale,
    /// The share disagreed with its siblings and was rejected.
    Inconsistent,
}

/// Counters kept by the reassembly table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReassemblyStats {
    /// Symbols successfully reconstructed.
    pub completed: u64,
    /// Partial symbols evicted by the timeout.
    pub timeout_evictions: u64,
    /// Partial symbols evicted by the memory cap.
    pub memory_evictions: u64,
    /// Duplicate shares discarded.
    pub duplicates: u64,
    /// Stale shares (for already-completed or evicted symbols).
    pub stale: u64,
    /// Shares rejected for disagreeing with buffered siblings.
    pub inconsistent: u64,
    /// Resolution records evicted by the resolution cap (distinct from
    /// the routine horizon pruning in [`ReassemblyTable::sweep`]).
    pub resolved_evictions: u64,
    /// Symbols that reached their threshold but whose codec decode
    /// failed (malformed share payloads); the symbol is resolved (late
    /// shares read as stale) and the caller sees `Inconsistent`.
    /// Shamir's Lagrange interpolation is total, so only non-Shamir
    /// codecs can bump this.
    pub decode_failures: u64,
}

#[derive(Debug)]
struct Pending {
    codec: CodecId,
    k: u8,
    m: u8,
    /// `(abscissa, pooled share data)` in arrival order.
    shares: Vec<(u8, BufHandle)>,
    first_seen: SimTime,
    bytes: usize,
}

/// Default bound on remembered resolutions; high enough that the
/// time-horizon pruning in [`ReassemblyTable::sweep`] normally wins.
pub const DEFAULT_RESOLVED_CAP: usize = 1 << 20;

/// The share reassembly table.
///
/// # Examples
///
/// ```
/// use mcss_remicss::{reassembly::{Accept, ReassemblyTable}, wire::ShareFrame};
/// use mcss_base::SimTime;
/// use mcss_shamir::{split, Params};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut table = ReassemblyTable::new(SimTime::from_millis(100), 1 << 20);
/// let shares = split(b"secret", Params::new(2, 3)?, &mut rand::rng())?;
/// let f0 = ShareFrame::new(0, 2, 3, shares[0].x(), 0, shares[0].data().to_vec())?;
/// let f1 = ShareFrame::new(0, 2, 3, shares[1].x(), 0, shares[1].data().to_vec())?;
/// assert_eq!(table.accept(&f0, SimTime::ZERO), Accept::Stored);
/// let Accept::Completed(payload) = table.accept(&f1, SimTime::ZERO) else {
///     panic!("second share should complete a 2-of-3 symbol");
/// };
/// assert_eq!(payload, b"secret");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ReassemblyTable {
    timeout: SimTime,
    capacity_bytes: usize,
    resolved_cap: usize,
    buffered_bytes: usize,
    pending: HashMap<u64, Pending>,
    /// Post-rehash capacity high-water of `pending` (see
    /// [`reserve_headroom`](Self::reserve_headroom)).
    pending_full_cap: usize,
    /// Insertion order of pending symbols, for oldest-first memory
    /// eviction (may contain ids already completed or evicted).
    order: VecDeque<u64>,
    /// Recently completed or evicted symbols and when they resolved.
    resolved: HashMap<u64, SimTime>,
    /// Post-rehash capacity high-water of `resolved`.
    resolved_full_cap: usize,
    /// Insertion order of resolution records, for oldest-first eviction
    /// at the cap (may contain ids already pruned by the sweep).
    resolved_order: VecDeque<u64>,
    /// Share-data buffers, recycled across symbols.
    pool: BufferPool,
    /// Recycled share lists of removed `Pending` entries.
    spare_shares: Vec<Vec<(u8, BufHandle)>>,
    /// Abscissa scratch for reconstruction.
    xs: Vec<u8>,
    /// Expired-id scratch for [`sweep`](ReassemblyTable::sweep).
    expired: Vec<u64>,
    /// Buffering time of the most recently completed symbol.
    last_completed_residency: SimTime,
    stats: ReassemblyStats,
}

impl ReassemblyTable {
    /// Creates a table with the given eviction timeout and memory cap
    /// (and the [`DEFAULT_RESOLVED_CAP`] on resolution records).
    #[must_use]
    pub fn new(timeout: SimTime, capacity_bytes: usize) -> Self {
        ReassemblyTable {
            timeout,
            capacity_bytes,
            resolved_cap: DEFAULT_RESOLVED_CAP,
            buffered_bytes: 0,
            pending: HashMap::new(),
            pending_full_cap: 0,
            order: VecDeque::new(),
            resolved: HashMap::new(),
            resolved_full_cap: 0,
            resolved_order: VecDeque::new(),
            pool: BufferPool::new(),
            spare_shares: Vec::new(),
            xs: Vec::new(),
            expired: Vec::new(),
            last_completed_residency: SimTime::ZERO,
            stats: ReassemblyStats::default(),
        }
    }

    /// Bounds the resolved-symbol memory to `cap` records, evicting
    /// oldest-first; an evicted record makes a late duplicate of that
    /// symbol read as fresh rather than stale (exactly as after the
    /// sweep's time-horizon pruning).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_resolved_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "resolved cap must be positive");
        self.resolved_cap = cap;
        self
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> ReassemblyStats {
        self.stats
    }

    /// Number of partial symbols currently buffered.
    #[must_use]
    pub fn pending_symbols(&self) -> usize {
        self.pending.len()
    }

    /// Buffered share bytes.
    #[must_use]
    pub fn buffered_bytes(&self) -> usize {
        self.buffered_bytes
    }

    /// Number of remembered resolutions (bounded by the resolved cap).
    #[must_use]
    pub fn resolved_records(&self) -> usize {
        self.resolved.len()
    }

    /// Buffers allocated by the internal share pool; flat after warmup
    /// on the steady-state path.
    #[must_use]
    pub fn pool_misses(&self) -> u64 {
        self.pool.misses()
    }

    /// Buffers served from the internal share pool without allocating.
    #[must_use]
    pub fn pool_hits(&self) -> u64 {
        self.pool.hits()
    }

    /// How long the most recently completed symbol sat in the table
    /// (first share seen to reconstruction; zero for `k = 1` symbols,
    /// which never buffer). Read this right after a `Completed` outcome
    /// to sample reassembly residency without changing the accept API.
    #[must_use]
    pub fn last_completed_residency(&self) -> SimTime {
        self.last_completed_residency
    }

    /// Offers a share frame to the table at time `now`, allocating the
    /// completed payload. The zero-allocation path is
    /// [`accept_into`](ReassemblyTable::accept_into).
    pub fn accept(&mut self, frame: &ShareFrame, now: SimTime) -> Accept {
        let mut out = Vec::new();
        match self.offer(
            frame.seq(),
            frame.codec(),
            frame.k(),
            frame.m(),
            frame.x(),
            frame.payload(),
            now,
            &mut out,
        ) {
            AcceptOutcome::Stored => Accept::Stored,
            AcceptOutcome::Completed => Accept::Completed(out),
            AcceptOutcome::Duplicate => Accept::Duplicate,
            AcceptOutcome::Stale => Accept::Stale,
            AcceptOutcome::Inconsistent => Accept::Inconsistent,
        }
    }

    /// Offers an in-place decoded share to the table at time `now`.
    ///
    /// On [`AcceptOutcome::Completed`], the reconstructed payload is in
    /// `out` (cleared first). Steady state, this path performs no heap
    /// allocation: share data goes into pooled buffers, reconstruction
    /// accumulates into `out`'s existing capacity, and the completed
    /// symbol's buffers return to the pool.
    pub fn accept_into(
        &mut self,
        share: &ShareRef<'_>,
        now: SimTime,
        out: &mut Vec<u8>,
    ) -> AcceptOutcome {
        self.offer(
            share.seq(),
            share.codec(),
            share.k(),
            share.m(),
            share.x(),
            share.payload(),
            now,
            out,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn offer(
        &mut self,
        seq: u64,
        codec: CodecId,
        k: u8,
        m: u8,
        x: u8,
        payload: &[u8],
        now: SimTime,
        out: &mut Vec<u8>,
    ) -> AcceptOutcome {
        if self.resolved.contains_key(&seq) {
            self.stats.stale += 1;
            return AcceptOutcome::Stale;
        }
        if !self.pending.contains_key(&seq) {
            if k == 1 {
                // Threshold 1: a single share carries the symbol.
                out.clear();
                match codec {
                    // The Shamir share *is* the symbol.
                    CodecId::Shamir => out.extend_from_slice(payload),
                    // The XOR share wraps it (length prefix); a garbled
                    // wrapper must not resolve the symbol.
                    CodecId::Xor2d => {
                        if xor2d::reconstruct_with(1, m, 1, |_| x, |_| payload, out).is_err() {
                            self.stats.decode_failures += 1;
                            return AcceptOutcome::Inconsistent;
                        }
                    }
                }
                self.resolve(seq, now);
                self.last_completed_residency = SimTime::ZERO;
                self.stats.completed += 1;
                return AcceptOutcome::Completed;
            }
            let bytes = payload.len();
            self.make_room(bytes);
            let handle = self.pool.acquire();
            self.pool.get_mut(handle).extend_from_slice(payload);
            let mut shares = self.spare_shares.pop().unwrap_or_default();
            shares.push((x, handle));
            self.pending.insert(
                seq,
                Pending {
                    codec,
                    k,
                    m,
                    shares,
                    first_seen: now,
                    bytes,
                },
            );
            self.order.push_back(seq);
            self.buffered_bytes += bytes;
            Self::reserve_headroom(&mut self.pending, &mut self.pending_full_cap);
            return AcceptOutcome::Stored;
        }
        let p = self.pending.get_mut(&seq).expect("checked above");
        let first_len = p.shares.first().map(|&(_, h)| self.pool.get(h).len());
        if p.codec != codec
            || p.k != k
            || p.m != m
            || first_len.is_some_and(|len| len != payload.len())
        {
            self.stats.inconsistent += 1;
            return AcceptOutcome::Inconsistent;
        }
        if p.shares.iter().any(|&(sx, _)| sx == x) {
            self.stats.duplicates += 1;
            return AcceptOutcome::Duplicate;
        }
        let handle = self.pool.acquire();
        self.pool.get_mut(handle).extend_from_slice(payload);
        let p = self.pending.get_mut(&seq).expect("checked above");
        p.shares.push((x, handle));
        p.bytes += payload.len();
        self.buffered_bytes += payload.len();
        if p.shares.len() >= p.k as usize {
            let p = self.pending.remove(&seq).expect("just seen");
            self.buffered_bytes -= p.bytes;
            self.resolve(seq, now);
            let decoded = self.reconstruct_into(&p, out);
            let residency = now.saturating_sub(p.first_seen);
            self.recycle(p);
            if decoded {
                self.last_completed_residency = residency;
                self.stats.completed += 1;
                AcceptOutcome::Completed
            } else {
                self.stats.decode_failures += 1;
                AcceptOutcome::Inconsistent
            }
        } else {
            AcceptOutcome::Stored
        }
    }

    /// Codec reconstruction from the buffered shares into `out`;
    /// returns whether the decode succeeded. The Shamir branch is
    /// Lagrange interpolation, byte-identical to
    /// [`mcss_shamir::reconstruct`] over the same shares in arrival
    /// order (GF(2⁸) addition is exact and the weights are the same
    /// field elements) — and total, so it cannot fail. The XOR branch
    /// fails on malformed payloads (garbled length prefix, short
    /// slots), which the caller surfaces as a decode failure.
    fn reconstruct_into(&mut self, p: &Pending, out: &mut Vec<u8>) -> bool {
        match p.codec {
            CodecId::Shamir => {
                self.xs.clear();
                self.xs.extend(p.shares.iter().map(|&(x, _)| x));
                let len = self.pool.get(p.shares[0].1).len();
                out.clear();
                out.resize(len, 0);
                for (i, &(_, handle)) in p.shares.iter().enumerate() {
                    let w = lagrange_weight_xs(&self.xs, i);
                    gf_slice::add_scaled_assign(out, self.pool.get(handle), w);
                }
                true
            }
            CodecId::Xor2d => {
                let pool = &self.pool;
                xor2d::reconstruct_with(
                    p.k,
                    p.m,
                    p.shares.len(),
                    |i| p.shares[i].0,
                    |i| pool.get(p.shares[i].1),
                    out,
                )
                .is_ok()
            }
        }
    }

    /// Returns a removed entry's buffers to the pool.
    fn recycle(&mut self, p: Pending) {
        let mut shares = p.shares;
        for &(_, handle) in &shares {
            self.pool.release(handle);
        }
        shares.clear();
        self.spare_shares.push(shares);
    }

    /// Evicts timed-out partial symbols and prunes stale resolution
    /// records. Call periodically (the session does so on a timer).
    pub fn sweep(&mut self, now: SimTime) {
        let timeout = self.timeout;
        self.expired.clear();
        self.expired.extend(
            self.pending
                .iter()
                .filter(|(_, p)| now.saturating_sub(p.first_seen) > timeout)
                .map(|(&seq, _)| seq),
        );
        for i in 0..self.expired.len() {
            let seq = self.expired[i];
            let p = self.pending.remove(&seq).expect("listed above");
            self.buffered_bytes -= p.bytes;
            self.recycle(p);
            self.resolve(seq, now);
            self.stats.timeout_evictions += 1;
        }
        // Forget resolutions old enough that no share can still arrive
        // (keep them one extra timeout beyond the eviction horizon).
        let horizon = self.timeout * 2;
        self.resolved
            .retain(|_, &mut t| now.saturating_sub(t) <= horizon);
        self.resolved_order
            .retain(|seq| self.resolved.contains_key(seq));
        self.order.retain(|seq| self.pending.contains_key(seq));
    }

    /// Keeps `map` at no more than half its true capacity. Removals
    /// (`remove`, `retain`) leave tombstones in the table; once they
    /// exhaust the free slots, the next insert rehashes — in place when
    /// live occupancy is at most half the capacity, but *reallocating*
    /// above that, at a point that depends on the per-process hash seed
    /// (the tombstone distribution). Pinning occupancy to the in-place
    /// regime means the maps only ever allocate when live occupancy
    /// reaches a new high-water mark (warmup), never at a seed-dependent
    /// moment in steady state.
    ///
    /// `full_cap` is a caller-held shadow of the map's post-rehash
    /// capacity: `HashMap::capacity()` itself *shrinks* as tombstones
    /// eat free slots, so it cannot be compared against directly — its
    /// running maximum is the real (monotone) table size.
    fn reserve_headroom<V>(map: &mut HashMap<u64, V>, full_cap: &mut usize) {
        *full_cap = (*full_cap).max(map.capacity());
        if (map.len() + 1) * 2 > *full_cap {
            map.reserve(map.len() + 2);
            *full_cap = (*full_cap).max(map.capacity());
        }
    }

    fn resolve(&mut self, seq: u64, now: SimTime) {
        if self.resolved.insert(seq, now).is_none() {
            self.resolved_order.push_back(seq);
        }
        Self::reserve_headroom(&mut self.resolved, &mut self.resolved_full_cap);
        // Oldest-first eviction past the cap; ids already pruned by the
        // sweep are skipped (their ring entries are stale).
        while self.resolved.len() > self.resolved_cap {
            let Some(old) = self.resolved_order.pop_front() else {
                break;
            };
            if self.resolved.remove(&old).is_some() {
                self.stats.resolved_evictions += 1;
            }
        }
    }

    /// Evicts oldest partial symbols until `incoming` more bytes fit
    /// under the cap.
    fn make_room(&mut self, incoming: usize) {
        while self.buffered_bytes + incoming > self.capacity_bytes {
            // Oldest still-pending symbol.
            let Some(seq) = self.order.pop_front() else {
                break;
            };
            if let Some(p) = self.pending.remove(&seq) {
                self.buffered_bytes -= p.bytes;
                let at = p.first_seen;
                self.recycle(p);
                self.resolve(seq, at);
                self.stats.memory_evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcss_shamir::{split, Params};
    use rand::SeedableRng;

    fn frames(seq: u64, k: u8, m: u8, payload: &[u8]) -> Vec<ShareFrame> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seq + 1);
        let shares = split(payload, Params::new(k, m).unwrap(), &mut rng).unwrap();
        shares
            .iter()
            .map(|s| ShareFrame::new(seq, k, m, s.x(), 0, s.data().to_vec()).unwrap())
            .collect()
    }

    fn xor_frames(seq: u64, k: u8, m: u8, payload: &[u8]) -> Vec<ShareFrame> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seq + 1);
        let mut pad = Vec::new();
        let mut outs = vec![Vec::new(); m as usize];
        xor2d::split_into(payload, k, m, &mut rng, &mut pad, &mut outs).unwrap();
        outs.into_iter()
            .enumerate()
            .map(|(j, data)| {
                ShareFrame::new(seq, k, m, j as u8 + 1, 0, data)
                    .unwrap()
                    .with_codec(CodecId::Xor2d)
            })
            .collect()
    }

    fn table() -> ReassemblyTable {
        ReassemblyTable::new(SimTime::from_millis(100), 1 << 20)
    }

    #[test]
    fn completes_at_threshold() {
        let mut t = table();
        let fs = frames(1, 3, 5, b"payload");
        assert_eq!(t.accept(&fs[0], SimTime::ZERO), Accept::Stored);
        assert_eq!(t.accept(&fs[2], SimTime::ZERO), Accept::Stored);
        let Accept::Completed(p) = t.accept(&fs[4], SimTime::ZERO) else {
            panic!("3rd share must complete");
        };
        assert_eq!(p, b"payload");
        assert_eq!(t.stats().completed, 1);
        assert_eq!(t.pending_symbols(), 0);
        assert_eq!(t.buffered_bytes(), 0);
    }

    #[test]
    fn threshold_one_completes_immediately() {
        let mut t = table();
        let fs = frames(9, 1, 3, b"now");
        let Accept::Completed(p) = t.accept(&fs[1], SimTime::ZERO) else {
            panic!("k=1 completes on first share");
        };
        assert_eq!(p, b"now");
    }

    #[test]
    fn late_shares_are_stale() {
        let mut t = table();
        let fs = frames(2, 2, 3, b"xy");
        t.accept(&fs[0], SimTime::ZERO);
        t.accept(&fs[1], SimTime::ZERO);
        assert_eq!(t.accept(&fs[2], SimTime::ZERO), Accept::Stale);
        assert_eq!(t.stats().stale, 1);
    }

    #[test]
    fn duplicates_detected() {
        let mut t = table();
        let fs = frames(3, 3, 3, b"dup");
        t.accept(&fs[0], SimTime::ZERO);
        assert_eq!(t.accept(&fs[0], SimTime::ZERO), Accept::Duplicate);
        assert_eq!(t.stats().duplicates, 1);
    }

    #[test]
    fn inconsistent_share_rejected() {
        let mut t = table();
        let fs = frames(4, 2, 3, b"abcd");
        t.accept(&fs[0], SimTime::ZERO);
        // Same seq, different k.
        let alien = ShareFrame::new(4, 3, 3, 2, 0, vec![0u8; 4]).unwrap();
        assert_eq!(t.accept(&alien, SimTime::ZERO), Accept::Inconsistent);
        // Same seq, different length.
        let alien = ShareFrame::new(4, 2, 3, 2, 0, vec![0u8; 9]).unwrap();
        assert_eq!(t.accept(&alien, SimTime::ZERO), Accept::Inconsistent);
        assert_eq!(t.stats().inconsistent, 2);
    }

    #[test]
    fn xor_codec_symbols_reassemble() {
        let mut t = table();
        let fs = xor_frames(7, 3, 5, b"xor codec payload");
        assert_eq!(t.accept(&fs[4], SimTime::ZERO), Accept::Stored);
        assert_eq!(t.accept(&fs[1], SimTime::ZERO), Accept::Stored);
        let Accept::Completed(p) = t.accept(&fs[3], SimTime::ZERO) else {
            panic!("3rd distinct XOR share must complete");
        };
        assert_eq!(p, b"xor codec payload");
        assert_eq!(t.stats().completed, 1);
        assert_eq!(t.stats().decode_failures, 0);
        assert_eq!(t.buffered_bytes(), 0);
    }

    #[test]
    fn xor_threshold_one_strips_wrapper() {
        let mut t = table();
        let fs = xor_frames(8, 1, 3, b"wrapped");
        let Accept::Completed(p) = t.accept(&fs[2], SimTime::ZERO) else {
            panic!("k=1 completes on first share");
        };
        assert_eq!(p, b"wrapped");
        // A garbled wrapper (short payload) must not resolve the symbol.
        let bad = ShareFrame::new(9, 1, 3, 1, 0, vec![0xEE])
            .unwrap()
            .with_codec(CodecId::Xor2d);
        assert_eq!(t.accept(&bad, SimTime::ZERO), Accept::Inconsistent);
        assert_eq!(t.stats().decode_failures, 1);
        // …so a well-formed share for the same seq still completes.
        let good = xor_frames(9, 1, 3, b"retry");
        assert!(matches!(t.accept(&good[0], SimTime::ZERO), Accept::Completed(p) if p == b"retry"));
    }

    #[test]
    fn codec_mismatch_is_inconsistent() {
        let mut t = table();
        let shamir = frames(11, 2, 3, b"abcdef");
        let xor = xor_frames(11, 2, 3, b"abcdef");
        t.accept(&shamir[0], SimTime::ZERO);
        // Same seq/k/m but the other codec: rejected, not mixed in.
        let same_len = ShareFrame::new(11, 2, 3, 2, 0, vec![0u8; shamir[0].payload().len()])
            .unwrap()
            .with_codec(CodecId::Xor2d);
        assert_eq!(t.accept(&same_len, SimTime::ZERO), Accept::Inconsistent);
        // Differing multiplicity is likewise rejected (XOR layout
        // depends on m, which the Shamir path never examined).
        let wrong_m = ShareFrame::new(11, 2, 5, 2, 0, shamir[1].payload().to_vec()).unwrap();
        assert_eq!(t.accept(&wrong_m, SimTime::ZERO), Accept::Inconsistent);
        assert_eq!(t.stats().inconsistent, 2);
        drop(xor);
    }

    #[test]
    fn xor_decode_failure_resolves_symbol() {
        let mut t = table();
        let fs = xor_frames(12, 2, 3, b"sixteen byte sec");
        // Garble the first-arriving share's length prefix: its length
        // is unchanged (so the sibling check passes), but the decode —
        // which reads the prefix off the first buffered share — sees a
        // layout whose share length no longer matches.
        let mut data = fs[0].payload().to_vec();
        data[0] ^= 0xFF;
        let garbled = ShareFrame::new(12, 2, 3, fs[0].x(), 0, data)
            .unwrap()
            .with_codec(CodecId::Xor2d);
        assert_eq!(t.accept(&garbled, SimTime::ZERO), Accept::Stored);
        assert_eq!(t.accept(&fs[1], SimTime::ZERO), Accept::Inconsistent);
        assert_eq!(t.stats().decode_failures, 1);
        assert_eq!(t.stats().completed, 0);
        assert_eq!(t.pending_symbols(), 0, "failed symbol is resolved");
        assert_eq!(t.buffered_bytes(), 0);
        // Late shares of the failed symbol read as stale.
        assert_eq!(t.accept(&fs[2], SimTime::ZERO), Accept::Stale);
    }

    #[test]
    fn timeout_evicts_partials() {
        let mut t = ReassemblyTable::new(SimTime::from_millis(10), 1 << 20);
        let fs = frames(5, 2, 3, b"slow");
        t.accept(&fs[0], SimTime::ZERO);
        t.sweep(SimTime::from_millis(5));
        assert_eq!(t.pending_symbols(), 1, "not yet timed out");
        t.sweep(SimTime::from_millis(11));
        assert_eq!(t.pending_symbols(), 0);
        assert_eq!(t.stats().timeout_evictions, 1);
        // A share arriving after eviction is stale.
        assert_eq!(t.accept(&fs[1], SimTime::from_millis(12)), Accept::Stale);
    }

    #[test]
    fn memory_cap_evicts_oldest() {
        // Cap of 100 bytes; 40-byte shares.
        let mut t = ReassemblyTable::new(SimTime::from_secs(1), 100);
        let a = frames(10, 2, 2, &[1u8; 40]);
        let b = frames(11, 2, 2, &[2u8; 40]);
        let c = frames(12, 2, 2, &[3u8; 40]);
        t.accept(&a[0], SimTime::ZERO);
        t.accept(&b[0], SimTime::from_nanos(1));
        assert_eq!(t.buffered_bytes(), 80);
        // Third symbol exceeds the cap: symbol 10 (oldest) is evicted.
        t.accept(&c[0], SimTime::from_nanos(2));
        assert_eq!(t.stats().memory_evictions, 1);
        assert_eq!(t.buffered_bytes(), 80);
        assert_eq!(t.accept(&a[1], SimTime::from_nanos(3)), Accept::Stale);
        // Symbols 11 and 12 still complete.
        assert!(matches!(
            t.accept(&b[1], SimTime::from_nanos(4)),
            Accept::Completed(_)
        ));
        assert!(matches!(
            t.accept(&c[1], SimTime::from_nanos(5)),
            Accept::Completed(_)
        ));
    }

    #[test]
    fn residency_tracks_buffering_time() {
        let mut t = table();
        let fs = frames(40, 2, 3, b"wait");
        t.accept(&fs[0], SimTime::from_millis(3));
        let Accept::Completed(_) = t.accept(&fs[1], SimTime::from_millis(8)) else {
            panic!("second share completes");
        };
        assert_eq!(t.last_completed_residency(), SimTime::from_millis(5));
        // k = 1 never buffers: residency reads zero.
        let one = frames(41, 1, 1, b"now");
        t.accept(&one[0], SimTime::from_millis(20));
        assert_eq!(t.last_completed_residency(), SimTime::ZERO);
    }

    #[test]
    fn resolved_records_pruned() {
        let mut t = ReassemblyTable::new(SimTime::from_millis(10), 1 << 20);
        let fs = frames(20, 1, 1, b"x");
        t.accept(&fs[0], SimTime::ZERO);
        // After 2× timeout the resolution record is pruned, so a late
        // duplicate is treated as a fresh symbol (and completes again,
        // as in IP reassembly where the id space is reused).
        t.sweep(SimTime::from_millis(25));
        assert!(matches!(
            t.accept(&fs[0], SimTime::from_millis(26)),
            Accept::Completed(_)
        ));
    }

    #[test]
    fn interleaved_symbols_reassemble() {
        let mut t = table();
        let a = frames(30, 2, 3, b"AAAA");
        let b = frames(31, 2, 3, b"BBBB");
        t.accept(&a[0], SimTime::ZERO);
        t.accept(&b[2], SimTime::ZERO);
        assert_eq!(t.pending_symbols(), 2);
        let Accept::Completed(pb) = t.accept(&b[0], SimTime::ZERO) else {
            panic!()
        };
        let Accept::Completed(pa) = t.accept(&a[1], SimTime::ZERO) else {
            panic!()
        };
        assert_eq!((pa.as_slice(), pb.as_slice()), (&b"AAAA"[..], &b"BBBB"[..]));
    }

    #[test]
    fn accept_into_matches_accept() {
        // The in-place path returns the same verdicts and payload as
        // the owning path, share for share.
        let mut owning = table();
        let mut pooled = table();
        let mut out = Vec::new();
        for seq in 0..20u64 {
            let k = 1 + (seq % 4) as u8;
            let fs = frames(seq, k, 4, &[seq as u8; 64]);
            for f in fs.iter().take(k as usize) {
                let enc = f.encode();
                let r = ShareRef::decode(&enc).unwrap();
                let got = pooled.accept_into(&r, SimTime::ZERO, &mut out);
                let want = owning.accept(f, SimTime::ZERO);
                match (got, &want) {
                    (AcceptOutcome::Completed, Accept::Completed(p)) => assert_eq!(&out, p),
                    (AcceptOutcome::Stored, Accept::Stored) => {}
                    other => panic!("diverged on seq {seq}: {other:?}"),
                }
            }
        }
        assert_eq!(owning.stats(), pooled.stats());
    }

    #[test]
    fn pooled_buffers_recycle_across_symbols() {
        let mut t = table();
        let mut out = Vec::with_capacity(256);
        // Warm up one symbol's worth of pool slots…
        let fs = frames(0, 3, 3, &[0u8; 200]);
        for f in &fs {
            let enc = f.encode();
            let r = ShareRef::decode(&enc).unwrap();
            t.accept_into(&r, SimTime::ZERO, &mut out);
        }
        let warm = t.pool_misses();
        assert!(warm > 0);
        // …then every further same-shape symbol reuses them.
        for seq in 1..50u64 {
            let fs = frames(seq, 3, 3, &[seq as u8; 200]);
            for f in &fs {
                let enc = f.encode();
                let r = ShareRef::decode(&enc).unwrap();
                t.accept_into(&r, SimTime::ZERO, &mut out);
            }
            assert_eq!(&out, &[seq as u8; 200], "symbol {seq}");
        }
        assert_eq!(t.pool_misses(), warm, "steady state must not allocate");
    }

    #[test]
    fn resolved_cap_bounds_memory() {
        let mut t = ReassemblyTable::new(SimTime::from_secs(10), 1 << 20).with_resolved_cap(64);
        let mut out = Vec::new();
        for seq in 0..1000u64 {
            // k = 1 resolves immediately; never sweep, so only the cap
            // bounds the table.
            let f = ShareFrame::new(seq, 1, 1, 1, 0, vec![7u8; 8]).unwrap();
            let enc = f.encode();
            let r = ShareRef::decode(&enc).unwrap();
            assert_eq!(
                t.accept_into(&r, SimTime::ZERO, &mut out),
                AcceptOutcome::Completed
            );
            assert!(t.resolved_records() <= 64);
        }
        assert_eq!(t.stats().resolved_evictions, 1000 - 64);
        // Evicted ids read as fresh again (id space reuse), newest stay
        // stale.
        let f = ShareFrame::new(0, 1, 1, 1, 0, vec![7u8; 8]).unwrap();
        let enc = f.encode();
        assert_eq!(
            t.accept_into(&ShareRef::decode(&enc).unwrap(), SimTime::ZERO, &mut out),
            AcceptOutcome::Completed
        );
        let f = ShareFrame::new(999, 1, 1, 1, 0, vec![7u8; 8]).unwrap();
        let enc = f.encode();
        assert_eq!(
            t.accept_into(&ShareRef::decode(&enc).unwrap(), SimTime::ZERO, &mut out),
            AcceptOutcome::Stale
        );
    }
}
