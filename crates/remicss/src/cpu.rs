//! Endpoint processing-cost model.
//!
//! The paper's final experiment (§VI-C) raises channel rates until "the
//! bottleneck becomes something other than the capacity of the channels"
//! — the hosts' per-symbol processing. Two observations must be
//! reproduced: throughput levels off once the processing budget binds
//! (Figure 6), and larger thresholds `κ` saturate sooner because Shamir
//! reconstruction work grows with `k` (Figure 7).
//!
//! [`CpuModel`] charges simulated time per symbol processed:
//!
//! * sender: `base + split_per_share_byte · m · bytes` (evaluating `m`
//!   polynomials per byte), plus per-share framing cost;
//! * receiver: `base + recon_per_k2_byte · k² · bytes` (Lagrange
//!   interpolation is quadratic in `k` per byte).
//!
//! A [`CpuClock`] tracks each host's busy horizon; symbols that would
//! push the horizon past a small buffering window are dropped, exactly
//! like a socket overrun on a saturated host.

use mcss_base::SimTime;

/// Cost coefficients for endpoint processing.
///
/// The defaults are calibrated so that a five-channel Identical setup
/// with 1250-byte symbols saturates around 750 Mbit/s aggregate at
/// `κ = μ = 1`, matching Figure 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Fixed cost per symbol on either host, ns.
    pub per_symbol_ns: f64,
    /// Per-share fixed cost (framing, syscalls), ns.
    pub per_share_ns: f64,
    /// Sender-side splitting cost per share byte, ns (linear in `m`).
    pub split_per_share_byte_ns: f64,
    /// Receiver-side reconstruction cost per byte per `k²`, ns.
    pub recon_per_k2_byte_ns: f64,
    /// How far ahead of real time the host may queue work before
    /// shedding symbols.
    pub busy_window: SimTime,
}

impl CpuModel {
    /// The calibrated default model (see type docs).
    ///
    /// At `κ = μ = 1` and 1250-byte symbols the per-symbol sender cost is
    /// `2000 + 1000 + 1250·8 = 13000 ns`, capping the symbol rate near
    /// `77k symbols/s ≈ 770 Mbit/s` of payload — the Figure 6 knee. At
    /// `κ = 5` the receiver's quadratic reconstruction cost
    /// (`3·25·1250 ns/symbol`) binds first, so large thresholds saturate
    /// sooner, as in Figure 7.
    #[must_use]
    pub fn paper_testbed() -> Self {
        CpuModel {
            per_symbol_ns: 2_000.0,
            per_share_ns: 1_000.0,
            split_per_share_byte_ns: 8.0,
            recon_per_k2_byte_ns: 3.0,
            busy_window: SimTime::from_millis(2),
        }
    }

    /// Sender-side cost of splitting and framing one symbol into `m`
    /// shares.
    #[must_use]
    pub fn send_cost(&self, m: usize, symbol_bytes: usize) -> SimTime {
        let ns = self.per_symbol_ns
            + self.per_share_ns * m as f64
            + self.split_per_share_byte_ns * (m * symbol_bytes) as f64;
        SimTime::from_nanos(ns.round() as u64)
    }

    /// Receiver-side cost of reconstructing one symbol from `k` shares.
    #[must_use]
    pub fn recv_cost(&self, k: usize, symbol_bytes: usize) -> SimTime {
        let ns = self.per_symbol_ns
            + self.per_share_ns * k as f64
            + self.recon_per_k2_byte_ns * ((k * k) * symbol_bytes) as f64;
        SimTime::from_nanos(ns.round() as u64)
    }
}

/// One host's processing horizon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuClock {
    busy_until: SimTime,
    shed: u64,
}

impl CpuClock {
    /// A fresh, idle clock.
    #[must_use]
    pub fn new() -> Self {
        CpuClock::default()
    }

    /// Attempts to charge `cost` of work at time `now` under `model`'s
    /// buffering window. Returns `true` if the work was accepted,
    /// `false` if the host is saturated and the symbol is shed.
    pub fn try_charge(&mut self, now: SimTime, cost: SimTime, model: &CpuModel) -> bool {
        let start = self.busy_until.max(now);
        if start.saturating_sub(now) > model.busy_window {
            self.shed += 1;
            return false;
        }
        self.busy_until = start + cost;
        true
    }

    /// Number of symbols shed because the host was saturated.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// The time the host becomes idle.
    #[must_use]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_parameters() {
        let m = CpuModel::paper_testbed();
        // Splitting cost grows with multiplicity.
        assert!(m.send_cost(5, 1250) > m.send_cost(1, 1250));
        // Reconstruction cost grows quadratically with threshold.
        let c1 = m.recv_cost(1, 1250).as_nanos() as f64;
        let c5 = m.recv_cost(5, 1250).as_nanos() as f64;
        assert!(c5 > c1 * 5.0, "k=5 cost {c5} should dwarf k=1 cost {c1}");
        // Bigger symbols cost more.
        assert!(m.send_cost(2, 2000) > m.send_cost(2, 100));
    }

    #[test]
    fn clock_accepts_until_window_full() {
        let model = CpuModel {
            per_symbol_ns: 0.0,
            per_share_ns: 0.0,
            split_per_share_byte_ns: 0.0,
            recon_per_k2_byte_ns: 0.0,
            busy_window: SimTime::from_micros(10),
        };
        let mut clock = CpuClock::new();
        let cost = SimTime::from_micros(4);
        let now = SimTime::ZERO;
        assert!(clock.try_charge(now, cost, &model)); // busy to 4 µs
        assert!(clock.try_charge(now, cost, &model)); // 8
        assert!(clock.try_charge(now, cost, &model)); // 12 (8 ≤ 10 at admit)
                                                      // Backlog now 12 µs > 10 µs window: shed.
        assert!(!clock.try_charge(now, cost, &model));
        assert_eq!(clock.shed(), 1);
        // Time passes; the backlog drains and work is accepted again.
        let later = SimTime::from_micros(5);
        assert!(clock.try_charge(later, cost, &model));
        assert_eq!(clock.busy_until(), SimTime::from_micros(16));
    }

    #[test]
    fn idle_clock_starts_at_now() {
        let model = CpuModel::paper_testbed();
        let mut clock = CpuClock::new();
        let now = SimTime::from_secs(1);
        assert!(clock.try_charge(now, SimTime::from_micros(1), &model));
        assert_eq!(
            clock.busy_until(),
            SimTime::from_secs(1) + SimTime::from_micros(1)
        );
    }

    #[test]
    fn default_calibration_caps_near_target() {
        // At κ=μ=1, 1250-byte symbols: sender cost should allow roughly
        // 80–100k symbols/s (≈ 0.8–1.0 Gbit/s payload), so that combined
        // with receiver cost the knee lands around 750 Mbit/s aggregate.
        let m = CpuModel::paper_testbed();
        let cost = m.send_cost(1, 1250).as_nanos() as f64;
        let rate = 1e9 / cost;
        assert!(
            (60_000.0..120_000.0).contains(&rate),
            "sender symbol rate {rate}"
        );
    }
}
