//! Typed inputs and outputs of the sans-I/O protocol engine.
//!
//! The [`Engine`](crate::engine::Engine) never reads a clock, touches a
//! socket, or draws randomness on its own: a driver feeds it [`Event`]s
//! carrying explicit timestamps (plus an explicit RNG) and drains the
//! [`Action`]s the engine queued in response. The same event stream
//! always produces the same action stream, which is what makes the
//! protocol replayable, fuzzable, and transport-agnostic.
//!
//! | Event | Meaning |
//! |---|---|
//! | [`Event::Started`] | The driver is running; arm the initial timers. |
//! | [`Event::SymbolReady`] | An external source offers one symbol to send from host A. |
//! | [`Event::ShareReceived`] | A decoded share frame arrived on `channel` at `to`. |
//! | [`Event::ControlReceived`] | A decoded control frame arrived at `to`. |
//! | [`Event::TimerFired`] | A timer the engine set via [`Action::SetTimer`] is due. |
//! | [`Event::ChannelWritable`] | Channel readiness update: `from`'s send backlog on `channel`. |
//!
//! | Action | Driver obligation |
//! |---|---|
//! | [`Action::SendShare`] | Put `frame` on `channel` from `from`; report the outcome via [`Engine::share_send_ok`](crate::engine::Engine::share_send_ok) / [`share_send_rejected`](crate::engine::Engine::share_send_rejected). |
//! | [`Action::SendControl`] | Put `frame` on `channel` from `from`; on local drop call [`Engine::control_send_rejected`](crate::engine::Engine::control_send_rejected). |
//! | [`Action::SetTimer`] | Fire [`Event::TimerFired`] with `token` at (or after) `at`. |
//! | [`Action::DeliverSymbol`] | Hand `payload` to the application, then return the buffer with [`Engine::recycle`](crate::engine::Engine::recycle). |

use mcss_base::{Endpoint, SimTime};

use crate::wire::{ControlFrame, ShareRef};

/// Timer token for the paced symbol source tick.
pub const TIMER_SOURCE: u64 = 0;
/// Timer token for the periodic reassembly sweep.
pub const TIMER_SWEEP: u64 = 1;
/// Timer token for the receiver's adaptive feedback report.
pub const TIMER_FEEDBACK: u64 = 2;

/// One input to [`Engine::handle`](crate::engine::Engine::handle).
///
/// Events borrow frame contents from the driver's receive buffer; the
/// engine copies what it must retain (shares under reassembly) into
/// pooled storage, so the borrow ends with the call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event<'a> {
    /// The driver started; the engine arms its initial timers.
    Started,
    /// An external source offers one symbol payload to transmit from
    /// host A ([`SourceMode::External`](crate::engine::SourceMode)
    /// drivers; paced sessions generate symbols from their own source
    /// timer instead).
    SymbolReady {
        /// The symbol payload to split and send.
        payload: &'a [u8],
    },
    /// A share frame was received on `channel` addressed to `to`.
    ShareReceived {
        /// Channel the share arrived on.
        channel: usize,
        /// Receiving endpoint.
        to: Endpoint,
        /// The decoded share, borrowing the driver's receive buffer.
        share: ShareRef<'a>,
    },
    /// A control (feedback) frame was received addressed to `to`.
    ControlReceived {
        /// Channel the frame arrived on.
        channel: usize,
        /// Receiving endpoint.
        to: Endpoint,
        /// The decoded control frame.
        control: ControlFrame,
    },
    /// A timer set via [`Action::SetTimer`] fired.
    TimerFired {
        /// The token the timer was set with.
        token: u64,
    },
    /// Readiness update: `from`'s send backlog on `channel` is
    /// `backlog`. The dynamic scheduler reads the most recent update
    /// per channel when choosing a share subset; drivers refresh all
    /// channels before any event that may transmit.
    ChannelWritable {
        /// The channel whose state changed.
        channel: usize,
        /// The sending endpoint the backlog belongs to.
        from: Endpoint,
        /// Serialization backlog (time until the queue drains).
        backlog: SimTime,
    },
}

/// One output drained from
/// [`Engine::poll_action`](crate::engine::Engine::poll_action).
///
/// Frame buffers come from the engine's pool; drivers hand them back
/// (via the send-outcome calls or [`Engine::recycle`]
/// (crate::engine::Engine::recycle)) to keep the steady state
/// allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Transmit an encoded share frame on `channel` from `from`.
    SendShare {
        /// Channel to transmit on.
        channel: usize,
        /// Sending endpoint.
        from: Endpoint,
        /// Encoded wire frame (pooled buffer).
        frame: Vec<u8>,
    },
    /// Transmit an encoded control frame on `channel` from `from`.
    SendControl {
        /// Channel to transmit on.
        channel: usize,
        /// Sending endpoint.
        from: Endpoint,
        /// Encoded wire frame (pooled buffer).
        frame: Vec<u8>,
    },
    /// Arrange for [`Event::TimerFired`]`{token}` at absolute time `at`
    /// (clamp to now if `at` is already past).
    SetTimer {
        /// Token to fire with.
        token: u64,
        /// Absolute due time.
        at: SimTime,
    },
    /// A symbol was reconstructed at host B (external-source mode
    /// only). Return `payload` via
    /// [`Engine::recycle`](crate::engine::Engine::recycle) after use.
    DeliverSymbol {
        /// The symbol's sequence number.
        seq: u64,
        /// The reconstructed payload (pooled buffer).
        payload: Vec<u8>,
    },
}
