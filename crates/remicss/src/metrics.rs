//! Per-session protocol metrics.
//!
//! [`SessionMetrics`] is the session-scoped companion to the global
//! [`mcss_obs`] span registry: while spans time *code* (split kernels,
//! the event loop), these count and time *protocol* behavior — shares
//! sent, dropped, and received per channel, one-way share delay and
//! inter-share gap distributions, reassembly residency, and the
//! realized `(k, m)` frequency matrix the dynamic scheduler actually
//! drew (whose empirical means must converge to the configured `κ` and
//! `μ`; see `tests/metrics_stat.rs`).
//!
//! Everything here is built from [`mcss_obs`] primitives, so the whole
//! structure inherits the crate's overhead contract: recording is
//! relaxed atomics on storage preallocated at session build (the
//! zero-allocation steady-state proof holds with telemetry enabled),
//! and with the `telemetry` feature off every field is a zero-sized
//! no-op.

use mcss_obs::{Counter, Histogram, MetricsSnapshot};

/// Sentinel for "no share received on this channel yet".
const NO_RX: u64 = u64::MAX;

/// One channel's share traffic counters and latency histograms.
#[derive(Debug, Default)]
pub struct ChannelMetrics {
    /// Share frames handed to this channel's send queue.
    pub shares_sent: Counter,
    /// Share frames rejected by this channel's full send queue.
    pub shares_dropped: Counter,
    /// Share frames delivered from this channel.
    pub shares_received: Counter,
    /// One-way share delay (send stamp to delivery), nanoseconds of
    /// simulated time.
    pub one_way_delay: Histogram,
    /// Gap between consecutive share deliveries on this channel,
    /// nanoseconds of simulated time.
    pub inter_share_gap: Histogram,
}

/// Protocol counters for one [`Session`](crate::Session).
///
/// The session records into this on its hot paths; benchmarks and
/// binaries read it back through accessors or [`snapshot`]
/// (`SessionMetrics::snapshot`).
#[derive(Debug)]
pub struct SessionMetrics {
    n: usize,
    channels: Vec<ChannelMetrics>,
    /// Simulated time of the previous delivery per channel ([`NO_RX`]
    /// before the first).
    last_rx_nanos: Vec<u64>,
    /// Realized `(k, m)` draw counts, indexed `k * (n + 1) + m`.
    km: Vec<Counter>,
    /// Sum of drawn thresholds, for the empirical `κ`.
    sum_k: Counter,
    /// Sum of drawn multiplicities, for the empirical `μ`.
    sum_m: Counter,
    /// Number of scheduler draws recorded.
    choices: Counter,
    /// Reassembly residency of completed symbols (first share seen to
    /// reconstruction), nanoseconds of simulated time.
    pub residency: Histogram,
}

impl SessionMetrics {
    /// Metrics for a session over `n` channels. Allocates all storage up
    /// front; recording never allocates.
    #[must_use]
    pub fn new(n: usize) -> Self {
        SessionMetrics {
            n,
            channels: (0..n).map(|_| ChannelMetrics::default()).collect(),
            last_rx_nanos: vec![NO_RX; n],
            km: (0..(n + 1) * (n + 1)).map(|_| Counter::new()).collect(),
            sum_k: Counter::new(),
            sum_m: Counter::new(),
            choices: Counter::new(),
            residency: Histogram::new(),
        }
    }

    /// The channel count this was built for.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.n
    }

    /// One channel's metrics.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= channel_count()`.
    #[must_use]
    pub fn channel(&self, channel: usize) -> &ChannelMetrics {
        &self.channels[channel]
    }

    /// All channels' metrics, in channel order.
    #[must_use]
    pub fn channels(&self) -> &[ChannelMetrics] {
        &self.channels
    }

    /// Records one scheduler draw of threshold `k` over `m` channels.
    pub fn record_choice(&mut self, k: u8, m: usize) {
        let (k, m) = (k as usize, m);
        if k <= self.n && m <= self.n {
            self.km[k * (self.n + 1) + m].inc();
        }
        self.sum_k.add(k as u64);
        self.sum_m.add(m as u64);
        self.choices.inc();
    }

    /// Records a share frame accepted by `channel`'s send queue.
    pub fn record_send(&mut self, channel: usize) {
        self.channels[channel].shares_sent.inc();
    }

    /// Records a share frame rejected by `channel`'s full send queue.
    pub fn record_drop(&mut self, channel: usize) {
        self.channels[channel].shares_dropped.inc();
    }

    /// Records a share delivered from `channel` at simulated time
    /// `now_nanos`, `delay_nanos` after it was stamped at the sender.
    pub fn record_receive(&mut self, channel: usize, now_nanos: u64, delay_nanos: u64) {
        let ch = &self.channels[channel];
        ch.shares_received.inc();
        ch.one_way_delay.record(delay_nanos);
        let last = self.last_rx_nanos[channel];
        if last != NO_RX {
            ch.inter_share_gap.record(now_nanos.saturating_sub(last));
        }
        self.last_rx_nanos[channel] = now_nanos;
    }

    /// Records a completed symbol's reassembly residency.
    pub fn record_residency(&mut self, nanos: u64) {
        self.residency.record(nanos);
    }

    /// Number of scheduler draws recorded.
    #[must_use]
    pub fn choices(&self) -> u64 {
        self.choices.get()
    }

    /// How many draws realized exactly `(k, m)`.
    #[must_use]
    pub fn km_count(&self, k: usize, m: usize) -> u64 {
        if k <= self.n && m <= self.n {
            self.km[k * (self.n + 1) + m].get()
        } else {
            0
        }
    }

    /// Mean realized threshold — must converge to the configured `κ`.
    /// Zero before any draw.
    #[must_use]
    pub fn empirical_kappa(&self) -> f64 {
        let n = self.choices.get();
        if n == 0 {
            0.0
        } else {
            self.sum_k.get() as f64 / n as f64
        }
    }

    /// Mean realized multiplicity — must converge to the configured `μ`.
    /// Zero before any draw.
    #[must_use]
    pub fn empirical_mu(&self) -> f64 {
        let n = self.choices.get();
        if n == 0 {
            0.0
        } else {
            self.sum_m.get() as f64 / n as f64
        }
    }

    /// Total shares handed to send queues across channels.
    #[must_use]
    pub fn shares_sent_total(&self) -> u64 {
        self.channels.iter().map(|c| c.shares_sent.get()).sum()
    }

    /// Total shares dropped by full send queues across channels.
    #[must_use]
    pub fn shares_dropped_total(&self) -> u64 {
        self.channels.iter().map(|c| c.shares_dropped.get()).sum()
    }

    /// Total shares delivered across channels.
    #[must_use]
    pub fn shares_received_total(&self) -> u64 {
        self.channels.iter().map(|c| c.shares_received.get()).sum()
    }

    /// Serializable snapshot under `remicss.*` names (e.g.
    /// `remicss.shares_sent.ch0`, `remicss.delay.ch2`). Empty with the
    /// `telemetry` feature off — the metrics are absent, not zero.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        #[cfg(not(feature = "telemetry"))]
        {
            MetricsSnapshot::default()
        }
        #[cfg(feature = "telemetry")]
        {
            use mcss_obs::{CounterSnapshot, HistogramSnapshot};
            let mut snap = MetricsSnapshot::default();
            for (i, ch) in self.channels.iter().enumerate() {
                for (what, counter) in [
                    ("shares_sent", &ch.shares_sent),
                    ("shares_dropped", &ch.shares_dropped),
                    ("shares_received", &ch.shares_received),
                ] {
                    snap.counters.push(CounterSnapshot {
                        name: format!("remicss.{what}.ch{i}"),
                        value: counter.get(),
                    });
                }
                if !ch.one_way_delay.is_empty() {
                    snap.histograms.push(HistogramSnapshot::of(
                        &format!("remicss.delay.ch{i}"),
                        &ch.one_way_delay,
                    ));
                }
                if !ch.inter_share_gap.is_empty() {
                    snap.histograms.push(HistogramSnapshot::of(
                        &format!("remicss.inter_share_gap.ch{i}"),
                        &ch.inter_share_gap,
                    ));
                }
            }
            snap.counters.push(CounterSnapshot {
                name: "remicss.scheduler.choices".to_string(),
                value: self.choices.get(),
            });
            if !self.residency.is_empty() {
                snap.histograms.push(HistogramSnapshot::of(
                    "remicss.reassembly.residency",
                    &self.residency,
                ));
            }
            snap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_means_over_fixed_draws() {
        let mut m = SessionMetrics::new(4);
        m.record_choice(2, 3);
        m.record_choice(3, 4);
        // With telemetry off the counters are absent, not zero.
        let expected_choices = if cfg!(feature = "telemetry") { 2 } else { 0 };
        assert_eq!(m.choices(), expected_choices);
        assert_eq!(
            m.km_count(2, 3),
            if cfg!(feature = "telemetry") { 1 } else { 0 }
        );
        if cfg!(feature = "telemetry") {
            assert!((m.empirical_kappa() - 2.5).abs() < 1e-12);
            assert!((m.empirical_mu() - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn per_channel_counters_are_independent() {
        let mut m = SessionMetrics::new(3);
        m.record_send(0);
        m.record_send(0);
        m.record_drop(2);
        m.record_receive(1, 1_000, 250);
        if cfg!(feature = "telemetry") {
            assert_eq!(m.channel(0).shares_sent.get(), 2);
            assert_eq!(m.channel(1).shares_received.get(), 1);
            assert_eq!(m.channel(2).shares_dropped.get(), 1);
            assert_eq!(m.shares_sent_total(), 2);
            assert_eq!(m.shares_received_total(), 1);
            assert_eq!(m.shares_dropped_total(), 1);
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn inter_share_gap_needs_two_deliveries() {
        let mut m = SessionMetrics::new(1);
        m.record_receive(0, 1_000, 100);
        assert!(m.channel(0).inter_share_gap.is_empty());
        m.record_receive(0, 1_750, 100);
        assert_eq!(m.channel(0).inter_share_gap.count(), 1);
        assert_eq!(m.channel(0).inter_share_gap.max(), 750);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn snapshot_names_are_per_channel() {
        let mut m = SessionMetrics::new(2);
        m.record_send(1);
        m.record_receive(1, 5_000, 400);
        let snap = m.snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|c| c.name == "remicss.shares_sent.ch1" && c.value == 1));
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "remicss.delay.ch1"));
        // Channel 0 saw no deliveries: counter present at zero, but no
        // empty histograms.
        assert!(!snap.histograms.iter().any(|h| h.name.ends_with("ch0")));
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_snapshot_is_empty() {
        let mut m = SessionMetrics::new(2);
        m.record_send(0);
        m.record_receive(0, 1_000, 100);
        assert!(m.snapshot().is_empty());
        assert_eq!(m.shares_sent_total(), 0);
    }
}
