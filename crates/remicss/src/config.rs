//! Protocol configuration: the tunable parameters of a ReMICSS session.

use std::sync::Arc;

use mcss_base::SimTime;
use mcss_codec::CodecId;
use mcss_core::{ModelError, ShareSchedule};

use crate::cpu::CpuModel;

/// Which share scheduler the sender uses (§V).
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerKind {
    /// The paper's *dynamic share schedule*: draw integer `(k, m)` with
    /// means `(κ, μ)` per symbol, then send on the first `m` channels
    /// ready for writing (epoll-style).
    Dynamic,
    /// Sample `(k, M)` from an explicit share schedule (e.g. one produced
    /// by the §IV-D linear program). Shared by reference: the session's
    /// two endpoint schedulers clone the `Arc`, not the schedule.
    Static(Arc<ShareSchedule>),
    /// Fixed `(k, m)` with the subset rotating round-robin — a naive
    /// baseline for ablation.
    RoundRobin,
}

/// Configuration of a ReMICSS session.
///
/// # Examples
///
/// ```
/// use mcss_remicss::config::ProtocolConfig;
/// use mcss_base::SimTime;
///
/// let cfg = ProtocolConfig::new(1.5, 3.0)?
///     .with_symbol_bytes(512)
///     .with_reassembly_timeout(SimTime::from_millis(200));
/// assert_eq!(cfg.kappa(), 1.5);
/// # Ok::<(), mcss_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    kappa: f64,
    mu: f64,
    scheduler: SchedulerKind,
    symbol_bytes: usize,
    reassembly_timeout: SimTime,
    reassembly_capacity_bytes: usize,
    reassembly_resolved_cap: usize,
    readiness_threshold: SimTime,
    cpu: Option<CpuModel>,
    adaptive_target: Option<f64>,
    codec: CodecId,
}

impl ProtocolConfig {
    /// Default source symbol size (one share's payload), in bytes.
    pub const DEFAULT_SYMBOL_BYTES: usize = 1250;

    /// Default reassembly eviction timeout.
    pub const DEFAULT_REASSEMBLY_TIMEOUT: SimTime = SimTime::from_millis(500);

    /// Default reassembly memory cap in buffered share bytes.
    pub const DEFAULT_REASSEMBLY_CAPACITY: usize = 8 * 1024 * 1024;

    /// Default bound on the receiver's resolved-symbol records (see
    /// [`crate::reassembly::DEFAULT_RESOLVED_CAP`]).
    pub const DEFAULT_REASSEMBLY_RESOLVED_CAP: usize = crate::reassembly::DEFAULT_RESOLVED_CAP;

    /// Default backlog threshold below which a channel counts as
    /// "ready for writing".
    pub const DEFAULT_READINESS_THRESHOLD: SimTime = SimTime::from_millis(2);

    /// Creates a configuration with mean threshold `κ` and mean
    /// multiplicity `μ`, the dynamic scheduler, and default framing and
    /// reassembly parameters.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParameters`] unless `1 ≤ κ ≤ μ` (the `μ ≤ n`
    /// half is checked when the session is built, since it needs `n`).
    pub fn new(kappa: f64, mu: f64) -> Result<Self, ModelError> {
        if !(kappa.is_finite() && mu.is_finite()) || kappa < 1.0 || kappa > mu {
            return Err(ModelError::InvalidParameters {
                kappa,
                mu,
                n: usize::MAX,
            });
        }
        Ok(ProtocolConfig {
            kappa,
            mu,
            scheduler: SchedulerKind::Dynamic,
            symbol_bytes: Self::DEFAULT_SYMBOL_BYTES,
            reassembly_timeout: Self::DEFAULT_REASSEMBLY_TIMEOUT,
            reassembly_capacity_bytes: Self::DEFAULT_REASSEMBLY_CAPACITY,
            reassembly_resolved_cap: Self::DEFAULT_REASSEMBLY_RESOLVED_CAP,
            readiness_threshold: Self::DEFAULT_READINESS_THRESHOLD,
            cpu: None,
            adaptive_target: None,
            codec: CodecId::from_env(),
        })
    }

    /// Selects the share codec for this session's sender and receiver.
    /// The default comes from `MCSS_CODEC` (falling back to Shamir),
    /// so test suites and CI matrix legs switch codecs without code
    /// changes — mirroring `MCSS_GF256_BACKEND`.
    #[must_use]
    pub fn with_codec(mut self, codec: CodecId) -> Self {
        self.codec = codec;
        self
    }

    /// Selects the scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the source symbol size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or exceeds the wire format's 16-bit
    /// payload length.
    #[must_use]
    pub fn with_symbol_bytes(mut self, bytes: usize) -> Self {
        assert!(
            bytes > 0 && bytes <= u16::MAX as usize,
            "symbol size must be in 1..=65535"
        );
        self.symbol_bytes = bytes;
        self
    }

    /// Sets the reassembly eviction timeout.
    #[must_use]
    pub fn with_reassembly_timeout(mut self, timeout: SimTime) -> Self {
        self.reassembly_timeout = timeout;
        self
    }

    /// Sets the reassembly memory cap (total buffered share bytes).
    #[must_use]
    pub fn with_reassembly_capacity(mut self, bytes: usize) -> Self {
        self.reassembly_capacity_bytes = bytes;
        self
    }

    /// Bounds the receiver's memory of completed/evicted symbol ids
    /// (oldest-first eviction past the cap).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_reassembly_resolved_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "resolved cap must be positive");
        self.reassembly_resolved_cap = cap;
        self
    }

    /// Sets the writability backlog threshold used by the dynamic
    /// scheduler's readiness test.
    #[must_use]
    pub fn with_readiness_threshold(mut self, threshold: SimTime) -> Self {
        self.readiness_threshold = threshold;
        self
    }

    /// Enables the endpoint processing-cost model (used by the
    /// high-bandwidth experiments, Figures 6–7).
    #[must_use]
    pub fn with_cpu_model(mut self, cpu: CpuModel) -> Self {
        self.cpu = Some(cpu);
        self
    }

    /// Mean threshold `κ`.
    #[must_use]
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// Mean multiplicity `μ`.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The configured scheduler.
    #[must_use]
    pub fn scheduler(&self) -> &SchedulerKind {
        &self.scheduler
    }

    /// Source symbol size in bytes.
    #[must_use]
    pub fn symbol_bytes(&self) -> usize {
        self.symbol_bytes
    }

    /// Reassembly eviction timeout.
    #[must_use]
    pub fn reassembly_timeout(&self) -> SimTime {
        self.reassembly_timeout
    }

    /// Reassembly memory cap in bytes.
    #[must_use]
    pub fn reassembly_capacity_bytes(&self) -> usize {
        self.reassembly_capacity_bytes
    }

    /// Bound on the receiver's resolved-symbol records.
    #[must_use]
    pub fn reassembly_resolved_cap(&self) -> usize {
        self.reassembly_resolved_cap
    }

    /// Readiness backlog threshold.
    #[must_use]
    pub fn readiness_threshold(&self) -> SimTime {
        self.readiness_threshold
    }

    /// The CPU model, if enabled.
    #[must_use]
    pub fn cpu(&self) -> Option<&CpuModel> {
        self.cpu.as_ref()
    }

    /// The share codec this session encodes and decodes with.
    #[must_use]
    pub fn codec(&self) -> CodecId {
        self.codec
    }

    /// Enables closed-loop multiplicity adaptation toward a target
    /// symbol-loss fraction (see [`crate::adaptive`]). Only meaningful
    /// with the [`SchedulerKind::Dynamic`] scheduler; `μ` then floats in
    /// `[κ, n]` starting from the configured value.
    ///
    /// # Panics
    ///
    /// Panics unless `target_loss ∈ (0, 1)`.
    #[must_use]
    pub fn with_adaptive(mut self, target_loss: f64) -> Self {
        assert!(
            target_loss.is_finite() && target_loss > 0.0 && target_loss < 1.0,
            "target loss must be in (0, 1)"
        );
        self.adaptive_target = Some(target_loss);
        self
    }

    /// The adaptive loss target, if adaptation is enabled.
    #[must_use]
    pub fn adaptive_target(&self) -> Option<f64> {
        self.adaptive_target
    }

    /// Bytes on the wire per share frame (share payload + protocol
    /// header) under the configured codec. Shamir shares carry exactly
    /// the symbol; the XOR codec's replication overhead is estimated
    /// at the rounded `(κ, μ)` — per-symbol sizes vary with the drawn
    /// `(k, m)`, and this representative figure is what the testbed's
    /// capacity conversion uses.
    #[must_use]
    pub fn share_wire_bytes(&self) -> usize {
        let k = (self.kappa.round().clamp(1.0, 255.0)) as u8;
        let m = (self.mu.round().clamp(f64::from(k), 255.0)) as u8;
        crate::wire::header_bytes(self.codec) + self.codec.share_len(self.symbol_bytes, k, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_parameters() {
        let c = ProtocolConfig::new(1.0, 1.0).unwrap();
        assert_eq!(c.kappa(), 1.0);
        assert_eq!(c.mu(), 1.0);
        assert!(matches!(c.scheduler(), SchedulerKind::Dynamic));
        assert_eq!(c.symbol_bytes(), ProtocolConfig::DEFAULT_SYMBOL_BYTES);
        assert_eq!(
            c.share_wire_bytes(),
            ProtocolConfig::DEFAULT_SYMBOL_BYTES + crate::wire::HEADER_BYTES
        );
        assert!(c.cpu().is_none());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ProtocolConfig::new(0.5, 2.0).is_err());
        assert!(ProtocolConfig::new(2.0, 1.5).is_err());
        assert!(ProtocolConfig::new(f64::NAN, 2.0).is_err());
    }

    #[test]
    fn builders_apply() {
        let c = ProtocolConfig::new(2.0, 4.0)
            .unwrap()
            .with_scheduler(SchedulerKind::RoundRobin)
            .with_symbol_bytes(100)
            .with_reassembly_timeout(SimTime::from_millis(10))
            .with_reassembly_capacity(1024)
            .with_readiness_threshold(SimTime::from_micros(500));
        assert!(matches!(c.scheduler(), SchedulerKind::RoundRobin));
        assert_eq!(c.symbol_bytes(), 100);
        assert_eq!(c.reassembly_timeout(), SimTime::from_millis(10));
        assert_eq!(c.reassembly_capacity_bytes(), 1024);
        assert_eq!(c.readiness_threshold(), SimTime::from_micros(500));
    }

    #[test]
    #[should_panic(expected = "symbol size")]
    fn zero_symbol_size_panics() {
        let _ = ProtocolConfig::new(1.0, 1.0).unwrap().with_symbol_bytes(0);
    }

    #[test]
    #[should_panic(expected = "symbol size")]
    fn oversized_symbol_panics() {
        let _ = ProtocolConfig::new(1.0, 1.0)
            .unwrap()
            .with_symbol_bytes(70_000);
    }
}
