//! The sans-I/O ReMICSS protocol core.
//!
//! [`Engine`] contains every protocol decision — scheduling, Shamir
//! splitting, reassembly, adaptive feedback, pacing, metrics — but
//! performs no I/O, reads no clock, and owns no randomness. A *driver*
//! (the simulator [`Session`](crate::session::Session) or the real
//! socket [`UdpDriver`](crate::udp::UdpDriver)) feeds it
//! [`Event`]s with explicit timestamps and an explicit RNG, then drains
//! the queued [`Action`]s and performs them against its transport.
//!
//! Because the engine is a pure function of `(event stream, RNG seed)`,
//! the same inputs always yield the same action stream: a recorded
//! simulator trace replays bit-identically outside the simulator, and
//! the protocol runs unchanged over real UDP sockets.
//!
//! Two source modes cover the drivers' needs:
//!
//! * [`SourceMode::Paced`] — the engine generates its own patterned
//!   symbols from a drift-free [`Pacer`] timer, verifying them at the
//!   receiver; this is the measurement workload the simulator runs.
//! * [`SourceMode::External`] — the driver offers real payloads via
//!   [`Event::SymbolReady`] and receives reconstructions back as
//!   [`Action::DeliverSymbol`]; this is what a file transfer uses.

use std::collections::VecDeque;
use std::mem;
use std::sync::Arc;

use mcss_base::stats::{DelaySummary, ThroughputMeter};
use mcss_base::{BufferPool, Endpoint, Pacer, SimTime};
use mcss_codec::{CodecId, CodecScratch};
use rand::rngs::StdRng;

use mcss_obs::MetricsSnapshot;

use crate::actions::{Action, Event, TIMER_FEEDBACK, TIMER_SOURCE, TIMER_SWEEP};
use crate::adaptive::AdaptiveController;
use crate::config::{ProtocolConfig, SchedulerKind};
use crate::cpu::CpuClock;
use crate::metrics::SessionMetrics;
use crate::reassembly::{AcceptOutcome, ReassemblyStats, ReassemblyTable};
use crate::scheduler::{
    ChannelState, Choice, DynamicScheduler, RoundRobinScheduler, Scheduler as _, SessionScheduler,
    StaticScheduler,
};
use crate::wire::{self, ControlFrame, MessageRef, ShareRef, WireError};

/// How often the receiver reports its delivery count back to the sender
/// when adaptation is enabled.
pub(crate) const FEEDBACK_PERIOD: SimTime = SimTime::from_millis(50);

/// The traffic pattern a session runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Constant symbol rate from A to B for `duration`.
    Cbr {
        /// Offered source symbols per second.
        symbol_rate: f64,
        /// Sending window.
        duration: SimTime,
        /// When the first symbol is offered (default zero).
        phase: SimTime,
    },
    /// Constant symbol rate from A, echoed back by B through the
    /// protocol; A records round-trip times.
    Echo {
        /// Offered source symbols per second.
        symbol_rate: f64,
        /// Sending window.
        duration: SimTime,
        /// When the first symbol is offered (default zero).
        phase: SimTime,
    },
}

impl Workload {
    /// A CBR workload.
    #[must_use]
    pub fn cbr(symbol_rate: f64, duration: SimTime) -> Self {
        Workload::Cbr {
            symbol_rate,
            duration,
            phase: SimTime::ZERO,
        }
    }

    /// An echo workload.
    #[must_use]
    pub fn echo(symbol_rate: f64, duration: SimTime) -> Self {
        Workload::Echo {
            symbol_rate,
            duration,
            phase: SimTime::ZERO,
        }
    }

    /// Offsets the source's first tick to `phase` (later ticks stay on
    /// the same drift-free grid). A multi-session driver staggers
    /// phases across its fleet so thousands of constant-rate sources
    /// don't tick at the same absolute instants — phase-locked fleets
    /// burst hard enough to overflow receive socket buffers while the
    /// mean offered rate is nowhere near capacity.
    #[must_use]
    pub fn with_phase(mut self, at: SimTime) -> Self {
        match &mut self {
            Workload::Cbr { phase, .. } | Workload::Echo { phase, .. } => *phase = at,
        }
        self
    }

    /// When the source offers its first symbol.
    #[must_use]
    pub fn phase(&self) -> SimTime {
        match *self {
            Workload::Cbr { phase, .. } | Workload::Echo { phase, .. } => phase,
        }
    }

    /// The offered source symbol rate.
    #[must_use]
    pub fn symbol_rate(&self) -> f64 {
        match *self {
            Workload::Cbr { symbol_rate, .. } | Workload::Echo { symbol_rate, .. } => symbol_rate,
        }
    }

    /// The sending window.
    #[must_use]
    pub fn duration(&self) -> SimTime {
        match *self {
            Workload::Cbr { duration, .. } | Workload::Echo { duration, .. } => duration,
        }
    }
}

/// Where the engine's symbols come from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceMode {
    /// The engine paces its own patterned symbols (simulator
    /// measurement workloads); reconstructions are verified internally
    /// and never surfaced as actions.
    Paced(Workload),
    /// The driver offers payloads with [`Event::SymbolReady`] and takes
    /// reconstructions back via [`Action::DeliverSymbol`]. The sending
    /// window never closes.
    External,
}

/// Everything a finished session reports — the numbers the paper's
/// figures are made of.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionReport {
    /// Symbols the source offered.
    pub offered_symbols: u64,
    /// Symbols actually split and transmitted.
    pub sent_symbols: u64,
    /// Symbols reconstructed at the receiver within the window.
    pub delivered_symbols: u64,
    /// Reconstructed symbols whose payload failed verification
    /// (must be zero: Shamir reconstruction is exact).
    pub corrupted_symbols: u64,
    /// Achieved payload throughput, bits per second over the window.
    pub achieved_payload_bps: f64,
    /// Achieved symbol rate over the window.
    pub achieved_symbol_rate: f64,
    /// Symbol loss fraction: `1 − (eventually delivered) / sent`.
    /// Counted against *all* deliveries (even after the measurement
    /// window) so that in-flight symbols at window end do not read as
    /// lost; run the simulation past the window before reporting.
    pub loss_fraction: f64,
    /// Mean one-way symbol latency (send to reconstruction).
    pub mean_one_way_delay: Option<SimTime>,
    /// Mean protocol round-trip time (echo workload only).
    pub mean_rtt: Option<SimTime>,
    /// Mean threshold over sent symbols (should approach κ).
    pub mean_k: f64,
    /// Mean multiplicity over sent symbols (should approach μ).
    pub mean_m: f64,
    /// Share frames rejected by local channel queues.
    pub send_queue_drops: u64,
    /// Symbols shed by the sender CPU model.
    pub sender_cpu_shed: u64,
    /// Symbols shed by the receiver CPU model.
    pub receiver_cpu_shed: u64,
    /// Undecodable frames received (must be zero in the simulator).
    pub wire_errors: u64,
    /// Receiver reassembly-table counters.
    pub reassembly: ReassemblyStats,
    /// Final operating `μ` of the adaptive controller, if enabled.
    pub adaptive_final_mu: Option<f64>,
    /// Number of `μ` adjustments the adaptive controller made.
    pub adaptive_adjustments: u64,
}

fn build_scheduler(
    kind: &SchedulerKind,
    kappa: f64,
    mu: f64,
    n: usize,
) -> Result<SessionScheduler, mcss_core::ModelError> {
    Ok(match kind {
        SchedulerKind::Dynamic => SessionScheduler::Dynamic(DynamicScheduler::new(kappa, mu, n)?),
        SchedulerKind::Static(schedule) => {
            // Shares the schedule; the deep copy lives only in the config.
            SessionScheduler::Static(StaticScheduler::new(Arc::clone(schedule)))
        }
        SchedulerKind::RoundRobin => {
            SessionScheduler::RoundRobin(RoundRobinScheduler::new(kappa, mu, n)?)
        }
    })
}

/// Deterministic payload pattern, verified at the receiver.
#[inline]
fn pattern_byte(seq: u64, i: usize) -> u8 {
    (seq.wrapping_mul(31).wrapping_add(i as u64) & 0xff) as u8
}

fn pattern_into(seq: u64, len: usize, out: &mut Vec<u8>) {
    out.clear();
    out.extend((0..len).map(|i| pattern_byte(seq, i)));
}

fn pattern_matches(seq: u64, payload: &[u8]) -> bool {
    payload
        .iter()
        .enumerate()
        .all(|(i, &b)| b == pattern_byte(seq, i))
}

/// The sans-I/O protocol state machine for one A↔B session over `n`
/// channels.
///
/// Drive it with [`handle`](Engine::handle) (or
/// [`handle_frame`](Engine::handle_frame) for raw wire bytes), drain
/// [`poll_action`](Engine::poll_action), and report each
/// [`Action::SendShare`] outcome via
/// [`share_send_ok`](Engine::share_send_ok) /
/// [`share_send_rejected`](Engine::share_send_rejected) so queue-drop
/// accounting and buffer recycling stay exact.
pub struct Engine {
    config: Arc<ProtocolConfig>,
    n: usize,
    source: SourceMode,
    scheduler_a: SessionScheduler,
    scheduler_b: SessionScheduler,
    table_a: ReassemblyTable,
    table_b: ReassemblyTable,
    pacer: Option<Pacer>,
    next_seq: u64,
    offered: u64,
    sent: u64,
    sum_k: u64,
    sum_m: u64,
    meter: ThroughputMeter,
    delivered_window: u64,
    delivered_total: u64,
    delay: DelaySummary,
    rtt: DelaySummary,
    corrupted: u64,
    send_queue_drops: u64,
    wire_errors: u64,
    cpu_a: CpuClock,
    cpu_b: CpuClock,
    metrics: SessionMetrics,
    adaptive: Option<AdaptiveController>,
    feedback_epoch: u32,
    last_epoch_seen: Option<u32>,
    last_feedback_delivered: u64,
    last_feedback_sent: u64,
    // Channel readiness as last reported by the driver via
    // `Event::ChannelWritable`.
    backlogs_a: Vec<SimTime>,
    backlogs_b: Vec<SimTime>,
    // Steady-state scratch: these persistent buffers make the per-symbol
    // data path allocation-free once warm (see `transmit`).
    choice: Choice,
    codec: CodecId,
    split_scratch: CodecScratch,
    tx_bufs: Vec<Vec<u8>>,
    frames: BufferPool,
    payload_buf: Vec<u8>,
    rx_buf: Vec<u8>,
    actions: VecDeque<Action>,
}

impl core::fmt::Debug for Engine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("n", &self.n)
            .field("source", &self.source)
            .field("sent", &self.sent)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds an engine for `n` channels.
    ///
    /// # Errors
    ///
    /// [`mcss_core::ModelError::InvalidParameters`] if the config's
    /// `(κ, μ)` are invalid for `n` channels.
    pub fn new(
        config: impl Into<Arc<ProtocolConfig>>,
        n: usize,
        source: SourceMode,
    ) -> Result<Self, mcss_core::ModelError> {
        let config: Arc<ProtocolConfig> = config.into();
        let scheduler_a = build_scheduler(config.scheduler(), config.kappa(), config.mu(), n)?;
        let scheduler_b = build_scheduler(config.scheduler(), config.kappa(), config.mu(), n)?;
        let adaptive = match config.adaptive_target() {
            None => None,
            Some(target) => {
                if !matches!(config.scheduler(), SchedulerKind::Dynamic) {
                    // Adaptation rewrites the dynamic sampler's mu; it is
                    // meaningless for externally fixed schedules.
                    return Err(mcss_core::ModelError::InvalidParameters {
                        kappa: config.kappa(),
                        mu: config.mu(),
                        n,
                    });
                }
                Some(AdaptiveController::new(
                    config.kappa(),
                    config.mu(),
                    n,
                    target,
                )?)
            }
        };
        let table = || {
            ReassemblyTable::new(
                config.reassembly_timeout(),
                config.reassembly_capacity_bytes(),
            )
            .with_resolved_cap(config.reassembly_resolved_cap())
        };
        let pacer = match source {
            SourceMode::Paced(workload) => Some(Pacer::with_phase(
                workload.symbol_rate(),
                1,
                workload.phase(),
            )),
            SourceMode::External => None,
        };
        Ok(Engine {
            scheduler_a,
            scheduler_b,
            table_a: table(),
            table_b: table(),
            pacer,
            next_seq: 0,
            offered: 0,
            sent: 0,
            sum_k: 0,
            sum_m: 0,
            meter: ThroughputMeter::new(),
            delivered_window: 0,
            delivered_total: 0,
            delay: DelaySummary::new(),
            rtt: DelaySummary::new(),
            corrupted: 0,
            send_queue_drops: 0,
            wire_errors: 0,
            cpu_a: CpuClock::new(),
            cpu_b: CpuClock::new(),
            metrics: SessionMetrics::new(n),
            adaptive,
            feedback_epoch: 0,
            last_epoch_seen: None,
            last_feedback_delivered: 0,
            last_feedback_sent: 0,
            backlogs_a: vec![SimTime::ZERO; n],
            backlogs_b: vec![SimTime::ZERO; n],
            choice: Choice::default(),
            codec: config.codec(),
            split_scratch: CodecScratch::new(),
            tx_bufs: Vec::with_capacity(n),
            frames: BufferPool::new(),
            payload_buf: Vec::new(),
            rx_buf: Vec::new(),
            actions: VecDeque::new(),
            config,
            n,
            source,
        })
    }

    /// The number of channels the engine schedules over.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.n
    }

    /// The protocol configuration.
    #[must_use]
    pub fn config(&self) -> &Arc<ProtocolConfig> {
        &self.config
    }

    /// The share codec this engine encodes with.
    #[must_use]
    pub fn codec(&self) -> CodecId {
        self.codec
    }

    /// The engine's source mode.
    #[must_use]
    pub fn source(&self) -> SourceMode {
        self.source
    }

    /// End of the sending window ([`SimTime::MAX`] for
    /// [`SourceMode::External`]).
    #[must_use]
    pub fn duration(&self) -> SimTime {
        match self.source {
            SourceMode::Paced(workload) => workload.duration(),
            SourceMode::External => SimTime::MAX,
        }
    }

    /// Symbols reconstructed at either endpoint since the session
    /// started, regardless of source mode. Paced sources consume
    /// reconstructions internally (no [`Action::DeliverSymbol`]), so a
    /// driver accounting deliveries must read this counter's delta
    /// rather than count actions.
    #[must_use]
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// The engine's report over a measurement `window` (typically the
    /// workload duration).
    #[must_use]
    pub fn report(&self, window: SimTime) -> SessionReport {
        let delivered = self.delivered_window;
        SessionReport {
            offered_symbols: self.offered,
            sent_symbols: self.sent,
            delivered_symbols: delivered,
            corrupted_symbols: self.corrupted,
            achieved_payload_bps: self.meter.rate_bps(window),
            achieved_symbol_rate: delivered as f64 / window.as_secs_f64(),
            loss_fraction: if self.sent == 0 {
                0.0
            } else {
                1.0 - self.delivered_total as f64 / self.sent as f64
            },
            mean_one_way_delay: self.delay.mean(),
            mean_rtt: self.rtt.mean(),
            mean_k: if self.sent == 0 {
                0.0
            } else {
                self.sum_k as f64 / self.sent as f64
            },
            mean_m: if self.sent == 0 {
                0.0
            } else {
                self.sum_m as f64 / self.sent as f64
            },
            send_queue_drops: self.send_queue_drops,
            sender_cpu_shed: self.cpu_a.shed(),
            receiver_cpu_shed: self.cpu_b.shed(),
            wire_errors: self.wire_errors,
            reassembly: self.table_b.stats(),
            adaptive_final_mu: self.adaptive.as_ref().map(AdaptiveController::mu),
            adaptive_adjustments: self
                .adaptive
                .as_ref()
                .map_or(0, AdaptiveController::adjustments),
        }
    }

    /// The adaptive controller's state, if adaptation is enabled.
    #[must_use]
    pub fn adaptive(&self) -> Option<&AdaptiveController> {
        self.adaptive.as_ref()
    }

    /// The engine's protocol metrics (per-channel share traffic, delay
    /// and gap histograms, realized `(k, m)` frequencies).
    #[must_use]
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// The frame buffer pool (for hit/miss/grow telemetry).
    #[must_use]
    pub fn frame_pool(&self) -> &BufferPool {
        &self.frames
    }

    /// Serializable snapshot of the engine's metrics plus the buffer
    /// pool and reassembly counters, under `remicss.*` names. Empty with
    /// the `telemetry` feature off.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
        let mut snap = self.metrics.snapshot();
        #[cfg(feature = "telemetry")]
        {
            let stats = self.table_b.stats();
            for (name, value) in [
                ("remicss.pool.hits", self.frames.hits()),
                ("remicss.pool.misses", self.frames.misses()),
                ("remicss.pool.grows", self.frames.grows()),
                ("remicss.reassembly.pool_hits", self.table_b.pool_hits()),
                ("remicss.reassembly.pool_misses", self.table_b.pool_misses()),
                ("remicss.symbols.resolved", stats.completed),
                (
                    "remicss.symbols.expired",
                    stats.timeout_evictions + stats.memory_evictions,
                ),
            ] {
                snap.counters.push(mcss_obs::CounterSnapshot {
                    name: name.to_string(),
                    value,
                });
            }
            snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
        }
        snap
    }

    /// Takes the next queued [`Action`], if any. Drain after every
    /// [`handle`](Engine::handle) / [`handle_frame`](Engine::handle_frame)
    /// call and perform the actions in order — the order reproduces the
    /// reference simulator's transmit/timer interleaving exactly.
    pub fn poll_action(&mut self) -> Option<Action> {
        self.actions.pop_front()
    }

    /// The driver transmitted an [`Action::SendShare`] frame (it is now
    /// in flight or queued on the channel).
    pub fn share_send_ok(&mut self, channel: usize) {
        self.metrics.record_send(channel);
    }

    /// The driver's local queue rejected an [`Action::SendShare`] frame;
    /// `frame` returns to the pool and the drop is counted.
    pub fn share_send_rejected(&mut self, channel: usize, frame: Vec<u8>) {
        self.send_queue_drops += 1;
        self.metrics.record_drop(channel);
        self.frames.put(frame);
    }

    /// The driver's local queue rejected an [`Action::SendControl`]
    /// frame. Control drops are deliberate (loss-resilient duplicates,
    /// not counted), but the buffer still comes back to the pool.
    pub fn control_send_rejected(&mut self, frame: Vec<u8>) {
        self.frames.put(frame);
    }

    /// Returns a buffer to the engine's pool: received wire frames after
    /// [`handle_frame`](Engine::handle_frame), and
    /// [`Action::DeliverSymbol`] payloads after the application consumed
    /// them. Keeps the steady state allocation-free.
    pub fn recycle(&mut self, buf: Vec<u8>) {
        self.frames.put(buf);
    }

    /// Feeds one event into the state machine, then queues the resulting
    /// actions for [`poll_action`](Engine::poll_action).
    ///
    /// `now` must be monotonically non-decreasing across calls; `rng` is
    /// the session's only randomness source (scheduler draws and Shamir
    /// coefficients), so seeding it identically replays identically.
    ///
    /// # Panics
    ///
    /// Panics on [`Event::Started`] if the config's `μ` exceeds the
    /// channel count, and on a [`Event::TimerFired`] token the engine
    /// never set.
    pub fn handle(&mut self, now: SimTime, event: Event<'_>, rng: &mut StdRng) {
        match event {
            Event::Started => self.on_start(),
            Event::TimerFired { token } => self.on_timer(now, token, rng),
            Event::SymbolReady { payload } => {
                self.offer_symbol(now, payload, rng);
            }
            Event::ShareReceived { channel, to, share } => {
                let now_ns = now.as_nanos();
                self.metrics.record_receive(
                    channel,
                    now_ns,
                    now_ns.saturating_sub(share.sent_at_nanos()),
                );
                match to {
                    Endpoint::B => self.on_share_at_b(now, &share, rng),
                    Endpoint::A => self.on_share_at_a(now, &share),
                }
            }
            Event::ControlReceived { to, control, .. } => {
                if to == Endpoint::A {
                    self.on_control_at_a(control);
                }
                // Control frames arriving at B (echo of our own order)
                // cannot occur: B only ever sends them.
            }
            Event::ChannelWritable {
                channel,
                from,
                backlog,
            } => {
                let backlogs = match from {
                    Endpoint::A => &mut self.backlogs_a,
                    Endpoint::B => &mut self.backlogs_b,
                };
                backlogs[channel] = backlog;
            }
        }
    }

    /// Decodes one received wire frame and feeds it to
    /// [`handle`](Engine::handle) as the matching
    /// [`Event::ShareReceived`] / [`Event::ControlReceived`].
    ///
    /// The caller keeps ownership of `bytes` (the engine copies what it
    /// retains); hand the buffer back with [`recycle`](Engine::recycle)
    /// once the queued actions are applied.
    ///
    /// # Errors
    ///
    /// Returns the decode error for an undecodable frame; the engine
    /// counts it in `wire_errors` and changes no other state.
    pub fn handle_frame(
        &mut self,
        now: SimTime,
        channel: usize,
        to: Endpoint,
        bytes: &[u8],
        rng: &mut StdRng,
    ) -> Result<(), WireError> {
        match wire::decode_message_ref(bytes) {
            Err(err) => {
                self.wire_errors += 1;
                Err(err)
            }
            Ok(MessageRef::Share(share)) => {
                self.handle(now, Event::ShareReceived { channel, to, share }, rng);
                Ok(())
            }
            Ok(MessageRef::Control(control)) => {
                self.handle(
                    now,
                    Event::ControlReceived {
                        channel,
                        to,
                        control,
                    },
                    rng,
                );
                Ok(())
            }
        }
    }

    fn on_start(&mut self) {
        assert!(
            self.config.mu() <= self.n as f64,
            "config mu exceeds channel count"
        );
        if let Some(pacer) = self.pacer.as_mut() {
            let first = pacer.next_tick();
            self.actions.push_back(Action::SetTimer {
                token: TIMER_SOURCE,
                at: first,
            });
        }
        let sweep = self.sweep_period();
        self.actions.push_back(Action::SetTimer {
            token: TIMER_SWEEP,
            at: sweep,
        });
        if self.adaptive.is_some() {
            self.actions.push_back(Action::SetTimer {
                token: TIMER_FEEDBACK,
                at: FEEDBACK_PERIOD,
            });
        }
    }

    fn on_timer(&mut self, now: SimTime, token: u64, rng: &mut StdRng) {
        match token {
            TIMER_SOURCE => self.on_source_tick(now, rng),
            TIMER_FEEDBACK => {
                self.send_feedback();
                if now < self.duration() {
                    self.actions.push_back(Action::SetTimer {
                        token: TIMER_FEEDBACK,
                        at: now + FEEDBACK_PERIOD,
                    });
                }
            }
            TIMER_SWEEP => {
                self.table_a.sweep(now);
                self.table_b.sweep(now);
                // Keep sweeping a while after sending stops so stragglers
                // are evicted, then let the driver drain. (Saturating: the
                // external-source window never closes.)
                let horizon = self
                    .duration()
                    .saturating_add(self.config.reassembly_timeout() * 4);
                if now < horizon {
                    self.actions.push_back(Action::SetTimer {
                        token: TIMER_SWEEP,
                        at: now + self.sweep_period(),
                    });
                }
            }
            other => panic!("unknown timer token {other}"),
        }
    }

    fn sweep_period(&self) -> SimTime {
        SimTime::from_nanos((self.config.reassembly_timeout().as_nanos() / 4).max(1_000_000))
    }

    /// Offers one symbol payload from host A: counts it, splits it, and
    /// queues the share transmissions. Returns `false` if the CPU model
    /// shed it.
    fn offer_symbol(&mut self, now: SimTime, payload: &[u8], rng: &mut StdRng) -> bool {
        self.offered += 1;
        let seq = self.next_seq;
        let stamp = now.as_nanos();
        if self.transmit(now, Endpoint::A, seq, stamp, payload, rng) {
            self.next_seq += 1;
            self.sent += 1;
            true
        } else {
            false
        }
    }

    fn on_source_tick(&mut self, now: SimTime, rng: &mut StdRng) {
        if now >= self.duration() {
            return;
        }
        let mut payload = mem::take(&mut self.payload_buf);
        pattern_into(self.next_seq, self.config.symbol_bytes(), &mut payload);
        self.offer_symbol(now, &payload, rng);
        self.payload_buf = payload;
        let pacer = self.pacer.as_mut().expect("paced source has a pacer");
        let next = pacer.next_tick();
        self.actions.push_back(Action::SetTimer {
            token: TIMER_SOURCE,
            at: next,
        });
    }

    /// Splits and queues one symbol's shares from `from`. Returns `false`
    /// if the symbol was shed by the CPU model before transmission.
    ///
    /// Steady-state allocation-free: the scheduler writes into a reused
    /// [`Choice`], shares are encoded by the session codec's
    /// `split_into` directly into pooled wire buffers (header already
    /// written), and buffers come back to the pool from the driver's
    /// send-outcome and recycle calls.
    fn transmit(
        &mut self,
        now: SimTime,
        from: Endpoint,
        seq: u64,
        stamp: u64,
        payload: &[u8],
        rng: &mut StdRng,
    ) -> bool {
        let mut choice = mem::take(&mut self.choice);
        {
            let backlogs = match from {
                Endpoint::A => &self.backlogs_a,
                Endpoint::B => &self.backlogs_b,
            };
            let state = ChannelState::new(backlogs, self.config.readiness_threshold());
            let scheduler = match from {
                Endpoint::A => &mut self.scheduler_a,
                Endpoint::B => &mut self.scheduler_b,
            };
            scheduler.choose_into(&state, rng, &mut choice);
        }
        let m = choice.channels.len();
        if let Some(cpu) = self.config.cpu() {
            let cost = cpu.send_cost(m, payload.len());
            let clock = match from {
                Endpoint::A => &mut self.cpu_a,
                Endpoint::B => &mut self.cpu_b,
            };
            if !clock.try_charge(now, cost, cpu) {
                self.choice = choice;
                return false;
            }
        }
        let codec = self.codec;
        // Per-share payload size is codec-defined (Shamir: the symbol
        // itself; XOR: prefix + replica slots) and uniform across the
        // m shares, so every header can be written before the split.
        let share_len = codec.share_len(payload.len(), choice.k, m as u8);
        let mut outs = mem::take(&mut self.tx_bufs);
        for j in 0..m {
            // Share j of a split carries abscissa j + 1.
            let mut buf = self.frames.take();
            wire::put_share_header_for(
                &mut buf,
                codec,
                seq,
                choice.k,
                m as u8,
                j as u8 + 1,
                stamp,
                share_len,
            )
            .expect("share parameters validated");
            outs.push(buf);
        }
        codec
            .split_into(
                payload,
                choice.k,
                m as u8,
                rng,
                &mut self.split_scratch,
                &mut outs,
            )
            .expect("split cannot fail");
        if from == Endpoint::A {
            self.sum_k += u64::from(choice.k);
            self.sum_m += m as u64;
            self.metrics.record_choice(choice.k, m);
        }
        for (buf, &channel) in outs.drain(..).zip(&choice.channels) {
            self.actions.push_back(Action::SendShare {
                channel,
                from,
                frame: buf,
            });
        }
        self.tx_bufs = outs;
        self.choice = choice;
        true
    }

    fn on_share_at_b(&mut self, now: SimTime, share: &ShareRef<'_>, rng: &mut StdRng) {
        let seq = share.seq();
        let k = share.k() as usize;
        let stamp = share.sent_at_nanos();
        let mut out = mem::take(&mut self.rx_buf);
        if self.table_b.accept_into(share, now, &mut out) == AcceptOutcome::Completed {
            self.metrics
                .record_residency(self.table_b.last_completed_residency().as_nanos());
            let charged = match self.config.cpu() {
                Some(cpu) => {
                    let cost = cpu.recv_cost(k, out.len());
                    // On failure the receiver is saturated: symbol dropped.
                    self.cpu_b.try_charge(now, cost, cpu)
                }
                None => true,
            };
            if charged {
                match self.source {
                    SourceMode::Paced(workload) => {
                        if pattern_matches(seq, &out) {
                            self.delivered_total += 1;
                            let window = workload.duration();
                            if now <= window {
                                self.delivered_window += 1;
                                self.meter.record(now, (out.len() * 8) as u64);
                                self.delay.record(now - SimTime::from_nanos(stamp));
                            }
                            if matches!(workload, Workload::Echo { .. }) {
                                // Bounce the symbol back through the protocol,
                                // keeping the original timestamp so A measures
                                // full protocol RTT.
                                self.transmit(now, Endpoint::B, seq, stamp, &out, rng);
                            }
                        } else {
                            self.corrupted += 1;
                        }
                    }
                    SourceMode::External => {
                        self.delivered_total += 1;
                        self.delivered_window += 1;
                        self.meter.record(now, (out.len() * 8) as u64);
                        self.delay.record(now - SimTime::from_nanos(stamp));
                        // Surface the reconstruction; swap a pooled buffer
                        // into the scratch slot so the path stays warm.
                        let payload = mem::replace(&mut out, self.frames.take());
                        self.actions
                            .push_back(Action::DeliverSymbol { seq, payload });
                    }
                }
            }
        }
        self.rx_buf = out;
    }

    fn on_share_at_a(&mut self, now: SimTime, share: &ShareRef<'_>) {
        let k = share.k() as usize;
        let stamp = share.sent_at_nanos();
        let mut out = mem::take(&mut self.rx_buf);
        if self.table_a.accept_into(share, now, &mut out) == AcceptOutcome::Completed {
            let charged = match self.config.cpu() {
                Some(cpu) => {
                    let cost = cpu.recv_cost(k, out.len());
                    self.cpu_a.try_charge(now, cost, cpu)
                }
                None => true,
            };
            if charged {
                self.rtt.record(now - SimTime::from_nanos(stamp));
            }
        }
        self.rx_buf = out;
    }

    fn send_feedback(&mut self) {
        self.feedback_epoch += 1;
        let frame = ControlFrame::new(self.feedback_epoch, self.delivered_total);
        // Tiny frame, sent on every channel for loss resilience.
        for ch in 0..self.n {
            let mut buf = self.frames.take();
            frame.encode_into(&mut buf);
            self.actions.push_back(Action::SendControl {
                channel: ch,
                from: Endpoint::B,
                frame: buf,
            });
        }
    }

    fn on_control_at_a(&mut self, frame: ControlFrame) {
        if self.last_epoch_seen.is_some_and(|e| frame.epoch() <= e) {
            return; // duplicate copy from another channel
        }
        self.last_epoch_seen = Some(frame.epoch());
        let delivered = frame
            .delivered()
            .saturating_sub(self.last_feedback_delivered);
        let sent = self.sent.saturating_sub(self.last_feedback_sent);
        self.last_feedback_delivered = frame.delivered();
        self.last_feedback_sent = self.sent;
        let Some(ctl) = self.adaptive.as_mut() else {
            return;
        };
        let old_mu = ctl.mu();
        let new_mu = ctl.observe(delivered, sent);
        if (new_mu - old_mu).abs() > 1e-12 {
            self.scheduler_a = SessionScheduler::Dynamic(
                DynamicScheduler::new(self.config.kappa(), new_mu, self.n)
                    .expect("controller keeps mu within [kappa, n]"),
            );
        }
    }
}
