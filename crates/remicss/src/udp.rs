//! The real-socket driver: the sans-I/O [`Engine`] over non-blocking
//! UDP socket pairs (feature `udp`).
//!
//! Each protocol channel maps to one loopback UDP socket pair — host A's
//! end and host B's end, cross-connected — mirroring the paper's testbed
//! where every channel is an independent UDP path. The driver supplies
//! exactly what the engine cannot have: a monotonic clock (an [`Instant`]
//! epoch mapped to [`SimTime`]), a timer queue, socket sends/receives,
//! and a seeded RNG. Every protocol decision — scheduling, splitting,
//! reassembly, adaptation — is the *same code* the simulator runs.
//!
//! The driver runs the engine in [`SourceMode::External`]: the
//! application offers payloads with [`UdpDriver::send_symbol`] and takes
//! reconstructions back from [`UdpDriver::next_symbol`] after
//! [`UdpDriver::poll`] (or the blocking [`UdpDriver::drive`]).
//!
//! ```no_run
//! use mcss_remicss::config::ProtocolConfig;
//! use mcss_remicss::udp::UdpDriver;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ProtocolConfig::new(2.0, 3.0)?.with_symbol_bytes(1024);
//! let mut driver = UdpDriver::new(config, 4, 42)?;
//! driver.send_symbol(&[0xAB; 1024])?;
//! driver.drive(std::time::Duration::from_millis(50))?;
//! while let Some((seq, payload)) = driver.next_symbol() {
//!     println!("symbol {seq}: {} bytes", payload.len());
//! }
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::io;
use std::net::UdpSocket;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcss_base::{Endpoint, EventQueue, QueueKind, SimTime};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng as _};

use crate::actions::{Action, Event};
use crate::config::ProtocolConfig;
use crate::engine::{Engine, SessionReport, SourceMode};

/// Largest datagram the driver will receive: the wire header plus the
/// largest payload [`ProtocolConfig`] accepts fits far below this.
const MAX_DATAGRAM: usize = 65_535;

/// One channel's socket pair: `a` is host A's end, `b` is host B's end.
#[derive(Debug)]
struct ChannelSockets {
    a: UdpSocket,
    b: UdpSocket,
}

impl ChannelSockets {
    fn loopback_pair() -> io::Result<Self> {
        let a = UdpSocket::bind("127.0.0.1:0")?;
        let b = UdpSocket::bind("127.0.0.1:0")?;
        a.connect(b.local_addr()?)?;
        b.connect(a.local_addr()?)?;
        a.set_nonblocking(true)?;
        b.set_nonblocking(true)?;
        Ok(ChannelSockets { a, b })
    }

    /// `endpoint`'s own socket: transmit on it as `from`, receive on it
    /// as `to` (the pair is cross-connected).
    fn sock(&self, endpoint: Endpoint) -> &UdpSocket {
        match endpoint {
            Endpoint::A => &self.a,
            Endpoint::B => &self.b,
        }
    }
}

/// The engine's pure state machine driven by real UDP sockets on
/// loopback, one socket pair per channel.
#[derive(Debug)]
pub struct UdpDriver {
    engine: Engine,
    rng: StdRng,
    // Separate stream for injected loss so fault injection never
    // perturbs the engine's scheduler/split draws.
    fault_rng: StdRng,
    loss: Vec<f64>,
    channels: Vec<ChannelSockets>,
    // Hierarchical timer wheel with netsim timer semantics — earliest
    // due time first, FIFO among equal due times.
    timers: EventQueue<u64>,
    timer_seq: u64,
    epoch: Instant,
    recv_buf: Vec<u8>,
    delivered: VecDeque<(u64, Vec<u8>)>,
}

impl UdpDriver {
    /// Binds `n` loopback socket pairs and starts an external-source
    /// engine with the given RNG `seed`.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if socket setup fails;
    /// [`io::ErrorKind::InvalidInput`] if the config's `(κ, μ)` are
    /// invalid for `n` channels.
    pub fn new(config: impl Into<Arc<ProtocolConfig>>, n: usize, seed: u64) -> io::Result<Self> {
        let engine = Engine::new(config, n, SourceMode::External)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let channels = (0..n)
            .map(|_| ChannelSockets::loopback_pair())
            .collect::<io::Result<Vec<_>>>()?;
        let mut driver = UdpDriver {
            engine,
            rng: StdRng::seed_from_u64(seed),
            fault_rng: StdRng::seed_from_u64(seed ^ FAULT_SEED_MIX),
            loss: vec![0.0; n],
            channels,
            timers: EventQueue::new(QueueKind::Wheel),
            timer_seq: 0,
            epoch: Instant::now(),
            recv_buf: vec![0u8; MAX_DATAGRAM],
            delivered: VecDeque::new(),
        };
        let now = driver.now();
        driver.engine.handle(now, Event::Started, &mut driver.rng);
        driver.apply_actions()?;
        Ok(driver)
    }

    /// The driver's monotonic clock, as engine time (nanoseconds since
    /// construction).
    #[must_use]
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// The driven sans-I/O engine.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The engine's report over a measurement `window`.
    #[must_use]
    pub fn report(&self, window: SimTime) -> SessionReport {
        self.engine.report(window)
    }

    /// Injects share loss on `channel`: each outgoing share frame is
    /// silently discarded with probability `p` *after* the engine counts
    /// it sent, emulating in-flight datagram loss.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` or `channel` is out of range.
    pub fn set_loss(&mut self, channel: usize, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.loss[channel] = p;
    }

    /// Offers one symbol payload for transmission from host A.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from the underlying socket sends.
    pub fn send_symbol(&mut self, payload: &[u8]) -> io::Result<()> {
        let now = self.now();
        self.engine
            .handle(now, Event::SymbolReady { payload }, &mut self.rng);
        self.apply_actions()
    }

    /// One non-blocking duty cycle: fires due timers, drains every
    /// socket, and queues reconstructed symbols for
    /// [`next_symbol`](UdpDriver::next_symbol). Returns how many
    /// datagrams were received.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from the underlying sockets (`WouldBlock` is
    /// handled internally and never surfaced).
    pub fn poll(&mut self) -> io::Result<usize> {
        self.fire_due_timers()?;
        let mut received = 0;
        for channel in 0..self.channels.len() {
            // Shares travel A→B (received on B's socket), control and
            // echoes B→A (received on A's socket).
            for to in [Endpoint::B, Endpoint::A] {
                loop {
                    let sock = self.channels[channel].sock(to);
                    let mut buf = std::mem::take(&mut self.recv_buf);
                    let got = match sock.recv(&mut buf) {
                        Ok(len) => {
                            let now = self.now();
                            let _ = self.engine.handle_frame(
                                now,
                                channel,
                                to,
                                &buf[..len],
                                &mut self.rng,
                            );
                            true
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
                        Err(e) => {
                            self.recv_buf = buf;
                            return Err(e);
                        }
                    };
                    self.recv_buf = buf;
                    if !got {
                        break;
                    }
                    received += 1;
                    self.apply_actions()?;
                }
            }
        }
        Ok(received)
    }

    /// Polls in a sleep loop for `duration` (wall clock), long enough
    /// for in-flight shares and timers to settle.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from [`poll`](UdpDriver::poll).
    pub fn drive(&mut self, duration: Duration) -> io::Result<()> {
        let deadline = Instant::now() + duration;
        loop {
            let got = self.poll()?;
            if Instant::now() >= deadline {
                return Ok(());
            }
            if got == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    /// Takes the next reconstructed symbol `(seq, payload)`, if any.
    pub fn next_symbol(&mut self) -> Option<(u64, Vec<u8>)> {
        self.delivered.pop_front()
    }

    fn fire_due_timers(&mut self) -> io::Result<()> {
        loop {
            let now = self.now();
            match self.timers.next_at() {
                Some(at) if at <= now => {}
                _ => return Ok(()),
            }
            let (_, _, token) = self.timers.pop().expect("peeked entry exists");
            self.engine
                .handle(now, Event::TimerFired { token }, &mut self.rng);
            self.apply_actions()?;
        }
    }

    /// Drains the engine's action queue against the sockets and timer
    /// heap, reporting each send outcome back to the engine.
    fn apply_actions(&mut self) -> io::Result<()> {
        while let Some(action) = self.engine.poll_action() {
            match action {
                Action::SendShare {
                    channel,
                    from,
                    frame,
                } => {
                    if self.loss[channel] > 0.0 && self.fault_rng.random_bool(self.loss[channel]) {
                        // Injected in-flight loss: counted sent, never
                        // put on the wire.
                        self.engine.share_send_ok(channel);
                        self.engine.recycle(frame);
                        continue;
                    }
                    match self.channels[channel].sock(from).send(&frame) {
                        Ok(_) => {
                            self.engine.share_send_ok(channel);
                            self.engine.recycle(frame);
                        }
                        Err(e) if would_drop(&e) => {
                            // A full socket buffer is the real-world
                            // analogue of the simulator's queue drop.
                            self.engine.share_send_rejected(channel, frame);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Action::SendControl {
                    channel,
                    from,
                    frame,
                } => match self.channels[channel].sock(from).send(&frame) {
                    Ok(_) => self.engine.recycle(frame),
                    Err(e) if would_drop(&e) => self.engine.control_send_rejected(frame),
                    Err(e) => return Err(e),
                },
                Action::SetTimer { token, at } => {
                    self.timer_seq += 1;
                    self.timers.push(at, self.timer_seq, token);
                }
                Action::DeliverSymbol { seq, payload } => {
                    self.delivered.push_back((seq, payload));
                }
            }
        }
        Ok(())
    }
}

/// Send errors that mean "this datagram is dropped" rather than "the
/// driver is broken": full socket buffers and kernel-refused datagrams.
fn would_drop(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::OutOfMemory | io::ErrorKind::ConnectionRefused
    )
}

/// Mixed into the fault-injection seed so the loss stream differs from
/// the engine stream even for seed 0.
const FAULT_SEED_MIX: u64 = 0xFA17_1E55_0DDB_0A11;
