//! The ReMICSS wire format: one share per frame.
//!
//! Version-1 share frames (the only version until the codec layer
//! became pluggable) carry no codec byte and always mean Shamir:
//!
//! ```text
//!  0      2    3    4    5    6        8                16               24
//!  +------+----+----+----+----+--------+----------------+----------------+
//!  | magic| v=1| k  | m  | x  | length | symbol seq     | send timestamp |
//!  +------+----+----+----+----+--------+----------------+----------------+
//!  | share payload (length bytes) …                                      |
//!  +----------------------------------------------------------------------+
//! ```
//!
//! Version-2 frames insert a one-byte codec id after the abscissa:
//!
//! ```text
//!  0      2    3    4    5    6      7        9                17       25
//!  +------+----+----+----+----+------+--------+----------------+--------+
//!  | magic| v=2| k  | m  | x  |codec | length | symbol seq     | stamp  |
//!  +------+----+----+----+----+------+--------+----------------+--------+
//!  | share payload (length bytes) …                                     |
//!  +---------------------------------------------------------------------+
//! ```
//!
//! The Shamir codec keeps emitting v1 byte-for-byte — every frame pin
//! made before codecs existed still holds — while non-default codecs
//! emit v2. Decoders accept both: a v1 frame *is* the legacy fallback
//! (implicitly [`CodecId::Shamir`]), and a v2 frame with an unknown
//! codec byte fails with the typed [`WireError::UnknownCodec`] so the
//! engine and server shards can drop it under its own counter instead
//! of panicking or misrouting shares into the wrong reassembly entry.
//!
//! The timestamp carries the sender's clock at symbol transmission and
//! lets the receiver compute one-way latency without a side channel
//! (both hosts share the simulated clock).
//!
//! # Connection-ID demux prefix
//!
//! When many sessions share one UDP socket (the `mcss-server` shards),
//! frames carry a 7-byte demux prefix ahead of the inner share/control
//! frame:
//!
//! ```text
//!  0      2    3            7
//!  +------+----+------------+------------------------------+
//!  | "RX" | ver| conn id    | inner frame ("RM"/"RC" …)    |
//!  +------+----+------------+------------------------------+
//! ```
//!
//! [`demux_frame`] strips the prefix; bare `"RM"`/`"RC"` frames are
//! still accepted as [`DemuxFrame::Legacy`], the versioned fallback for
//! single-session peers that predate the prefix.

use bytes::{BufMut, Bytes, BytesMut};
use mcss_codec::CodecId;

/// Size of the fixed version-1 frame header in bytes.
pub const HEADER_BYTES: usize = 24;

/// Size of the version-2 frame header (v1 plus the codec byte).
pub const HEADER_BYTES_V2: usize = 25;

/// Frame magic, `b"RM"`.
pub const MAGIC: [u8; 2] = *b"RM";

/// Frame version emitted for Shamir shares (codec-less header).
pub const VERSION: u8 = 1;

/// Frame version emitted for shares of any non-Shamir codec.
pub const VERSION_CODEC: u8 = 2;

/// Header size a share of `codec` is framed with: Shamir stays on the
/// v1 header, everything else pays one extra byte.
#[must_use]
pub fn header_bytes(codec: CodecId) -> usize {
    match codec {
        CodecId::Shamir => HEADER_BYTES,
        _ => HEADER_BYTES_V2,
    }
}

/// A decoded share frame.
///
/// # Examples
///
/// ```
/// use mcss_remicss::wire::ShareFrame;
///
/// let f = ShareFrame::new(7, 2, 3, 1, 123456, vec![0xaa; 16])?;
/// let encoded = f.encode();
/// let decoded = ShareFrame::decode(&encoded)?;
/// assert_eq!(decoded, f);
/// # Ok::<(), mcss_remicss::wire::WireError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShareFrame {
    seq: u64,
    k: u8,
    m: u8,
    x: u8,
    codec: CodecId,
    sent_at_nanos: u64,
    payload: Bytes,
}

impl ShareFrame {
    /// Builds a Shamir frame, validating the share parameters. Use
    /// [`with_codec`](ShareFrame::with_codec) for other codecs.
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidShare`] unless `1 ≤ k ≤ m` and `1 ≤ x ≤ m`;
    /// [`WireError::PayloadTooLarge`] if the payload exceeds `u16::MAX`
    /// bytes.
    pub fn new(
        seq: u64,
        k: u8,
        m: u8,
        x: u8,
        sent_at_nanos: u64,
        payload: impl Into<Bytes>,
    ) -> Result<Self, WireError> {
        if k == 0 || k > m || x == 0 || x > m {
            return Err(WireError::InvalidShare { k, m, x });
        }
        let payload = payload.into();
        if payload.len() > u16::MAX as usize {
            return Err(WireError::PayloadTooLarge { len: payload.len() });
        }
        Ok(ShareFrame {
            seq,
            k,
            m,
            x,
            codec: CodecId::Shamir,
            sent_at_nanos,
            payload,
        })
    }

    /// Tags the frame with a codec. Shamir frames encode as v1 (the
    /// pre-codec bytes); any other codec encodes as v2.
    #[must_use]
    pub fn with_codec(mut self, codec: CodecId) -> Self {
        self.codec = codec;
        self
    }

    /// The symbol sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The threshold `k` for this symbol.
    #[must_use]
    pub fn k(&self) -> u8 {
        self.k
    }

    /// The multiplicity `m` for this symbol.
    #[must_use]
    pub fn m(&self) -> u8 {
        self.m
    }

    /// The share abscissa (1-based).
    #[must_use]
    pub fn x(&self) -> u8 {
        self.x
    }

    /// The codec that produced this share.
    #[must_use]
    pub fn codec(&self) -> CodecId {
        self.codec
    }

    /// Sender clock at transmission, in nanoseconds.
    #[must_use]
    pub fn sent_at_nanos(&self) -> u64 {
        self.sent_at_nanos
    }

    /// The share payload.
    #[must_use]
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// Total encoded size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        header_bytes(self.codec) + self.payload.len()
    }

    /// Serializes the frame.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let shamir = self.codec == CodecId::Shamir;
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_slice(&MAGIC);
        buf.put_u8(if shamir { VERSION } else { VERSION_CODEC });
        buf.put_u8(self.k);
        buf.put_u8(self.m);
        buf.put_u8(self.x);
        if !shamir {
            buf.put_u8(self.codec.wire_id());
        }
        buf.put_u16(self.payload.len() as u16);
        buf.put_u64(self.seq);
        buf.put_u64(self.sent_at_nanos);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses a frame into owned storage (one payload copy). The hot
    /// path uses the copy-free [`ShareRef::decode`] instead.
    ///
    /// # Errors
    ///
    /// - [`WireError::Truncated`] if the buffer is shorter than the
    ///   header or the declared payload length.
    /// - [`WireError::BadMagic`] / [`WireError::BadVersion`] for foreign
    ///   or future frames.
    /// - [`WireError::InvalidShare`] for inconsistent `(k, m, x)`.
    /// - [`WireError::TrailingBytes`] if the buffer is longer than the
    ///   declared frame.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let share = ShareRef::decode(buf)?;
        ShareFrame::new(
            share.seq(),
            share.k(),
            share.m(),
            share.x(),
            share.sent_at_nanos(),
            Bytes::copy_from_slice(share.payload()),
        )
        .map(|f| f.with_codec(share.codec()))
    }
}

/// A share frame decoded *in place*: every field is read out of the
/// receive buffer, the payload stays borrowed, and nothing allocates.
/// This is what the session's zero-allocation receive path parses; it
/// validates exactly what [`ShareFrame::decode`] validates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareRef<'a> {
    seq: u64,
    k: u8,
    m: u8,
    x: u8,
    codec: CodecId,
    sent_at_nanos: u64,
    payload: &'a [u8],
}

impl<'a> ShareRef<'a> {
    /// Parses a frame without copying the payload. Both header
    /// versions decode: v1 frames carry no codec byte and are Shamir
    /// by definition (the legacy fallback), v2 frames name their codec
    /// explicitly.
    ///
    /// # Errors
    ///
    /// Exactly as [`ShareFrame::decode`]: [`WireError::Truncated`],
    /// [`WireError::BadMagic`], [`WireError::BadVersion`],
    /// [`WireError::InvalidShare`], [`WireError::UnknownCodec`],
    /// [`WireError::TrailingBytes`].
    pub fn decode(buf: &'a [u8]) -> Result<Self, WireError> {
        if buf.len() < HEADER_BYTES {
            return Err(WireError::Truncated {
                have: buf.len(),
                need: HEADER_BYTES,
            });
        }
        if buf[0..2] != MAGIC {
            return Err(WireError::BadMagic {
                found: [buf[0], buf[1]],
            });
        }
        if buf[2] != VERSION && buf[2] != VERSION_CODEC {
            return Err(WireError::BadVersion { found: buf[2] });
        }
        let k = buf[3];
        let m = buf[4];
        let x = buf[5];
        if k == 0 || k > m || x == 0 || x > m {
            return Err(WireError::InvalidShare { k, m, x });
        }
        let (codec, header) = if buf[2] == VERSION {
            (CodecId::Shamir, HEADER_BYTES)
        } else {
            if buf.len() < HEADER_BYTES_V2 {
                return Err(WireError::Truncated {
                    have: buf.len(),
                    need: HEADER_BYTES_V2,
                });
            }
            let Some(codec) = CodecId::from_wire(buf[6]) else {
                return Err(WireError::UnknownCodec { found: buf[6] });
            };
            (codec, HEADER_BYTES_V2)
        };
        let at = header - 18; // length field offset: 6 (v1) or 7 (v2)
        let len = u16::from_be_bytes([buf[at], buf[at + 1]]) as usize;
        let seq = u64::from_be_bytes(buf[at + 2..at + 10].try_into().expect("8 bytes"));
        let sent_at_nanos = u64::from_be_bytes(buf[at + 10..at + 18].try_into().expect("8 bytes"));
        let need = header + len;
        if buf.len() < need {
            return Err(WireError::Truncated {
                have: buf.len(),
                need,
            });
        }
        if buf.len() > need {
            return Err(WireError::TrailingBytes {
                extra: buf.len() - need,
            });
        }
        Ok(ShareRef {
            seq,
            k,
            m,
            x,
            codec,
            sent_at_nanos,
            payload: &buf[header..need],
        })
    }

    /// The symbol sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The threshold `k` for this symbol.
    #[must_use]
    pub fn k(&self) -> u8 {
        self.k
    }

    /// The multiplicity `m` for this symbol.
    #[must_use]
    pub fn m(&self) -> u8 {
        self.m
    }

    /// The share abscissa (1-based).
    #[must_use]
    pub fn x(&self) -> u8 {
        self.x
    }

    /// The codec that produced this share (v1 frames are Shamir).
    #[must_use]
    pub fn codec(&self) -> CodecId {
        self.codec
    }

    /// Sender clock at transmission, in nanoseconds.
    #[must_use]
    pub fn sent_at_nanos(&self) -> u64 {
        self.sent_at_nanos
    }

    /// The share payload, borrowed from the receive buffer.
    #[must_use]
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }
}

/// Appends a share-frame header to `buf`, declaring `payload_len`
/// payload bytes that the caller writes right after (e.g. via
/// [`mcss_shamir::split_into`] straight into the same buffer).
///
/// Writing header and payload into one pooled buffer is what removes
/// the encode-and-copy step from the sender: the buffer *is* the wire
/// frame. Bytes emitted are identical to [`ShareFrame::encode`].
///
/// # Errors
///
/// [`WireError::InvalidShare`] unless `1 ≤ k ≤ m` and `1 ≤ x ≤ m`;
/// [`WireError::PayloadTooLarge`] if `payload_len` exceeds `u16::MAX`.
pub fn put_share_header(
    buf: &mut Vec<u8>,
    seq: u64,
    k: u8,
    m: u8,
    x: u8,
    sent_at_nanos: u64,
    payload_len: usize,
) -> Result<(), WireError> {
    if k == 0 || k > m || x == 0 || x > m {
        return Err(WireError::InvalidShare { k, m, x });
    }
    let Ok(len) = u16::try_from(payload_len) else {
        return Err(WireError::PayloadTooLarge { len: payload_len });
    };
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(k);
    buf.push(m);
    buf.push(x);
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(&seq.to_be_bytes());
    buf.extend_from_slice(&sent_at_nanos.to_be_bytes());
    Ok(())
}

/// Codec-aware twin of [`put_share_header`]: emits the v1 header for
/// [`CodecId::Shamir`] — byte-identical to what [`put_share_header`]
/// wrote before codecs existed — and the v2 header (codec byte
/// included) for every other codec.
///
/// # Errors
///
/// As [`put_share_header`].
#[allow(clippy::too_many_arguments)]
pub fn put_share_header_for(
    buf: &mut Vec<u8>,
    codec: CodecId,
    seq: u64,
    k: u8,
    m: u8,
    x: u8,
    sent_at_nanos: u64,
    payload_len: usize,
) -> Result<(), WireError> {
    if codec == CodecId::Shamir {
        return put_share_header(buf, seq, k, m, x, sent_at_nanos, payload_len);
    }
    if k == 0 || k > m || x == 0 || x > m {
        return Err(WireError::InvalidShare { k, m, x });
    }
    let Ok(len) = u16::try_from(payload_len) else {
        return Err(WireError::PayloadTooLarge { len: payload_len });
    };
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION_CODEC);
    buf.push(k);
    buf.push(m);
    buf.push(x);
    buf.push(codec.wire_id());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(&seq.to_be_bytes());
    buf.extend_from_slice(&sent_at_nanos.to_be_bytes());
    Ok(())
}

/// Magic bytes of a control (feedback) frame, `b"RC"`.
pub const CONTROL_MAGIC: [u8; 2] = *b"RC";

/// Size of an encoded control frame in bytes.
pub const CONTROL_BYTES: usize = 2 + 1 + 4 + 8;

/// Receiver-to-sender feedback: cumulative delivery count, used by the
/// adaptive multiplicity controller
/// ([`adaptive`](crate::adaptive)).
///
/// # Examples
///
/// ```
/// use mcss_remicss::wire::ControlFrame;
///
/// let c = ControlFrame::new(3, 1234);
/// assert_eq!(ControlFrame::decode(&c.encode()).unwrap(), c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlFrame {
    epoch: u32,
    delivered: u64,
}

impl ControlFrame {
    /// Builds a feedback frame for `epoch` reporting `delivered`
    /// cumulative symbol deliveries.
    #[must_use]
    pub fn new(epoch: u32, delivered: u64) -> Self {
        ControlFrame { epoch, delivered }
    }

    /// The feedback epoch number.
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Cumulative symbols the receiver has reconstructed.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Serializes the frame.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(CONTROL_BYTES);
        buf.put_slice(&CONTROL_MAGIC);
        buf.put_u8(VERSION);
        buf.put_u32(self.epoch);
        buf.put_u64(self.delivered);
        buf.freeze()
    }

    /// Appends the encoded frame to `buf` (same bytes as
    /// [`encode`](ControlFrame::encode), no allocation beyond the
    /// buffer's own growth).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&CONTROL_MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&self.epoch.to_be_bytes());
        buf.extend_from_slice(&self.delivered.to_be_bytes());
    }

    /// Parses a control frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`], [`WireError::BadMagic`],
    /// [`WireError::BadVersion`], or [`WireError::TrailingBytes`] as for
    /// [`ShareFrame::decode`].
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        if buf.len() < CONTROL_BYTES {
            return Err(WireError::Truncated {
                have: buf.len(),
                need: CONTROL_BYTES,
            });
        }
        if buf[0..2] != CONTROL_MAGIC {
            return Err(WireError::BadMagic {
                found: [buf[0], buf[1]],
            });
        }
        if buf[2] != VERSION {
            return Err(WireError::BadVersion { found: buf[2] });
        }
        if buf.len() > CONTROL_BYTES {
            return Err(WireError::TrailingBytes {
                extra: buf.len() - CONTROL_BYTES,
            });
        }
        Ok(ControlFrame {
            epoch: u32::from_be_bytes(buf[3..7].try_into().expect("4 bytes")),
            delivered: u64::from_be_bytes(buf[7..15].try_into().expect("8 bytes")),
        })
    }
}

/// Magic bytes of the connection-ID demux prefix, `b"RX"`.
pub const CID_MAGIC: [u8; 2] = *b"RX";

/// Version of the demux prefix this implementation speaks.
pub const CID_VERSION: u8 = 1;

/// Size of the demux prefix: magic, version, and a 32-bit connection ID.
pub const CID_PREFIX_BYTES: usize = 2 + 1 + 4;

/// Appends a connection-ID demux prefix to `buf`; the caller writes the
/// inner share/control frame right after, so prefix and frame share one
/// pooled buffer just like [`put_share_header`].
pub fn put_cid_prefix(buf: &mut Vec<u8>, cid: u32) {
    buf.extend_from_slice(&CID_MAGIC);
    buf.push(CID_VERSION);
    buf.extend_from_slice(&cid.to_be_bytes());
}

/// A datagram classified by its demux framing, inner bytes borrowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemuxFrame<'a> {
    /// A prefixed frame: route `inner` to the session owning `cid`.
    Cid {
        /// The 32-bit connection ID.
        cid: u32,
        /// The inner share/control frame, prefix stripped.
        inner: &'a [u8],
    },
    /// A bare pre-prefix frame (`b"RM"` / `b"RC"`): the versioned
    /// legacy fallback for peers that speak one session per socket.
    Legacy(&'a [u8]),
}

/// Classifies a datagram by its leading magic: strips a `b"RX"` demux
/// prefix, passes bare `b"RM"`/`b"RC"` frames through as
/// [`DemuxFrame::Legacy`]. The inner frame is *not* validated here —
/// that stays with the owning session's decoder, so a corrupt inner
/// frame is charged to the right session's counters.
///
/// # Errors
///
/// - [`WireError::Truncated`] if a prefixed datagram ends inside the
///   prefix or carries no inner bytes.
/// - [`WireError::BadVersion`] for an unknown prefix version.
/// - [`WireError::BadMagic`] if no known magic leads the datagram.
pub fn demux_frame(buf: &[u8]) -> Result<DemuxFrame<'_>, WireError> {
    if buf.len() >= 2 && buf[0..2] == CID_MAGIC {
        if buf.len() <= CID_PREFIX_BYTES {
            return Err(WireError::Truncated {
                have: buf.len(),
                need: CID_PREFIX_BYTES + 1,
            });
        }
        if buf[2] != CID_VERSION {
            return Err(WireError::BadVersion { found: buf[2] });
        }
        let cid = u32::from_be_bytes(buf[3..7].try_into().expect("4 bytes"));
        return Ok(DemuxFrame::Cid {
            cid,
            inner: &buf[CID_PREFIX_BYTES..],
        });
    }
    if buf.len() >= 2 && (buf[0..2] == MAGIC || buf[0..2] == CONTROL_MAGIC) {
        return Ok(DemuxFrame::Legacy(buf));
    }
    Err(WireError::BadMagic {
        found: [
            buf.first().copied().unwrap_or(0),
            buf.get(1).copied().unwrap_or(0),
        ],
    })
}

/// Any frame the protocol puts on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A share of a source symbol.
    Share(ShareFrame),
    /// Receiver feedback.
    Control(ControlFrame),
}

/// Decodes either frame kind by dispatching on the magic bytes.
///
/// # Errors
///
/// [`WireError`] as for the respective `decode` functions;
/// [`WireError::BadMagic`] if neither magic matches.
pub fn decode_message(buf: &[u8]) -> Result<Message, WireError> {
    if buf.len() >= 2 && buf[0..2] == CONTROL_MAGIC {
        ControlFrame::decode(buf).map(Message::Control)
    } else {
        ShareFrame::decode(buf).map(Message::Share)
    }
}

/// Any frame the protocol puts on the wire, decoded in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageRef<'a> {
    /// A share of a source symbol, payload borrowed.
    Share(ShareRef<'a>),
    /// Receiver feedback (small enough to always copy out).
    Control(ControlFrame),
}

/// Copy-free twin of [`decode_message`]: dispatches on the magic bytes
/// and leaves share payloads borrowed from `buf`.
///
/// # Errors
///
/// [`WireError`] as for [`decode_message`].
pub fn decode_message_ref(buf: &[u8]) -> Result<MessageRef<'_>, WireError> {
    if buf.len() >= 2 && buf[0..2] == CONTROL_MAGIC {
        ControlFrame::decode(buf).map(MessageRef::Control)
    } else {
        ShareRef::decode(buf).map(MessageRef::Share)
    }
}

/// Error from encoding or decoding a [`ShareFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum WireError {
    /// Buffer shorter than the frame it claims to hold.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes required.
        need: usize,
    },
    /// The magic bytes are not `b"RM"`.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 2],
    },
    /// Unsupported protocol version.
    BadVersion {
        /// The version found.
        found: u8,
    },
    /// Share parameters violate `1 ≤ k ≤ m` and `1 ≤ x ≤ m`.
    InvalidShare {
        /// Declared threshold.
        k: u8,
        /// Declared multiplicity.
        m: u8,
        /// Declared abscissa.
        x: u8,
    },
    /// Payload longer than the 16-bit length field allows.
    PayloadTooLarge {
        /// The offending length.
        len: usize,
    },
    /// The buffer extends past the declared frame end.
    TrailingBytes {
        /// Number of surplus bytes.
        extra: usize,
    },
    /// A v2 share header names a codec this implementation does not
    /// know. Dropped under its own counter — never guessed at, never
    /// routed into another codec's reassembly entry.
    UnknownCodec {
        /// The codec byte found.
        found: u8,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?}")
            }
            WireError::BadVersion { found } => write!(f, "unsupported version {found}"),
            WireError::InvalidShare { k, m, x } => {
                write!(f, "invalid share parameters k={k} m={m} x={x}")
            }
            WireError::PayloadTooLarge { len } => {
                write!(f, "payload of {len} bytes exceeds the 16-bit length field")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame end")
            }
            WireError::UnknownCodec { found } => {
                write!(f, "unknown codec id {found}")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShareFrame {
        ShareFrame::new(0xdead_beef, 2, 5, 3, 987_654_321, vec![7u8; 100]).unwrap()
    }

    #[test]
    fn round_trip() {
        let f = sample();
        assert_eq!(ShareFrame::decode(&f.encode()).unwrap(), f);
        assert_eq!(f.encoded_len(), HEADER_BYTES + 100);
    }

    #[test]
    fn accessors() {
        let f = sample();
        assert_eq!(f.seq(), 0xdead_beef);
        assert_eq!((f.k(), f.m(), f.x()), (2, 5, 3));
        assert_eq!(f.sent_at_nanos(), 987_654_321);
        assert_eq!(f.payload().len(), 100);
    }

    #[test]
    fn empty_payload_round_trips() {
        let f = ShareFrame::new(1, 1, 1, 1, 0, Bytes::new()).unwrap();
        assert_eq!(ShareFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn invalid_share_params_rejected() {
        for (k, m, x) in [(0, 1, 1), (2, 1, 1), (1, 1, 0), (1, 1, 2), (3, 2, 1)] {
            assert_eq!(
                ShareFrame::new(0, k, m, x, 0, Bytes::new()).unwrap_err(),
                WireError::InvalidShare { k, m, x }
            );
        }
    }

    #[test]
    fn payload_too_large_rejected() {
        let e = ShareFrame::new(0, 1, 1, 1, 0, vec![0u8; 65536]).unwrap_err();
        assert_eq!(e, WireError::PayloadTooLarge { len: 65536 });
    }

    #[test]
    fn decode_truncated() {
        let enc = sample().encode();
        assert!(matches!(
            ShareFrame::decode(&enc[..10]),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            ShareFrame::decode(&enc[..HEADER_BYTES + 5]),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            ShareFrame::decode(&[]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_bad_magic_and_version() {
        let mut enc = sample().encode().to_vec();
        enc[0] = b'X';
        assert!(matches!(
            ShareFrame::decode(&enc),
            Err(WireError::BadMagic { .. })
        ));
        let mut enc = sample().encode().to_vec();
        enc[2] = 9;
        assert_eq!(
            ShareFrame::decode(&enc).unwrap_err(),
            WireError::BadVersion { found: 9 }
        );
    }

    #[test]
    fn decode_trailing_bytes() {
        let mut enc = sample().encode().to_vec();
        enc.push(0);
        assert_eq!(
            ShareFrame::decode(&enc).unwrap_err(),
            WireError::TrailingBytes { extra: 1 }
        );
    }

    #[test]
    fn decode_corrupt_share_params() {
        let mut enc = sample().encode().to_vec();
        enc[3] = 0; // k = 0
        assert!(matches!(
            ShareFrame::decode(&enc),
            Err(WireError::InvalidShare { .. })
        ));
    }

    #[test]
    fn control_frame_round_trip() {
        let c = ControlFrame::new(u32::MAX, u64::MAX);
        assert_eq!(ControlFrame::decode(&c.encode()).unwrap(), c);
        assert_eq!(c.encode().len(), CONTROL_BYTES);
    }

    #[test]
    fn control_frame_decode_errors() {
        let enc = ControlFrame::new(1, 2).encode();
        assert!(matches!(
            ControlFrame::decode(&enc[..5]),
            Err(WireError::Truncated { .. })
        ));
        let mut bad = enc.to_vec();
        bad[2] = 9;
        assert_eq!(
            ControlFrame::decode(&bad).unwrap_err(),
            WireError::BadVersion { found: 9 }
        );
        let mut long = enc.to_vec();
        long.push(0);
        assert!(matches!(
            ControlFrame::decode(&long),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn message_dispatch() {
        let share = sample();
        match decode_message(&share.encode()).unwrap() {
            Message::Share(s) => assert_eq!(s, share),
            Message::Control(_) => panic!("expected share"),
        }
        let ctl = ControlFrame::new(7, 8);
        match decode_message(&ctl.encode()).unwrap() {
            Message::Control(c) => assert_eq!(c, ctl),
            Message::Share(_) => panic!("expected control"),
        }
        assert!(decode_message(&[0u8; 3]).is_err());
    }

    #[test]
    fn share_ref_matches_owned_decode() {
        let f = sample();
        let enc = f.encode();
        let r = ShareRef::decode(&enc).unwrap();
        assert_eq!(
            (r.seq(), r.k(), r.m(), r.x(), r.sent_at_nanos()),
            (f.seq(), f.k(), f.m(), f.x(), f.sent_at_nanos())
        );
        assert_eq!(r.payload(), &f.payload()[..]);
        // Borrowed, not copied.
        assert_eq!(r.payload().as_ptr(), enc[HEADER_BYTES..].as_ptr());
        // Same rejections.
        for cut in [0, 10, HEADER_BYTES + 5] {
            assert_eq!(
                ShareRef::decode(&enc[..cut]).unwrap_err(),
                ShareFrame::decode(&enc[..cut]).unwrap_err()
            );
        }
    }

    #[test]
    fn put_share_header_matches_encode() {
        let f = sample();
        let mut buf = Vec::new();
        put_share_header(
            &mut buf,
            f.seq(),
            f.k(),
            f.m(),
            f.x(),
            f.sent_at_nanos(),
            100,
        )
        .unwrap();
        buf.extend_from_slice(f.payload());
        assert_eq!(&buf[..], &f.encode()[..]);
        assert_eq!(
            put_share_header(&mut buf, 0, 0, 1, 1, 0, 4).unwrap_err(),
            WireError::InvalidShare { k: 0, m: 1, x: 1 }
        );
        assert_eq!(
            put_share_header(&mut Vec::new(), 0, 1, 1, 1, 0, 1 << 17).unwrap_err(),
            WireError::PayloadTooLarge { len: 1 << 17 }
        );
    }

    #[test]
    fn control_encode_into_matches_encode() {
        let c = ControlFrame::new(77, 1 << 40);
        let mut buf = vec![0xff]; // appends after existing contents
        c.encode_into(&mut buf);
        assert_eq!(&buf[1..], &c.encode()[..]);
    }

    #[test]
    fn message_ref_dispatch() {
        let share = sample();
        let enc = share.encode();
        match decode_message_ref(&enc).unwrap() {
            MessageRef::Share(s) => assert_eq!(s.seq(), share.seq()),
            MessageRef::Control(_) => panic!("expected share"),
        }
        let ctl = ControlFrame::new(7, 8);
        match decode_message_ref(&ctl.encode()).unwrap() {
            MessageRef::Control(c) => assert_eq!(c, ctl),
            MessageRef::Share(_) => panic!("expected control"),
        }
        assert!(decode_message_ref(&[0u8; 3]).is_err());
    }

    #[test]
    fn cid_prefix_round_trips() {
        let share = sample();
        let mut buf = Vec::new();
        put_cid_prefix(&mut buf, 0xdead_cafe);
        buf.extend_from_slice(&share.encode());
        match demux_frame(&buf).unwrap() {
            DemuxFrame::Cid { cid, inner } => {
                assert_eq!(cid, 0xdead_cafe);
                assert_eq!(ShareFrame::decode(inner).unwrap(), share);
                // Borrowed, not copied.
                assert_eq!(inner.as_ptr(), buf[CID_PREFIX_BYTES..].as_ptr());
            }
            DemuxFrame::Legacy(_) => panic!("expected prefixed frame"),
        }
        let mut ctl = Vec::new();
        put_cid_prefix(&mut ctl, 7);
        ControlFrame::new(1, 2).encode_into(&mut ctl);
        assert!(matches!(
            demux_frame(&ctl).unwrap(),
            DemuxFrame::Cid { cid: 7, .. }
        ));
    }

    #[test]
    fn demux_passes_legacy_frames_through() {
        let share_enc = sample().encode();
        assert_eq!(
            demux_frame(&share_enc).unwrap(),
            DemuxFrame::Legacy(&share_enc[..])
        );
        let ctl_enc = ControlFrame::new(1, 2).encode();
        assert_eq!(
            demux_frame(&ctl_enc).unwrap(),
            DemuxFrame::Legacy(&ctl_enc[..])
        );
    }

    #[test]
    fn demux_rejects_truncated_and_mutated_prefixes() {
        let mut buf = Vec::new();
        put_cid_prefix(&mut buf, 42);
        buf.extend_from_slice(&sample().encode());
        // Cut anywhere inside the prefix, or right at its end (an empty
        // inner frame routes nowhere), is truncated.
        for cut in [2, 3, CID_PREFIX_BYTES - 1, CID_PREFIX_BYTES] {
            assert!(matches!(
                demux_frame(&buf[..cut]).unwrap_err(),
                WireError::Truncated { .. }
            ));
        }
        let mut bad_ver = buf.clone();
        bad_ver[2] = 9;
        assert_eq!(
            demux_frame(&bad_ver).unwrap_err(),
            WireError::BadVersion { found: 9 }
        );
        let mut bad_magic = buf.clone();
        bad_magic[1] = b'Z';
        assert_eq!(
            demux_frame(&bad_magic).unwrap_err(),
            WireError::BadMagic {
                found: [b'R', b'Z']
            }
        );
        assert!(demux_frame(&[]).is_err());
        assert!(demux_frame(b"R").is_err());
    }

    #[test]
    fn error_display() {
        let errors: Vec<WireError> = vec![
            WireError::Truncated { have: 1, need: 2 },
            WireError::BadMagic { found: [0, 0] },
            WireError::BadVersion { found: 9 },
            WireError::InvalidShare { k: 0, m: 0, x: 0 },
            WireError::PayloadTooLarge { len: 70000 },
            WireError::TrailingBytes { extra: 3 },
            WireError::UnknownCodec { found: 0xEE },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    fn xor_sample() -> ShareFrame {
        ShareFrame::new(0xfeed_f00d, 2, 5, 3, 13_579, vec![9u8; 64])
            .unwrap()
            .with_codec(CodecId::Xor2d)
    }

    #[test]
    fn v2_round_trip_preserves_codec() {
        let f = xor_sample();
        let enc = f.encode();
        assert_eq!(enc.len(), HEADER_BYTES_V2 + 64);
        assert_eq!(enc[2], VERSION_CODEC);
        assert_eq!(enc[6], CodecId::Xor2d.wire_id());
        let dec = ShareFrame::decode(&enc).unwrap();
        assert_eq!(dec, f);
        assert_eq!(dec.codec(), CodecId::Xor2d);
        let r = ShareRef::decode(&enc).unwrap();
        assert_eq!(r.codec(), CodecId::Xor2d);
        assert_eq!(
            (r.seq(), r.k(), r.m(), r.x(), r.sent_at_nanos()),
            (f.seq(), f.k(), f.m(), f.x(), f.sent_at_nanos())
        );
        assert_eq!(r.payload(), &f.payload()[..]);
        assert_eq!(r.payload().as_ptr(), enc[HEADER_BYTES_V2..].as_ptr());
    }

    #[test]
    fn v1_frames_fall_back_to_shamir() {
        let f = sample();
        let enc = f.encode();
        assert_eq!(enc[2], VERSION);
        assert_eq!(enc.len(), HEADER_BYTES + 100);
        let dec = ShareRef::decode(&enc).unwrap();
        assert_eq!(dec.codec(), CodecId::Shamir);
        // Tagging Shamir explicitly is a no-op on the wire.
        let tagged = sample().with_codec(CodecId::Shamir);
        assert_eq!(&tagged.encode()[..], &enc[..]);
    }

    #[test]
    fn unknown_codec_id_is_a_typed_error() {
        let mut enc = xor_sample().encode().to_vec();
        enc[6] = 0xEE;
        assert_eq!(
            ShareRef::decode(&enc).unwrap_err(),
            WireError::UnknownCodec { found: 0xEE }
        );
        assert_eq!(
            ShareFrame::decode(&enc).unwrap_err(),
            WireError::UnknownCodec { found: 0xEE }
        );
        // The v1 header has no codec byte to garble: byte 6 is the
        // length field, and a flipped version byte stays BadVersion.
        let mut v1 = sample().encode().to_vec();
        v1[2] = 9;
        assert_eq!(
            ShareRef::decode(&v1).unwrap_err(),
            WireError::BadVersion { found: 9 }
        );
    }

    #[test]
    fn v2_truncation_and_trailing() {
        let enc = xor_sample().encode();
        for cut in [HEADER_BYTES, HEADER_BYTES_V2 - 1, HEADER_BYTES_V2 + 5] {
            assert!(matches!(
                ShareRef::decode(&enc[..cut]).unwrap_err(),
                WireError::Truncated { .. }
            ));
        }
        let mut long = enc.to_vec();
        long.push(0);
        assert_eq!(
            ShareRef::decode(&long).unwrap_err(),
            WireError::TrailingBytes { extra: 1 }
        );
    }

    #[test]
    fn put_share_header_for_matches_encode() {
        for codec in CodecId::ALL {
            let f = sample().with_codec(codec);
            let mut buf = Vec::new();
            put_share_header_for(
                &mut buf,
                codec,
                f.seq(),
                f.k(),
                f.m(),
                f.x(),
                f.sent_at_nanos(),
                100,
            )
            .unwrap();
            assert_eq!(buf.len(), header_bytes(codec));
            buf.extend_from_slice(f.payload());
            assert_eq!(&buf[..], &f.encode()[..], "codec {codec}");
        }
        assert_eq!(
            put_share_header_for(&mut Vec::new(), CodecId::Xor2d, 0, 0, 1, 1, 0, 4).unwrap_err(),
            WireError::InvalidShare { k: 0, m: 1, x: 1 }
        );
        assert_eq!(
            put_share_header_for(&mut Vec::new(), CodecId::Xor2d, 0, 1, 1, 1, 0, 1 << 17)
                .unwrap_err(),
            WireError::PayloadTooLarge { len: 1 << 17 }
        );
    }
}
