//! Closed-loop adaptation of the mean multiplicity `μ`.
//!
//! The model tells you the best `μ` *if* you know the loss vector — but
//! deployments rarely do, and channel conditions drift. This controller
//! closes the loop the way the paper's future-work discussion suggests:
//! the receiver periodically reports how many symbols it reconstructed
//! (a [`ControlFrame`](crate::wire::ControlFrame) on the wire), the
//! sender compares that against what it sent over the same epoch, and
//! nudges `μ` within `[κ, n]`:
//!
//! * measured loss above the target → add redundancy (`μ` up);
//! * measured loss far below the target → reclaim rate (`μ` down).
//!
//! An EWMA smooths epoch noise and a multiplicative-increase /
//! additive-decrease step keeps recovery fast after sudden degradation
//! while probing gently in the good regime.

use mcss_core::ModelError;

/// Controller state for adaptive multiplicity.
///
/// # Examples
///
/// ```
/// use mcss_remicss::adaptive::AdaptiveController;
///
/// let mut ctl = AdaptiveController::new(1.0, 1.5, 5, 1e-2)?;
/// // A bad epoch: 20% of symbols lost.
/// ctl.observe(80, 100);
/// assert!(ctl.mu() > 1.5);
/// # Ok::<(), mcss_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveController {
    kappa: f64,
    n: usize,
    mu: f64,
    target_loss: f64,
    ewma: Option<f64>,
    alpha: f64,
    up_step: f64,
    down_step: f64,
    adjustments: u64,
}

impl AdaptiveController {
    /// EWMA smoothing factor (weight of the newest epoch).
    pub const DEFAULT_ALPHA: f64 = 0.3;
    /// Additive increase applied per bad epoch.
    pub const DEFAULT_UP_STEP: f64 = 0.5;
    /// Additive decrease applied per comfortable epoch.
    pub const DEFAULT_DOWN_STEP: f64 = 0.1;

    /// Creates a controller starting at `initial_mu`, bounded to
    /// `[κ, n]`.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParameters`] unless
    /// `1 ≤ κ ≤ initial_mu ≤ n` and `target_loss ∈ (0, 1)`.
    pub fn new(
        kappa: f64,
        initial_mu: f64,
        n: usize,
        target_loss: f64,
    ) -> Result<Self, ModelError> {
        if !(kappa.is_finite() && initial_mu.is_finite())
            || kappa < 1.0
            || kappa > initial_mu
            || initial_mu > n as f64
            || !target_loss.is_finite()
            || !(0.0..1.0).contains(&target_loss)
            || target_loss == 0.0
        {
            return Err(ModelError::InvalidParameters {
                kappa,
                mu: initial_mu,
                n,
            });
        }
        Ok(AdaptiveController {
            kappa,
            n,
            mu: initial_mu,
            target_loss,
            ewma: None,
            alpha: Self::DEFAULT_ALPHA,
            up_step: Self::DEFAULT_UP_STEP,
            down_step: Self::DEFAULT_DOWN_STEP,
            adjustments: 0,
        })
    }

    /// The current operating multiplicity.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The mean threshold bound (`μ` never drops below it).
    #[must_use]
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// The smoothed loss estimate, if any epoch has been observed.
    #[must_use]
    pub fn estimated_loss(&self) -> Option<f64> {
        self.ewma
    }

    /// Number of times `μ` actually moved.
    #[must_use]
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Feeds one feedback epoch: the receiver reconstructed `delivered`
    /// of the `sent` symbols the sender transmitted in that epoch.
    /// Returns the (possibly updated) `μ`.
    ///
    /// Epochs with nothing sent are ignored.
    pub fn observe(&mut self, delivered: u64, sent: u64) -> f64 {
        if sent == 0 {
            return self.mu;
        }
        let loss = 1.0 - (delivered.min(sent)) as f64 / sent as f64;
        let ewma = match self.ewma {
            None => loss,
            Some(prev) => self.alpha * loss + (1.0 - self.alpha) * prev,
        };
        self.ewma = Some(ewma);
        let old = self.mu;
        if ewma > self.target_loss {
            self.mu = (self.mu + self.up_step).min(self.n as f64);
        } else if ewma < self.target_loss * 0.25 {
            self.mu = (self.mu - self.down_step).max(self.kappa);
        }
        if (self.mu - old).abs() > 1e-12 {
            self.adjustments += 1;
        }
        self.mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(AdaptiveController::new(0.5, 1.0, 5, 0.01).is_err());
        assert!(AdaptiveController::new(2.0, 1.5, 5, 0.01).is_err());
        assert!(AdaptiveController::new(1.0, 6.0, 5, 0.01).is_err());
        assert!(AdaptiveController::new(1.0, 2.0, 5, 0.0).is_err());
        assert!(AdaptiveController::new(1.0, 2.0, 5, 1.0).is_err());
        assert!(AdaptiveController::new(1.0, 2.0, 5, 0.01).is_ok());
    }

    #[test]
    fn sustained_loss_raises_mu_to_cap() {
        let mut ctl = AdaptiveController::new(1.0, 1.0, 5, 0.01).unwrap();
        for _ in 0..20 {
            ctl.observe(70, 100); // 30% loss
        }
        assert_eq!(ctl.mu(), 5.0);
        assert!(ctl.adjustments() >= 8);
        assert!(ctl.estimated_loss().unwrap() > 0.2);
    }

    #[test]
    fn clean_epochs_decay_mu_to_kappa() {
        let mut ctl = AdaptiveController::new(1.5, 4.0, 5, 0.05).unwrap();
        for _ in 0..40 {
            ctl.observe(100, 100);
        }
        assert!((ctl.mu() - 1.5).abs() < 1e-9, "mu {}", ctl.mu());
    }

    #[test]
    fn loss_near_target_holds_steady() {
        let mut ctl = AdaptiveController::new(1.0, 3.0, 5, 0.10).unwrap();
        // Loss in the comfort band (between target/4 and target).
        for _ in 0..20 {
            ctl.observe(95, 100); // 5%: below target, above target/4
        }
        assert_eq!(ctl.mu(), 3.0);
        assert_eq!(ctl.adjustments(), 0);
    }

    #[test]
    fn empty_epochs_ignored() {
        let mut ctl = AdaptiveController::new(1.0, 2.0, 5, 0.01).unwrap();
        let mu = ctl.observe(0, 0);
        assert_eq!(mu, 2.0);
        assert_eq!(ctl.estimated_loss(), None);
    }

    #[test]
    fn delivered_exceeding_sent_clamped() {
        // Late deliveries from a previous epoch can make delivered > sent;
        // the controller treats that as zero loss rather than negative.
        let mut ctl = AdaptiveController::new(1.0, 3.0, 5, 0.5).unwrap();
        ctl.observe(150, 100);
        assert_eq!(ctl.estimated_loss(), Some(0.0));
    }

    #[test]
    fn recovery_is_faster_than_decay() {
        // One catastrophic epoch moves mu up more than one clean epoch
        // moves it down (MIAD-style asymmetry).
        let mut up = AdaptiveController::new(1.0, 2.0, 5, 0.01).unwrap();
        up.observe(0, 100);
        let raised = up.mu() - 2.0;
        let mut down = AdaptiveController::new(1.0, 2.0, 5, 0.01).unwrap();
        down.observe(100, 100);
        let lowered = 2.0 - down.mu();
        assert!(raised > lowered);
    }
}
