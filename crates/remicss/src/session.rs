//! The end-to-end protocol session: a [`mcss_netsim::Application`]
//! joining a paced symbol source, the ReMICSS sender, and the receiver.
//!
//! Two workloads mirror the paper's measurements:
//!
//! * [`Workload::Cbr`] — `iperf`-style: host A offers symbols at a fixed
//!   rate for a fixed duration; host B reports achieved rate and loss
//!   (Figures 3, 5, 6, 7).
//! * [`Workload::Echo`] — the RTT utility: completed symbols are sent
//!   back *through the protocol* and host A records round-trip times;
//!   one-way delay is RTT/2 (Figure 4).

use std::mem;
use std::sync::Arc;

use mcss_netsim::stats::{DelaySummary, ThroughputMeter};
use mcss_netsim::traffic::Pacer;
use mcss_netsim::{Application, BufferPool, ChannelId, Context, Endpoint, Frame, SimTime};
use mcss_shamir::{split_into, BatchScratch, Params};

use mcss_obs::MetricsSnapshot;

use crate::adaptive::AdaptiveController;
use crate::config::{ProtocolConfig, SchedulerKind};
use crate::cpu::CpuClock;
use crate::metrics::SessionMetrics;
use crate::reassembly::{AcceptOutcome, ReassemblyStats, ReassemblyTable};
use crate::scheduler::{
    ChannelState, Choice, DynamicScheduler, RoundRobinScheduler, Scheduler as _, SessionScheduler,
    StaticScheduler,
};
use crate::wire::{self, ControlFrame, MessageRef, ShareRef};

const TIMER_SOURCE: u64 = 0;
const TIMER_SWEEP: u64 = 1;
const TIMER_FEEDBACK: u64 = 2;

/// How often the receiver reports its delivery count back to the sender
/// when adaptation is enabled.
const FEEDBACK_PERIOD: SimTime = SimTime::from_millis(50);

/// The traffic pattern a session runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Constant symbol rate from A to B for `duration`.
    Cbr {
        /// Offered source symbols per second.
        symbol_rate: f64,
        /// Sending window.
        duration: SimTime,
    },
    /// Constant symbol rate from A, echoed back by B through the
    /// protocol; A records round-trip times.
    Echo {
        /// Offered source symbols per second.
        symbol_rate: f64,
        /// Sending window.
        duration: SimTime,
    },
}

impl Workload {
    /// A CBR workload.
    #[must_use]
    pub fn cbr(symbol_rate: f64, duration: SimTime) -> Self {
        Workload::Cbr {
            symbol_rate,
            duration,
        }
    }

    /// An echo workload.
    #[must_use]
    pub fn echo(symbol_rate: f64, duration: SimTime) -> Self {
        Workload::Echo {
            symbol_rate,
            duration,
        }
    }

    /// The offered source symbol rate.
    #[must_use]
    pub fn symbol_rate(&self) -> f64 {
        match *self {
            Workload::Cbr { symbol_rate, .. } | Workload::Echo { symbol_rate, .. } => symbol_rate,
        }
    }

    /// The sending window.
    #[must_use]
    pub fn duration(&self) -> SimTime {
        match *self {
            Workload::Cbr { duration, .. } | Workload::Echo { duration, .. } => duration,
        }
    }
}

/// Everything a finished session reports — the numbers the paper's
/// figures are made of.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionReport {
    /// Symbols the source offered.
    pub offered_symbols: u64,
    /// Symbols actually split and transmitted.
    pub sent_symbols: u64,
    /// Symbols reconstructed at the receiver within the window.
    pub delivered_symbols: u64,
    /// Reconstructed symbols whose payload failed verification
    /// (must be zero: Shamir reconstruction is exact).
    pub corrupted_symbols: u64,
    /// Achieved payload throughput, bits per second over the window.
    pub achieved_payload_bps: f64,
    /// Achieved symbol rate over the window.
    pub achieved_symbol_rate: f64,
    /// Symbol loss fraction: `1 − (eventually delivered) / sent`.
    /// Counted against *all* deliveries (even after the measurement
    /// window) so that in-flight symbols at window end do not read as
    /// lost; run the simulation past the window before reporting.
    pub loss_fraction: f64,
    /// Mean one-way symbol latency (send to reconstruction).
    pub mean_one_way_delay: Option<SimTime>,
    /// Mean protocol round-trip time (echo workload only).
    pub mean_rtt: Option<SimTime>,
    /// Mean threshold over sent symbols (should approach κ).
    pub mean_k: f64,
    /// Mean multiplicity over sent symbols (should approach μ).
    pub mean_m: f64,
    /// Share frames rejected by local channel queues.
    pub send_queue_drops: u64,
    /// Symbols shed by the sender CPU model.
    pub sender_cpu_shed: u64,
    /// Symbols shed by the receiver CPU model.
    pub receiver_cpu_shed: u64,
    /// Undecodable frames received (must be zero in the simulator).
    pub wire_errors: u64,
    /// Receiver reassembly-table counters.
    pub reassembly: ReassemblyStats,
    /// Final operating `μ` of the adaptive controller, if enabled.
    pub adaptive_final_mu: Option<f64>,
    /// Number of `μ` adjustments the adaptive controller made.
    pub adaptive_adjustments: u64,
}

/// A running protocol session between hosts A and B.
///
/// See the [crate docs](crate) for a complete example.
pub struct Session {
    config: Arc<ProtocolConfig>,
    n: usize,
    workload: Workload,
    scheduler_a: SessionScheduler,
    scheduler_b: SessionScheduler,
    table_a: ReassemblyTable,
    table_b: ReassemblyTable,
    pacer: Pacer,
    next_seq: u64,
    offered: u64,
    sent: u64,
    sum_k: u64,
    sum_m: u64,
    meter: ThroughputMeter,
    delivered_window: u64,
    delivered_total: u64,
    delay: DelaySummary,
    rtt: DelaySummary,
    corrupted: u64,
    send_queue_drops: u64,
    wire_errors: u64,
    cpu_a: CpuClock,
    cpu_b: CpuClock,
    metrics: SessionMetrics,
    adaptive: Option<AdaptiveController>,
    feedback_epoch: u32,
    last_epoch_seen: Option<u32>,
    last_feedback_delivered: u64,
    last_feedback_sent: u64,
    // Steady-state scratch: these persistent buffers make the per-symbol
    // data path allocation-free once warm (see `transmit`).
    backlogs: Vec<SimTime>,
    choice: Choice,
    split_scratch: BatchScratch,
    tx_bufs: Vec<Vec<u8>>,
    frames: BufferPool,
    payload_buf: Vec<u8>,
    rx_buf: Vec<u8>,
}

impl core::fmt::Debug for Session {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Session")
            .field("config", &self.config)
            .field("n", &self.n)
            .field("workload", &self.workload)
            .field("sent", &self.sent)
            .finish_non_exhaustive()
    }
}

fn build_scheduler(
    kind: &SchedulerKind,
    kappa: f64,
    mu: f64,
    n: usize,
) -> Result<SessionScheduler, mcss_core::ModelError> {
    Ok(match kind {
        SchedulerKind::Dynamic => SessionScheduler::Dynamic(DynamicScheduler::new(kappa, mu, n)?),
        SchedulerKind::Static(schedule) => {
            // Shares the schedule; the deep copy lives only in the config.
            SessionScheduler::Static(StaticScheduler::new(Arc::clone(schedule)))
        }
        SchedulerKind::RoundRobin => {
            SessionScheduler::RoundRobin(RoundRobinScheduler::new(kappa, mu, n)?)
        }
    })
}

/// Deterministic payload pattern, verified at the receiver.
#[inline]
fn pattern_byte(seq: u64, i: usize) -> u8 {
    (seq.wrapping_mul(31).wrapping_add(i as u64) & 0xff) as u8
}

fn pattern_into(seq: u64, len: usize, out: &mut Vec<u8>) {
    out.clear();
    out.extend((0..len).map(|i| pattern_byte(seq, i)));
}

fn pattern_matches(seq: u64, payload: &[u8]) -> bool {
    payload
        .iter()
        .enumerate()
        .all(|(i, &b)| b == pattern_byte(seq, i))
}

impl Session {
    /// Builds a session for `n` channels.
    ///
    /// # Errors
    ///
    /// [`mcss_core::ModelError::InvalidParameters`] if the config's
    /// `(κ, μ)` are invalid for `n` channels.
    pub fn new(
        config: impl Into<Arc<ProtocolConfig>>,
        n: usize,
        workload: Workload,
    ) -> Result<Self, mcss_core::ModelError> {
        let config: Arc<ProtocolConfig> = config.into();
        let scheduler_a = build_scheduler(config.scheduler(), config.kappa(), config.mu(), n)?;
        let scheduler_b = build_scheduler(config.scheduler(), config.kappa(), config.mu(), n)?;
        let adaptive = match config.adaptive_target() {
            None => None,
            Some(target) => {
                if !matches!(config.scheduler(), SchedulerKind::Dynamic) {
                    // Adaptation rewrites the dynamic sampler's mu; it is
                    // meaningless for externally fixed schedules.
                    return Err(mcss_core::ModelError::InvalidParameters {
                        kappa: config.kappa(),
                        mu: config.mu(),
                        n,
                    });
                }
                Some(AdaptiveController::new(
                    config.kappa(),
                    config.mu(),
                    n,
                    target,
                )?)
            }
        };
        let table = || {
            ReassemblyTable::new(
                config.reassembly_timeout(),
                config.reassembly_capacity_bytes(),
            )
            .with_resolved_cap(config.reassembly_resolved_cap())
        };
        Ok(Session {
            scheduler_a,
            scheduler_b,
            table_a: table(),
            table_b: table(),
            pacer: Pacer::new(workload.symbol_rate(), 1),
            next_seq: 0,
            offered: 0,
            sent: 0,
            sum_k: 0,
            sum_m: 0,
            meter: ThroughputMeter::new(),
            delivered_window: 0,
            delivered_total: 0,
            delay: DelaySummary::new(),
            rtt: DelaySummary::new(),
            corrupted: 0,
            send_queue_drops: 0,
            wire_errors: 0,
            cpu_a: CpuClock::new(),
            cpu_b: CpuClock::new(),
            metrics: SessionMetrics::new(n),
            adaptive,
            feedback_epoch: 0,
            last_epoch_seen: None,
            last_feedback_delivered: 0,
            last_feedback_sent: 0,
            backlogs: Vec::with_capacity(n),
            choice: Choice::default(),
            split_scratch: BatchScratch::new(),
            tx_bufs: Vec::with_capacity(n),
            frames: BufferPool::new(),
            payload_buf: Vec::new(),
            rx_buf: Vec::new(),
            config,
            n,
            workload,
        })
    }

    /// The session's report over a measurement `window` (typically the
    /// workload duration).
    #[must_use]
    pub fn report(&self, window: SimTime) -> SessionReport {
        let delivered = self.delivered_window;
        SessionReport {
            offered_symbols: self.offered,
            sent_symbols: self.sent,
            delivered_symbols: delivered,
            corrupted_symbols: self.corrupted,
            achieved_payload_bps: self.meter.rate_bps(window),
            achieved_symbol_rate: delivered as f64 / window.as_secs_f64(),
            loss_fraction: if self.sent == 0 {
                0.0
            } else {
                1.0 - self.delivered_total as f64 / self.sent as f64
            },
            mean_one_way_delay: self.delay.mean(),
            mean_rtt: self.rtt.mean(),
            mean_k: if self.sent == 0 {
                0.0
            } else {
                self.sum_k as f64 / self.sent as f64
            },
            mean_m: if self.sent == 0 {
                0.0
            } else {
                self.sum_m as f64 / self.sent as f64
            },
            send_queue_drops: self.send_queue_drops,
            sender_cpu_shed: self.cpu_a.shed(),
            receiver_cpu_shed: self.cpu_b.shed(),
            wire_errors: self.wire_errors,
            reassembly: self.table_b.stats(),
            adaptive_final_mu: self.adaptive.as_ref().map(AdaptiveController::mu),
            adaptive_adjustments: self
                .adaptive
                .as_ref()
                .map_or(0, AdaptiveController::adjustments),
        }
    }

    /// The adaptive controller's state, if adaptation is enabled.
    #[must_use]
    pub fn adaptive(&self) -> Option<&AdaptiveController> {
        self.adaptive.as_ref()
    }

    /// The session's protocol metrics (per-channel share traffic, delay
    /// and gap histograms, realized `(k, m)` frequencies).
    #[must_use]
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// The sender-side frame buffer pool (for hit/miss/grow telemetry).
    #[must_use]
    pub fn frame_pool(&self) -> &BufferPool {
        &self.frames
    }

    /// Serializable snapshot of the session's metrics plus the buffer
    /// pool and reassembly counters, under `remicss.*` names. Empty with
    /// the `telemetry` feature off.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
        let mut snap = self.metrics.snapshot();
        #[cfg(feature = "telemetry")]
        {
            let stats = self.table_b.stats();
            for (name, value) in [
                ("remicss.pool.hits", self.frames.hits()),
                ("remicss.pool.misses", self.frames.misses()),
                ("remicss.pool.grows", self.frames.grows()),
                ("remicss.reassembly.pool_hits", self.table_b.pool_hits()),
                ("remicss.reassembly.pool_misses", self.table_b.pool_misses()),
                ("remicss.symbols.resolved", stats.completed),
                (
                    "remicss.symbols.expired",
                    stats.timeout_evictions + stats.memory_evictions,
                ),
            ] {
                snap.counters.push(mcss_obs::CounterSnapshot {
                    name: name.to_string(),
                    value,
                });
            }
            snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
        }
        snap
    }

    /// Splits and transmits one symbol from `from`. Returns `false` if
    /// the symbol was shed by the CPU model before transmission.
    ///
    /// Steady-state allocation-free: the scheduler writes into a reused
    /// [`Choice`], shares are Horner-evaluated by [`split_into`] directly
    /// into pooled wire buffers (header already written), and buffers
    /// come back to the pool from the delivery path and from local queue
    /// drops.
    fn transmit(
        &mut self,
        ctx: &mut Context<'_>,
        from: Endpoint,
        seq: u64,
        stamp: u64,
        payload: &[u8],
    ) -> bool {
        self.backlogs.clear();
        self.backlogs
            .extend((0..self.n).map(|i| ctx.backlog(i, from)));
        let mut choice = mem::take(&mut self.choice);
        let state = ChannelState::new(&self.backlogs, self.config.readiness_threshold());
        let scheduler = match from {
            Endpoint::A => &mut self.scheduler_a,
            Endpoint::B => &mut self.scheduler_b,
        };
        scheduler.choose_into(&state, ctx.rng(), &mut choice);
        let m = choice.channels.len();
        if let Some(cpu) = self.config.cpu() {
            let cost = cpu.send_cost(m, payload.len());
            let clock = match from {
                Endpoint::A => &mut self.cpu_a,
                Endpoint::B => &mut self.cpu_b,
            };
            if !clock.try_charge(ctx.now(), cost, cpu) {
                self.choice = choice;
                return false;
            }
        }
        let params = Params::new(choice.k, m as u8).expect("scheduler guarantees k <= m");
        let mut outs = mem::take(&mut self.tx_bufs);
        for j in 0..m {
            // Share j of a split carries abscissa j + 1.
            let mut buf = self.frames.take();
            wire::put_share_header(
                &mut buf,
                seq,
                choice.k,
                m as u8,
                j as u8 + 1,
                stamp,
                payload.len(),
            )
            .expect("share parameters validated");
            outs.push(buf);
        }
        split_into(
            payload,
            params,
            ctx.rng(),
            &mut self.split_scratch,
            &mut outs,
        )
        .expect("split cannot fail");
        if from == Endpoint::A {
            self.sum_k += u64::from(choice.k);
            self.sum_m += m as u64;
            self.metrics.record_choice(choice.k, m);
        }
        for (buf, &channel) in outs.drain(..).zip(&choice.channels) {
            if let Err(frame) = ctx.try_send(channel, from, Frame::from_vec(buf)) {
                self.send_queue_drops += 1;
                self.metrics.record_drop(channel);
                self.frames.put(frame.into_vec());
            } else {
                self.metrics.record_send(channel);
            }
        }
        self.tx_bufs = outs;
        self.choice = choice;
        true
    }

    fn on_source_tick(&mut self, ctx: &mut Context<'_>) {
        if ctx.now() >= self.workload.duration() {
            return;
        }
        self.offered += 1;
        let seq = self.next_seq;
        let mut payload = mem::take(&mut self.payload_buf);
        pattern_into(seq, self.config.symbol_bytes(), &mut payload);
        let stamp = ctx.now().as_nanos();
        if self.transmit(ctx, Endpoint::A, seq, stamp, &payload) {
            self.next_seq += 1;
            self.sent += 1;
        }
        self.payload_buf = payload;
        let next = self.pacer.next_tick();
        ctx.set_timer(next, TIMER_SOURCE);
    }

    fn sweep_period(&self) -> SimTime {
        SimTime::from_nanos((self.config.reassembly_timeout().as_nanos() / 4).max(1_000_000))
    }

    fn on_deliver_at_b(&mut self, ctx: &mut Context<'_>, share: &ShareRef<'_>) {
        let seq = share.seq();
        let k = share.k() as usize;
        let stamp = share.sent_at_nanos();
        let mut out = mem::take(&mut self.rx_buf);
        if self.table_b.accept_into(share, ctx.now(), &mut out) == AcceptOutcome::Completed {
            self.metrics
                .record_residency(self.table_b.last_completed_residency().as_nanos());
            let charged = match self.config.cpu() {
                Some(cpu) => {
                    let cost = cpu.recv_cost(k, out.len());
                    // On failure the receiver is saturated: symbol dropped.
                    self.cpu_b.try_charge(ctx.now(), cost, cpu)
                }
                None => true,
            };
            if charged {
                if pattern_matches(seq, &out) {
                    self.delivered_total += 1;
                    let window = self.workload.duration();
                    if ctx.now() <= window {
                        self.delivered_window += 1;
                        self.meter.record(ctx.now(), (out.len() * 8) as u64);
                        self.delay.record(ctx.now() - SimTime::from_nanos(stamp));
                    }
                    if matches!(self.workload, Workload::Echo { .. }) {
                        // Bounce the symbol back through the protocol, keeping
                        // the original timestamp so A measures full protocol RTT.
                        self.transmit(ctx, Endpoint::B, seq, stamp, &out);
                    }
                } else {
                    self.corrupted += 1;
                }
            }
        }
        self.rx_buf = out;
    }

    fn on_deliver_at_a(&mut self, ctx: &mut Context<'_>, share: &ShareRef<'_>) {
        let k = share.k() as usize;
        let stamp = share.sent_at_nanos();
        let mut out = mem::take(&mut self.rx_buf);
        if self.table_a.accept_into(share, ctx.now(), &mut out) == AcceptOutcome::Completed {
            let charged = match self.config.cpu() {
                Some(cpu) => {
                    let cost = cpu.recv_cost(k, out.len());
                    self.cpu_a.try_charge(ctx.now(), cost, cpu)
                }
                None => true,
            };
            if charged {
                self.rtt.record(ctx.now() - SimTime::from_nanos(stamp));
            }
        }
        self.rx_buf = out;
    }
}

impl Session {
    fn send_feedback(&mut self, ctx: &mut Context<'_>) {
        self.feedback_epoch += 1;
        let frame = ControlFrame::new(self.feedback_epoch, self.delivered_total);
        // Tiny frame, sent on every channel for loss resilience. Local
        // queue drops are deliberate (not counted), but the buffer still
        // comes back to the pool.
        for ch in 0..self.n {
            let mut buf = self.frames.take();
            frame.encode_into(&mut buf);
            if let Err(dropped) = ctx.try_send(ch, Endpoint::B, Frame::from_vec(buf)) {
                self.frames.put(dropped.into_vec());
            }
        }
    }

    fn on_control_at_a(&mut self, ctx: &mut Context<'_>, frame: ControlFrame) {
        if self.last_epoch_seen.is_some_and(|e| frame.epoch() <= e) {
            return; // duplicate copy from another channel
        }
        self.last_epoch_seen = Some(frame.epoch());
        let delivered = frame
            .delivered()
            .saturating_sub(self.last_feedback_delivered);
        let sent = self.sent.saturating_sub(self.last_feedback_sent);
        self.last_feedback_delivered = frame.delivered();
        self.last_feedback_sent = self.sent;
        let Some(ctl) = self.adaptive.as_mut() else {
            return;
        };
        let old_mu = ctl.mu();
        let new_mu = ctl.observe(delivered, sent);
        if (new_mu - old_mu).abs() > 1e-12 {
            self.scheduler_a = SessionScheduler::Dynamic(
                DynamicScheduler::new(self.config.kappa(), new_mu, self.n)
                    .expect("controller keeps mu within [kappa, n]"),
            );
        }
        let _ = ctx;
    }
}

impl Application for Session {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        assert!(
            self.config.mu() <= self.n as f64,
            "config mu exceeds channel count"
        );
        let first = self.pacer.next_tick();
        ctx.set_timer(first, TIMER_SOURCE);
        let sweep = self.sweep_period();
        ctx.set_timer(sweep, TIMER_SWEEP);
        if self.adaptive.is_some() {
            ctx.set_timer(FEEDBACK_PERIOD, TIMER_FEEDBACK);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        match token {
            TIMER_SOURCE => self.on_source_tick(ctx),
            TIMER_FEEDBACK => {
                self.send_feedback(ctx);
                if ctx.now() < self.workload.duration() {
                    let next = ctx.now() + FEEDBACK_PERIOD;
                    ctx.set_timer(next, TIMER_FEEDBACK);
                }
            }
            TIMER_SWEEP => {
                self.table_a.sweep(ctx.now());
                self.table_b.sweep(ctx.now());
                // Keep sweeping a while after sending stops so stragglers
                // are evicted, then let the simulation drain.
                if ctx.now() < self.workload.duration() + self.config.reassembly_timeout() * 4 {
                    let next = ctx.now() + self.sweep_period();
                    ctx.set_timer(next, TIMER_SWEEP);
                }
            }
            other => panic!("unknown timer token {other}"),
        }
    }

    fn on_deliver(
        &mut self,
        ctx: &mut Context<'_>,
        channel: ChannelId,
        to: Endpoint,
        frame: Frame,
    ) {
        // Reclaim the wire buffer (frames we sent carry owned buffers),
        // decode borrowing from it, and recycle it for the next send.
        let buf = frame.into_vec();
        match wire::decode_message_ref(&buf) {
            Err(_) => self.wire_errors += 1,
            Ok(MessageRef::Share(share)) => {
                let now = ctx.now().as_nanos();
                self.metrics.record_receive(
                    channel,
                    now,
                    now.saturating_sub(share.sent_at_nanos()),
                );
                match to {
                    Endpoint::B => self.on_deliver_at_b(ctx, &share),
                    Endpoint::A => self.on_deliver_at_a(ctx, &share),
                }
            }
            Ok(MessageRef::Control(control)) => {
                if to == Endpoint::A {
                    self.on_control_at_a(ctx, control);
                }
                // Control frames arriving at B (echo of our own order)
                // cannot occur: B only ever sends them.
            }
        }
        self.frames.put(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;
    use mcss_core::setups;
    use mcss_core::ShareSchedule;
    use mcss_netsim::Simulator;

    fn run(
        channels: &mcss_core::ChannelSet,
        config: &Arc<ProtocolConfig>,
        workload: Workload,
        seed: u64,
    ) -> SessionReport {
        let window = workload.duration();
        let net = testbed::network_for(channels, config);
        // The session shares the caller's config instead of cloning it.
        let session = Session::new(Arc::clone(config), channels.len(), workload).unwrap();
        let mut sim = Simulator::new(net, session, seed);
        sim.run_until(window + SimTime::from_secs(2));
        sim.app().report(window)
    }

    #[test]
    fn cbr_on_clean_channels_delivers_everything() {
        let channels = setups::diverse();
        let config = Arc::new(ProtocolConfig::new(2.0, 3.0).unwrap());
        let offered = 0.5 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_millis(500)),
            1,
        );
        assert!(r.offered_symbols > 100);
        assert_eq!(r.offered_symbols, r.sent_symbols);
        assert_eq!(r.corrupted_symbols, 0);
        assert_eq!(r.wire_errors, 0);
        assert!(
            r.loss_fraction < 0.01,
            "clean channels lost {}",
            r.loss_fraction
        );
        // Dynamic scheduler respects the configured means.
        assert!((r.mean_k - 2.0).abs() < 0.05, "mean k {}", r.mean_k);
        assert!((r.mean_m - 3.0).abs() < 0.05, "mean m {}", r.mean_m);
    }

    #[test]
    fn achieved_rate_tracks_offered_when_undersubscribed() {
        let channels = setups::identical(100.0);
        let config = Arc::new(ProtocolConfig::new(1.0, 2.0).unwrap());
        let opt = testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let offered = 0.6 * opt;
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_millis(500)),
            2,
        );
        let expected_bps = testbed::payload_bps(offered, &config);
        assert!(
            (r.achieved_payload_bps - expected_bps).abs() / expected_bps < 0.05,
            "achieved {} vs offered {expected_bps}",
            r.achieved_payload_bps
        );
    }

    #[test]
    fn lossy_channels_lose_roughly_the_subset_loss() {
        // κ = m = 5 on the Lossy setup: symbol lost if ANY share lost.
        let channels = setups::lossy();
        let config = Arc::new(ProtocolConfig::new(5.0, 5.0).unwrap());
        let offered = 0.8 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_secs(4)),
            3,
        );
        // l(5, C) = 1 − Π(1−lᵢ) ≈ 7.3%; ~1570 symbols give σ ≈ 0.7%.
        let expect: f64 = 1.0 - setups::LOSSY_LOSS.iter().map(|l| 1.0 - l).product::<f64>();
        assert!(
            (r.loss_fraction - expect).abs() < 0.025,
            "loss {} expected ~{expect}",
            r.loss_fraction
        );
    }

    #[test]
    fn redundancy_masks_loss() {
        // κ = 1, μ = 5: symbol survives unless all five shares are lost.
        let channels = setups::lossy();
        let config = Arc::new(ProtocolConfig::new(1.0, 5.0).unwrap());
        let offered = 0.8 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_secs(1)),
            4,
        );
        assert!(
            r.loss_fraction < 1e-3,
            "full redundancy still lost {}",
            r.loss_fraction
        );
    }

    #[test]
    fn echo_workload_measures_rtt() {
        let channels = setups::delayed();
        let config = Arc::new(ProtocolConfig::new(1.0, 1.0).unwrap());
        let offered = 0.2 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::echo(offered, SimTime::from_millis(500)),
            5,
        );
        let rtt = r.mean_rtt.expect("echo produces RTT samples");
        // One-way delays range 0.25–12.5 ms; RTT must be within sanity.
        assert!(rtt >= SimTime::from_micros(400), "rtt {rtt}");
        assert!(rtt <= SimTime::from_millis(40), "rtt {rtt}");
    }

    #[test]
    fn static_scheduler_respects_lp_schedule() {
        let channels = setups::diverse();
        let config = ProtocolConfig::new(2.0, 3.0).unwrap();
        let share_channels = testbed::share_rate_channels(&channels, &config).unwrap();
        let schedule = mcss_core::lp_schedule::optimal_schedule_at_max_rate(
            &share_channels,
            2.0,
            3.0,
            mcss_core::lp_schedule::Objective::Privacy,
        )
        .unwrap();
        let config = Arc::new(config.with_scheduler(SchedulerKind::Static(Arc::new(schedule))));
        let offered = 0.5 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_millis(500)),
            6,
        );
        assert!((r.mean_k - 2.0).abs() < 0.05);
        assert!((r.mean_m - 3.0).abs() < 0.05);
        assert!(r.loss_fraction < 0.01);
    }

    #[test]
    fn round_robin_scheduler_works() {
        let channels = setups::identical(50.0);
        let config = Arc::new(
            ProtocolConfig::new(2.0, 2.0)
                .unwrap()
                .with_scheduler(SchedulerKind::RoundRobin),
        );
        let offered = 0.5 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_millis(300)),
            7,
        );
        assert!(r.delivered_symbols > 0);
        assert!(r.loss_fraction < 0.01);
    }

    #[test]
    fn max_privacy_static_schedule_runs() {
        let channels = setups::diverse();
        let config = Arc::new(ProtocolConfig::new(5.0, 5.0).unwrap().with_scheduler(
            SchedulerKind::Static(Arc::new(ShareSchedule::max_privacy(5))),
        ));
        let offered = 0.8 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_millis(300)),
            8,
        );
        assert_eq!(r.mean_k, 5.0);
        assert_eq!(r.mean_m, 5.0);
        assert!(r.loss_fraction < 0.01);
    }

    #[test]
    fn cpu_model_caps_throughput() {
        let channels = setups::identical(800.0);
        let base = ProtocolConfig::new(1.0, 1.0).unwrap();
        let offered = testbed::optimal_symbol_rate(&channels, &base).unwrap();
        let capped_cfg = Arc::new(
            base.clone()
                .with_cpu_model(crate::cpu::CpuModel::paper_testbed()),
        );
        let base = Arc::new(base);
        // Without CPU model: near wire rate. With: capped well below.
        let free = run(
            &channels,
            &base,
            Workload::cbr(offered, SimTime::from_millis(300)),
            9,
        );
        let capped = run(
            &channels,
            &capped_cfg,
            Workload::cbr(offered, SimTime::from_millis(300)),
            9,
        );
        assert!(
            capped.achieved_payload_bps < 0.5 * free.achieved_payload_bps,
            "cpu cap ineffective: {} vs {}",
            capped.achieved_payload_bps,
            free.achieved_payload_bps
        );
        assert!(capped.sender_cpu_shed > 0);
    }

    #[test]
    fn determinism_same_seed() {
        let channels = setups::lossy();
        let mk = || Arc::new(ProtocolConfig::new(2.0, 3.5).unwrap());
        let w = Workload::cbr(1000.0, SimTime::from_millis(300));
        let a = run(&channels, &mk(), w, 77);
        let b = run(&channels, &mk(), w, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn report_zero_sent_is_safe() {
        let s = Session::new(
            ProtocolConfig::new(1.0, 1.0).unwrap(),
            5,
            Workload::cbr(10.0, SimTime::ZERO),
        )
        .unwrap();
        let r = s.report(SimTime::from_secs(1));
        assert_eq!(r.mean_k, 0.0);
        assert_eq!(r.delivered_symbols, 0);
    }
}
