//! The simulator driver: a thin [`mcss_netsim::Application`] adapter
//! that feeds the sans-I/O [`Engine`] from the discrete-event simulator.
//!
//! All protocol behaviour lives in [`crate::engine`]; this module only
//! translates simulator callbacks into [`Event`]s (with channel-backlog
//! refreshes before any event that may transmit) and performs the
//! drained [`Action`]s against the simulator's channels and timer queue.
//!
//! Two workloads mirror the paper's measurements:
//!
//! * [`Workload::Cbr`] — `iperf`-style: host A offers symbols at a fixed
//!   rate for a fixed duration; host B reports achieved rate and loss
//!   (Figures 3, 5, 6, 7).
//! * [`Workload::Echo`] — the RTT utility: completed symbols are sent
//!   back *through the protocol* and host A records round-trip times;
//!   one-way delay is RTT/2 (Figure 4).
//!
//! With [`Session::record_trace`] enabled, the driver logs every event
//! it feeds and every action it drains; replaying the event log into a
//! fresh [`Engine`] with the same seed reproduces the exact action
//! stream (see `tests/engine_trace.rs`), which is the property that
//! pins the refactor to the pre-sans-I/O behaviour.

use std::sync::Arc;

use mcss_netsim::{Application, BufferPool, ChannelId, Context, Endpoint, Frame, SimTime};

use mcss_obs::MetricsSnapshot;

use crate::actions::{Action, Event, TIMER_SOURCE};
use crate::adaptive::AdaptiveController;
use crate::config::ProtocolConfig;
use crate::engine::{Engine, SourceMode};
use crate::metrics::SessionMetrics;

pub use crate::engine::{SessionReport, Workload};

/// One entry of a recorded session trace: an event fed to the engine
/// (with its timestamp) or an action drained from it.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceStep {
    /// An event the driver fed to the engine at `now`.
    Event {
        /// The simulator clock when the event was handled.
        now: SimTime,
        /// The event, with owned frame bytes.
        event: TraceEvent,
    },
    /// An action drained from the engine (in drain order).
    Action(Action),
}

/// An owned (replayable) form of the driver-fed [`Event`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// [`Event::Started`].
    Started,
    /// [`Event::TimerFired`].
    Timer {
        /// The timer token.
        token: u64,
    },
    /// A batch of [`Event::ChannelWritable`] updates: `backlogs[i]` is
    /// channel `i`'s send backlog at `from`.
    Backlogs {
        /// The sending endpoint the backlogs belong to.
        from: Endpoint,
        /// Per-channel send backlogs, indexed by channel.
        backlogs: Vec<SimTime>,
    },
    /// A received wire frame, fed via
    /// [`Engine::handle_frame`](crate::engine::Engine::handle_frame).
    Frame {
        /// Channel the frame arrived on.
        channel: usize,
        /// Receiving endpoint.
        to: Endpoint,
        /// The raw wire bytes.
        bytes: Vec<u8>,
    },
}

/// A running protocol session between hosts A and B: the [`Engine`]
/// driven by the discrete-event simulator.
///
/// See the [crate docs](crate) for a complete example.
pub struct Session {
    engine: Engine,
    n: usize,
    echo: bool,
    trace: Option<Vec<TraceStep>>,
}

impl core::fmt::Debug for Session {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Session")
            .field("engine", &self.engine)
            .field("echo", &self.echo)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Builds a session for `n` channels.
    ///
    /// # Errors
    ///
    /// [`mcss_core::ModelError::InvalidParameters`] if the config's
    /// `(κ, μ)` are invalid for `n` channels.
    pub fn new(
        config: impl Into<Arc<ProtocolConfig>>,
        n: usize,
        workload: Workload,
    ) -> Result<Self, mcss_core::ModelError> {
        let engine = Engine::new(config, n, SourceMode::Paced(workload))?;
        Ok(Session {
            engine,
            n,
            echo: matches!(workload, Workload::Echo { .. }),
            trace: None,
        })
    }

    /// Starts recording every event fed to the engine and every action
    /// drained from it. Intended for replay tests; costs one frame-bytes
    /// clone per delivery.
    pub fn record_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the recorded trace (empty if recording was never enabled).
    pub fn take_trace(&mut self) -> Vec<TraceStep> {
        self.trace.take().unwrap_or_default()
    }

    /// The driven sans-I/O engine.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The session's report over a measurement `window` (typically the
    /// workload duration).
    #[must_use]
    pub fn report(&self, window: SimTime) -> SessionReport {
        self.engine.report(window)
    }

    /// The adaptive controller's state, if adaptation is enabled.
    #[must_use]
    pub fn adaptive(&self) -> Option<&AdaptiveController> {
        self.engine.adaptive()
    }

    /// The session's protocol metrics (per-channel share traffic, delay
    /// and gap histograms, realized `(k, m)` frequencies).
    #[must_use]
    pub fn metrics(&self) -> &SessionMetrics {
        self.engine.metrics()
    }

    /// The sender-side frame buffer pool (for hit/miss/grow telemetry).
    #[must_use]
    pub fn frame_pool(&self) -> &BufferPool {
        self.engine.frame_pool()
    }

    /// Serializable snapshot of the session's metrics plus the buffer
    /// pool and reassembly counters, under `remicss.*` names. Empty with
    /// the `telemetry` feature off.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.engine.metrics_snapshot()
    }

    /// Refreshes the engine's view of `from`'s per-channel send backlogs
    /// from the simulator. Done before any event that may transmit, so
    /// the scheduler sees exactly what `ctx.backlog` would have said.
    fn feed_backlogs(&mut self, ctx: &mut Context<'_>, from: Endpoint) {
        let now = ctx.now();
        if let Some(trace) = self.trace.as_mut() {
            trace.push(TraceStep::Event {
                now,
                event: TraceEvent::Backlogs {
                    from,
                    backlogs: (0..self.n).map(|i| ctx.backlog(i, from)).collect(),
                },
            });
        }
        for channel in 0..self.n {
            let backlog = ctx.backlog(channel, from);
            self.engine.handle(
                now,
                Event::ChannelWritable {
                    channel,
                    from,
                    backlog,
                },
                ctx.rng(),
            );
        }
    }

    /// Drains the engine's action queue against the simulator, in order:
    /// transmissions first report their queue outcome back to the
    /// engine, timers go to the event queue. The in-order drain keeps
    /// the simulator's event/RNG interleaving identical to the
    /// pre-sans-I/O session.
    fn apply_actions(&mut self, ctx: &mut Context<'_>) {
        while let Some(action) = self.engine.poll_action() {
            if let Some(trace) = self.trace.as_mut() {
                trace.push(TraceStep::Action(action.clone()));
            }
            match action {
                Action::SendShare {
                    channel,
                    from,
                    frame,
                } => match ctx.try_send(channel, from, Frame::from_vec(frame)) {
                    Ok(()) => self.engine.share_send_ok(channel),
                    Err(rejected) => self
                        .engine
                        .share_send_rejected(channel, rejected.into_vec()),
                },
                Action::SendControl {
                    channel,
                    from,
                    frame,
                } => {
                    if let Err(rejected) = ctx.try_send(channel, from, Frame::from_vec(frame)) {
                        self.engine.control_send_rejected(rejected.into_vec());
                    }
                }
                Action::SetTimer { token, at } => ctx.set_timer(at, token),
                Action::DeliverSymbol { .. } => {
                    unreachable!("paced sessions deliver internally")
                }
            }
        }
    }
}

impl Application for Session {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        if let Some(trace) = self.trace.as_mut() {
            trace.push(TraceStep::Event {
                now,
                event: TraceEvent::Started,
            });
        }
        self.engine.handle(now, Event::Started, ctx.rng());
        self.apply_actions(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == TIMER_SOURCE {
            // The source tick transmits from A; refresh A's readiness.
            self.feed_backlogs(ctx, Endpoint::A);
        }
        let now = ctx.now();
        if let Some(trace) = self.trace.as_mut() {
            trace.push(TraceStep::Event {
                now,
                event: TraceEvent::Timer { token },
            });
        }
        self.engine
            .handle(now, Event::TimerFired { token }, ctx.rng());
        self.apply_actions(ctx);
    }

    fn on_deliver(
        &mut self,
        ctx: &mut Context<'_>,
        channel: ChannelId,
        to: Endpoint,
        frame: Frame,
    ) {
        // Reclaim the wire buffer (frames we sent carry owned buffers),
        // let the engine decode borrowing from it, and recycle it for
        // the next send.
        let buf = frame.into_vec();
        if self.echo && to == Endpoint::B {
            // A completed symbol at B echoes back: refresh B's readiness.
            self.feed_backlogs(ctx, Endpoint::B);
        }
        let now = ctx.now();
        if let Some(trace) = self.trace.as_mut() {
            trace.push(TraceStep::Event {
                now,
                event: TraceEvent::Frame {
                    channel,
                    to,
                    bytes: buf.clone(),
                },
            });
        }
        let _ = self.engine.handle_frame(now, channel, to, &buf, ctx.rng());
        self.apply_actions(ctx);
        self.engine.recycle(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;
    use mcss_core::setups;
    use mcss_core::ShareSchedule;
    use mcss_netsim::Simulator;

    fn run(
        channels: &mcss_core::ChannelSet,
        config: &Arc<ProtocolConfig>,
        workload: Workload,
        seed: u64,
    ) -> SessionReport {
        let window = workload.duration();
        let net = testbed::network_for(channels, config);
        // The session shares the caller's config instead of cloning it.
        let session = Session::new(Arc::clone(config), channels.len(), workload).unwrap();
        let mut sim = Simulator::new(net, session, seed);
        sim.run_until(window + SimTime::from_secs(2));
        sim.app().report(window)
    }

    #[test]
    fn cbr_on_clean_channels_delivers_everything() {
        let channels = setups::diverse();
        let config = Arc::new(ProtocolConfig::new(2.0, 3.0).unwrap());
        let offered = 0.5 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_millis(500)),
            1,
        );
        assert!(r.offered_symbols > 100);
        assert_eq!(r.offered_symbols, r.sent_symbols);
        assert_eq!(r.corrupted_symbols, 0);
        assert_eq!(r.wire_errors, 0);
        assert!(
            r.loss_fraction < 0.01,
            "clean channels lost {}",
            r.loss_fraction
        );
        // Dynamic scheduler respects the configured means.
        assert!((r.mean_k - 2.0).abs() < 0.05, "mean k {}", r.mean_k);
        assert!((r.mean_m - 3.0).abs() < 0.05, "mean m {}", r.mean_m);
    }

    #[test]
    fn achieved_rate_tracks_offered_when_undersubscribed() {
        let channels = setups::identical(100.0);
        let config = Arc::new(ProtocolConfig::new(1.0, 2.0).unwrap());
        let opt = testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let offered = 0.6 * opt;
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_millis(500)),
            2,
        );
        let expected_bps = testbed::payload_bps(offered, &config);
        assert!(
            (r.achieved_payload_bps - expected_bps).abs() / expected_bps < 0.05,
            "achieved {} vs offered {expected_bps}",
            r.achieved_payload_bps
        );
    }

    #[test]
    fn lossy_channels_lose_roughly_the_subset_loss() {
        // κ = m = 5 on the Lossy setup: symbol lost if ANY share lost.
        let channels = setups::lossy();
        let config = Arc::new(ProtocolConfig::new(5.0, 5.0).unwrap());
        let offered = 0.8 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_secs(4)),
            3,
        );
        // l(5, C) = 1 − Π(1−lᵢ) ≈ 7.3%; ~1570 symbols give σ ≈ 0.7%.
        let expect: f64 = 1.0 - setups::LOSSY_LOSS.iter().map(|l| 1.0 - l).product::<f64>();
        assert!(
            (r.loss_fraction - expect).abs() < 0.025,
            "loss {} expected ~{expect}",
            r.loss_fraction
        );
    }

    #[test]
    fn redundancy_masks_loss() {
        // κ = 1, μ = 5: symbol survives unless all five shares are lost.
        let channels = setups::lossy();
        let config = Arc::new(ProtocolConfig::new(1.0, 5.0).unwrap());
        let offered = 0.8 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_secs(1)),
            4,
        );
        assert!(
            r.loss_fraction < 1e-3,
            "full redundancy still lost {}",
            r.loss_fraction
        );
    }

    #[test]
    fn echo_workload_measures_rtt() {
        let channels = setups::delayed();
        let config = Arc::new(ProtocolConfig::new(1.0, 1.0).unwrap());
        let offered = 0.2 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::echo(offered, SimTime::from_millis(500)),
            5,
        );
        let rtt = r.mean_rtt.expect("echo produces RTT samples");
        // One-way delays range 0.25–12.5 ms; RTT must be within sanity.
        assert!(rtt >= SimTime::from_micros(400), "rtt {rtt}");
        assert!(rtt <= SimTime::from_millis(40), "rtt {rtt}");
    }

    #[test]
    fn static_scheduler_respects_lp_schedule() {
        let channels = setups::diverse();
        let config = ProtocolConfig::new(2.0, 3.0).unwrap();
        let share_channels = testbed::share_rate_channels(&channels, &config).unwrap();
        let schedule = mcss_core::lp_schedule::optimal_schedule_at_max_rate(
            &share_channels,
            2.0,
            3.0,
            mcss_core::lp_schedule::Objective::Privacy,
        )
        .unwrap();
        let config = Arc::new(
            config.with_scheduler(crate::config::SchedulerKind::Static(Arc::new(schedule))),
        );
        let offered = 0.5 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_millis(500)),
            6,
        );
        assert!((r.mean_k - 2.0).abs() < 0.05);
        assert!((r.mean_m - 3.0).abs() < 0.05);
        assert!(r.loss_fraction < 0.01);
    }

    #[test]
    fn round_robin_scheduler_works() {
        let channels = setups::identical(50.0);
        let config = Arc::new(
            ProtocolConfig::new(2.0, 2.0)
                .unwrap()
                .with_scheduler(crate::config::SchedulerKind::RoundRobin),
        );
        let offered = 0.5 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_millis(300)),
            7,
        );
        assert!(r.delivered_symbols > 0);
        assert!(r.loss_fraction < 0.01);
    }

    #[test]
    fn max_privacy_static_schedule_runs() {
        let channels = setups::diverse();
        let config = Arc::new(ProtocolConfig::new(5.0, 5.0).unwrap().with_scheduler(
            crate::config::SchedulerKind::Static(Arc::new(ShareSchedule::max_privacy(5))),
        ));
        let offered = 0.8 * testbed::optimal_symbol_rate(&channels, &config).unwrap();
        let r = run(
            &channels,
            &config,
            Workload::cbr(offered, SimTime::from_millis(300)),
            8,
        );
        assert_eq!(r.mean_k, 5.0);
        assert_eq!(r.mean_m, 5.0);
        assert!(r.loss_fraction < 0.01);
    }

    #[test]
    fn cpu_model_caps_throughput() {
        let channels = setups::identical(800.0);
        let base = ProtocolConfig::new(1.0, 1.0).unwrap();
        let offered = testbed::optimal_symbol_rate(&channels, &base).unwrap();
        let capped_cfg = Arc::new(
            base.clone()
                .with_cpu_model(crate::cpu::CpuModel::paper_testbed()),
        );
        let base = Arc::new(base);
        // Without CPU model: near wire rate. With: capped well below.
        let free = run(
            &channels,
            &base,
            Workload::cbr(offered, SimTime::from_millis(300)),
            9,
        );
        let capped = run(
            &channels,
            &capped_cfg,
            Workload::cbr(offered, SimTime::from_millis(300)),
            9,
        );
        assert!(
            capped.achieved_payload_bps < 0.5 * free.achieved_payload_bps,
            "cpu cap ineffective: {} vs {}",
            capped.achieved_payload_bps,
            free.achieved_payload_bps
        );
        assert!(capped.sender_cpu_shed > 0);
    }

    #[test]
    fn determinism_same_seed() {
        let channels = setups::lossy();
        let mk = || Arc::new(ProtocolConfig::new(2.0, 3.5).unwrap());
        let w = Workload::cbr(1000.0, SimTime::from_millis(300));
        let a = run(&channels, &mk(), w, 77);
        let b = run(&channels, &mk(), w, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn report_zero_sent_is_safe() {
        let s = Session::new(
            ProtocolConfig::new(1.0, 1.0).unwrap(),
            5,
            Workload::cbr(10.0, SimTime::ZERO),
        )
        .unwrap();
        let r = s.report(SimTime::from_secs(1));
        assert_eq!(r.mean_k, 0.0);
        assert_eq!(r.delivered_symbols, 0);
    }
}
