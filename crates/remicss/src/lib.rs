//! ReMICSS: the reference multichannel secret sharing protocol of §V,
//! runnable over the [`mcss_netsim`] simulator.
//!
//! ReMICSS is a **best-effort** protocol: each source symbol is split
//! into `m` Shamir shares with threshold `k`, one share is transmitted
//! per channel of a chosen subset, and the receiver reconstructs as soon
//! as any `k` shares arrive. Lost shares are never retransmitted — up to
//! `m − k` losses per symbol are absorbed by the threshold scheme itself.
//!
//! The crate provides the protocol pieces and an end-to-end driver:
//!
//! * [`wire`] — the share frame codec (what travels on each channel);
//! * [`scheduler`] — per-symbol `(k, M)` selection: the paper's *dynamic
//!   share schedule* (first-`m`-ready, epoll-style), an explicit
//!   [`ShareSchedule`](mcss_core::ShareSchedule)-driven static scheduler,
//!   and a round-robin baseline;
//! * [`reassembly`] — the receiver's share table with timeout eviction
//!   and a memory cap, borrowed from IP fragment reassembly;
//! * [`session`] — a [`mcss_netsim::Application`] wiring a paced symbol
//!   source, the sender, and the receiver together, reporting achieved
//!   rate, loss, and delay;
//! * [`cpu`] — an optional endpoint processing-cost model used to
//!   reproduce the paper's high-bandwidth saturation experiments
//!   (Figures 6 and 7);
//! * [`adaptive`] — an extension beyond the paper: closed-loop
//!   adaptation of `μ` from receiver feedback, holding a loss target
//!   under unknown or drifting channel conditions.
//!
//! # Examples
//!
//! Run one second of protocol traffic over the paper's Lossy setup and
//! inspect the report:
//!
//! ```
//! use mcss_remicss::{
//!     config::ProtocolConfig,
//!     session::{Session, Workload},
//!     testbed,
//! };
//! use mcss_netsim::{SimTime, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let channels = mcss_core::setups::lossy();
//! let config = ProtocolConfig::new(2.0, 3.0)?; // κ = 2, μ = 3
//! let network = testbed::network_for(&channels, &config);
//! let offered = 0.5 * testbed::optimal_symbol_rate(&channels, &config)?;
//! let session = Session::new(
//!     config,
//!     channels.len(),
//!     Workload::cbr(offered, SimTime::from_secs(1)),
//! )?;
//! let mut sim = Simulator::new(network, session, 42);
//! sim.run_until(SimTime::from_secs(2));
//! let report = sim.app().report(SimTime::from_secs(1));
//! assert!(report.delivered_symbols > 0);
//! assert!(report.loss_fraction < 0.05);
//! # Ok(())
//! # }
//! ```

pub mod adaptive;
pub mod config;
pub mod cpu;
pub mod metrics;
pub mod reassembly;
pub mod scheduler;
pub mod session;
pub mod testbed;
pub mod wire;

pub use config::{ProtocolConfig, SchedulerKind};
pub use metrics::SessionMetrics;
pub use session::{Session, SessionReport, Workload};
pub use wire::ShareFrame;
