//! ReMICSS: the reference multichannel secret sharing protocol of §V,
//! built as a sans-I/O core with pluggable drivers.
//!
//! ReMICSS is a **best-effort** protocol: each source symbol is split
//! into `m` Shamir shares with threshold `k`, one share is transmitted
//! per channel of a chosen subset, and the receiver reconstructs as soon
//! as any `k` shares arrive. Lost shares are never retransmitted — up to
//! `m − k` losses per symbol are absorbed by the threshold scheme itself.
//!
//! The crate provides the protocol pieces, a pure engine, and drivers:
//!
//! * [`wire`] — the share frame codec (what travels on each channel);
//! * [`scheduler`] — per-symbol `(k, M)` selection: the paper's *dynamic
//!   share schedule* (first-`m`-ready, epoll-style), an explicit
//!   [`ShareSchedule`](mcss_core::ShareSchedule)-driven static scheduler,
//!   and a round-robin baseline;
//! * [`reassembly`] — the receiver's share table with timeout eviction
//!   and a memory cap, borrowed from IP fragment reassembly;
//! * [`engine`] — the sans-I/O protocol core: typed [`actions::Event`]s
//!   in (explicit timestamps, explicit RNG), [`actions::Action`]s out,
//!   no clock, no sockets, no allocation in steady state;
//! * [`session`] *(feature `sim`, default)* — the discrete-event
//!   simulator driver: a thin [`mcss_netsim::Application`] adapter over
//!   the engine, reporting achieved rate, loss, and delay;
//! * [`udp`] *(feature `udp`)* — the real-socket driver: one
//!   non-blocking UDP socket pair per channel on loopback, a
//!   monotonic-clock timer queue, and the same engine unchanged;
//! * [`cpu`] — an optional endpoint processing-cost model used to
//!   reproduce the paper's high-bandwidth saturation experiments
//!   (Figures 6 and 7);
//! * [`adaptive`] — an extension beyond the paper: closed-loop
//!   adaptation of `μ` from receiver feedback, holding a loss target
//!   under unknown or drifting channel conditions.
//!
//! # Examples
//!
//! Run one second of protocol traffic over the paper's Lossy setup and
//! inspect the report:
//!
//! ```
//! use mcss_remicss::{
//!     config::ProtocolConfig,
//!     session::{Session, Workload},
//!     testbed,
//! };
//! use mcss_netsim::{SimTime, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let channels = mcss_core::setups::lossy();
//! let config = ProtocolConfig::new(2.0, 3.0)?; // κ = 2, μ = 3
//! let network = testbed::network_for(&channels, &config);
//! let offered = 0.5 * testbed::optimal_symbol_rate(&channels, &config)?;
//! let session = Session::new(
//!     config,
//!     channels.len(),
//!     Workload::cbr(offered, SimTime::from_secs(1)),
//! )?;
//! let mut sim = Simulator::new(network, session, 42);
//! sim.run_until(SimTime::from_secs(2));
//! let report = sim.app().report(SimTime::from_secs(1));
//! assert!(report.delivered_symbols > 0);
//! assert!(report.loss_fraction < 0.05);
//! # Ok(())
//! # }
//! ```

pub mod actions;
pub mod adaptive;
pub mod config;
pub mod cpu;
pub mod engine;
pub mod metrics;
pub mod reassembly;
pub mod scheduler;
#[cfg(feature = "sim")]
pub mod session;
#[cfg(feature = "sim")]
pub mod testbed;
#[cfg(feature = "udp")]
pub mod udp;
pub mod wire;

pub use actions::{Action, Event};
pub use config::{ProtocolConfig, SchedulerKind};
pub use engine::{Engine, SessionReport, SourceMode, Workload};
pub use metrics::SessionMetrics;
#[cfg(feature = "sim")]
pub use session::Session;
#[cfg(feature = "udp")]
pub use udp::UdpDriver;
pub use wire::ShareFrame;
