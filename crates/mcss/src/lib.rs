//! Multichannel secret sharing: model, optimality results, and the
//! ReMICSS reference protocol — a Rust reproduction of Pohly & McDaniel,
//! *Modeling Privacy and Tradeoffs in Multichannel Secret Sharing
//! Protocols* (DSN 2016).
//!
//! This facade crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`gf256`] | `mcss-gf256` | GF(2⁸) arithmetic and polynomials |
//! | [`shamir`] | `mcss-shamir` | Shamir threshold secret sharing |
//! | [`lp`] | `mcss-lp` | dense two-phase simplex solver |
//! | [`model`] | `mcss-core` | channels, subset formulas, schedules, Theorems 1–5, LP schedules |
//! | [`netsim`] | `mcss-netsim` | deterministic discrete-event network simulator |
//! | [`remicss`] | `mcss-remicss` | the best-effort reference protocol |
//! | [`server`] | `mcss-server` | sharded multi-session server over the sans-I/O engine |
//! | [`obs`] | `mcss-obs` | telemetry: counters, histograms, span timers, snapshots |
//!
//! Telemetry is on by default and compiles to nothing under
//! `--no-default-features` (see the `mcss-obs` crate docs for the
//! overhead contract). Binaries print snapshots when `MCSS_TELEMETRY=1`
//! is set; try `cargo run --example mcss-obs-dump`.
//!
//! # Examples
//!
//! Quantify a tradeoff end to end: how much privacy the Lossy setup can
//! buy at 80% of maximum rate, and what the protocol actually achieves:
//!
//! ```
//! use mcss::model::{setups, optimal, lp_schedule::{self, Objective}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let channels = setups::lossy();
//! let mu = 2.0;
//! let rc = optimal::optimal_rate(&channels, mu)?; // shares/unit time
//! let schedule = lp_schedule::optimal_schedule_at_max_rate(
//!     &channels, 1.5, mu, Objective::Privacy)?;
//! println!("rate {rc:.1}, risk {:.4}", schedule.risk(&channels));
//! # Ok(())
//! # }
//! ```

pub use mcss_codec as codec;
pub use mcss_core as model;
pub use mcss_gf256 as gf256;
pub use mcss_lp as lp;
pub use mcss_netsim as netsim;
pub use mcss_obs as obs;
pub use mcss_remicss as remicss;
pub use mcss_server as server;
pub use mcss_shamir as shamir;

/// The most common imports, for examples and quick experiments.
pub mod prelude {
    pub use mcss_codec::{CodecId, ShareCodec};
    pub use mcss_core::{
        lp_schedule::{self, Objective},
        micss, optimal, setups, subset, Channel, ChannelSet, ModelError, ScheduleBuilder,
        ScheduleEntry, ShareSchedule, Subset, SubsetMetricCache,
    };
    pub use mcss_netsim::{SimTime, Simulator};
    pub use mcss_obs::{global_snapshot, MetricsSnapshot};
    pub use mcss_remicss::{
        config::{ProtocolConfig, SchedulerKind},
        session::{Session, SessionReport, Workload},
        testbed,
    };
    pub use mcss_shamir::{reconstruct, split, Params, Share};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let channels = setups::diverse();
        assert_eq!(channels.len(), 5);
        let _ = ShareSchedule::max_rate(&channels);
    }
}
