//! End-to-end statistical pins across the facade:
//!
//! 1. Sampling a share schedule 100 000 times with a fixed seed gives
//!    empirical κ̂ (mean threshold) and μ̂ (mean multiplicity) within 1%
//!    of the schedule's analytic `kappa()`/`mu()` — the sampling path
//!    really realizes the categorical distribution the LP produced.
//! 2. Running the network simulator twice with the same seed produces
//!    *identical* session statistics — the whole stack (scheduler,
//!    Shamir splitting, network, reassembly) is deterministic in the
//!    seed, which is the property the parallel sweep runner relies on.

use mcss::netsim::{SimTime, Simulator};
use mcss::prelude::*;
use rand::SeedableRng;

const SAMPLES: u64 = 100_000;

fn sampled_moments(schedule: &ShareSchedule, seed: u64) -> (f64, f64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut k_sum = 0u64;
    let mut m_sum = 0u64;
    for _ in 0..SAMPLES {
        let entry = schedule.sample(&mut rng);
        k_sum += u64::from(entry.k());
        m_sum += entry.multiplicity() as u64;
    }
    (k_sum as f64 / SAMPLES as f64, m_sum as f64 / SAMPLES as f64)
}

#[test]
fn sampled_kappa_mu_match_analytic_within_one_percent() {
    let cases = [
        ("diverse", setups::diverse(), 2.0, 3.0),
        ("lossy", setups::lossy(), 1.5, 3.5),
        ("delayed", setups::delayed(), 3.0, 4.5),
    ];
    for (name, channels, kappa, mu) in cases {
        let schedule = lp_schedule::optimal_schedule(&channels, kappa, mu, Objective::Loss)
            .expect("feasible program");
        // The LP hits the requested moments exactly.
        assert!((schedule.kappa() - kappa).abs() < 1e-9, "{name}: kappa");
        assert!((schedule.mu() - mu).abs() < 1e-9, "{name}: mu");
        let (k_hat, m_hat) = sampled_moments(&schedule, 0x5EED_0001);
        let k_err = (k_hat - schedule.kappa()).abs() / schedule.kappa();
        let m_err = (m_hat - schedule.mu()).abs() / schedule.mu();
        assert!(
            k_err < 0.01,
            "{name}: empirical kappa {k_hat:.4} vs analytic {kappa} ({k_err:.4} rel)"
        );
        assert!(
            m_err < 0.01,
            "{name}: empirical mu {m_hat:.4} vs analytic {mu} ({m_err:.4} rel)"
        );
    }
}

#[test]
fn sampling_is_deterministic_in_the_seed() {
    let channels = setups::diverse();
    let schedule = lp_schedule::optimal_schedule(&channels, 2.0, 3.0, Objective::Privacy)
        .expect("feasible program");
    assert_eq!(
        sampled_moments(&schedule, 0xD5EED),
        sampled_moments(&schedule, 0xD5EED),
        "same seed must reproduce the same empirical moments exactly"
    );
}

fn simulate(seed: u64) -> SessionReport {
    let channels = setups::lossy();
    let config = ProtocolConfig::new(2.0, 3.5).expect("valid parameters");
    let offered = testbed::optimal_symbol_rate(&channels, &config).expect("valid mu");
    let window = SimTime::from_millis(300);
    let net = testbed::network_for(&channels, &config);
    let session = Session::new(config, channels.len(), Workload::cbr(offered, window))
        .expect("valid session");
    let mut sim = Simulator::new(net, session, seed);
    sim.run_until(window + SimTime::from_secs(1));
    sim.app().report(window)
}

#[test]
fn netsim_same_seed_gives_identical_stats() {
    let a = simulate(0xCAFE_F00D);
    let b = simulate(0xCAFE_F00D);
    // SessionReport is Copy + PartialEq over every counter and every
    // float: bitwise-equal runs, not just statistically close ones.
    assert_eq!(a, b, "same seed must give identical session statistics");
    assert!(a.delivered_symbols > 0, "the run actually carried traffic");

    // And a different seed perturbs at least the delivered counters,
    // confirming the seed actually feeds the stack.
    let c = simulate(0xCAFE_F00E);
    assert_ne!(
        (
            a.sent_symbols,
            a.delivered_symbols,
            a.loss_fraction.to_bits()
        ),
        (
            c.sent_symbols,
            c.delivered_symbols,
            c.loss_fraction.to_bits()
        ),
        "different seeds should not collide on every statistic"
    );
}
