//! Batched splitting and reconstruction over symbol batches.
//!
//! The per-symbol [`split`](crate::split) allocates `k` coefficient
//! planes and one accumulator per call and runs the GF(2⁸) Horner
//! kernels over one symbol's worth of bytes at a time. When a sender
//! shares many symbols with the same `(k, m)` — every run of a share
//! schedule entry — the same work can run over the *concatenation* of
//! the batch: one plane set, one accumulator, and kernel calls long
//! enough to amortize table setup (see `mcss_gf256::slice`). The scratch
//! buffers live in a caller-held [`BatchScratch`] and are reused across
//! batches, so steady-state splitting performs no per-symbol scratch
//! allocation (only the returned shares themselves own memory).
//!
//! Determinism contract, pinned by property tests: [`split_batch`] draws
//! randomness per symbol in batch order, consuming exactly the stream a
//! loop of per-symbol `split` calls would, so batched and per-symbol
//! shares are byte-identical for the same seeded RNG. Reconstruction is
//! deterministic, and [`reconstruct_batch`] is byte-identical to mapping
//! [`reconstruct`](crate::reconstruct) over the batch.
//!
//! # Examples
//!
//! ```
//! use mcss_shamir::{split_batch, reconstruct_batch, BatchScratch, Params};
//!
//! # fn main() -> Result<(), mcss_shamir::ShareError> {
//! let params = Params::new(2, 3)?;
//! let mut scratch = BatchScratch::new();
//! let symbols: [&[u8]; 3] = [b"alpha", b"bravo", b"charlie"];
//! let shared = split_batch(&symbols, params, &mut rand::rng(), &mut scratch)?;
//!
//! // Drop one share of each symbol; any 2 of 3 reconstruct.
//! let received: Vec<&[mcss_shamir::Share]> =
//!     shared.iter().map(|s| &s[1..]).collect();
//! let secrets = reconstruct_batch(&received, &mut scratch)?;
//! assert_eq!(secrets[2], b"charlie");
//! # Ok(())
//! # }
//! ```

use mcss_gf256::{slice as gf_slice, Gf256};

use crate::{
    horner_eval, lagrange_weight, reconstruct, validate_shares, Params, Share, ShareError,
};

/// Reusable working memory for [`split_batch`] and [`reconstruct_batch`].
///
/// Buffers grow to the largest batch seen and are retained, so a
/// long-lived scratch makes steady-state batching allocation-free apart
/// from the returned shares/secrets.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Coefficient planes (split) over the concatenated batch.
    planes: Vec<Vec<u8>>,
    /// Horner / Lagrange accumulator over the concatenated batch.
    acc: Vec<u8>,
    /// Per-share-position lanes (reconstruct) over the concatenated batch.
    lanes: Vec<Vec<u8>>,
    /// Prefix byte offsets of each symbol in the concatenation.
    cuts: Vec<usize>,
}

impl BatchScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        BatchScratch::default()
    }
}

/// Splits every symbol of a batch with the same parameters, equivalent
/// to (and byte-identical with) calling [`split`](crate::split) per
/// symbol with the same RNG.
///
/// Returns one share vector per input symbol, in order.
///
/// # Errors
///
/// Never fails for valid [`Params`], like [`split`](crate::split).
pub fn split_batch<R: rand::Rng + ?Sized>(
    secrets: &[&[u8]],
    params: Params,
    rng: &mut R,
    scratch: &mut BatchScratch,
) -> Result<Vec<Vec<Share>>, ShareError> {
    use rand::RngExt as _;
    let _span = mcss_obs::span!("shamir.split_batch");
    let k = params.threshold() as usize;
    let m = params.multiplicity() as usize;

    let cuts = &mut scratch.cuts;
    cuts.clear();
    cuts.push(0);
    for s in secrets {
        cuts.push(cuts.last().expect("non-empty") + s.len());
    }
    let total = *cuts.last().expect("non-empty");

    if scratch.planes.len() < k {
        scratch.planes.resize_with(k, Vec::new);
    }
    let planes = &mut scratch.planes[..k];
    for p in planes.iter_mut() {
        p.clear();
        p.resize(total, 0);
    }
    for (s, secret) in secrets.iter().enumerate() {
        planes[0][cuts[s]..cuts[s + 1]].copy_from_slice(secret);
    }
    // Random coefficient planes, drawn per symbol in batch order: the
    // exact RNG stream a loop of per-symbol `split` calls consumes, which
    // is what makes batched output byte-identical under the same seed.
    for s in 0..secrets.len() {
        for plane in planes[1..].iter_mut() {
            rng.fill(&mut plane[cuts[s]..cuts[s + 1]]);
        }
    }

    let acc = &mut scratch.acc;
    acc.clear();
    acc.resize(total, 0);
    let mut out: Vec<Vec<Share>> = secrets.iter().map(|_| Vec::with_capacity(m)).collect();
    for j in 0..m {
        let x = Gf256::new(j as u8 + 1);
        // Fused Horner over the concatenated planes: one MulTable per
        // share point, built once and reused across every Horner step,
        // instead of one 256-entry row per scale_add_assign call.
        horner_eval(acc, planes, None, x);
        for (s, shares) in out.iter_mut().enumerate() {
            shares.push(Share::new(
                j as u8 + 1,
                params.threshold(),
                acc[cuts[s]..cuts[s + 1]].to_vec(),
            ));
        }
    }
    Ok(out)
}

/// Splits one symbol *in place*: share `j`'s evaluation bytes are
/// appended to `outs[j]`, with no allocation beyond what the output
/// buffers already hold.
///
/// This is the zero-copy core of the protocol sender: the caller writes
/// each share's wire header into a pooled frame buffer, then this
/// appends the share data directly after it — no intermediate `Share`,
/// no `data().to_vec()`. The Horner evaluation runs straight into the
/// output buffer's spare capacity.
///
/// Draws randomness in exactly the order [`split`](crate::split) does,
/// so for the same seeded RNG the bytes appended to `outs[j]` are
/// byte-identical to `split(...)[j].data()` — the determinism contract
/// the protocol's figure reproductions rely on, pinned by tests.
///
/// # Panics
///
/// Panics if `outs.len() != params.multiplicity()`.
///
/// # Errors
///
/// Never fails for valid [`Params`], like [`split`](crate::split).
///
/// # Examples
///
/// ```
/// use mcss_shamir::{split_into, BatchScratch, Params};
///
/// # fn main() -> Result<(), mcss_shamir::ShareError> {
/// let mut outs = vec![b"hdr0".to_vec(), b"hdr1".to_vec(), b"hdr2".to_vec()];
/// let mut scratch = BatchScratch::new();
/// split_into(b"secret", Params::new(2, 3)?, &mut rand::rng(), &mut scratch, &mut outs)?;
/// assert!(outs.iter().all(|o| o.len() == 4 + 6)); // header + share
/// # Ok(())
/// # }
/// ```
pub fn split_into<R: rand::Rng + ?Sized>(
    secret: &[u8],
    params: Params,
    rng: &mut R,
    scratch: &mut BatchScratch,
    outs: &mut [Vec<u8>],
) -> Result<(), ShareError> {
    use rand::RngExt as _;
    let _span = mcss_obs::span!("shamir.split_into");
    let k = params.threshold() as usize;
    let m = params.multiplicity() as usize;
    assert_eq!(outs.len(), m, "need one output buffer per share");

    // Random coefficient planes 1..k (plane 0 is `secret` itself, read
    // in place). Drawn in the same order as `split` for stream parity.
    let random = k - 1;
    if scratch.planes.len() < random {
        scratch.planes.resize_with(random, Vec::new);
    }
    let planes = &mut scratch.planes[..random];
    for p in planes.iter_mut() {
        p.clear();
        p.resize(secret.len(), 0);
        rng.fill(p.as_mut_slice());
    }

    for (j, out) in outs.iter_mut().enumerate() {
        let x = Gf256::new(j as u8 + 1);
        let start = out.len();
        out.resize(start + secret.len(), 0);
        let acc = &mut out[start..];
        // Fused Horner over planes k-1, …, 1, then the secret (plane
        // 0), straight into the output buffer: one MulTable and one
        // accumulator pass for all k steps, no per-plane acc round
        // trips and no heap allocation.
        horner_eval(acc, planes, Some(secret), x);
    }
    Ok(())
}

/// Whether every symbol's usable prefix presents the same threshold and
/// abscissa sequence as the first symbol's, enabling one shared set of
/// Lagrange weights and concatenated-lane kernels.
fn uniform_pattern(symbols: &[&[Share]], k: usize) -> bool {
    let pattern = &symbols[0][..k];
    symbols[1..].iter().all(|shares| {
        shares.len() >= k
            && shares[0].threshold() == pattern[0].threshold()
            && shares[..k].iter().zip(pattern).all(|(a, b)| a.x() == b.x())
    })
}

/// Reconstructs every symbol of a batch, byte-identical to mapping
/// [`reconstruct`] over it.
///
/// When the batch is *uniform* — every symbol reconstructs from the same
/// threshold and abscissa sequence, the common case when one schedule
/// entry covers a run of symbols — the Lagrange weights are computed
/// once and the accumulation runs over concatenated share lanes. Mixed
/// batches fall back to per-symbol reconstruction.
///
/// # Errors
///
/// The first per-symbol [`ShareError`], as [`reconstruct`] would report
/// it.
pub fn reconstruct_batch(
    symbols: &[&[Share]],
    scratch: &mut BatchScratch,
) -> Result<Vec<Vec<u8>>, ShareError> {
    let _span = mcss_obs::span!("shamir.reconstruct_batch");
    let Some(first) = symbols.first() else {
        return Ok(Vec::new());
    };
    let k = validate_shares(first)?;
    if !uniform_pattern(symbols, k) {
        return symbols.iter().map(|shares| reconstruct(shares)).collect();
    }
    // Uniform fast path; still validate every symbol so error behavior
    // matches the per-symbol loop.
    let cuts = &mut scratch.cuts;
    cuts.clear();
    cuts.push(0);
    for shares in symbols {
        validate_shares(shares)?;
        cuts.push(cuts.last().expect("non-empty") + shares[0].data().len());
    }
    let total = *cuts.last().expect("non-empty");

    if scratch.lanes.len() < k {
        scratch.lanes.resize_with(k, Vec::new);
    }
    let lanes = &mut scratch.lanes[..k];
    for (i, lane) in lanes.iter_mut().enumerate() {
        lane.clear();
        lane.reserve(total);
        for shares in symbols {
            lane.extend_from_slice(shares[i].data());
        }
    }

    let acc = &mut scratch.acc;
    acc.clear();
    acc.resize(total, 0);
    let pattern = &symbols[0][..k];
    for (i, lane) in lanes.iter().enumerate() {
        gf_slice::add_scaled_assign(acc, lane, lagrange_weight(pattern, i));
    }
    Ok(symbols
        .iter()
        .enumerate()
        .map(|(s, _)| acc[cuts[s]..cuts[s + 1]].to_vec())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xba7c4)
    }

    #[test]
    fn batch_round_trips() {
        let mut rng = rng();
        let mut scratch = BatchScratch::new();
        let symbols: [&[u8]; 4] = [b"one", b"two symbols", b"", b"four"];
        let shared =
            split_batch(&symbols, Params::new(3, 5).unwrap(), &mut rng, &mut scratch).unwrap();
        assert!(shared.iter().all(|s| s.len() == 5));
        let received: Vec<&[Share]> = shared.iter().map(|s| &s[2..]).collect();
        let secrets = reconstruct_batch(&received, &mut scratch).unwrap();
        for (got, want) in secrets.iter().zip(symbols) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn batched_split_matches_per_symbol_stream() {
        let symbols: [&[u8]; 3] = [b"abcdefg", b"hi", b"0123456789"];
        let params = Params::new(2, 4).unwrap();
        let mut scratch = BatchScratch::new();
        let batched = split_batch(&symbols, params, &mut rng(), &mut scratch).unwrap();
        let mut serial_rng = rng();
        for (s, secret) in symbols.iter().enumerate() {
            let serial = split(secret, params, &mut serial_rng).unwrap();
            assert_eq!(batched[s], serial, "symbol {s}");
        }
    }

    #[test]
    fn mixed_batch_falls_back_per_symbol() {
        let mut rng = rng();
        let mut scratch = BatchScratch::new();
        // Two symbols reconstructed from different share subsets.
        let a = split(b"first", Params::new(2, 4).unwrap(), &mut rng).unwrap();
        let b = split(b"second", Params::new(2, 4).unwrap(), &mut rng).unwrap();
        let batch: Vec<&[Share]> = vec![&a[..2], &b[2..]];
        let secrets = reconstruct_batch(&batch, &mut scratch).unwrap();
        assert_eq!(secrets[0], b"first");
        assert_eq!(secrets[1], b"second");
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut scratch = BatchScratch::new();
        assert!(reconstruct_batch(&[], &mut scratch).unwrap().is_empty());
        let shared =
            split_batch(&[], Params::new(2, 3).unwrap(), &mut rng(), &mut scratch).unwrap();
        assert!(shared.is_empty());
    }

    #[test]
    fn per_symbol_errors_surface() {
        let mut rng = rng();
        let mut scratch = BatchScratch::new();
        let a = split(b"ok", Params::new(3, 4).unwrap(), &mut rng).unwrap();
        let short: Vec<&[Share]> = vec![&a[..3], &a[..2]];
        assert_eq!(
            reconstruct_batch(&short, &mut scratch).unwrap_err(),
            ShareError::NotEnoughShares { needed: 3, got: 2 }
        );
    }

    #[test]
    fn split_into_matches_split_byte_and_stream() {
        // Same RNG stream, byte-identical share data, for every k ≤ m ≤ 8
        // (the protocol's supported range) including k = 1.
        let secret = b"in-place split parity";
        for m in 1..=8u8 {
            for k in 1..=m {
                let params = Params::new(k, m).unwrap();
                let mut scratch = BatchScratch::new();
                let mut outs: Vec<Vec<u8>> = (0..m).map(|j| vec![j, 0xee]).collect();
                split_into(secret, params, &mut rng(), &mut scratch, &mut outs).unwrap();
                let serial = split(secret, params, &mut rng()).unwrap();
                for (j, out) in outs.iter().enumerate() {
                    assert_eq!(&out[..2], &[j as u8, 0xee], "prefix clobbered k={k} m={m}");
                    assert_eq!(&out[2..], serial[j].data(), "k={k} m={m} share {j}");
                }
                // The streams stay aligned: a draw after the call matches.
                use rand::RngExt as _;
                let mut a = rng();
                let mut b = rng();
                split_into(secret, params, &mut a, &mut scratch, &mut outs).unwrap();
                let _ = split(secret, params, &mut b).unwrap();
                assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
            }
        }
    }

    #[test]
    fn split_into_is_alloc_free_on_warm_buffers() {
        // Capacity-preserving: warmed outputs and scratch never realloc.
        let params = Params::new(3, 5).unwrap();
        let mut scratch = BatchScratch::new();
        let mut outs: Vec<Vec<u8>> = (0..5).map(|_| Vec::with_capacity(64)).collect();
        let mut r = rng();
        split_into(b"warmup pass", params, &mut r, &mut scratch, &mut outs).unwrap();
        let ptrs: Vec<_> = outs.iter().map(|o| o.as_ptr()).collect();
        for o in &mut outs {
            o.clear();
        }
        split_into(b"steady pass", params, &mut r, &mut scratch, &mut outs).unwrap();
        for (o, p) in outs.iter().zip(ptrs) {
            assert_eq!(o.as_ptr(), p, "buffer reallocated");
        }
    }

    #[test]
    #[should_panic(expected = "one output buffer per share")]
    fn split_into_wrong_buffer_count_panics() {
        let mut outs = vec![Vec::new(); 2];
        let _ = split_into(
            b"x",
            Params::new(2, 3).unwrap(),
            &mut rng(),
            &mut BatchScratch::new(),
            &mut outs,
        );
    }

    #[test]
    fn scratch_reuse_across_batches() {
        let mut rng = rng();
        let mut scratch = BatchScratch::new();
        for round in 0..3u8 {
            let payload = vec![round; 100 * (round as usize + 1)];
            let symbols: Vec<&[u8]> = payload.chunks(37).collect();
            let shared =
                split_batch(&symbols, Params::new(2, 3).unwrap(), &mut rng, &mut scratch).unwrap();
            let received: Vec<&[Share]> = shared.iter().map(|s| &s[..2]).collect();
            let secrets = reconstruct_batch(&received, &mut scratch).unwrap();
            assert_eq!(secrets.concat(), payload);
        }
    }
}
