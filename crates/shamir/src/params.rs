//! Validated `(k, m)` threshold-scheme parameters.

use crate::{ShareError, MAX_SHARES};

/// Validated threshold-scheme parameters: threshold `k` and multiplicity
/// `m` with `1 ≤ k ≤ m ≤ 255`.
///
/// In the protocol model these are the per-symbol integer parameters; the
/// fractional schedule parameters `κ` and `μ` are averages of these over
/// many symbols.
///
/// # Examples
///
/// ```
/// use mcss_shamir::Params;
///
/// let p = Params::new(2, 5)?;
/// assert_eq!(p.threshold(), 2);
/// assert_eq!(p.multiplicity(), 5);
/// assert_eq!(p.loss_tolerance(), 3);   // m − k
/// assert_eq!(p.privacy_tolerance(), 1); // k − 1
/// # Ok::<(), mcss_shamir::ShareError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Params {
    threshold: u8,
    multiplicity: u8,
}

impl Params {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ShareError::InvalidParams`] unless `1 ≤ k ≤ m` (the `m ≤
    /// 255` bound is enforced by the type of `m`).
    ///
    /// # Examples
    ///
    /// ```
    /// use mcss_shamir::Params;
    /// assert!(Params::new(0, 3).is_err());
    /// assert!(Params::new(4, 3).is_err());
    /// assert!(Params::new(3, 3).is_ok());
    /// ```
    pub fn new(threshold: u8, multiplicity: u8) -> Result<Self, ShareError> {
        if threshold == 0 || threshold > multiplicity {
            return Err(ShareError::InvalidParams {
                threshold,
                multiplicity,
            });
        }
        debug_assert!(multiplicity as usize <= MAX_SHARES);
        Ok(Params {
            threshold,
            multiplicity,
        })
    }

    /// The threshold `k`: shares needed to reconstruct.
    #[must_use]
    pub const fn threshold(self) -> u8 {
        self.threshold
    }

    /// The multiplicity `m`: shares generated per secret.
    #[must_use]
    pub const fn multiplicity(self) -> u8 {
        self.multiplicity
    }

    /// Number of share losses tolerated without losing the secret, `m − k`
    /// (Blakley's "abnegations").
    #[must_use]
    pub const fn loss_tolerance(self) -> u8 {
        self.multiplicity - self.threshold
    }

    /// Number of share observations tolerated without disclosure, `k − 1`
    /// (Blakley's "betrayals").
    #[must_use]
    pub const fn privacy_tolerance(self) -> u8 {
        self.threshold - 1
    }
}

impl core::fmt::Display for Params {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}-of-{}", self.threshold, self.multiplicity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_range_accepted() {
        for m in 1..=10u8 {
            for k in 1..=m {
                let p = Params::new(k, m).unwrap();
                assert_eq!(p.threshold(), k);
                assert_eq!(p.multiplicity(), m);
                assert_eq!(p.loss_tolerance() + p.privacy_tolerance() + 1, m);
            }
        }
    }

    #[test]
    fn invalid_rejected() {
        assert!(Params::new(0, 0).is_err());
        assert!(Params::new(0, 1).is_err());
        assert!(Params::new(2, 1).is_err());
        assert!(Params::new(255, 254).is_err());
    }

    #[test]
    fn max_shares_ok() {
        let p = Params::new(255, 255).unwrap();
        assert_eq!(p.loss_tolerance(), 0);
        assert_eq!(p.privacy_tolerance(), 254);
    }

    #[test]
    fn display() {
        assert_eq!(Params::new(2, 5).unwrap().to_string(), "2-of-5");
    }

    #[test]
    fn ordering_and_hash_derives_usable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Params::new(1, 2).unwrap());
        set.insert(Params::new(1, 2).unwrap());
        assert_eq!(set.len(), 1);
        assert!(Params::new(1, 2).unwrap() < Params::new(2, 2).unwrap());
    }
}
