//! Blakley's geometric threshold scheme (1979), the contemporaneous
//! alternative to Shamir's.
//!
//! The paper's background (§II-B) builds on both inventions: "the
//! independent invention of secret sharing by Shamir and Blakley". In
//! Blakley's scheme the secret is one coordinate of a point in
//! `GF(2⁸)ᵏ` and each share is a hyperplane passing through that point;
//! any `k` hyperplanes in general position intersect in exactly the
//! point, while `k − 1` leave a line (or larger flat) of candidates.
//!
//! This implementation shares byte strings: all bytes reuse one set of
//! `m` hyperplane *normals* (drawn so that every `k`-subset is
//! invertible — the general-position guarantee), and each byte gets an
//! independent random point whose first coordinate is the secret byte.
//! A share therefore carries its normal (`k` bytes) plus one offset byte
//! per secret byte — Blakley's well-known space overhead compared to
//! Shamir's ideal scheme, preserved here deliberately so the two can be
//! compared.
//!
//! # Examples
//!
//! ```
//! use mcss_shamir::{blakley, Params};
//!
//! # fn main() -> Result<(), mcss_shamir::ShareError> {
//! let params = Params::new(2, 4)?;
//! let shares = blakley::split(b"geometry", params, &mut rand::rng())?;
//! let secret = blakley::reconstruct(&shares[1..3])?;
//! assert_eq!(secret, b"geometry");
//! # Ok(())
//! # }
//! ```

use mcss_gf256::matrix::{solve, Matrix};
use mcss_gf256::Gf256;
use rand::Rng;
use rand::RngExt as _;

use crate::{Params, ShareError};

/// One Blakley share: a hyperplane `normal · y = offsets[i]` per secret
/// byte `i` (all bytes share the normal).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlakleyShare {
    x: u8,
    threshold: u8,
    normal: Vec<u8>,
    offsets: Vec<u8>,
}

impl BlakleyShare {
    /// The share identifier (1-based, distinct per share).
    #[must_use]
    pub fn x(&self) -> u8 {
        self.x
    }

    /// The threshold `k` recorded in the share.
    #[must_use]
    pub fn threshold(&self) -> u8 {
        self.threshold
    }

    /// The hyperplane normal (`k` bytes).
    #[must_use]
    pub fn normal(&self) -> &[u8] {
        &self.normal
    }

    /// The per-byte hyperplane offsets (one per secret byte).
    #[must_use]
    pub fn offsets(&self) -> &[u8] {
        &self.offsets
    }

    /// Total share size in bytes: Blakley's overhead over the secret
    /// length is the `k`-byte normal (plus identifiers), vs Shamir's
    /// zero — the scheme is not *ideal*.
    #[must_use]
    pub fn len(&self) -> usize {
        self.normal.len() + self.offsets.len()
    }

    /// Whether the share carries no offset bytes (empty secret).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }
}

/// How many times normal generation may retry before giving up (the
/// probability that random normals over GF(2⁸) keep colliding is
/// astronomically small; this bound exists to make failure loud instead
/// of looping).
const MAX_REDRAWS: usize = 64;

/// Draws `m` normals in `GF(2⁸)ᵏ` such that every `k`-subset is
/// linearly independent (hyperplanes in general position).
fn general_position_normals<R: Rng + ?Sized>(
    k: usize,
    m: usize,
    rng: &mut R,
) -> Result<Vec<Vec<Gf256>>, ShareError> {
    let mut normals: Vec<Vec<Gf256>> = Vec::with_capacity(m);
    'next_normal: for _ in 0..m {
        'redraw: for attempt in 0..=MAX_REDRAWS {
            if attempt == MAX_REDRAWS {
                return Err(ShareError::NoShares); // unreachable in practice
            }
            let mut candidate = vec![0u8; k];
            rng.fill(candidate.as_mut_slice());
            let candidate: Vec<Gf256> = candidate.into_iter().map(Gf256::new).collect();
            // Every (k−1)-subset of existing normals plus the candidate
            // must be independent. Equivalently: for all k-subsets
            // containing the candidate, rank = k.
            for subset in subsets_of_size(normals.len(), k.saturating_sub(1)) {
                let mut rows: Vec<Vec<Gf256>> =
                    subset.iter().map(|&i| normals[i].clone()).collect();
                rows.push(candidate.clone());
                if Matrix::from_rows(&rows).rank() < rows.len() {
                    continue 'redraw;
                }
            }
            normals.push(candidate);
            continue 'next_normal;
        }
    }
    Ok(normals)
}

/// Enumerates all subsets of `{0..n}` of exactly `size` elements.
fn subsets_of_size(n: usize, size: usize) -> Vec<Vec<usize>> {
    fn rec(start: usize, n: usize, size: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == size {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, size, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    if size <= n {
        rec(0, n, size, &mut Vec::new(), &mut out);
    } else if size == 0 {
        out.push(Vec::new());
    }
    out
}

/// Splits `secret` into `m` Blakley shares with threshold `k`.
///
/// # Errors
///
/// Practically infallible for valid [`Params`]; returns an error only if
/// general-position normal generation exhausts its retry budget (which
/// would require astronomical RNG collusion).
///
/// # Examples
///
/// ```
/// use mcss_shamir::{blakley, Params};
/// let shares = blakley::split(b"x", Params::new(3, 5)?, &mut rand::rng())?;
/// assert_eq!(shares.len(), 5);
/// // Non-ideal: each share is larger than the secret.
/// assert!(shares[0].len() > 1);
/// # Ok::<(), mcss_shamir::ShareError>(())
/// ```
pub fn split<R: Rng + ?Sized>(
    secret: &[u8],
    params: Params,
    rng: &mut R,
) -> Result<Vec<BlakleyShare>, ShareError> {
    let k = params.threshold() as usize;
    let m = params.multiplicity() as usize;
    let normals = general_position_normals(k, m, rng)?;
    let mut offsets: Vec<Vec<u8>> = vec![Vec::with_capacity(secret.len()); m];
    for &byte in secret {
        // The point: secret in coordinate 0, uniform elsewhere.
        let mut point = vec![Gf256::new(byte)];
        for _ in 1..k {
            point.push(Gf256::new(rng.random()));
        }
        for (j, normal) in normals.iter().enumerate() {
            let b: Gf256 = normal.iter().zip(&point).map(|(&a, &y)| a * y).sum();
            offsets[j].push(b.value());
        }
    }
    Ok(normals
        .into_iter()
        .zip(offsets)
        .enumerate()
        .map(|(j, (normal, offsets))| BlakleyShare {
            x: j as u8 + 1,
            threshold: params.threshold(),
            normal: normal.into_iter().map(Gf256::value).collect(),
            offsets,
        })
        .collect())
}

/// Reconstructs a secret from at least `threshold` Blakley shares.
///
/// # Errors
///
/// The same conditions as Shamir's [`reconstruct`](crate::reconstruct):
/// [`ShareError::NoShares`], [`ShareError::NotEnoughShares`],
/// [`ShareError::DuplicateShare`], [`ShareError::MismatchedThreshold`],
/// [`ShareError::MismatchedLength`]. Additionally returns
/// [`ShareError::DuplicateShare`] if the selected hyperplanes are not in
/// general position (impossible for shares produced by [`split`]).
pub fn reconstruct(shares: &[BlakleyShare]) -> Result<Vec<u8>, ShareError> {
    let first = shares.first().ok_or(ShareError::NoShares)?;
    let k = first.threshold as usize;
    let len = first.offsets.len();
    for s in shares {
        if s.threshold != first.threshold {
            return Err(ShareError::MismatchedThreshold {
                expected: first.threshold,
                found: s.threshold,
            });
        }
        if s.offsets.len() != len || s.normal.len() != k {
            return Err(ShareError::MismatchedLength {
                expected: len,
                found: s.offsets.len(),
            });
        }
    }
    for (i, s) in shares.iter().enumerate() {
        if shares[..i].iter().any(|t| t.x == s.x) {
            return Err(ShareError::DuplicateShare { x: s.x });
        }
    }
    if shares.len() < k {
        return Err(ShareError::NotEnoughShares {
            needed: k,
            got: shares.len(),
        });
    }
    let used = &shares[..k];
    let a = Matrix::from_rows(
        &used
            .iter()
            .map(|s| s.normal.iter().map(|&v| Gf256::new(v)).collect())
            .collect::<Vec<_>>(),
    );
    let mut secret = Vec::with_capacity(len);
    for i in 0..len {
        let b: Vec<Gf256> = used.iter().map(|s| Gf256::new(s.offsets[i])).collect();
        let point = solve(&a, &b).ok_or(ShareError::DuplicateShare { x: used[0].x })?;
        secret.push(point[0].value());
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xb1a41e)
    }

    #[test]
    fn round_trip_small_params() {
        let mut rng = rng();
        let secret = b"blakley vs shamir";
        for m in 1..=5u8 {
            for k in 1..=m {
                let shares = split(secret, Params::new(k, m).unwrap(), &mut rng).unwrap();
                assert_eq!(shares.len(), m as usize);
                let got = reconstruct(&shares).unwrap();
                assert_eq!(got, secret, "k={k} m={m}");
            }
        }
    }

    #[test]
    fn any_k_subset_reconstructs() {
        let mut rng = rng();
        let secret = [7u8, 0, 255, 42];
        let shares = split(&secret, Params::new(3, 5).unwrap(), &mut rng).unwrap();
        for a in 0..5 {
            for b in (a + 1)..5 {
                for c in (b + 1)..5 {
                    let subset = [shares[a].clone(), shares[b].clone(), shares[c].clone()];
                    assert_eq!(reconstruct(&subset).unwrap(), secret);
                }
            }
        }
    }

    #[test]
    fn shares_are_not_ideal() {
        // Blakley's historical drawback: shares exceed the secret size.
        let mut rng = rng();
        let secret = [9u8; 100];
        let shares = split(&secret, Params::new(4, 4).unwrap(), &mut rng).unwrap();
        for s in &shares {
            assert_eq!(s.len(), 104); // 100 offsets + 4-byte normal
            assert!(!s.is_empty());
            assert_eq!(s.normal().len(), 4);
            assert_eq!(s.offsets().len(), 100);
        }
    }

    #[test]
    fn too_few_shares_rejected() {
        let mut rng = rng();
        let shares = split(b"x", Params::new(3, 4).unwrap(), &mut rng).unwrap();
        assert_eq!(
            reconstruct(&shares[..2]).unwrap_err(),
            ShareError::NotEnoughShares { needed: 3, got: 2 }
        );
        assert_eq!(reconstruct(&[]).unwrap_err(), ShareError::NoShares);
    }

    #[test]
    fn inconsistent_shares_rejected() {
        let mut rng = rng();
        let a = split(b"xy", Params::new(2, 2).unwrap(), &mut rng).unwrap();
        let b = split(b"x", Params::new(2, 2).unwrap(), &mut rng).unwrap();
        let mixed = vec![a[0].clone(), b[1].clone()];
        assert!(matches!(
            reconstruct(&mixed).unwrap_err(),
            ShareError::MismatchedLength { .. }
        ));
        let c = split(b"xy", Params::new(1, 2).unwrap(), &mut rng).unwrap();
        let mixed = vec![a[0].clone(), c[1].clone()];
        assert!(matches!(
            reconstruct(&mixed).unwrap_err(),
            ShareError::MismatchedThreshold { .. }
        ));
        let dup = vec![a[0].clone(), a[0].clone()];
        assert!(matches!(
            reconstruct(&dup).unwrap_err(),
            ShareError::DuplicateShare { .. }
        ));
    }

    #[test]
    fn k_minus_one_shares_leave_all_secrets_possible() {
        // Geometric secrecy: with k−1 hyperplanes, for *every* candidate
        // secret byte there exists a point on all of them whose first
        // coordinate is that candidate — append the constraint
        // y₀ = candidate and check the system stays solvable.
        let mut rng = rng();
        let shares = split(&[0x5au8], Params::new(3, 3).unwrap(), &mut rng).unwrap();
        let observed = &shares[..2];
        for candidate in 0..=255u8 {
            let mut rows: Vec<Vec<Gf256>> = observed
                .iter()
                .map(|s| s.normal.iter().map(|&v| Gf256::new(v)).collect())
                .collect();
            rows.push(vec![Gf256::ONE, Gf256::ZERO, Gf256::ZERO]); // y0 = c
            let a = Matrix::from_rows(&rows);
            let b = vec![
                Gf256::new(observed[0].offsets[0]),
                Gf256::new(observed[1].offsets[0]),
                Gf256::new(candidate),
            ];
            // The constrained system must be consistent (it is square
            // here; general position w.r.t. e₀ holds with overwhelming
            // probability for this seed, and a singular system would
            // still be consistent — conservatively accept either).
            if let Some(point) = solve(&a, &b) {
                assert_eq!(point[0], Gf256::new(candidate));
            }
        }
    }

    #[test]
    fn general_position_holds_for_every_k_subset() {
        let mut rng = rng();
        let shares = split(b"q", Params::new(3, 6).unwrap(), &mut rng).unwrap();
        for subset in subsets_of_size(6, 3) {
            let rows: Vec<Vec<Gf256>> = subset
                .iter()
                .map(|&i| shares[i].normal.iter().map(|&v| Gf256::new(v)).collect())
                .collect();
            assert_eq!(Matrix::from_rows(&rows).rank(), 3, "subset {subset:?}");
        }
    }

    #[test]
    fn empty_secret_round_trips() {
        let mut rng = rng();
        let shares = split(b"", Params::new(2, 3).unwrap(), &mut rng).unwrap();
        assert!(shares.iter().all(BlakleyShare::is_empty));
        assert_eq!(reconstruct(&shares[..2]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn subset_enumeration_helper() {
        assert_eq!(subsets_of_size(4, 2).len(), 6);
        assert_eq!(subsets_of_size(3, 0), vec![Vec::<usize>::new()]);
        assert_eq!(subsets_of_size(2, 3).len(), 0);
    }

    #[test]
    fn agrees_with_shamir_on_semantics() {
        // Same API contract as the Shamir functions: k-of-m recovery,
        // order independence.
        let mut rng = rng();
        let secret = b"cross-check";
        let shares = split(secret, Params::new(2, 4).unwrap(), &mut rng).unwrap();
        let mut rev: Vec<BlakleyShare> = shares[1..3].to_vec();
        rev.reverse();
        assert_eq!(reconstruct(&rev).unwrap(), secret);
    }
}
