//! Shamir threshold secret sharing over GF(2⁸).
//!
//! A secret byte string is split into `m` *shares* such that any `k` of
//! them reconstruct the secret and any `k − 1` reveal no information at
//! all (information-theoretic secrecy, per Shamir 1979). Each byte of the
//! secret is independently hidden in the constant term of a fresh random
//! polynomial of degree `k − 1`; share `j` carries the evaluations at the
//! nonzero field point `x_j`.
//!
//! This is the secret sharing scheme underlying the multichannel protocol
//! model of Pohly & McDaniel (DSN 2016): the protocol sends one share per
//! channel, so an adversary must eavesdrop at least `k` channels to learn
//! a symbol, while the receiver tolerates the loss of up to `m − k`
//! shares.
//!
//! # Examples
//!
//! ```
//! use mcss_shamir::{split, reconstruct, Params};
//!
//! # fn main() -> Result<(), mcss_shamir::ShareError> {
//! let params = Params::new(3, 5)?; // threshold 3 of 5 shares
//! let mut rng = rand::rng();
//! let shares = split(b"attack at dawn", params, &mut rng)?;
//!
//! // Any 3 shares suffice; drop two of them.
//! let secret = reconstruct(&shares[1..4])?;
//! assert_eq!(secret, b"attack at dawn");
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod blakley;
mod error;
mod params;
mod share;
pub mod stream;

pub use batch::{reconstruct_batch, split_batch, split_into, BatchScratch};
pub use error::ShareError;
pub use params::Params;
pub use share::Share;

use mcss_gf256::simd::MulTable;
use mcss_gf256::{slice as gf_slice, Gf256};

/// Maximum number of shares a secret can be split into.
///
/// Share abscissae are nonzero elements of GF(2⁸), of which there are 255.
pub const MAX_SHARES: usize = 255;

/// Plane count up to which Horner evaluation runs through the fused
/// multi-plane kernel with a stack array of plane references (no
/// allocation). The protocol's `k ≤ 8` always fits; larger thresholds
/// fall back to one dispatched step per plane with a shared
/// [`MulTable`], which is still table-hoisted, just not
/// register-fused.
pub(crate) const FUSED_MAX_PLANES: usize = 16;

/// Overwrites `acc` with the Horner evaluation at `x` whose step order
/// is `planes[n−1], …, planes[0]`, then `tail` if given — so `planes[i]`
/// is the degree-`i+tail_count` coefficient and `tail` (or `planes[0]`)
/// the constant term. This is the exact step sequence `split`,
/// `split_into`, and `split_batch` previously ran as one
/// `scale_add_assign` per plane. One [`MulTable`] serves every step;
/// small plane counts additionally fuse all steps into one pass that
/// keeps the accumulator in registers (see
/// [`mcss_gf256::slice::horner_into`]).
pub(crate) fn horner_eval(acc: &mut [u8], planes: &[Vec<u8>], tail: Option<&[u8]>, x: Gf256) {
    let n = planes.len() + usize::from(tail.is_some());
    if n <= FUSED_MAX_PLANES {
        let mut refs: [&[u8]; FUSED_MAX_PLANES] = [&[]; FUSED_MAX_PLANES];
        for (r, p) in refs.iter_mut().zip(planes.iter().rev()) {
            *r = p.as_slice();
        }
        if let Some(t) = tail {
            refs[planes.len()] = t;
        }
        gf_slice::horner_into(acc, &refs[..n], x);
        return;
    }
    let table = MulTable::new(x);
    acc.fill(0);
    for plane in planes.iter().rev() {
        gf_slice::scale_add_assign_with(acc, plane, &table);
    }
    if let Some(t) = tail {
        gf_slice::scale_add_assign_with(acc, t, &table);
    }
}

/// Splits `secret` into `params.multiplicity()` shares with threshold
/// `params.threshold()`.
///
/// Each byte of the secret is shared independently with fresh randomness,
/// so shares are exactly as long as the secret (`H(Y) = H(X)`, the optimal
/// case assumed by the protocol model). Share `j` (0-based) receives the
/// abscissa `x = j + 1`.
///
/// # Errors
///
/// Never fails for valid [`Params`]; the `Result` exists for forward
/// compatibility of the trait-object scheme API in [`stream`].
///
/// # Examples
///
/// ```
/// use mcss_shamir::{split, Params};
///
/// # fn main() -> Result<(), mcss_shamir::ShareError> {
/// let shares = split(b"hi", Params::new(2, 3)?, &mut rand::rng())?;
/// assert_eq!(shares.len(), 3);
/// assert!(shares.iter().all(|s| s.data().len() == 2));
/// # Ok(())
/// # }
/// ```
pub fn split<R: rand::Rng + ?Sized>(
    secret: &[u8],
    params: Params,
    rng: &mut R,
) -> Result<Vec<Share>, ShareError> {
    use rand::RngExt as _;
    let _span = mcss_obs::span!("shamir.split");
    let k = params.threshold() as usize;
    let m = params.multiplicity() as usize;
    // Coefficient *planes*: plane 0 holds every byte's constant term
    // (the secret), planes 1..k hold every byte's i-th random
    // coefficient. Each share is then a Horner evaluation over planes,
    // which runs as tight per-plane slice loops (see mcss_gf256::slice).
    let mut planes: Vec<Vec<u8>> = Vec::with_capacity(k);
    planes.push(secret.to_vec());
    for _ in 1..k {
        let mut plane = vec![0u8; secret.len()];
        rng.fill(plane.as_mut_slice());
        planes.push(plane);
    }
    let mut shares = Vec::with_capacity(m);
    for j in 0..m {
        let x = Gf256::new(j as u8 + 1);
        let mut acc = vec![0u8; secret.len()];
        horner_eval(&mut acc, &planes, None, x);
        shares.push(Share::new(j as u8 + 1, params.threshold(), acc));
    }
    Ok(shares)
}

/// Reconstructs a secret from at least `threshold` shares.
///
/// Exactly `threshold` shares are consumed (the first ones in `shares`);
/// extra shares are ignored. The threshold is read from the shares
/// themselves and must agree across all of them.
///
/// # Errors
///
/// - [`ShareError::NoShares`] if `shares` is empty.
/// - [`ShareError::MismatchedThreshold`] if shares disagree on `k`.
/// - [`ShareError::MismatchedLength`] if shares disagree on data length.
/// - [`ShareError::DuplicateShare`] if two shares have the same abscissa.
/// - [`ShareError::NotEnoughShares`] if fewer than `k` shares are given.
///
/// # Examples
///
/// ```
/// use mcss_shamir::{split, reconstruct, Params};
///
/// # fn main() -> Result<(), mcss_shamir::ShareError> {
/// let shares = split(&[1, 2, 3], Params::new(2, 4)?, &mut rand::rng())?;
/// assert_eq!(reconstruct(&shares[2..])?, vec![1, 2, 3]);
/// # Ok(())
/// # }
/// ```
pub fn reconstruct(shares: &[Share]) -> Result<Vec<u8>, ShareError> {
    let _span = mcss_obs::span!("shamir.reconstruct");
    let k = validate_shares(shares)?;
    let used = &shares[..k];
    // Lagrange weights at zero are shared by every byte position, so
    // compute them once and accumulate whole shares with bulk slice ops.
    let mut secret = vec![0u8; shares[0].data().len()];
    for (i, si) in used.iter().enumerate() {
        gf_slice::add_scaled_assign(&mut secret, si.data(), lagrange_weight(used, i));
    }
    Ok(secret)
}

/// Checks a share set's internal consistency (agreeing threshold and
/// length, distinct abscissae, at least `k` shares) and returns `k`.
pub(crate) fn validate_shares(shares: &[Share]) -> Result<usize, ShareError> {
    let first = shares.first().ok_or(ShareError::NoShares)?;
    let k = first.threshold() as usize;
    let len = first.data().len();
    for s in shares {
        if s.threshold() != first.threshold() {
            return Err(ShareError::MismatchedThreshold {
                expected: first.threshold(),
                found: s.threshold(),
            });
        }
        if s.data().len() != len {
            return Err(ShareError::MismatchedLength {
                expected: len,
                found: s.data().len(),
            });
        }
    }
    for (i, s) in shares.iter().enumerate() {
        if shares[..i].iter().any(|t| t.x() == s.x()) {
            return Err(ShareError::DuplicateShare { x: s.x() });
        }
    }
    if shares.len() < k {
        return Err(ShareError::NotEnoughShares {
            needed: k,
            got: shares.len(),
        });
    }
    Ok(k)
}

/// The Lagrange basis weight at zero for `used[i]`: `Π_{j≠i} x_j / (x_j
/// + x_i)`. The denominator is nonzero whenever the abscissae are
/// distinct (enforced by [`validate_shares`]).
pub(crate) fn lagrange_weight(used: &[Share], i: usize) -> Gf256 {
    let xi = Gf256::new(used[i].x());
    let mut num = Gf256::ONE;
    let mut den = Gf256::ONE;
    for (j, sj) in used.iter().enumerate() {
        if i != j {
            let xj = Gf256::new(sj.x());
            num *= xj;
            den *= xj + xi;
        }
    }
    num / den
}

/// The Lagrange basis weight at zero for abscissa `xs[i]` against the
/// abscissa set `xs`, for callers that keep share data outside
/// [`Share`] objects (e.g. pooled reassembly buffers): the secret is
/// `Σ_i weight(xs, i) · data_i`, accumulated with
/// [`mcss_gf256::slice::add_scaled_assign`].
///
/// Identical to the weight [`reconstruct`] uses; exact over GF(2⁸), so
/// a reconstruction summed this way is byte-identical to
/// [`reconstruct`] on the same shares.
///
/// # Panics
///
/// Panics (in debug builds) if abscissae are zero or not distinct —
/// the caller is expected to have validated the share set, as
/// [`validate_shares`] does for the `Share`-based API.
#[must_use]
pub fn lagrange_weight_xs(xs: &[u8], i: usize) -> Gf256 {
    debug_assert!(xs.iter().all(|&x| x != 0), "abscissae must be nonzero");
    debug_assert!(
        xs.iter().enumerate().all(|(a, x)| !xs[..a].contains(x)),
        "abscissae must be distinct"
    );
    let xi = Gf256::new(xs[i]);
    let mut num = Gf256::ONE;
    let mut den = Gf256::ONE;
    for (j, &xj) in xs.iter().enumerate() {
        if i != j {
            let xj = Gf256::new(xj);
            num *= xj;
            den *= xj + xi;
        }
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x5eed)
    }

    #[test]
    fn round_trip_all_small_params() {
        let mut rng = rng();
        let secret = b"the quick brown fox";
        for m in 1..=6u8 {
            for k in 1..=m {
                let params = Params::new(k, m).unwrap();
                let shares = split(secret, params, &mut rng).unwrap();
                assert_eq!(shares.len(), m as usize);
                let got = reconstruct(&shares).unwrap();
                assert_eq!(got, secret, "k={k} m={m}");
            }
        }
    }

    #[test]
    fn any_k_subset_reconstructs() {
        let mut rng = rng();
        let params = Params::new(3, 5).unwrap();
        let secret = [0u8, 255, 17, 42];
        let shares = split(&secret, params, &mut rng).unwrap();
        // All C(5,3) = 10 subsets.
        for a in 0..5 {
            for b in (a + 1)..5 {
                for c in (b + 1)..5 {
                    let subset = [shares[a].clone(), shares[b].clone(), shares[c].clone()];
                    assert_eq!(reconstruct(&subset).unwrap(), secret);
                }
            }
        }
    }

    #[test]
    fn share_order_is_irrelevant() {
        let mut rng = rng();
        let shares = split(b"order", Params::new(3, 4).unwrap(), &mut rng).unwrap();
        let mut rev: Vec<_> = shares.clone();
        rev.reverse();
        assert_eq!(reconstruct(&rev).unwrap(), b"order");
    }

    #[test]
    fn too_few_shares_fail() {
        let mut rng = rng();
        let shares = split(b"x", Params::new(3, 5).unwrap(), &mut rng).unwrap();
        let err = reconstruct(&shares[..2]).unwrap_err();
        assert_eq!(err, ShareError::NotEnoughShares { needed: 3, got: 2 });
    }

    #[test]
    fn empty_input_fails() {
        assert_eq!(reconstruct(&[]).unwrap_err(), ShareError::NoShares);
    }

    #[test]
    fn duplicate_share_detected() {
        let mut rng = rng();
        let shares = split(b"x", Params::new(2, 3).unwrap(), &mut rng).unwrap();
        let dup = vec![shares[0].clone(), shares[0].clone()];
        assert_eq!(
            reconstruct(&dup).unwrap_err(),
            ShareError::DuplicateShare { x: shares[0].x() }
        );
    }

    #[test]
    fn mismatched_threshold_detected() {
        let mut rng = rng();
        let a = split(b"x", Params::new(1, 2).unwrap(), &mut rng).unwrap();
        let b = split(b"x", Params::new(2, 2).unwrap(), &mut rng).unwrap();
        let mixed = vec![a[0].clone(), b[1].clone()];
        assert!(matches!(
            reconstruct(&mixed).unwrap_err(),
            ShareError::MismatchedThreshold { .. }
        ));
    }

    #[test]
    fn mismatched_length_detected() {
        let mut rng = rng();
        let a = split(b"xy", Params::new(2, 2).unwrap(), &mut rng).unwrap();
        let b = split(b"x", Params::new(2, 2).unwrap(), &mut rng).unwrap();
        let mixed = vec![a[0].clone(), b[1].clone()];
        assert!(matches!(
            reconstruct(&mixed).unwrap_err(),
            ShareError::MismatchedLength { .. }
        ));
    }

    #[test]
    fn empty_secret_round_trips() {
        let mut rng = rng();
        let shares = split(b"", Params::new(2, 3).unwrap(), &mut rng).unwrap();
        assert!(shares.iter().all(|s| s.data().is_empty()));
        assert_eq!(reconstruct(&shares).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn k_equals_one_shares_are_plaintext() {
        // With threshold 1 the polynomial is constant: every share IS the
        // secret. The model exploits this for the maximum-rate schedule.
        let mut rng = rng();
        let shares = split(b"plain", Params::new(1, 3).unwrap(), &mut rng).unwrap();
        for s in &shares {
            assert_eq!(s.data(), b"plain");
        }
    }

    #[test]
    fn k_greater_than_one_shares_differ_from_secret() {
        // Statistically a 32-byte share equals the secret with prob 2^-256.
        let mut rng = rng();
        let secret = [0xaau8; 32];
        let shares = split(&secret, Params::new(2, 2).unwrap(), &mut rng).unwrap();
        for s in &shares {
            assert_ne!(s.data(), &secret);
        }
    }

    #[test]
    fn wrong_share_set_gives_wrong_secret_not_panic() {
        // Reconstructing from k shares of *different* sharings must not
        // panic; it yields garbage, which is fine for a threshold scheme
        // without verification.
        let mut rng = rng();
        let a = split(&[1, 2, 3, 4], Params::new(2, 2).unwrap(), &mut rng).unwrap();
        let b = split(&[9, 9, 9, 9], Params::new(2, 2).unwrap(), &mut rng).unwrap();
        let mixed = vec![a[0].clone(), b[1].clone()];
        let _ = reconstruct(&mixed).unwrap();
    }

    /// Perfect secrecy, statistically: fixing k−1 shares, the secret byte
    /// remains (empirically) uniform. We verify the underlying algebraic
    /// fact exactly: for every secret value and every fixed polynomial
    /// evaluation at one point, there is exactly one degree-1 polynomial —
    /// i.e. for k=2, one observed share value is compatible with *every*
    /// secret byte in exactly one way.
    #[test]
    fn one_share_is_compatible_with_every_secret() {
        use mcss_gf256::{poly, Gf256};
        let observed_x = Gf256::new(1);
        let observed_y = Gf256::new(0x7c);
        for secret in 0..=255u8 {
            // Interpolate the unique line through (0, secret), (x, y).
            let p =
                poly::interpolate(&[(Gf256::ZERO, Gf256::new(secret)), (observed_x, observed_y)])
                    .unwrap();
            assert_eq!(p.eval(Gf256::ZERO), Gf256::new(secret));
            assert_eq!(p.eval(observed_x), observed_y);
        }
    }

    /// Empirical uniformity: share bytes of a fixed secret are uniform over
    /// many splits (chi-squared style sanity bound, loose to avoid flakes).
    #[test]
    fn share_bytes_look_uniform() {
        let mut rng = rng();
        let mut counts = [0u32; 256];
        let trials = 25_600;
        for _ in 0..trials {
            let shares = split(&[0x42], Params::new(2, 2).unwrap(), &mut rng).unwrap();
            counts[shares[0].data()[0] as usize] += 1;
        }
        let expected = trials as f64 / 256.0; // 100 per bucket
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected * 0.3 && (c as f64) < expected * 3.0,
                "byte {v} count {c} wildly non-uniform"
            );
        }
    }
}
