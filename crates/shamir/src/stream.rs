//! Streaming secret sharing: split a byte stream into fixed-size symbols
//! and share each symbol independently.
//!
//! The protocol model treats the sender's input as a sequence of source
//! symbols `x₁x₂x₃…`; this module provides that symbol framing for
//! arbitrary byte streams. Each symbol may use different `(k, m)`
//! parameters — exactly what a share schedule requires — so the splitter
//! takes the parameters per symbol.
//!
//! # Examples
//!
//! ```
//! use mcss_shamir::{Params, stream::{StreamSplitter, StreamAssembler}};
//!
//! # fn main() -> Result<(), mcss_shamir::ShareError> {
//! let mut splitter = StreamSplitter::new(4); // 4-byte symbols
//! splitter.push(b"hello, multichannel world");
//! let params = Params::new(2, 3)?;
//! let mut rng = rand::rng();
//!
//! let mut assembler = StreamAssembler::new();
//! while let Some(symbol) = splitter.next_symbol() {
//!     let shares = symbol.split(params, &mut rng)?;
//!     assembler.accept(symbol.seq(), &shares[..2])?;
//! }
//! // Flush the trailing partial symbol.
//! if let Some(symbol) = splitter.flush() {
//!     let shares = symbol.split(params, &mut rng)?;
//!     assembler.accept(symbol.seq(), &shares[..2])?;
//! }
//! assert_eq!(assembler.into_bytes(), b"hello, multichannel world");
//! # Ok(())
//! # }
//! ```

use crate::{reconstruct, split, Params, Share, ShareError};

/// A numbered source symbol awaiting splitting.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Symbol {
    seq: u64,
    data: Vec<u8>,
}

impl Symbol {
    /// Creates a symbol with an explicit sequence number.
    #[must_use]
    pub fn new(seq: u64, data: Vec<u8>) -> Self {
        Symbol { seq, data }
    }

    /// The symbol's position in the stream.
    #[must_use]
    pub const fn seq(&self) -> u64 {
        self.seq
    }

    /// The symbol payload.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Splits this symbol into shares.
    ///
    /// # Errors
    ///
    /// Propagates [`ShareError`] from [`split`].
    pub fn split<R: rand::Rng + ?Sized>(
        &self,
        params: Params,
        rng: &mut R,
    ) -> Result<Vec<Share>, ShareError> {
        split(&self.data, params, rng)
    }
}

/// Splits an incoming byte stream into fixed-size symbols.
///
/// Bytes are buffered with [`push`](StreamSplitter::push) and withdrawn as
/// full symbols with [`next_symbol`](StreamSplitter::next_symbol); a final
/// short symbol is produced by [`flush`](StreamSplitter::flush).
#[derive(Debug, Clone)]
pub struct StreamSplitter {
    symbol_size: usize,
    buf: Vec<u8>,
    next_seq: u64,
}

impl StreamSplitter {
    /// Creates a splitter producing symbols of `symbol_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `symbol_size` is zero.
    #[must_use]
    pub fn new(symbol_size: usize) -> Self {
        assert!(symbol_size > 0, "symbol size must be positive");
        StreamSplitter {
            symbol_size,
            buf: Vec::new(),
            next_seq: 0,
        }
    }

    /// Appends bytes to the internal buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered bytes not yet emitted.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Withdraws the next full symbol, if one is available.
    pub fn next_symbol(&mut self) -> Option<Symbol> {
        if self.buf.len() < self.symbol_size {
            return None;
        }
        let rest = self.buf.split_off(self.symbol_size);
        let data = core::mem::replace(&mut self.buf, rest);
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(Symbol { seq, data })
    }

    /// Withdraws up to `limit` full symbols at once, for batched
    /// splitting via [`crate::split_batch`].
    pub fn next_symbols(&mut self, limit: usize) -> Vec<Symbol> {
        let mut out = Vec::new();
        while out.len() < limit {
            match self.next_symbol() {
                Some(sym) => out.push(sym),
                None => break,
            }
        }
        out
    }

    /// Withdraws whatever remains as a final (possibly short) symbol.
    ///
    /// Returns `None` if the buffer is empty.
    pub fn flush(&mut self) -> Option<Symbol> {
        if self.buf.is_empty() {
            return None;
        }
        let data = core::mem::take(&mut self.buf);
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(Symbol { seq, data })
    }
}

/// Reassembles reconstructed symbols back into an ordered byte stream.
///
/// Symbols may arrive out of order; they are stitched together by sequence
/// number. Missing symbols leave a gap that makes
/// [`into_bytes`](StreamAssembler::into_bytes) stop at the gap, mirroring
/// in-order delivery semantics.
#[derive(Debug, Clone, Default)]
pub struct StreamAssembler {
    symbols: std::collections::BTreeMap<u64, Vec<u8>>,
}

impl StreamAssembler {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        StreamAssembler::default()
    }

    /// Reconstructs a symbol from shares and stores it at `seq`.
    ///
    /// # Errors
    ///
    /// Propagates [`ShareError`] from [`reconstruct`]. A repeated `seq`
    /// overwrites the previous reconstruction (idempotent for identical
    /// shares).
    pub fn accept(&mut self, seq: u64, shares: &[Share]) -> Result<(), ShareError> {
        let data = reconstruct(shares)?;
        self.symbols.insert(seq, data);
        Ok(())
    }

    /// Reconstructs and stores a whole batch of symbols through
    /// [`crate::reconstruct_batch`], reusing `scratch` across calls.
    ///
    /// # Errors
    ///
    /// The first per-symbol [`ShareError`]; on error nothing from this
    /// batch is stored.
    pub fn accept_batch(
        &mut self,
        items: &[(u64, &[Share])],
        scratch: &mut crate::BatchScratch,
    ) -> Result<(), ShareError> {
        let batches: Vec<&[Share]> = items.iter().map(|(_, shares)| *shares).collect();
        let secrets = crate::reconstruct_batch(&batches, scratch)?;
        for ((seq, _), data) in items.iter().zip(secrets) {
            self.symbols.insert(*seq, data);
        }
        Ok(())
    }

    /// Number of symbols stored so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether no symbols have been stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Concatenates the contiguous prefix of symbols starting at sequence
    /// number 0, consuming the assembler.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        let mut out = Vec::new();
        for (want, (seq, data)) in (0u64..).zip(self.symbols) {
            if seq != want {
                break;
            }
            out.extend_from_slice(&data);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn splitter_emits_fixed_size_symbols() {
        let mut s = StreamSplitter::new(3);
        s.push(b"abcdefgh");
        let a = s.next_symbol().unwrap();
        assert_eq!((a.seq(), a.data()), (0, &b"abc"[..]));
        let b = s.next_symbol().unwrap();
        assert_eq!((b.seq(), b.data()), (1, &b"def"[..]));
        assert!(s.next_symbol().is_none());
        assert_eq!(s.pending(), 2);
        let tail = s.flush().unwrap();
        assert_eq!((tail.seq(), tail.data()), (2, &b"gh"[..]));
        assert!(s.flush().is_none());
    }

    #[test]
    fn batched_stream_round_trip() {
        let mut rng = rng();
        let mut scratch = crate::BatchScratch::new();
        let payload: Vec<u8> = (0..=255u8).cycle().take(500).collect();
        let mut splitter = StreamSplitter::new(32);
        splitter.push(&payload);
        let mut asm = StreamAssembler::new();
        let params = Params::new(2, 4).unwrap();
        loop {
            let mut symbols = splitter.next_symbols(4);
            if symbols.is_empty() {
                if let Some(tail) = splitter.flush() {
                    symbols.push(tail);
                } else {
                    break;
                }
            }
            let secrets: Vec<&[u8]> = symbols.iter().map(Symbol::data).collect();
            let shared = crate::split_batch(&secrets, params, &mut rng, &mut scratch).unwrap();
            let items: Vec<(u64, &[Share])> = symbols
                .iter()
                .zip(&shared)
                .map(|(sym, shares)| (sym.seq(), &shares[1..3]))
                .collect();
            asm.accept_batch(&items, &mut scratch).unwrap();
        }
        assert_eq!(asm.into_bytes(), payload);
    }

    #[test]
    fn next_symbols_respects_limit_and_order() {
        let mut s = StreamSplitter::new(2);
        s.push(b"aabbccdd");
        let batch = s.next_symbols(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(
            batch.iter().map(Symbol::seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(s.next_symbols(10).len(), 1);
        assert!(s.next_symbols(10).is_empty());
    }

    #[test]
    fn incremental_pushes_accumulate() {
        let mut s = StreamSplitter::new(4);
        s.push(b"ab");
        assert!(s.next_symbol().is_none());
        s.push(b"cd");
        assert_eq!(s.next_symbol().unwrap().data(), b"abcd");
    }

    #[test]
    #[should_panic(expected = "symbol size")]
    fn zero_symbol_size_panics() {
        let _ = StreamSplitter::new(0);
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut rng = rng();
        let params = Params::new(2, 3).unwrap();
        let s0 = Symbol::new(0, b"AAAA".to_vec());
        let s1 = Symbol::new(1, b"BBBB".to_vec());
        let sh0 = s0.split(params, &mut rng).unwrap();
        let sh1 = s1.split(params, &mut rng).unwrap();
        let mut asm = StreamAssembler::new();
        asm.accept(1, &sh1[1..]).unwrap();
        asm.accept(0, &sh0[..2]).unwrap();
        assert_eq!(asm.into_bytes(), b"AAAABBBB");
    }

    #[test]
    fn gap_stops_concatenation() {
        let mut rng = rng();
        let params = Params::new(1, 1).unwrap();
        let mut asm = StreamAssembler::new();
        let s0 = Symbol::new(0, b"X".to_vec())
            .split(params, &mut rng)
            .unwrap();
        let s2 = Symbol::new(2, b"Z".to_vec())
            .split(params, &mut rng)
            .unwrap();
        asm.accept(0, &s0).unwrap();
        asm.accept(2, &s2).unwrap();
        assert_eq!(asm.len(), 2);
        assert_eq!(asm.into_bytes(), b"X");
    }

    #[test]
    fn full_round_trip_varying_params() {
        let mut rng = rng();
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut split = StreamSplitter::new(64);
        split.push(&payload);
        let mut asm = StreamAssembler::new();
        let mut k = 1u8;
        let mut process = |sym: Symbol, asm: &mut StreamAssembler, k: &mut u8| {
            // Vary parameters per symbol like a share schedule would.
            let params = Params::new(*k, 5).unwrap();
            *k = *k % 5 + 1;
            let shares = sym.split(params, &mut rng).unwrap();
            asm.accept(sym.seq(), &shares).unwrap();
        };
        while let Some(sym) = split.next_symbol() {
            process(sym, &mut asm, &mut k);
        }
        if let Some(sym) = split.flush() {
            process(sym, &mut asm, &mut k);
        }
        assert_eq!(asm.into_bytes(), payload);
    }
}
